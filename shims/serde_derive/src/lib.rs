//! Derive macros for the in-repo serde shim.
//!
//! The build environment has no crates.io access (so no syn/quote); input
//! is parsed by walking raw [`proc_macro::TokenTree`]s. Supported shapes
//! are exactly what this workspace derives on: non-generic structs (unit /
//! named / tuple) and enums whose variants are unit, newtype, tuple, or
//! struct-like. `#[serde(...)]` attributes are not supported and the
//! workspace uses none. Generated impls target the shim's Value model:
//! `Serialize::to_value` / `Deserialize::from_value` with externally
//! tagged enums, matching serde_json's default representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde shim: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde shim: generated Deserialize impl must parse")
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = ident_text(&toks[i]).expect("serde shim derive: expected struct/enum keyword");
    i += 1;
    let name = ident_text(&toks[i]).expect("serde shim derive: expected type name");
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (type {name})");
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            None => Kind::UnitStruct,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => panic!("serde shim derive: unexpected token after struct name: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde shim derive: unions are not supported (found `{other}`)"),
    };
    Item { name, kind }
}

fn ident_text(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Advances past `#[...]` attributes (incl. doc comments) and `pub` /
/// `pub(...)` visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` plus the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => break,
        }
    }
}

/// Splits a field/variant token run at top-level commas. Commas nested in
/// `<...>` generic arguments don't split (groups are single trees already).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            ident_text(&seg[i]).expect("serde shim derive: expected field name")
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).into_iter().filter(|seg| !seg.is_empty()).count()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            let name = ident_text(&seg[i]).expect("serde shim derive: expected variant name");
            i += 1;
            let kind = match seg.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    match count_tuple_fields(g.stream()) {
                        1 => VariantKind::Newtype,
                        n => VariantKind::Tuple(n),
                    }
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(parse_named_fields(g.stream()))
                }
                _ => VariantKind::Unit, // `= disc` only occurs on unit variants
            };
            Variant { name, kind }
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Newtype => format!(
                            "{name}::{vn}(__x0) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(__x0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(::std::vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => format!("{{ let _ = __v; Ok({name}) }}"),
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> =
                fields.iter().map(|f| format!("{f}: ::serde::__field(__v, \"{f}\")?")).collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Kind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let elems: Vec<String> =
                (0..*n).map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?")).collect();
            format!("{{ let __a = ::serde::__tuple(__v, {n})?; Ok({name}({})) }}", elems.join(", "))
        }
        Kind::Enum(variants) => {
            let str_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let obj_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("\"{vn}\" => {{ let _ = __inner; Ok({name}::{vn}) }},")
                        }
                        VariantKind::Newtype => format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        ),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let __a = ::serde::__tuple(__inner, {n})?; \
                                 Ok({name}::{vn}({})) }},",
                                elems.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::__field(__inner, \"{f}\")?"))
                                .collect();
                            format!("\"{vn}\" => Ok({name}::{vn} {{ {} }}),", inits.join(", "))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {}\n\
                 __other => Err(::serde::Error::unknown_variant(__other, \"{name}\")),\n\
                 }},\n\
                 ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                 let (__tag, __inner) = &__o[0];\n\
                 match __tag.as_str() {{\n\
                 {}\n\
                 __other => Err(::serde::Error::unknown_variant(__other, \"{name}\")),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::serde::Error::invalid_type(\"enum {name}\", __other)),\n\
                 }}",
                str_arms.join("\n"),
                obj_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{ {body} }}\n\
         }}"
    )
}
