//! Minimal criterion-compatible shim.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the benchmarking surface it uses: `Criterion::bench_function`,
//! `benchmark_group` with chainable `sample_size`/`measurement_time`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros
//! (plain form). Timing is a simple best-of-samples wall-clock loop
//! printed to stdout — enough to run `cargo bench`/`cargo test --benches`
//! and compare configurations, with none of the statistics machinery.

use std::time::{Duration, Instant};

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, measurement_time: Duration::from_secs(3) }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&name.to_string(), self.sample_size, self.measurement_time, f);
        self
    }

    /// Opens a named group; settings apply to benches registered on it.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, self.measurement_time, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` measures the routine.
pub struct Bencher {
    sample_size: usize,
    budget: Duration,
    best: Option<Duration>,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording the best per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            let out = routine();
            let dt = t0.elapsed();
            drop(out);
            self.iters += 1;
            self.best = Some(match self.best {
                Some(best) if best <= dt => best,
                _ => dt,
            });
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, budget: Duration, mut f: F) {
    let mut b = Bencher { sample_size, budget, best: None, iters: 0 };
    f(&mut b);
    match b.best {
        Some(best) => println!("bench {name}: best {best:?} over {} iters", b.iters),
        None => println!("bench {name}: no measurements"),
    }
}

/// Registers benchmark functions under a group name (plain form only).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
