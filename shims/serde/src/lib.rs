//! Minimal serde-compatible shim.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a Value-based serialization core: `Serialize` lowers to a JSON-like
//! [`Value`] tree, `Deserialize` lifts from one, and the companion
//! `serde_json` shim renders/parses the tree as JSON text. The derive
//! macros (re-exported from the `serde_derive` shim) generate externally
//! tagged enum representations, matching real serde_json defaults for the
//! types this workspace derives (no `#[serde(...)]` attributes anywhere).

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree. Integers keep signed/unsigned fidelity so
/// `u64::MAX` round-trips exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (the wire format never relies on key
    /// order, but keeping it makes output deterministic).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    pub fn unknown_variant(variant: &str, enum_name: &str) -> Self {
        Error(format!("unknown variant `{variant}` for {enum_name}"))
    }

    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error(format!("invalid type: expected {expected}, found {kind}"))
    }

    pub fn missing_field(field: &str) -> Self {
        Error(format!("missing field `{field}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types constructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub mod ser {
    pub use crate::{Error, Serialize};
}

pub mod de {
    pub use crate::{Deserialize, Error};

    /// Owned-deserialization marker, blanket-implemented (the shim's
    /// `Deserialize` is already lifetime-free).
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Derive-macro helper: extracts and deserializes a named field.
pub fn __field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v {
        Value::Object(_) => match v.get(name) {
            Some(inner) => T::from_value(inner),
            None => Err(Error::missing_field(name)),
        },
        other => Err(Error::invalid_type("object", other)),
    }
}

/// Derive-macro helper: checks a value is an `n`-element array.
pub fn __tuple(v: &Value, n: usize) -> Result<&[Value], Error> {
    match v {
        Value::Array(items) if items.len() == n => Ok(items),
        Value::Array(items) => {
            Err(Error::msg(format!("expected {n}-tuple, found {} elements", items.len())))
        }
        other => Err(Error::invalid_type("array", other)),
    }
}

// ---------------------------------------------------------------------------
// Primitive and std impls
// ---------------------------------------------------------------------------

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(Error::invalid_type("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => {
                        i64::try_from(*n).map_err(|_| {
                            Error::msg(format!("integer {n} out of range for i64"))
                        })?
                    }
                    other => return Err(Error::invalid_type("signed integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);
signed_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::invalid_type("float", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::invalid_type("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::invalid_type("single-char string", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::invalid_type("null", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::invalid_type("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        match self {
            Ok(x) => Value::Object(vec![("Ok".to_string(), x.to_value())]),
            Err(e) => Value::Object(vec![("Err".to_string(), e.to_value())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) if fields.len() == 1 => match fields[0].0.as_str() {
                "Ok" => T::from_value(&fields[0].1).map(Ok),
                "Err" => E::from_value(&fields[0].1).map(Err),
                other => Err(Error::unknown_variant(other, "Result")),
            },
            other => Err(Error::invalid_type("Result object", other)),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs: u64 = __field(v, "secs")?;
        let nanos: u32 = __field(v, "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                let items = __tuple(v, LEN)?;
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
