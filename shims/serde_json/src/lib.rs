//! Minimal `serde_json`-compatible shim over the serde shim's [`Value`]
//! model: renders a `Value` tree as JSON text and parses JSON text back.
//!
//! The parser is a hand-rolled recursive-descent pass over bytes that must
//! never panic (the wire-robustness tests feed it arbitrary garbage): all
//! indexing is bounds-checked and nesting depth is capped. Matching real
//! serde_json behaviour where it matters to this workspace: non-finite
//! floats render as `null`, integers keep 64-bit fidelity, and enum
//! representations are externally tagged (that part lives in the derive).

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};
use std::fmt;

/// Nesting depth cap: garbage like `[[[[...` must error, not blow the
/// stack.
const MAX_DEPTH: usize = 128;

/// JSON encode/decode error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let v = parse_value(s.as_bytes())?;
    Ok(T::from_value(&v)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let v = parse_value(bytes)?;
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            out.push_str(&n.to_string());
        }
        Value::U64(n) => {
            out.push_str(&n.to_string());
        }
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&format_f64(*x));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

/// Formats a finite f64 so it re-parses as a float when it carries a
/// fraction, and as an integer otherwise (accepted by the float
/// deserializer either way).
fn format_f64(x: f64) -> String {
    let s = x.to_string();
    debug_assert!(!s.contains("inf") && !s.contains("NaN"));
    s
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(bytes: &[u8]) -> Result<Value, Error> {
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing bytes at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(Error::msg(format!(
                "expected `{}` at offset {}, found `{}`",
                b as char,
                self.pos - 1,
                got as char
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::msg("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(Error::msg(format!("unexpected byte 0x{b:02x} at offset {}", self.pos))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                Some(b) => {
                    return Err(Error::msg(format!("expected `,` or `]`, found `{}`", b as char)))
                }
                None => return Err(Error::msg("unterminated array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(fields)),
                Some(b) => {
                    return Err(Error::msg(format!("expected `,` or `}}`, found `{}`", b as char)))
                }
                None => return Err(Error::msg("unterminated object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error::msg("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::msg("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code)
                                .ok_or_else(|| Error::msg("invalid surrogate pair"))?
                        } else {
                            char::from_u32(hi).ok_or_else(|| Error::msg("invalid \\u escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(Error::msg("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(Error::msg("unescaped control character in string"))
                }
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error::msg("invalid UTF-8 in string")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::msg("truncated UTF-8 in string"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut n = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| Error::msg("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::msg("invalid hex digit in \\u escape"))?;
            n = n * 16 + d;
        }
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::msg("invalid number"));
        }
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .ok()
            .filter(|x| x.is_finite())
            .map(Value::F64)
            .ok_or_else(|| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let s = {
            let mut out = String::new();
            write_value(&mut out, v);
            out
        };
        assert_eq!(&parse_value(s.as_bytes()).unwrap(), v, "roundtrip of {s}");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::U64(u64::MAX));
        roundtrip(&Value::I64(i64::MIN));
        roundtrip(&Value::F64(1.5));
        roundtrip(&Value::Str("hé\"llo\n\\ \u{1F600} \u{1}".to_string()));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(&Value::Array(vec![Value::U64(1), Value::Null, Value::Str("x".into())]));
        roundtrip(&Value::Object(vec![
            ("a".to_string(), Value::Array(vec![])),
            ("b".to_string(), Value::Object(vec![("c".to_string(), Value::Bool(false))])),
        ]));
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        for s in [
            "",
            "{",
            "[",
            "\"",
            "tru",
            "nul",
            "-",
            "1e",
            "{\"a\"}",
            "[1,]",
            "{,}",
            "\"\\u12\"",
            "\"\\ud800\"",
            "01x",
            "[1 2]",
            "\u{0}",
        ] {
            assert!(parse_value(s.as_bytes()).is_err(), "should reject {s:?}");
        }
        let deep = "[".repeat(100_000);
        assert!(parse_value(deep.as_bytes()).is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<u64> = vec![0, 1, u64::MAX];
        let s = to_string(&v).unwrap();
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(v, back);
        let pair: (String, Option<u8>) = ("k".into(), None);
        let back: (String, Option<u8>) = from_slice(&to_vec(&pair).unwrap()).unwrap();
        assert_eq!(pair, back);
    }
}
