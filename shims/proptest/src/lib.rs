//! Minimal proptest-compatible shim.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the property-testing surface it uses: the [`proptest!`] macro with
//! optional `#![proptest_config(...)]`, `arg in strategy` bindings,
//! integer-range / `any::<T>()` / `Just` / tuple / `prop_map` /
//! `prop_oneof!` / `prop::collection::vec` strategies, and
//! `prop_assert*` macros.
//!
//! Unlike real proptest the generator is **deterministic by default**:
//! case `i` of test `t` derives its RNG seed from `hash(module::t, i)`, so
//! every run explores the same inputs and a failure report can be replayed
//! exactly. Overrides:
//!
//! * `MTGPU_PROPTEST_CASES=n` — run `n` cases per test instead of the
//!   configured count.
//! * `MTGPU_PROPTEST_SEED=s` — run a single case whose RNG is seeded with
//!   `s` directly (the value printed in a failure report).
//!
//! There is no shrinking: the deterministic seed makes failures
//! reproducible without it.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// SplitMix64 generator: tiny, fast, and good enough for test-input
/// generation; the sequence for a given seed is stable forever.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Derives the deterministic seed for one test case.
    pub fn for_case(test_path: &str, case: u64) -> (u64, Self) {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let seed = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (seed, TestRng::from_seed(seed))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of test values.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy (what [`prop_oneof!`] unions over).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategies!(i8, i16, i32, i64, isize);

/// Full-domain generation, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a full-domain generator.
pub trait Arbitrary: Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform in [0, 1): enough for test inputs, and always finite.
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

macro_rules! tuple_strategies {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Element count for [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::fmt::Debug;

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Runs `body` for every case of a property test. Not called directly —
/// the [`proptest!`] macro expands to this.
pub fn run_property_test(
    test_path: &str,
    cfg: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng),
) {
    if let Ok(seed) = std::env::var("MTGPU_PROPTEST_SEED") {
        let seed: u64 = seed
            .parse()
            .unwrap_or_else(|_| panic!("MTGPU_PROPTEST_SEED must be a u64, got {seed:?}"));
        let mut rng = TestRng::from_seed(seed);
        run_one_case(test_path, seed, &mut rng, &mut body);
        return;
    }
    let cases: u64 = std::env::var("MTGPU_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(u64::from(cfg.cases));
    for case in 0..cases {
        let (seed, mut rng) = TestRng::for_case(test_path, case);
        run_one_case(test_path, seed, &mut rng, &mut body);
    }
}

fn run_one_case(
    test_path: &str,
    seed: u64,
    rng: &mut TestRng,
    body: &mut impl FnMut(&mut TestRng),
) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(rng)));
    if let Err(panic) = outcome {
        eprintln!("proptest case failed: {test_path}\n  replay with MTGPU_PROPTEST_SEED={seed}");
        std::panic::resume_unwind(panic);
    }
}

/// The property-test entry macro. Supports the subset this workspace
/// uses: an optional `#![proptest_config(expr)]` header followed by one
/// or more `fn name(arg in strategy, ...) { body }` items (attributes and
/// doc comments on the fns are preserved).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr)) => {};
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // Attributes pass through verbatim — the repo's blocks write
        // `#[test]` themselves, like real proptest expects.
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::run_property_test(
                concat!(module_path!(), "::", stringify!($name)),
                &cfg,
                |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    $body
                },
            );
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` under a different name (no shrinking machinery to talk to).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let (seed_a, mut a) = TestRng::for_case("x::y", 3);
        let (seed_b, mut b) = TestRng::for_case("x::y", 3);
        assert_eq!(seed_a, seed_b);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20u64, y in 5u8..=6) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y == 5 || y == 6);
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u32..10).prop_map(|n| n * 2),
                Just(99u32),
            ]
        ) {
            prop_assert!(v == 99 || (v % 2 == 0 && v < 20));
        }
    }
}
