//! Minimal `crossbeam`-compatible shim: an MPMC channel built on
//! `Mutex<VecDeque>` + `Condvar`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the API slice it uses: `channel::{bounded, unbounded}` with cloneable
//! multi-producer multi-consumer `Sender`/`Receiver`, blocking `recv`,
//! `recv_timeout` with [`channel::RecvTimeoutError`], and disconnect
//! detection when all peers on the other side have dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel is empty"),
                TryRecvError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// Signals receivers (data or disconnect) and senders (space).
        cv: Condvar,
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a channel holding at most `cap` queued messages. `cap = 0`
    /// degrades to capacity 1 (this shim has no rendezvous mode; the
    /// workspace only uses non-zero capacities).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake receivers so they observe disconnect.
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver: wake senders blocked on a full queue.
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded queue is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.cap {
                    Some(cap) if q.len() >= cap => {
                        q = self.shared.cv.wait(q).unwrap_or_else(|p| p.into_inner());
                    }
                    _ => break,
                }
            }
            q.push_back(msg);
            drop(q);
            self.shared.cv.notify_all();
            Ok(())
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.queue.lock().unwrap_or_else(|p| p.into_inner()).is_empty()
        }

        /// Queued message count.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|p| p.into_inner()).len()
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    drop(q);
                    // A slot freed: wake senders blocked on capacity.
                    self.shared.cv.notify_all();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.cv.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    drop(q);
                    self.shared.cv.notify_all();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(msg) = q.pop_front() {
                drop(q);
                self.shared.cv.notify_all();
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.queue.lock().unwrap_or_else(|p| p.into_inner()).is_empty()
        }

        /// Queued message count.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|p| p.into_inner()).len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        tx.send(1).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
    }

    #[test]
    fn disconnect_detected() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a recv frees a slot
        });
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
