//! Minimal `parking_lot`-compatible shim over `std::sync`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small API slice it actually uses: non-poisoning `Mutex`/`RwLock`
//! (poisoned std locks are transparently recovered via `into_inner`) and a
//! `Condvar` whose `wait`/`wait_until` take `&mut MutexGuard` like the real
//! crate. Semantics match parking_lot for this workspace's usage: no
//! poisoning, guards unlock on drop, `wait_until` takes an `Instant`
//! deadline and reports timeouts via [`WaitTimeoutResult::timed_out`].

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// A mutual exclusion primitive (non-poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        MutexGuard { inner: guard }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<'a, T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock (non-poisoning).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = self.inner.read().unwrap_or_else(|p| p.into_inner());
        RwLockReadGuard { inner: guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = self.inner.write().unwrap_or_else(|p| p.into_inner());
        RwLockWriteGuard { inner: guard }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Builds a result directly. Not part of the real parking_lot API;
    /// used by instrumentation layers (mtcheck's schedule explorer) that
    /// model the wait themselves and must report its outcome.
    pub fn new(timed_out: bool) -> Self {
        WaitTimeoutResult { timed_out }
    }

    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with this module's [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified, releasing the guard's mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| self.inner.wait(g).unwrap_or_else(|p| p.into_inner()));
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let dur = deadline.saturating_duration_since(Instant::now());
            let (g, res) = self.inner.wait_timeout(g, dur).unwrap_or_else(|p| p.into_inner());
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Runs `f` on the std guard inside `guard`, replacing it with the guard
/// `f` returns. `f` must not panic between taking and returning the guard
/// (std's wait APIs uphold this: a poisoned result still carries the
/// re-acquired guard, which `into_inner` recovers).
fn take_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    // Safety: we move the inner guard out, hand it to `f` (which returns a
    // live guard for the same mutex), and write the result back before
    // anyone can observe the hole. `f` (std Condvar wait) aborts the
    // process rather than unwinding mid-wait on the platforms we target.
    unsafe {
        let inner = std::ptr::read(&guard.inner);
        let back = f(inner);
        std::ptr::write(&mut guard.inner, back);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
        assert!(*done);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
