#!/usr/bin/env bash
# CI tier ladder for the mtgpu workspace. Each tier must pass before the
# next runs; the whole script is what "CI green" means for a PR.
#
#   tier 0  formatting           cargo fmt --check
#   tier 1  lints                cargo clippy --workspace -D warnings
#   tier 2  tests                cargo test -q --workspace
#   tier 3  determinism smoke    fig7 --quick --virtual-clock --seed 42 runs
#                                clean, then the sequential det-harness replay
#                                of the fig7 shape must be bit-identical, the
#                                pipelined-transfer fingerprint must be
#                                stable across three runs, and every eviction
#                                policy's fingerprint must be stable (and the
#                                recency policies divergent from seed order)
#   tier 4  dispatch stress      256-client TCP stress under a 60s timeout,
#                                the 10k-persistent-connection reactor soak
#                                (out-of-process daemon) under a 600s
#                                timeout, a --quick loadgen smoke that fails
#                                if the tenant fairness ratio exceeds 2.0,
#                                then --quick memory-transfer and transport
#                                bench smokes (pipelined >= serial,
#                                cost-aware makespan >= seed policy at 2x
#                                oversubscription, persistent >= reconnect)
#   tier 5  static analysis      mtlint --deny over the workspace (all
#                                determinism rules + the ranked-lock
#                                constructor check + lock-graph cycle
#                                detection), then the debug-build ranked-
#                                lock test subset (seeded inversion panics,
#                                mid-swap fault never trips the checker)
#   tier 6  tenant isolation     the adversarial-tenant battery: quota-
#                                pressure deterministic replay must be
#                                bit-identical, the hostile wire battery
#                                and mid-preemption fault case must pass,
#                                then loadgen --profile hostile must hold
#                                a greedy tenant to its lease (zero
#                                over-quota grants) with honest p99 within
#                                2x of the hostile-free baseline
#                                (results/BENCH_isolation.json)
#   tier 7  live migration       the migration fault battery (device death
#                                at each protocol phase leaves every PTE
#                                classifiable, the context all-or-nothing),
#                                the det-harness 3-run migration+rebalancer
#                                fingerprint, cross-node staging, then a
#                                --quick skewed-profile smoke (rebalanced
#                                must at least match static placement; the
#                                full 1.3x gate runs via bench.sh)
#   tier 8  race detection       mtcheck (debug build, instrumentation
#                                armed): the DPOR-lite explorer over the
#                                workspace scenario matrix must pass clean
#                                with >=50 distinct schedules per scenario
#                                under a watchdog timeout, the seeded race
#                                fixture must be *detected* (nonzero exit
#                                under --deny), and the engine's fixture
#                                corpus + pinned-schedule regressions +
#                                replay property must pass
#
# Usage: scripts/ci.sh [tier]   (default: all tiers)

set -euo pipefail
cd "$(dirname "$0")/.."

tier="${1:-all}"
case "$tier" in
all | 0 | 1 | 2 | 3 | 4 | 5 | 6 | 7 | 8) ;;
*)
    echo "unknown tier '$tier' (expected 0, 1, 2, 3, 4, 5, 6, 7, 8 or all)" >&2
    exit 2
    ;;
esac

run_tier() {
    echo "==> tier $1: $2"
}

if [[ "$tier" == "all" || "$tier" == "0" ]]; then
    run_tier 0 "cargo fmt --check"
    cargo fmt --all -- --check
fi

if [[ "$tier" == "all" || "$tier" == "1" ]]; then
    run_tier 1 "cargo clippy (warnings are errors)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

if [[ "$tier" == "all" || "$tier" == "2" ]]; then
    run_tier 2 "cargo test"
    cargo test -q --workspace
fi

if [[ "$tier" == "all" || "$tier" == "3" ]]; then
    run_tier 3 "seeded fig7 smoke on the virtual clock"
    # The figure binary measures *concurrent* clients, so its swap counts
    # may vary run to run; the smoke asserts it completes and verifies.
    cargo build -q --release -p mtgpu-bench --bin fig7
    ./target/release/fig7 --quick --virtual-clock --seed 42 > /dev/null
    # Bit-for-bit replay is the sequential det harness's contract:
    cargo test -q --test deterministic_repro fig7_shape_seed42 -- --exact \
        fig7_shape_seed42_replays_bit_for_bit > /dev/null
    # Copy-engine pipelining must not perturb replay: three runs of a
    # multi-engine shape must produce one canonical fingerprint.
    cargo test -q --test deterministic_repro pipelined -- --exact \
        pipelined_path_fingerprint_stable_across_three_runs > /dev/null
    # Each eviction policy must replay bit-for-bit (3 runs, one
    # fingerprint) and the recency policies must actually diverge from
    # the seed policy on the same shape.
    cargo test -q --test deterministic_repro eviction_policy -- --exact \
        eviction_policy_fingerprints_stable_and_divergent > /dev/null
    # Live migration + rebalancer must replay bit-for-bit: three runs of
    # the churned migration shape collapse to one fingerprint (and the
    # knob off means zero migrations and a diverging fingerprint).
    cargo test -q --test deterministic_repro migration_rebalancer -- --exact \
        migration_rebalancer_fingerprint_stable_across_three_runs > /dev/null
    echo "fig7 smoke + seed-42 det replay + pipelined/policy/migration fingerprints: ok"
fi

if [[ "$tier" == "all" || "$tier" == "4" ]]; then
    run_tier 4 "dispatch stress + 10k soak + loadgen fairness smoke"
    cargo build -q --release -p mtgpu --test dispatch_stress
    cargo build -q --release -p mtgpu-loadgen --bin loadgen
    # The 10k soak drives a separate node_daemon process (10k sockets per
    # side under the per-process fd limit).
    cargo build -q --release -p mtgpu-cluster --bin node_daemon
    # The full 256-client stress must finish well inside a minute; a
    # dispatcher deadlock or lost wakeup shows up as the timeout firing.
    timeout 60 cargo test -q --release --test dispatch_stress -- --ignored \
        --exact dispatch_stress_256_tcp_clients
    # 10k persistent connections multiplexed through one reactor, each
    # probed end-to-end; a stalled reactor shows up as the timeout firing.
    timeout 600 cargo test -q --release --test dispatch_stress -- --ignored \
        --exact dispatch_soak_10k_persistent_connections
    # Closed-loop smoke: identical per-tenant demand, so the max/min
    # tenant completion-time ratio gates scheduling fairness.
    ./target/release/loadgen --quick --max-fairness 2.0 \
        --out target/ci-loadgen-quick.json > /dev/null
    # Transfer-pipelining + oversubscription smoke: pipelined materialize
    # must at least match serial and the cost-aware policy must at least
    # match the seed policy's makespan at 2x oversubscription (the full
    # 1.4x / 1.2x gates run via bench.sh).
    cargo bench -q -p mtgpu-bench --bench memory -- --quick --gate 1.0 \
        --gate-makespan 1.0 --out "$PWD/target/ci-bench-memory.json" 2> /dev/null
    # Transport smoke: persistent multiplexed connections must at least
    # match reconnect throughput (the full 1.3x gate runs via bench.sh).
    cargo bench -q -p mtgpu-bench --bench loadgen -- --quick --gate-throughput 1.0 \
        --out "$PWD/target/ci-bench-loadgen.json" 2> /dev/null
    echo "256-client stress + 10k soak + loadgen fairness + bench smokes: ok"
fi

if [[ "$tier" == "all" || "$tier" == "5" ]]; then
    run_tier 5 "mtlint --deny + ranked-lock checker tests"
    # Workspace must lint clean (every escape hatch carries a reason) and
    # the extracted lock graph must be acyclic; artifacts land in results/.
    cargo run -q -p mtgpu-analysis --bin mtlint -- --deny
    # Runtime half of the discipline, debug build (checker armed): the
    # seeded two-thread inversion must panic deterministically, and a
    # device death mid-swap must never trip the checker.
    cargo test -q -p mtgpu-simtime --test ranked_lock > /dev/null
    cargo test -q --test fault_matrix \
        device_failure_mid_swap_never_trips_lock_checker > /dev/null
    echo "mtlint workspace-clean + lock-graph acyclic + ranked-lock tests: ok"
fi

if [[ "$tier" == "all" || "$tier" == "6" ]]; then
    run_tier 6 "adversarial-tenant isolation battery"
    cargo build -q --release -p mtgpu-loadgen --bin loadgen
    # Every policy decision must replay bit-for-bit: three runs of the
    # quota-pressure shape (admission rejections, a lease expiry, reaping)
    # collapse to one fingerprint.
    cargo test -q --test deterministic_repro quota_pressure -- --exact \
        quota_pressure_with_lease_expiry_replays_bit_for_bit > /dev/null
    # Hostile wire battery: malformed/oversized/tampered descriptors must
    # bounce with typed errors before dispatch.
    cargo test -q -p mtgpu-api --test wire_robustness > /dev/null
    # A device dying mid-preemption must leave victims classifiable and
    # the lease book consistent.
    cargo test -q --test fault_matrix \
        device_failure_mid_preemption_keeps_victim_classifiable_and_leases_consistent \
        > /dev/null
    # The isolation gate proper: greedy tenants held to their leases
    # (zero over-quota grants) and honest p99 within 2x of the
    # hostile-free baseline.
    ./target/release/loadgen --profile hostile --quick --max-degradation 2.0 \
        --out results/BENCH_isolation.json > /dev/null
    echo "quota-pressure replay + hostile wire/fault battery + isolation gate: ok"
fi

if [[ "$tier" == "all" || "$tier" == "7" ]]; then
    run_tier 7 "live-migration fault battery + replay + skewed smoke"
    cargo build -q --release -p mtgpu-loadgen --bin loadgen
    # Device death at every protocol phase (quiesce/transfer/rebind/
    # resume, source and destination) must leave all PTEs classifiable,
    # the lease book balanced, and the context fully on one side.
    cargo test -q --test fault_matrix \
        live_migration_fault_battery_each_phase_leaves_state_classifiable > /dev/null
    # Migration + rebalancer replay: three runs, one fingerprint.
    cargo test -q --test deterministic_repro migration_rebalancer -- --exact \
        migration_rebalancer_fingerprint_stable_across_three_runs > /dev/null
    # Cross-node staging: pointers intact on the new node, failed import
    # leaves the source runnable.
    cargo test -q -p mtgpu-cluster --test stage_migration > /dev/null
    # Skewed smoke: the rebalanced pass must migrate, keep p99, and at
    # least match static placement (the full 1.3x gate runs via bench.sh).
    ./target/release/loadgen --profile skewed --quick --min-speedup 1.0 \
        --out target/ci-migration-quick.json > /dev/null
    echo "migration fault battery + replay fingerprint + staging + skewed smoke: ok"
fi

if [[ "$tier" == "all" || "$tier" == "8" ]]; then
    run_tier 8 "mtcheck race detection + schedule exploration"
    # Debug build on purpose: the vector-clock hooks are compiled out of
    # release binaries (mtcheck refuses to run there).
    cargo build -q -p mtgpu-analysis --bin mtcheck
    # The workspace matrix must explore clean — >=50 distinct schedules
    # per scenario, no races/deadlocks/stalls — inside the watchdog.
    timeout 300 ./target/debug/mtcheck explore --deny
    # The seeded fixture is the detector's self-test: its race must be
    # found, which under --deny is a nonzero exit. Artifacts go to a
    # scratch dir so the matrix report in results/ stays authoritative.
    if timeout 120 ./target/debug/mtcheck explore --deny --scenario fixture-race \
        --min-distinct 1 --out target/ci-mtcheck-fixture > /dev/null; then
        echo "mtcheck failed to detect the seeded race fixture" >&2
        exit 1
    fi
    # Engine fixture corpus (true race / lock-ordered / condvar handoff /
    # lost wakeup / bit-for-bit replay), then the explorer's pinned
    # schedules and the generative replay-determinism property.
    cargo test -q -p mtgpu-simtime --test mtcheck > /dev/null
    cargo test -q -p mtgpu-analysis --test check > /dev/null
    cargo test -q -p mtgpu-analysis --test replay_prop > /dev/null
    echo "mtcheck matrix clean + fixture detected + regressions + replay property: ok"
fi

echo "CI: all requested tiers passed"
