#!/usr/bin/env bash
# Runs the gated benchmarks and writes their JSON reports into results/.
# Memory: serial-vs-pipelined transfer benchmark plus the eviction-policy
# oversubscription sweep; writes results/BENCH_memory.json. Fails (nonzero
# exit) when the 2-engine pipelined materialize misses the 1.4x gate, the
# 1-engine path drifts more than 5% from its serial baseline, or the
# cost-aware policy misses the 1.2x end-to-end makespan gate over the seed
# policy at 2x oversubscription (with prefetch overlap observed). Extra
# args pass through to the bench binary (e.g. --quick).
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
# Absolute path: cargo runs the bench binary from the package dir, not
# the workspace root.
cargo bench -q -p mtgpu-bench --bench memory -- --gate 1.4 \
    --gate-makespan 1.2 --out "$PWD/results/BENCH_memory.json" "$@"
# Dispatcher throughput plus the ranked-lock overhead gate: in release
# builds RankedMutex must cost no more than 1.02x the raw shim mutex (the
# rank bookkeeping is #[cfg(debug_assertions)] and must compile out).
cargo bench -q -p mtgpu-bench --bench dispatch -- --gate-rank 1.02 \
    --out "$PWD/results/BENCH_dispatch.json" "$@"
# Transport gate: persistent multiplexed connections must beat the
# reconnect-per-request baseline at 64 clients — ≥1.3x throughput at no
# p99 cost — plus an ungated 1000-connection sustain case (full runs).
cargo bench -q -p mtgpu-bench --bench loadgen -- --gate-throughput 1.3 \
    --out "$PWD/results/BENCH_loadgen.json" "$@"
