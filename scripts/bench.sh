#!/usr/bin/env bash
# Runs the serial-vs-pipelined memory transfer benchmark and writes
# results/BENCH_memory.json. Fails (nonzero exit) when the 2-engine
# pipelined materialize misses the 1.4x gate or the 1-engine path drifts
# more than 5% from its serial baseline. Extra args pass through to the
# bench binary (e.g. --quick).
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
# Absolute path: cargo runs the bench binary from the package dir, not
# the workspace root.
cargo bench -q -p mtgpu-bench --bench memory -- --gate 1.4 \
    --out "$PWD/results/BENCH_memory.json" "$@"
