#!/usr/bin/env bash
# Runs the gated benchmarks and writes their JSON reports into results/.
# Memory: serial-vs-pipelined transfer benchmark plus the eviction-policy
# oversubscription sweep; writes results/BENCH_memory.json. Fails (nonzero
# exit) when the 2-engine pipelined materialize misses the 1.4x gate, the
# 1-engine path drifts more than 5% from its serial baseline, or the
# cost-aware policy misses the 1.2x end-to-end makespan gate over the seed
# policy at 2x oversubscription (with prefetch overlap observed). Extra
# args pass through to the bench binary (e.g. --quick).
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
# Absolute path: cargo runs the bench binary from the package dir, not
# the workspace root.
cargo bench -q -p mtgpu-bench --bench memory -- --gate 1.4 \
    --gate-makespan 1.2 --out "$PWD/results/BENCH_memory.json" "$@"
# Dispatcher throughput plus the ranked-lock overhead gate: in release
# builds RankedMutex must cost no more than 1.02x the raw shim mutex (the
# rank bookkeeping is #[cfg(debug_assertions)] and must compile out).
# Since the mtcheck work this same 1.02x gate also covers the race-
# detector instrumentation: every vector-clock hook call site in the
# ranked locks, and the Shadow cell bookkeeping, is likewise
# #[cfg(debug_assertions)] and must vanish from release builds.
cargo bench -q -p mtgpu-bench --bench dispatch -- --gate-rank 1.02 \
    --out "$PWD/results/BENCH_dispatch.json" "$@"
# Transport gate: persistent multiplexed connections must beat the
# reconnect-per-request baseline at 64 clients — ≥1.3x throughput at no
# p99 cost — plus an ungated 1000-connection sustain case (full runs).
cargo bench -q -p mtgpu-bench --bench loadgen -- --gate-throughput 1.3 \
    --out "$PWD/results/BENCH_loadgen.json" "$@"
# Migration gate: on the churned 4-device skewed mix the utilization
# rebalancer must deliver ≥1.3x static-placement throughput at no p99
# cost, with at least one live migration and no aborts. Virtual-clock
# deterministic: the ratio is exact, not sampled.
cargo bench -q -p mtgpu-bench --bench migration -- --gate 1.3 \
    --out "$PWD/results/BENCH_migration.json" "$@"
# Consolidated trajectory index: one results/BENCH_trajectory.json row
# per BENCH_*.json gate, so a PR's whole gate surface reads at a glance.
python3 - "$PWD/results" <<'PYEOF'
import json, os, sys
results = sys.argv[1]
rows = []
for name in sorted(os.listdir(results)):
    if not (name.startswith("BENCH_") and name.endswith(".json")):
        continue
    if name == "BENCH_trajectory.json":
        continue
    path = os.path.join(results, name)
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        rows.append({"file": name, "error": str(e)})
        continue
    row = {"file": name, "bench": doc.get("bench", name[6:-5])}
    # A report may carry several gate objects (e.g. dispatch's rank_gate
    # next to memory's makespan gate); index every dict with a "pass".
    gates = {
        k: v
        for k, v in doc.items()
        if isinstance(v, dict) and ("gate" in k or "pass" in v)
    }
    if gates:
        row["gates"] = gates
        passes = [v["pass"] for v in gates.values() if "pass" in v]
        if passes:
            row["pass"] = all(bool(p) for p in passes)
    rows.append(row)
out = os.path.join(results, "BENCH_trajectory.json")
with open(out, "w") as f:
    json.dump({"benches": rows}, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"trajectory index: {out} ({len(rows)} gates)")
PYEOF
