//! Quickstart: start a node runtime over two simulated GPUs, connect an
//! application, and run a kernel through the virtual-memory layer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mtgpu::api::{CudaClient, HostBuf, KernelArg, LaunchConfig, LaunchSpec, Work};
use mtgpu::core::{NodeRuntime, RuntimeConfig};
use mtgpu::gpusim::kernel::{library, KernelExec, RegisteredKernel};
use mtgpu::gpusim::{Driver, GpuSpec, KernelDesc};
use mtgpu::simtime::Clock;
use std::sync::Arc;

fn main() {
    // 1. A simulated node: one fast Fermi card, one slower GT200, sharing a
    //    clock where 1 simulated second passes in 1 real millisecond.
    let clock = Clock::with_scale(1e-3);
    let driver = Driver::with_devices(clock, vec![GpuSpec::tesla_c2050(), GpuSpec::tesla_c1060()]);

    // 2. Register a kernel's functional payload in the process-global
    //    library (the "fat binary machine code"): saxpy on the shadow
    //    buffer.
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("saxpy"),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let x = exec.args()[0].as_ptr().expect("x pointer");
            let y = exec.args()[1].as_ptr().expect("y pointer");
            let mut xs = vec![0f32; 1024];
            exec.with_f32_mut(x, 4096, |v| xs.copy_from_slice(&v[..1024]))?;
            exec.with_f32_mut(y, 4096, |v| {
                for i in 0..1024 {
                    v[i] += 2.0 * xs[i];
                }
            })
        })),
    });

    // 3. Start the runtime: 4 virtual GPUs per device, transfer deferral,
    //    both swap kinds enabled (the paper's configuration).
    let rt = NodeRuntime::start(driver, RuntimeConfig::paper_default());

    // 4. An application thread connects through the interposition frontend.
    //    It never names a physical GPU: `cudaSetDevice` is overridden and
    //    the pointer below is a *virtual* address.
    let mut app = rt.local_client();
    let module = app.register_fat_binary().expect("register module");
    app.register_function(module, KernelDesc::plain("saxpy")).expect("register kernel");

    println!("virtual GPUs visible to the app: {}", app.get_device_count().unwrap());

    let xs: Vec<f32> = (0..1024).map(|i| i as f32).collect();
    let ys = vec![1.0f32; 1024];
    let x = app.malloc(4096).expect("malloc x");
    let y = app.malloc(4096).expect("malloc y");
    println!("virtual pointers handed to the app: {x}, {y}");
    app.memcpy_h2d(x, HostBuf::from_f32s(&xs)).unwrap();
    app.memcpy_h2d(y, HostBuf::from_f32s(&ys)).unwrap();

    // The first launch triggers binding to a vGPU; the deferred uploads
    // happen here as one bulk transfer per buffer.
    app.launch(LaunchSpec {
        kernel: "saxpy".into(),
        config: LaunchConfig::default(),
        args: vec![KernelArg::Ptr(x), KernelArg::Ptr(y)],
        work: Work::flops(2.0 * 1024.0 * 1e6),
    })
    .expect("launch");

    let result = app.memcpy_d2h(y, 4096).unwrap().as_f32s();
    assert!((result[10] - (1.0 + 2.0 * 10.0)).abs() < 1e-5);
    println!("y[10] = {} (expected 21)", result[10]);

    app.free(x).unwrap();
    app.free(y).unwrap();
    app.exit().unwrap();

    let m = rt.metrics();
    println!(
        "runtime metrics: {} binding(s), {} launch(es), {} bulk upload(s)",
        m.bindings, m.launches, m.bulk_uploads
    );
    rt.shutdown();
}
