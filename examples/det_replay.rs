//! Deterministic replay and scripted fault injection through `mtgpu::det`.
//!
//! Runs a Fig. 7-shaped multi-tenant scenario twice under one seed and
//! shows the fingerprints are byte-identical; changes the seed and shows
//! they are not; then replays a scenario with a scripted device failure
//! and a transport drop and shows the *faulted* run is just as replayable.
//!
//!     cargo run --release --example det_replay

use mtgpu::det::{run, DetScenario};
use mtgpu::gpusim::{DeviceId, FaultPlan};
use mtgpu::simtime::SimDuration;

fn main() {
    let seed = 42;
    println!("== replaying the Fig. 7 shape under seed {seed} ==");
    let a = run(DetScenario::fig7_shape(seed));
    let b = run(DetScenario::fig7_shape(seed));
    println!(
        "run 1: {} launches, {} swaps, {} virtual ns",
        a.metrics.launches,
        a.metrics.total_swaps(),
        a.final_virtual_nanos
    );
    println!(
        "run 2: {} launches, {} swaps, {} virtual ns",
        b.metrics.launches,
        b.metrics.total_swaps(),
        b.final_virtual_nanos
    );
    assert_eq!(a.canonical(), b.canonical());
    println!("fingerprints byte-identical ({} bytes of canonical JSON)\n", a.canonical().len());

    let c = run(DetScenario::fig7_shape(seed + 1));
    assert_ne!(a.canonical(), c.canonical());
    println!(
        "seed {} diverges, as it should: {} vs {} virtual ns\n",
        seed + 1,
        a.final_virtual_nanos,
        c.final_virtual_nanos
    );

    println!("== scripted faults: device 1 dies, client 3's transport drops ==");
    // Fault times are virtual; runtime startup (persistent vGPU context
    // creation) already consumes ~0.55 virtual seconds, so times below
    // that land before any client operation. The fault_shape compute
    // phase runs to t≈1.2s — pin faults inside it.
    let faulted = || {
        let mut s = DetScenario::fault_shape(seed);
        s.checkpoint_each_round = true;
        s.plan = FaultPlan::new()
            .fail_device(SimDuration::from_millis(700), DeviceId(1))
            .drop_transport(SimDuration::from_millis(900), 3);
        s
    };
    let f1 = run(faulted());
    let f2 = run(faulted());
    assert_eq!(f1.canonical(), f2.canonical());
    for (i, client) in f1.clients.iter().enumerate() {
        println!(
            "client {i}: {} ok / {} err{}{}",
            client.ops_ok,
            client.ops_err,
            if client.dropped { ", transport dropped" } else { "" },
            if client.verified { ", payloads verified" } else { "" },
        );
    }
    println!("faulted run replays byte-for-byte too");
}
