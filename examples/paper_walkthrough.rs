//! The paper's own walkthrough (§4.5): a matrix-multiplication application
//! whose three matrices do not fit the device together.
//!
//! ```text
//! 1. malloc(&A_d, size);           5. matmul(A_d, A_d, B_d);  // B = A×A
//! 2. malloc(&B_d, size);           6. matmul(B_d, B_d, C_d);  // C = B×B
//! 3. malloc(&C_d, size);           7. copy_DH(B_h, B_d, size);
//! 4. copy_HD(A_d, A_h, size);      8. copy_DH(C_h, C_d, size);
//! ```
//!
//! "If the above application is run on the bare CUDA runtime and the data
//! sizes are such that only two matrices fit the device memory, the
//! execution will fail on the third instruction. On the other hand, when
//! our runtime is used, no memory allocation is performed until the first
//! kernel launch. ... During execution of instruction 6, the runtime will
//! detect the need for freeing device memory [and] detect that data A_d,
//! not required by instruction 6, can be swapped to host. This will allow
//! the application to complete with no error."
//!
//! This example runs the sequence on both runtimes and narrates exactly
//! that, asserting every claim.
//!
//! ```sh
//! cargo run --release --example paper_walkthrough
//! ```

use mtgpu::api::{
    BareClient, CudaClient, CudaError, HostBuf, KernelArg, LaunchConfig, LaunchSpec, Work,
};
use mtgpu::core::{NodeRuntime, RuntimeConfig};
use mtgpu::gpusim::kernel::{library, KernelExec, RegisteredKernel};
use mtgpu::gpusim::{DeviceId, Driver, GpuSpec, KernelDesc};
use mtgpu::simtime::Clock;
use std::sync::Arc;

const N: usize = 8; // shadow matrices are 8×8

fn install_matmul() {
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("walk_matmul"),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let a = exec.args()[0].as_ptr().expect("lhs");
            let b = exec.args()[1].as_ptr().expect("rhs");
            let c = exec.args()[2].as_ptr().expect("out");
            let bytes = (N * N * 4) as u64;
            let mut lhs = vec![0f32; N * N];
            let mut rhs = vec![0f32; N * N];
            exec.with_f32_mut(a, bytes, |v| lhs.copy_from_slice(&v[..N * N]))?;
            exec.with_f32_mut(b, bytes, |v| rhs.copy_from_slice(&v[..N * N]))?;
            exec.with_f32_mut(c, bytes, |v| {
                for i in 0..N {
                    for j in 0..N {
                        v[i * N + j] = (0..N).map(|k| lhs[i * N + k] * rhs[k * N + j]).sum();
                    }
                }
            })
        })),
    });
}

fn matmul(
    c: &mut impl CudaClient,
    a: mtgpu::gpusim::DeviceAddr,
    b: mtgpu::gpusim::DeviceAddr,
    out: mtgpu::gpusim::DeviceAddr,
) -> Result<(), CudaError> {
    c.launch(LaunchSpec {
        kernel: "walk_matmul".into(),
        config: LaunchConfig::default(),
        args: vec![KernelArg::Ptr(a), KernelArg::Ptr(b), KernelArg::Ptr(out)],
        work: Work::flops(1e7),
    })
}

fn main() {
    install_matmul();
    let clock = Clock::with_scale(1e-4);

    // ---- Bare CUDA runtime: fails at instruction 3 --------------------
    // "The data sizes are such that only two matrices fit the device
    // memory": 40% of the free space each.
    println!("· bare CUDA runtime:");
    {
        let driver = Driver::with_devices(clock.clone(), vec![GpuSpec::test_small()]);
        let gpu = driver.device(DeviceId(0)).unwrap();
        let size = gpu.mem_available() / 5 * 2;
        println!(
            "  device: {} ({} MiB free); matrix size: {} MiB",
            gpu.spec().name,
            gpu.mem_available() >> 20,
            size >> 20
        );
        let mut bare = BareClient::new(driver);
        let _a = bare.malloc(size).expect("instr 1: malloc A");
        let _b = bare.malloc(size).expect("instr 2: malloc B");
        let err = bare.malloc(size).expect_err("instr 3 must fail");
        assert_eq!(err, CudaError::MemoryAllocation);
        println!("  instr 3 (malloc C) fails with `{err}` — exactly as §4.5 predicts\n");
        bare.exit().unwrap();
    }

    // ---- mtgpu runtime: completes via intra-application swap ----------
    println!("· mtgpu runtime (virtual memory + transfer deferral):");
    let driver = Driver::with_devices(clock.clone(), vec![GpuSpec::test_small()]);
    let gpu = driver.device(DeviceId(0)).unwrap();
    let rt = NodeRuntime::start(driver, RuntimeConfig::paper_default());
    // Size against the memory left after the vGPU context reservations.
    let size = gpu.mem_available() / 5 * 2;
    println!(
        "  {} MiB free after vGPU reservations; matrix size: {} MiB",
        gpu.mem_available() >> 20,
        size >> 20
    );
    let mut app = rt.local_client();
    let m = app.register_fat_binary().unwrap();
    app.register_function(m, KernelDesc::plain("walk_matmul")).unwrap();

    let a_h: Vec<f32> = (0..N * N).map(|i| ((i % 5) as f32) - 2.0).collect();

    let a = app.malloc(size).unwrap(); // instr 1
    let b = app.malloc(size).unwrap(); // instr 2
    let c = app.malloc(size).unwrap(); // instr 3 — succeeds: virtual address only
    println!("  instrs 1–3: three mallocs succeed (page table + swap only; device untouched: {} allocations)",
        gpu.stats().snapshot().allocs);
    assert_eq!(gpu.stats().snapshot().allocs, 0);

    let mut shadow = HostBuf::from_f32s(&a_h);
    shadow.declared_len = size;
    app.memcpy_h2d(a, shadow).unwrap(); // instr 4
    assert_eq!(gpu.stats().snapshot().h2d_bytes, 0, "copy_HD deferred");
    println!("  instr 4: copy_HD(A) absorbed by the swap tier (0 bytes on the bus)");

    matmul(&mut app, a, a, b).unwrap(); // instr 5
    let snap = gpu.stats().snapshot();
    println!("  instr 5: matmul(A,A,B) binds the app, allocates A and B on device ({} allocations, {} MiB uploaded)",
        snap.allocs, snap.h2d_bytes >> 20);
    assert_eq!(snap.allocs, 2);

    matmul(&mut app, b, b, c).unwrap(); // instr 6
    let m6 = rt.metrics();
    println!("  instr 6: matmul(B,B,C) needs room for C — the runtime swaps A out ({} intra-app swap(s)) and completes",
        m6.intra_app_swaps);
    assert!(m6.intra_app_swaps >= 1);

    let b_back = app.memcpy_d2h(b, (N * N * 4) as u64).unwrap().as_f32s(); // instr 7
    let c_back = app.memcpy_d2h(c, (N * N * 4) as u64).unwrap().as_f32s(); // instr 8

    // Verify B = A×A and C = B×B on the host.
    let mut b_ref = vec![0f32; N * N];
    for i in 0..N {
        for j in 0..N {
            b_ref[i * N + j] = (0..N).map(|k| a_h[i * N + k] * a_h[k * N + j]).sum();
        }
    }
    let mut c_ref = vec![0f32; N * N];
    for i in 0..N {
        for j in 0..N {
            c_ref[i * N + j] = (0..N).map(|k| b_ref[i * N + k] * b_ref[k * N + j]).sum();
        }
    }
    let close = |x: &[f32], y: &[f32]| {
        x.iter().zip(y).all(|(p, q)| (p - q).abs() <= 1e-3 * (1.0 + q.abs()))
    };
    assert!(close(&b_back, &b_ref), "B ≠ A×A");
    assert!(close(&c_back, &c_ref), "C ≠ B×B");
    println!("  instrs 7–8: results downloaded and verified (B = A×A, C = B×B) ✔");
    println!("\n\"In summary, intra-application swap enables the execution of applications");
    println!("that would fail on the CUDA runtime even if run in isolation.\" — §4.5");

    app.exit().unwrap();
    rt.shutdown();
}
