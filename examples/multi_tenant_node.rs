//! Multi-tenancy on one node: 16 concurrent Table 2 applications — far
//! beyond the CUDA runtime's 8-context limit — share three GPUs through
//! virtual GPUs and inter-application swap, with every result verified.
//!
//! ```sh
//! cargo run --release --example multi_tenant_node
//! ```

use mtgpu::api::CudaClient;
use mtgpu::core::{NodeRuntime, RuntimeConfig};
use mtgpu::gpusim::{Driver, GpuSpec};
use mtgpu::simtime::Clock;
use mtgpu::workloads::calib::Scale;
use mtgpu::workloads::{install_kernel_library, run_batch, AppKind};

fn main() {
    install_kernel_library();
    // The paper's main node: two Tesla C2050s and one Tesla C1060, with a
    // clock running 500 simulated seconds per real second.
    let clock = Clock::with_scale(2e-3);
    let driver = Driver::with_devices(
        clock.clone(),
        vec![GpuSpec::tesla_c2050(), GpuSpec::tesla_c2050(), GpuSpec::tesla_c1060()],
    );
    let rt = NodeRuntime::start(driver, RuntimeConfig::paper_default());

    // A mixed tenant population: short apps plus memory-hungry MM-L jobs
    // whose aggregate footprint exceeds every device's memory.
    let mut jobs = Vec::new();
    let scale = Scale { time: 0.05, mem: 1.0 }; // shorter kernels, full footprints
    for kind in [
        AppKind::Va,
        AppKind::Bfs,
        AppKind::Hs,
        AppKind::BsS,
        AppKind::Sp,
        AppKind::Nw,
        AppKind::Bp,
        AppKind::Mt,
    ] {
        jobs.push(kind.build(scale));
    }
    for _ in 0..8 {
        jobs.push(AppKind::MmL.build_with(scale, 1.0));
    }
    println!("running {} concurrent tenants on 3 GPUs (12 vGPUs) ...", jobs.len());

    let clients: Vec<Box<dyn CudaClient>> =
        jobs.iter().map(|_| Box::new(rt.local_client()) as Box<dyn CudaClient>).collect();
    let result = run_batch(&clock, jobs, clients);

    for report in &result.reports {
        println!(
            "  {:<5} {:>5} kernel calls  {:>9}  verified={}",
            report.name,
            report.kernel_calls,
            report.elapsed.to_string(),
            report.verified
        );
    }
    assert!(result.all_verified(), "errors: {:?}", result.errors);

    let m = rt.metrics();
    println!("\nbatch total: {} (avg {})", result.total, result.avg);
    println!(
        "sharing machinery: {} inter-app swap(s), {} intra-app swap(s), {} bulk upload(s), \
         {} launch retries",
        m.inter_app_swaps, m.intra_app_swaps, m.bulk_uploads, m.launch_retries
    );
    println!("all {} tenants verified their results ✔", result.reports.len());
    rt.shutdown();
}
