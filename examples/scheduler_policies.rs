//! Configurable scheduling (§2's objective, §4.3's mechanism): the same
//! batch — one long job arriving first, many short jobs behind it — under
//! FCFS, shortest-job-first and credit-based policies, showing how SJF
//! collapses the short jobs' average turnaround.
//!
//! ```sh
//! cargo run --release --example scheduler_policies
//! ```

use mtgpu::api::CudaClient;
use mtgpu::core::{NodeRuntime, RuntimeConfig, SchedulerPolicy};
use mtgpu::gpusim::{Driver, GpuSpec};
use mtgpu::simtime::Clock;
use mtgpu::workloads::calib::Scale;
use mtgpu::workloads::{install_kernel_library, run_batch, AppKind, Workload};

fn batch() -> Vec<Box<dyn Workload>> {
    let scale = Scale { time: 0.02, mem: 1e-3 };
    let mut jobs: Vec<Box<dyn Workload>> = Vec::new();
    // Two long jobs first...
    jobs.push(AppKind::MmS.build_with(scale, 1.0));
    jobs.push(AppKind::MmS.build_with(scale, 1.0));
    // ...then six short ones stuck behind them.
    for kind in [AppKind::Va, AppKind::Hs, AppKind::Sp, AppKind::Bfs, AppKind::Bp, AppKind::Mt] {
        jobs.push(kind.build(scale));
    }
    jobs
}

fn run(policy: SchedulerPolicy) -> (f64, f64) {
    install_kernel_library();
    let clock = Clock::with_scale(1e-4);
    // One GPU, one vGPU: the policy fully decides the order.
    let driver = Driver::with_devices(clock.clone(), vec![GpuSpec::tesla_c2050()]);
    let cfg = RuntimeConfig::serialized().with_scheduler(policy);
    let rt = NodeRuntime::start(driver, cfg);
    let jobs = batch();
    let clients: Vec<Box<dyn CudaClient>> =
        jobs.iter().map(|_| Box::new(rt.local_client()) as Box<dyn CudaClient>).collect();
    let result = run_batch(&clock, jobs, clients);
    assert!(result.all_verified(), "{:?}", result.errors);
    let short_avg = result
        .reports
        .iter()
        .filter(|r| r.name != "MM-S")
        .map(|r| r.elapsed.as_secs_f64())
        .sum::<f64>()
        / 6.0;
    (result.total.as_secs_f64(), short_avg)
}

fn main() {
    println!("2 long jobs arrive first, 6 short jobs queue behind them (1 vGPU):\n");
    println!("{:<22} {:>12} {:>22}", "policy", "total (s)", "short-job avg (s)");
    let mut sjf_short = f64::NAN;
    let mut fcfs_short = f64::NAN;
    for policy in [
        SchedulerPolicy::FcfsRoundRobin,
        SchedulerPolicy::ShortestJobFirst,
        SchedulerPolicy::CreditBased,
    ] {
        let (total, short_avg) = run(policy);
        println!("{policy:<22?} {total:>12.2} {short_avg:>22.2}");
        match policy {
            SchedulerPolicy::ShortestJobFirst => sjf_short = short_avg,
            SchedulerPolicy::FcfsRoundRobin => fcfs_short = short_avg,
            _ => {}
        }
    }
    println!(
        "\nSJF cuts the short jobs' average turnaround to {:.0}% of FCFS — \
         \"a scheduling algorithm that prioritizes short running applications \
         can be preferable if profiling information is available\" (§2).",
        sjf_short / fcfs_short * 100.0
    );
}
