//! A two-node cluster behind the TORQUE-like scheduler: the GPU-oblivious
//! head node splits jobs evenly, overloading the 1-GPU node, which then
//! offloads its excess connections to the 3-GPU node over TCP (§4.7/§5.4).
//!
//! ```sh
//! cargo run --release --example cluster_offload
//! ```

use mtgpu::cluster::{Cluster, GpuVisibility, Torque};
use mtgpu::core::RuntimeConfig;
use mtgpu::gpusim::GpuSpec;
use mtgpu::simtime::Clock;
use mtgpu::workloads::calib::Scale;
use mtgpu::workloads::{install_kernel_library, short_pool, Workload};

fn main() {
    install_kernel_library();
    let clock = Clock::with_scale(2e-3);

    // Node 0: the big node (2× C2050 + C1060). Node 1: a single C1060 that
    // offloads once more than 4 connections are active locally.
    let big_cfg = RuntimeConfig::paper_default();
    let small_cfg = RuntimeConfig { offload_threshold: Some(4), ..RuntimeConfig::paper_default() };
    let cluster = Cluster::start_heterogeneous(
        clock.clone(),
        vec![
            (vec![GpuSpec::tesla_c2050(), GpuSpec::tesla_c2050(), GpuSpec::tesla_c1060()], big_cfg),
            (vec![GpuSpec::tesla_c1060()], small_cfg),
        ],
    );
    for node in cluster.nodes() {
        println!(
            "{} listening on {} with {} GPU(s)",
            node.name(),
            node.addr().unwrap(),
            node.gpu_count()
        );
    }

    // 24 short jobs drawn from the Table 2 pool, submitted through TORQUE
    // with GPUs hidden: 12 land on each node.
    let pool = short_pool();
    let scale = Scale { time: 0.05, mem: 1.0 };
    let jobs: Vec<Box<dyn Workload>> = (0..24).map(|i| pool[i % pool.len()].build(scale)).collect();
    println!("\nsubmitting {} jobs via TORQUE (GPU-oblivious, round-robin) ...", jobs.len());

    let torque = Torque::new(cluster.nodes(), GpuVisibility::Hidden);
    let result = torque.run(&clock, jobs);
    assert!(result.all_verified(), "{:?}", result.errors);

    println!("batch total {} (avg {})", result.total, result.avg);
    for (node, m) in cluster.nodes().iter().zip(&result.node_metrics) {
        println!(
            "  {}: {} kernel launches, {} connection(s) offloaded away",
            node.name(),
            m.launches,
            m.offloaded_connections
        );
    }
    assert!(
        result.node_metrics[1].offloaded_connections > 0,
        "the overloaded node should have offloaded"
    );
    println!("\nthe 1-GPU node relieved itself by offloading to the 3-GPU node ✔");
    cluster.shutdown();
}
