//! Fault tolerance and dynamic binding: a job survives losing its GPU
//! mid-run (checkpoint + transparent rebinding), then migrates to a
//! hot-attached faster GPU.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use mtgpu::api::{CudaClient, HostBuf, KernelArg, LaunchConfig, LaunchSpec, Work};
use mtgpu::core::{NodeRuntime, RuntimeConfig};
use mtgpu::gpusim::kernel::{library, KernelExec, RegisteredKernel};
use mtgpu::gpusim::{Driver, GpuSpec, KernelDesc};
use mtgpu::simtime::{Clock, SimDuration};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("iterate"),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let state = exec.args()[0].as_ptr().expect("state pointer");
            exec.with_f32_mut(state, 4096, |v| {
                for x in v.iter_mut() {
                    *x = *x * 0.5 + 1.0;
                }
            })
        })),
    });

    // One slow Quadro at first; automatic checkpoints after every kernel
    // ≥ 10 sim-ms; migration monitor on.
    let clock = Clock::with_scale(1e-3);
    let driver = Driver::with_devices(clock, vec![GpuSpec::quadro_2000()]);
    let mut cfg = RuntimeConfig::paper_default();
    cfg.auto_checkpoint_after = Some(SimDuration::from_millis(10));
    cfg.dynamic_load_balancing = true;
    let rt = NodeRuntime::start(driver, cfg);

    let mut app = rt.local_client();
    let m = app.register_fat_binary().unwrap();
    app.register_function(m, KernelDesc::plain("iterate")).unwrap();
    let state = app.malloc(4096).unwrap();
    app.memcpy_h2d(state, HostBuf::from_f32s(&vec![0.0f32; 1024])).unwrap();

    let launch = |app: &mut dyn CudaClient| {
        app.launch(LaunchSpec {
            kernel: "iterate".into(),
            config: LaunchConfig::default(),
            args: vec![KernelArg::Ptr(state)],
            work: Work::flops(2e10), // ~80 sim-ms on the Quadro
        })
        .expect("launch");
    };

    // Two iterations on the Quadro (auto-checkpointed).
    launch(&mut app);
    launch(&mut app);
    println!(
        "2 iterations done on {}",
        rt.driver().device(mtgpu::gpusim::DeviceId(0)).unwrap().spec().name
    );

    // Hot-attach a fast C2050: the monitor migrates the idle job to it
    // (dynamic upgrade + load balancing, §2/§5.3.4).
    let fast = rt.attach_device(GpuSpec::tesla_c2050());
    std::thread::sleep(Duration::from_millis(50));
    launch(&mut app);
    println!(
        "after hot-attach: migrations = {}, iteration 3 ran on the {}",
        rt.metrics().migrations,
        rt.driver().device(fast).unwrap().spec().name
    );

    // Now the C2050 fails mid-tenancy. The last kernel was checkpointed, so
    // the context recovers transparently on the Quadro.
    rt.driver().device(fast).unwrap().fail();
    launch(&mut app);
    let result = app.memcpy_d2h(state, 4096).unwrap().as_f32s();
    // x_{n+1} = x_n/2 + 1, x_0 = 0 → after 4 iterations: 1.875.
    assert!((result[0] - 1.875).abs() < 1e-5, "state corrupted: {}", result[0]);
    println!(
        "GPU failure survived: iteration 4 correct (x = {}), recovered contexts = {}",
        result[0],
        rt.metrics().recovered_contexts
    );

    app.exit().unwrap();
    rt.shutdown();
    println!("done ✔");
}
