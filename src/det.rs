//! Deterministic scenario harness: replayable multi-tenant runs on the
//! virtual clock, with scripted fault injection.
//!
//! The figure experiments (`mtgpu-bench`) drive the runtime with one thread
//! per application, so their *wall-clock numbers* are statistical. This
//! harness trades concurrency for determinism: it owns a single driver
//! thread that interleaves per-client CUDA call scripts round-robin, one
//! call in flight at a time, over a [`Clock::virtual_clock`]. Because the
//! virtual clock only moves when an operation (or the harness itself)
//! advances it, and the dispatcher's tie-breaks, workload draws and fault
//! timeline are all pure functions of the scenario seed, two runs of the
//! same [`DetScenario`] produce **bit-for-bit identical** runtime metrics,
//! per-client results and final virtual time — captured as a
//! [`DetFingerprint`] that tests compare as canonical JSON.
//!
//! Faults come from a [`FaultPlan`] polled between steps: device failures
//! and one-shot context faults are applied to the device layer, transport
//! drops are applied here by severing the victim client's channel, exactly
//! what an application crash looks like to the runtime.

use mtgpu_api::transport::ChannelTransport;
use mtgpu_api::{CudaCall, CudaClient, CudaError, FrontendClient, HostBuf, ReplyValue};
use mtgpu_core::{
    EvictionPolicyKind, GpuLease, MetricsSnapshot, NodeRuntime, RuntimeConfig, TenantPolicyConfig,
};
use mtgpu_gpusim::kernel::{library, KernelExec, RegisteredKernel};
use mtgpu_gpusim::{
    DeviceAddr, Driver, FaultKind, FaultPlan, GpuError, GpuSpec, KernelArg, KernelDesc,
    LaunchConfig, LaunchSpec, Work,
};
use mtgpu_simtime::{Clock, DetRng, SimDuration};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Name of the harness's verification kernel: XORs a scalar into a buffer.
pub const DET_KERNEL: &str = "det_xor";

/// Registers the harness kernel in the process-global library (idempotent).
pub fn register_det_kernels() {
    library::register(RegisteredKernel {
        desc: KernelDesc::plain(DET_KERNEL),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let (addr, x, len) = match exec.args() {
                [KernelArg::Ptr(a), KernelArg::Scalar(x), KernelArg::Scalar(len)] => {
                    (*a, *x as u8, *len)
                }
                other => {
                    return Err(GpuError::LaunchFailed(format!("det_xor: bad args {other:?}")))
                }
            };
            exec.with_bytes_mut(addr, len, &mut |bytes| {
                for b in bytes.iter_mut() {
                    *b ^= x;
                }
            })
        })),
    });
}

/// A replayable multi-tenant scenario.
#[derive(Debug)]
pub struct DetScenario {
    /// Root determinism seed: forked into the dispatcher, the per-client
    /// payload/work draws, and nothing else.
    pub seed: u64,
    /// Number of concurrently-served application contexts.
    pub clients: usize,
    /// Kernel rounds per client (each round launches once per buffer).
    pub rounds: usize,
    /// Per-client round-count overrides; client `i` runs
    /// `rounds_per_client[i]` rounds when set, `rounds` otherwise. Uneven
    /// script lengths make clients *exit at different steps* — the churn
    /// that strands long-running contexts on whatever device was free when
    /// they bound.
    pub rounds_per_client: Vec<usize>,
    /// The node's devices.
    pub devices: Vec<GpuSpec>,
    /// vGPUs spawned per device. Must be sized so every client can hold a
    /// binding simultaneously (the single driver thread cannot release a
    /// peer's binding while blocked on a reply).
    pub vgpus_per_device: u32,
    /// Buffers allocated per client.
    pub buffers_per_client: usize,
    /// Declared (accounting) bytes of client 0's buffers; client `i` adds
    /// `i * declared_stride` so resident footprints are pairwise distinct
    /// and inter-application victim selection has no ties.
    pub declared_base: u64,
    /// Per-client declared-size increment.
    pub declared_stride: u64,
    /// Real (materialized) bytes per buffer, verified end to end.
    pub payload_bytes: usize,
    /// Checkpoint each buffer after every round, making device state
    /// host-recoverable (exercises §4.6 against injected device loss).
    pub checkpoint_each_round: bool,
    /// Idle steps between the compute phase and the verify phase. Faults
    /// scheduled into this window hit quiescent, bound contexts.
    pub quiet_steps: usize,
    /// Virtual time added at the top of every step, on top of whatever the
    /// operations themselves consume. Gives [`FaultPlan`] times to land on.
    pub step_advance: SimDuration,
    /// Scripted faults, polled once per step.
    pub plan: FaultPlan,
    /// Per-client application ids: `client_apps[i] = Some(app)` makes
    /// client `i`'s first scripted call `cudaSetApplication(app)`. Shorter
    /// than `clients` means the remainder stay anonymous; empty disables
    /// application identity entirely (the legacy shape).
    pub client_apps: Vec<Option<u64>>,
    /// Tenant-policy layer for the run; `None` keeps admission off, so all
    /// pre-policy scenarios fingerprint exactly as before.
    pub tenant_policy: Option<TenantPolicyConfig>,
    /// Victim-selection policy for the run's memory manager. The default
    /// ([`EvictionPolicyKind::SeedOrder`]) keeps pre-policy fingerprints
    /// unchanged.
    pub eviction_policy: EvictionPolicyKind,
    /// Enable the async prefetch path (predicted next-launch uploads on the
    /// speculative copy-engine lane).
    pub async_prefetch: bool,
    /// Enable the two-wave double-buffered launch path.
    pub double_buffer_launch: bool,
    /// Enable the utilization rebalancer (DESIGN.md §15): each
    /// `monitor_tick` may live-migrate one context off the
    /// highest-pressure device.
    pub utilization_rebalancer: bool,
}

impl DetScenario {
    /// A Fig. 7-shaped scenario: three GPUs, threefold context
    /// overcommitment per device memory, short repeated kernels — the
    /// sharing regime where inter-application swapping does the work.
    pub fn fig7_shape(seed: u64) -> Self {
        DetScenario {
            seed,
            clients: 9,
            rounds: 4,
            rounds_per_client: Vec::new(),
            devices: vec![GpuSpec::test_small(), GpuSpec::test_small(), GpuSpec::test_small()],
            vgpus_per_device: 4,
            buffers_per_client: 2,
            declared_base: 10 * 1024 * 1024,
            declared_stride: 256 * 1024,
            payload_bytes: 2048,
            checkpoint_each_round: false,
            quiet_steps: 0,
            step_advance: SimDuration::from_millis(50),
            plan: FaultPlan::new(),
            client_apps: Vec::new(),
            tenant_policy: None,
            eviction_policy: EvictionPolicyKind::SeedOrder,
            async_prefetch: false,
            double_buffer_launch: false,
            utilization_rebalancer: false,
        }
    }

    /// A Fig. 9-shaped scenario: the unbalanced node — two full devices and
    /// one with less memory and a slower clock.
    pub fn fig9_shape(seed: u64) -> Self {
        let mut small = GpuSpec::test_small();
        small.name = "TestGPU-40M-slow".to_string();
        small.mem_bytes = 40 * 1024 * 1024;
        small.clock_ghz = 0.5;
        DetScenario {
            clients: 8,
            devices: vec![GpuSpec::test_small(), GpuSpec::test_small(), small],
            ..Self::fig7_shape(seed)
        }
    }

    /// A lighter scenario for fault injection: six clients on three
    /// devices, so twelve vGPUs keep every client bindable even after one
    /// device is lost, and a quiet window for faults to land in.
    pub fn fault_shape(seed: u64) -> Self {
        DetScenario { clients: 6, rounds: 2, quiet_steps: 6, ..Self::fig7_shape(seed) }
    }

    /// A churn-skewed node for the live-migration rebalancer: two
    /// full-speed devices and two at quarter clock, one vGPU each. At bind
    /// time the two short-lived clients grab the fast devices (lowest
    /// `(bound+1)/speed` placement cost), so the two long-running clients
    /// are stranded on the slow pair — a placement that is *correct when
    /// made* and wrong two steps later, when the short clients exit. From
    /// then on each `monitor_tick` can live-migrate one stranded context
    /// slow→fast over peer DMA, which is exactly the regime the rebalancer
    /// exists for.
    pub fn migration_shape(seed: u64) -> Self {
        let mut slow = GpuSpec::test_small();
        slow.name = "TestGPU-slow".to_string();
        slow.clock_ghz = 0.25;
        DetScenario {
            clients: 4,
            rounds: 6,
            rounds_per_client: vec![1, 1, 6, 6],
            devices: vec![GpuSpec::test_small(), GpuSpec::test_small(), slow.clone(), slow],
            vgpus_per_device: 1,
            utilization_rebalancer: true,
            ..Self::fig7_shape(seed)
        }
    }

    /// A quota-pressure scenario for the tenant-policy layer: six clients
    /// across three applications — a high-priority unlimited one, one whose
    /// memory lease is too small for its members' combined footprint
    /// (deterministic `QuotaExceeded` rejections), and one whose 1-second
    /// lease expires mid-run (deterministic reaping, `LeaseExpired` on the
    /// survivors' remaining script). Steps advance 200 ms of virtual time,
    /// so the TTL elapses around step 5 of ~15.
    pub fn quota_shape(seed: u64) -> Self {
        let policy = TenantPolicyConfig::default()
            .with_default_lease(GpuLease::unlimited().with_priority(50))
            .with_tenant_lease(1, GpuLease { mem_mb: 0, max_contexts: 0, ttl_s: 0, priority: 200 })
            .with_tenant_lease(2, GpuLease { mem_mb: 25, max_contexts: 2, ttl_s: 0, priority: 20 })
            .with_tenant_lease(3, GpuLease { mem_mb: 0, max_contexts: 0, ttl_s: 1, priority: 10 });
        DetScenario {
            clients: 6,
            rounds: 3,
            client_apps: vec![Some(1), Some(1), Some(2), Some(2), Some(3), Some(3)],
            tenant_policy: Some(policy),
            step_advance: SimDuration::from_millis(200),
            ..Self::fig7_shape(seed)
        }
    }
}

/// What one client observed, in script order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Default)]
pub struct ClientOutcome {
    /// Operations that returned `Ok`.
    pub ops_ok: u32,
    /// Operations that returned an error (the context may have been failed
    /// by unrecoverable device loss; later ops keep erroring).
    pub ops_err: u32,
    /// Debug rendering of the first error, if any.
    pub first_error: Option<String>,
    /// The client's transport was severed by a scripted fault.
    pub dropped: bool,
    /// Sum of simulated kernel-execution nanoseconds reported by launches.
    pub launch_nanos: u64,
    /// FNV-1a over every downloaded payload, in download order.
    pub payload_checksum: u64,
    /// Every download matched the host-side model of the buffer.
    pub verified: bool,
}

/// The replay-comparable digest of a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DetFingerprint {
    pub seed: u64,
    /// Virtual nanoseconds elapsed from clock epoch to run end.
    pub final_virtual_nanos: u64,
    /// Full runtime counter snapshot.
    pub metrics: MetricsSnapshot,
    /// Per-client outcomes, client order.
    pub clients: Vec<ClientOutcome>,
}

impl DetFingerprint {
    /// Canonical JSON form; byte-identical across replays of one scenario.
    pub fn canonical(&self) -> String {
        serde_json::to_string(self).expect("fingerprint serializes")
    }
}

/// One scripted CUDA operation.
#[derive(Debug, Clone)]
enum Op {
    SetApplication {
        app: u64,
    },
    Malloc {
        buf: usize,
    },
    Upload {
        buf: usize,
    },
    Launch {
        buf: usize,
        xor: u8,
        flops: f64,
    },
    Checkpoint,
    Download {
        buf: usize,
    },
    Free {
        buf: usize,
    },
    Exit,
    /// No call; the client idles this step.
    Pause,
}

struct BufState {
    addr: Option<DeviceAddr>,
    declared: u64,
    /// Host-side model of the buffer's materialized prefix, updated on
    /// every *successful* launch; downloads must match it exactly.
    model: Vec<u8>,
}

struct ClientState {
    client: Option<FrontendClient<ChannelTransport>>,
    bufs: Vec<BufState>,
    script: Vec<Op>,
    outcome: ClientOutcome,
}

fn fnv1a(acc: u64, bytes: &[u8]) -> u64 {
    let mut h = if acc == 0 { 0xcbf2_9ce4_8422_2325 } else { acc };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds client `i`'s script and initial buffer contents from the forked
/// per-client random stream.
fn build_client(scenario: &DetScenario, i: usize) -> (Vec<BufState>, Vec<Op>) {
    let mut rng = DetRng::from_seed(scenario.seed).fork(&format!("client-{i}"));
    let bufs: Vec<BufState> = (0..scenario.buffers_per_client)
        .map(|_| {
            let mut model = vec![0u8; scenario.payload_bytes];
            for b in model.iter_mut() {
                *b = rng.next_u64() as u8;
            }
            BufState {
                addr: None,
                declared: scenario.declared_base + i as u64 * scenario.declared_stride,
                model,
            }
        })
        .collect();
    let mut script = Vec::new();
    if let Some(&Some(app)) = scenario.client_apps.get(i) {
        script.push(Op::SetApplication { app });
    }
    for buf in 0..scenario.buffers_per_client {
        script.push(Op::Malloc { buf });
        script.push(Op::Upload { buf });
    }
    let rounds = scenario.rounds_per_client.get(i).copied().unwrap_or(scenario.rounds);
    for _ in 0..rounds {
        for buf in 0..scenario.buffers_per_client {
            script.push(Op::Launch {
                buf,
                xor: rng.next_u64() as u8,
                // 0.1–1.1 GFLOP: ~1–10 ms on the test devices, so rounds
                // spread across virtual time instead of stacking at zero.
                flops: 1e8 + rng.below(1_000_000_000) as f64,
            });
        }
        if scenario.checkpoint_each_round {
            script.push(Op::Checkpoint);
        }
    }
    for _ in 0..scenario.quiet_steps {
        script.push(Op::Pause);
    }
    for buf in 0..scenario.buffers_per_client {
        script.push(Op::Download { buf });
        script.push(Op::Free { buf });
    }
    script.push(Op::Exit);
    (bufs, script)
}

/// Blocks (real time) until the runtime's live-context count drops to `n`;
/// the determinism barrier after a teardown-inducing event.
fn wait_for_contexts(rt: &NodeRuntime, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while rt.context_count() > n {
        assert!(
            Instant::now() < deadline,
            "handler teardown did not complete: {} contexts live, want {n}",
            rt.context_count()
        );
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// Runs the scenario to completion and digests it. Two calls with an equal
/// scenario return equal fingerprints — that property *is* the test.
pub fn run(scenario: DetScenario) -> DetFingerprint {
    register_det_kernels();
    let clock = Clock::virtual_clock();
    let driver = Driver::with_devices(clock.clone(), scenario.devices.clone());
    let mut cfg = RuntimeConfig::default()
        .with_vgpus(scenario.vgpus_per_device)
        .with_seed(scenario.seed)
        .with_background_monitor(false)
        .with_eviction_policy(scenario.eviction_policy)
        .with_async_prefetch(scenario.async_prefetch)
        .with_double_buffer_launch(scenario.double_buffer_launch)
        .with_utilization_rebalancer(scenario.utilization_rebalancer);
    if let Some(policy) = scenario.tenant_policy.clone() {
        cfg = cfg.with_tenant_policy(policy);
    }
    let rt = NodeRuntime::start(Arc::clone(&driver), cfg);

    let mut states: Vec<ClientState> = Vec::with_capacity(scenario.clients);
    for i in 0..scenario.clients {
        let mut client = rt.local_client();
        // The immediate roundtrip pins context-id assignment to client
        // order (handler threads otherwise race their registrations).
        let module = client.register_fat_binary().expect("register module");
        client.register_function(module, KernelDesc::plain(DET_KERNEL)).expect("register kernel");
        let (bufs, script) = build_client(&scenario, i);
        states.push(ClientState {
            client: Some(client),
            bufs,
            script,
            outcome: ClientOutcome { verified: true, ..ClientOutcome::default() },
        });
    }

    let steps = states.iter().map(|s| s.script.len()).max().unwrap_or(0);
    let mut live = scenario.clients;
    let mut plan = scenario.plan;
    for step in 0..steps {
        clock.advance(scenario.step_advance);
        for event in plan.poll(clock.now(), &driver) {
            if let FaultKind::TransportDrop { conn } = event.kind {
                let c = conn as usize;
                if c < states.len() && states[c].client.take().is_some() {
                    states[c].outcome.dropped = true;
                    live -= 1;
                    wait_for_contexts(&rt, live);
                }
            }
        }
        // Synchronous stand-in for the background fault monitor: recovers
        // contexts stranded on devices the plan just failed.
        rt.monitor_tick();
        for state in states.iter_mut() {
            let Some(op) = state.script.get(step).cloned() else { continue };
            if state.client.is_none() {
                continue;
            }
            let exited = matches!(op, Op::Exit);
            match exec_op(state, &op) {
                Ok(()) => state.outcome.ops_ok += 1,
                Err(e) => {
                    state.outcome.ops_err += 1;
                    if state.outcome.first_error.is_none() {
                        state.outcome.first_error = Some(format!("{e:?}"));
                    }
                    if matches!(op, Op::Download { .. }) {
                        state.outcome.verified = false;
                    }
                }
            }
            if exited {
                state.client = None;
                live -= 1;
                wait_for_contexts(&rt, live);
            }
        }
    }
    wait_for_contexts(&rt, live);

    let fp = DetFingerprint {
        seed: scenario.seed,
        final_virtual_nanos: clock.now().since_epoch().as_nanos(),
        metrics: rt.metrics(),
        clients: states.into_iter().map(|s| s.outcome).collect(),
    };
    rt.shutdown();
    fp
}

/// Executes one scripted operation against the client's connection.
fn exec_op(state: &mut ClientState, op: &Op) -> Result<(), CudaError> {
    let client = state.client.as_mut().expect("caller checked liveness");
    match *op {
        Op::SetApplication { app } => client.set_application(app),
        Op::Malloc { buf } => {
            let declared = state.bufs[buf].declared;
            state.bufs[buf].addr = Some(client.malloc(declared)?);
            Ok(())
        }
        Op::Upload { buf } => {
            let b = &state.bufs[buf];
            let addr = b.addr.ok_or(CudaError::InvalidValue)?;
            client.memcpy_h2d(addr, HostBuf::with_shadow(b.declared, b.model.clone()))
        }
        Op::Launch { buf, xor, flops } => {
            let b = &state.bufs[buf];
            let addr = b.addr.ok_or(CudaError::InvalidValue)?;
            let spec = LaunchSpec {
                kernel: DET_KERNEL.to_string(),
                config: LaunchConfig::default(),
                args: vec![
                    KernelArg::Ptr(addr),
                    KernelArg::Scalar(xor as u64),
                    KernelArg::Scalar(b.model.len() as u64),
                ],
                work: Work::flops(flops),
            };
            client.call(CudaCall::ConfigureCall { config: spec.config })?;
            match client.call(CudaCall::Launch { spec })? {
                ReplyValue::LaunchDone { sim_nanos } => {
                    state.outcome.launch_nanos += sim_nanos;
                    for byte in state.bufs[buf].model.iter_mut() {
                        *byte ^= xor;
                    }
                    Ok(())
                }
                other => {
                    Err(CudaError::LaunchFailure(format!("unexpected launch reply {other:?}")))
                }
            }
        }
        Op::Checkpoint => client.checkpoint(),
        Op::Download { buf } => {
            let b = &state.bufs[buf];
            let addr = b.addr.ok_or(CudaError::InvalidValue)?;
            let got = client.memcpy_d2h(addr, b.declared)?;
            state.outcome.payload_checksum = fnv1a(state.outcome.payload_checksum, &got.payload);
            if got.payload != state.bufs[buf].model {
                state.outcome.verified = false;
            }
            Ok(())
        }
        Op::Free { buf } => {
            let addr = state.bufs[buf].addr.take().ok_or(CudaError::InvalidValue)?;
            client.free(addr)
        }
        Op::Exit => client.exit(),
        Op::Pause => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scenario_replays() {
        let mk = || DetScenario { clients: 2, rounds: 1, ..DetScenario::fig7_shape(7) };
        let a = run(mk());
        let b = run(mk());
        assert_eq!(a.canonical(), b.canonical());
        assert!(a.clients.iter().all(|c| c.verified));
        assert!(a.metrics.launches >= 4);
    }

    #[test]
    fn fnv_is_order_sensitive() {
        assert_ne!(fnv1a(fnv1a(0, b"ab"), b"c"), fnv1a(fnv1a(0, b"c"), b"ab"));
    }
}
