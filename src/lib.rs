//! Facade crate: re-exports the mtgpu workspace public API, plus the
//! deterministic replay/fault-injection harness ([`det`]).
pub mod det;

pub use mtgpu_api as api;
pub use mtgpu_cluster as cluster;
pub use mtgpu_core as core;
pub use mtgpu_gpusim as gpusim;
pub use mtgpu_simtime as simtime;
pub use mtgpu_workloads as workloads;
