//! Multi-node layer: node daemons, inter-node offloading and the
//! TORQUE-like cluster scheduler (§2, §4.7, §5.4).
//!
//! The paper deploys one runtime per node and couples it with a
//! cluster-level scheduler that maps jobs onto nodes (coarse-grained
//! scheduling), while each node runtime maps CUDA calls onto GPUs
//! (fine-grained scheduling). This crate provides:
//!
//! * [`ClusterNode`] — a node daemon: a `NodeRuntime` plus a TCP acceptor
//!   so remote frontends (and peer nodes offloading connections) can reach
//!   it;
//! * [`torque`] — the batch scheduler substrate: FIFO job queue at a head
//!   node with the two GPU-visibility modes of §5.4;
//! * [`Cluster`] — an in-process test cluster wiring nodes together with
//!   mutual offload peering.

pub mod node;
pub mod queue;
pub mod sem;
pub mod stage;
pub mod torque;

pub use node::ClusterNode;
pub use queue::{JobId, JobQueue, JobState};
pub use stage::{stage_context, StagedContext};
pub use torque::{ClusterRunResult, GpuVisibility, Torque};

use mtgpu_core::RuntimeConfig;
use mtgpu_gpusim::GpuSpec;
use mtgpu_simtime::Clock;

/// An in-process cluster: N nodes with TCP endpoints and mutual offload
/// peering.
pub struct Cluster {
    nodes: Vec<ClusterNode>,
    clock: Clock,
}

impl Cluster {
    /// Builds a cluster where node `i` hosts `gpu_sets[i]` and runs with
    /// `cfg` (offload peers are wired automatically when
    /// `cfg.offload_threshold` is set).
    pub fn start(clock: Clock, gpu_sets: Vec<Vec<GpuSpec>>, cfg: RuntimeConfig) -> Cluster {
        // First pass: bind every node's listener so peers are known.
        let mut nodes: Vec<ClusterNode> = Vec::new();
        let mut addrs = Vec::new();
        for (i, specs) in gpu_sets.iter().enumerate() {
            // Temporarily start without peers; we need all addresses first.
            let node = ClusterNode::start(
                format!("node{i}"),
                clock.clone(),
                specs.clone(),
                RuntimeConfig { offload_peers: Vec::new(), ..cfg.clone() },
                true,
            );
            addrs.push(node.addr().expect("listening node has an address"));
            nodes.push(node);
        }
        // Second pass: re-create nodes with full peer lists when offload is
        // requested. (Simpler than mutating a running runtime's config and
        // cheap at test scale.)
        if cfg.offload_threshold.is_some() && gpu_sets.len() > 1 {
            for node in nodes.drain(..) {
                node.shutdown();
            }
            let mut listeners = Vec::new();
            for _ in &gpu_sets {
                listeners.push(node::reserve_listener());
            }
            let addrs: Vec<String> =
                listeners.iter().map(|l| l.local_addr().unwrap().to_string()).collect();
            for (i, specs) in gpu_sets.iter().enumerate() {
                let peers: Vec<String> = addrs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, a)| a.clone())
                    .collect();
                let node_cfg = RuntimeConfig { offload_peers: peers, ..cfg.clone() };
                nodes.push(ClusterNode::start_with_listener(
                    format!("node{i}"),
                    clock.clone(),
                    specs.clone(),
                    node_cfg,
                    listeners.remove(0),
                ));
            }
        }
        Cluster { nodes, clock }
    }

    /// Builds a cluster with an explicit per-node (devices, config) list.
    /// `offload_peers` in each config are replaced with the other nodes'
    /// addresses when empty and that node sets an `offload_threshold`.
    pub fn start_heterogeneous(
        clock: Clock,
        nodes_spec: Vec<(Vec<GpuSpec>, RuntimeConfig)>,
    ) -> Cluster {
        let listeners: Vec<std::net::TcpListener> =
            nodes_spec.iter().map(|_| node::reserve_listener()).collect();
        let addrs: Vec<String> =
            listeners.iter().map(|l| l.local_addr().unwrap().to_string()).collect();
        let mut nodes = Vec::new();
        let mut listeners = listeners;
        for (i, (specs, mut cfg)) in nodes_spec.into_iter().enumerate() {
            if cfg.offload_threshold.is_some() && cfg.offload_peers.is_empty() {
                cfg.offload_peers = addrs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, a)| a.clone())
                    .collect();
            }
            nodes.push(ClusterNode::start_with_listener(
                format!("node{i}"),
                clock.clone(),
                specs,
                cfg,
                listeners.remove(0),
            ));
        }
        Cluster { nodes, clock }
    }

    /// The cluster's nodes.
    pub fn nodes(&self) -> &[ClusterNode] {
        &self.nodes
    }

    /// The shared clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Shuts every node down.
    pub fn shutdown(self) {
        for node in self.nodes {
            node.shutdown();
        }
    }
}
