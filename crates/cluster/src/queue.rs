//! Incremental batch queue: the `qsub`/`qstat` face of the TORQUE
//! substrate (§2: "one classical way to schedule batch jobs on HPC clusters
//! is via PBS cluster resource managers such as TORQUE").
//!
//! Unlike [`crate::Torque::run`], which measures one synchronous batch, the
//! [`JobQueue`] accepts submissions over time, dispatches them round-robin
//! (optionally gated on free GPUs), tracks per-job state, and lets callers
//! wait for individual jobs — the shape a long-lived head node has.

use crate::node::ClusterNode;
use crate::sem::Semaphore;
use crate::torque::GpuVisibility;
use mtgpu_simtime::{Clock, Stopwatch};
use mtgpu_workloads::{register_workload, Workload, WorkloadReport};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Lifecycle of a job, as `qstat` would report it.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Waiting at the head node (GPU-aware mode gates dispatch).
    Queued,
    /// Dispatched to a compute node and executing.
    Running { node: usize },
    /// Finished; the report includes verification status and elapsed time.
    Done(WorkloadReport),
    /// Failed with an error.
    Failed(String),
}

impl JobState {
    /// Whether the job reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_))
    }
}

struct QueueState {
    /// Ordered by id so `qstat`-style iteration is deterministic.
    jobs: BTreeMap<JobId, JobState>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// A long-lived head-node queue over a set of compute nodes.
pub struct JobQueue {
    nodes: Arc<Vec<ClusterNode>>,
    clock: Clock,
    gates: Vec<Arc<Semaphore>>,
    visibility: GpuVisibility,
    next_id: AtomicU64,
    rr: AtomicU64,
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl JobQueue {
    /// Creates a queue over `nodes`. With [`GpuVisibility::Aware`], at most
    /// one job per physical GPU runs per node at a time; with
    /// [`GpuVisibility::Hidden`] every job dispatches immediately and the
    /// node runtimes arbitrate.
    pub fn new(nodes: Vec<ClusterNode>, clock: Clock, visibility: GpuVisibility) -> Arc<Self> {
        assert!(!nodes.is_empty(), "queue needs at least one node");
        let gates = nodes
            .iter()
            .map(|n| {
                Arc::new(match visibility {
                    GpuVisibility::Hidden => Semaphore::new(usize::MAX / 2),
                    GpuVisibility::Aware => Semaphore::new(n.gpu_count()),
                })
            })
            .collect();
        Arc::new(JobQueue {
            nodes: Arc::new(nodes),
            clock,
            gates,
            visibility,
            next_id: AtomicU64::new(1),
            rr: AtomicU64::new(0),
            state: Mutex::new(QueueState { jobs: BTreeMap::new(), handles: Vec::new() }),
            cv: Condvar::new(),
        })
    }

    /// Submits a job (`qsub`); returns immediately with its id.
    pub fn submit(self: &Arc<Self>, job: Box<dyn Workload>) -> JobId {
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.state.lock().jobs.insert(id, JobState::Queued);
        let node_idx = (self.rr.fetch_add(1, Ordering::Relaxed) as usize) % self.nodes.len();
        let queue = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("qsub-{id}"))
            .spawn(move || queue.run_job(id, node_idx, job))
            .expect("spawn job thread");
        self.state.lock().handles.push(handle);
        id
    }

    fn run_job(self: &Arc<Self>, id: JobId, node_idx: usize, job: Box<dyn Workload>) {
        // GPU-aware gate: hold the job at the head node until a GPU frees.
        self.gates[node_idx].acquire();
        self.set_state(id, JobState::Running { node: node_idx });
        let mut client: Box<dyn mtgpu_api::CudaClient> = Box::new(self.nodes[node_idx].client());
        let watch = Stopwatch::start(&self.clock);
        let result = (|| {
            register_workload(client.as_mut(), job.as_ref())?;
            let mut report = job.run(client.as_mut(), &self.clock)?;
            client.exit()?;
            report.elapsed = watch.elapsed();
            Ok::<_, mtgpu_api::CudaError>(report)
        })();
        self.gates[node_idx].release();
        match result {
            Ok(report) => self.set_state(id, JobState::Done(report)),
            Err(e) => self.set_state(id, JobState::Failed(e.to_string())),
        }
    }

    fn set_state(&self, id: JobId, state: JobState) {
        self.state.lock().jobs.insert(id, state);
        // mtlint: allow(notify-all, reason = "qstat waiters block on distinct job ids; every waiter must re-check its own job after any state change")
        self.cv.notify_all();
    }

    /// `qstat`: the job's current state (`None` for unknown ids).
    pub fn status(&self, id: JobId) -> Option<JobState> {
        self.state.lock().jobs.get(&id).cloned()
    }

    /// All jobs and their states, sorted by id (the `BTreeMap` order).
    pub fn qstat(&self) -> Vec<(JobId, JobState)> {
        let st = self.state.lock();
        st.jobs.iter().map(|(&id, s)| (id, s.clone())).collect()
    }

    /// Blocks until `id` reaches a terminal state and returns it.
    pub fn wait(&self, id: JobId) -> JobState {
        let mut st = self.state.lock();
        loop {
            match st.jobs.get(&id) {
                Some(s) if s.is_terminal() => return s.clone(),
                Some(_) => self.cv.wait(&mut st),
                None => panic!("unknown {id}"),
            }
        }
    }

    /// Blocks until every submitted job is terminal; returns total batch
    /// time since the queue was created is not meaningful here, so only the
    /// states are returned.
    pub fn wait_all(&self) -> Vec<(JobId, JobState)> {
        let mut st = self.state.lock();
        while st.jobs.values().any(|s| !s.is_terminal()) {
            self.cv.wait(&mut st);
        }
        drop(st);
        self.qstat()
    }

    /// Jobs still queued (the §4.7 backlog a GPU-aware head node watches).
    pub fn queued_count(&self) -> usize {
        self.state.lock().jobs.values().filter(|s| matches!(s, JobState::Queued)).count()
    }

    /// The queue's GPU-visibility mode.
    pub fn visibility(&self) -> GpuVisibility {
        self.visibility
    }

    /// Simulated time elapsed since `watch`-style measurements; exposed for
    /// harnesses that time submissions externally.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Joins all job threads and shuts the nodes down. Call after
    /// [`JobQueue::wait_all`].
    pub fn shutdown(self: Arc<Self>) {
        let handles = std::mem::take(&mut self.state.lock().handles);
        for h in handles {
            let _ = h.join();
        }
        if let Ok(queue) = Arc::try_unwrap(self) {
            if let Ok(nodes) = Arc::try_unwrap(queue.nodes) {
                for node in nodes {
                    node.shutdown();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtgpu_core::RuntimeConfig;
    use mtgpu_gpusim::GpuSpec;
    use mtgpu_workloads::calib::Scale;
    use mtgpu_workloads::{install_kernel_library, AppKind};

    fn queue(visibility: GpuVisibility) -> Arc<JobQueue> {
        install_kernel_library();
        let clock = Clock::with_scale(1e-6);
        let node = ClusterNode::start(
            "n0".into(),
            clock.clone(),
            vec![GpuSpec::test_small()],
            RuntimeConfig::paper_default(),
            false,
        );
        JobQueue::new(vec![node], clock, visibility)
    }

    #[test]
    fn submit_wait_roundtrip() {
        let q = queue(GpuVisibility::Hidden);
        let id = q.submit(AppKind::Va.build(Scale::TINY));
        match q.wait(id) {
            JobState::Done(report) => {
                assert!(report.verified);
                assert_eq!(report.name, "VA");
            }
            other => panic!("unexpected terminal state {other:?}"),
        }
        q.shutdown();
    }

    #[test]
    fn qstat_tracks_many_jobs_to_completion() {
        let q = queue(GpuVisibility::Hidden);
        let ids: Vec<JobId> = (0..6).map(|_| q.submit(AppKind::Hs.build(Scale::TINY))).collect();
        let final_states = q.wait_all();
        assert_eq!(final_states.len(), 6);
        for id in ids {
            assert!(matches!(q.status(id), Some(JobState::Done(_))), "{id} not done");
        }
        assert_eq!(q.queued_count(), 0);
        q.shutdown();
    }

    #[test]
    fn aware_mode_gates_on_gpu_count() {
        // One GPU: with Aware visibility at most one job runs at a time, so
        // with a long job in flight the second stays Queued.
        let q = queue(GpuVisibility::Aware);
        let slow = q.submit(AppKind::MmL.build_with(Scale { time: 2e-3, mem: 1e-5 }, 0.0));
        // Wait until the first job actually occupies the GPU.
        while matches!(q.status(slow), Some(JobState::Queued)) {
            std::thread::yield_now();
        }
        let second = q.submit(AppKind::Va.build(Scale::TINY));
        assert!(
            matches!(q.status(second), Some(JobState::Queued)),
            "second job must queue behind the single GPU"
        );
        q.wait_all();
        assert!(matches!(q.status(second), Some(JobState::Done(_))));
        q.shutdown();
    }

    #[test]
    fn unknown_job_id_is_none() {
        let q = queue(GpuVisibility::Hidden);
        assert!(q.status(JobId(999)).is_none());
        q.shutdown();
    }
}
