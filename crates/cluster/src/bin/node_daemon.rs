//! Standalone node daemon: runs one `NodeRuntime` over a set of simulated
//! GPUs and serves interposed CUDA call streams on a TCP endpoint — the
//! per-node deployment unit of Figure 2 (install one per compute node,
//! point frontends and peers at it).
//!
//! ```sh
//! node-daemon --listen 127.0.0.1:7070 --mux-listen 127.0.0.1:7071 \
//!             --gpus c2050,c2050,c1060 \
//!             --vgpus 4 --clock 1e-3 [--peer host:port]... \
//!             [--offload-threshold N] [--serialized] [--load-balancing]
//! ```
//!
//! The daemon prints `listening on <addr>` (the legacy thread-per-connection
//! endpoint) and `mux listening on <addr>` (the multiplexed reactor
//! endpoint, DESIGN.md §12) once ready. All connected frontends must use the
//! same `--clock` scale for coherent timing.

use mtgpu_cluster::ClusterNode;
use mtgpu_core::RuntimeConfig;
use mtgpu_gpusim::GpuSpec;
use mtgpu_simtime::Clock;
use std::time::Duration;

fn gpu_by_name(name: &str) -> Result<GpuSpec, String> {
    match name.trim().to_ascii_lowercase().as_str() {
        "c2050" | "tesla-c2050" => Ok(GpuSpec::tesla_c2050()),
        "c1060" | "tesla-c1060" => Ok(GpuSpec::tesla_c1060()),
        "quadro2000" | "quadro-2000" => Ok(GpuSpec::quadro_2000()),
        "test" | "test-small" => Ok(GpuSpec::test_small()),
        other => Err(format!("unknown GPU `{other}` (expected c2050, c1060, quadro2000 or test)")),
    }
}

struct Args {
    listen: String,
    mux_listen: String,
    gpus: Vec<GpuSpec>,
    vgpus: u32,
    clock: f64,
    peers: Vec<String>,
    offload_threshold: Option<usize>,
    load_balancing: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:0".to_string(),
        mux_listen: "127.0.0.1:0".to_string(),
        gpus: vec![GpuSpec::tesla_c2050()],
        vgpus: 4,
        clock: 1e-3,
        peers: Vec::new(),
        offload_threshold: None,
        load_balancing: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--listen" => args.listen = value(&mut i)?,
            "--mux-listen" => args.mux_listen = value(&mut i)?,
            "--gpus" => {
                args.gpus = value(&mut i)?.split(',').map(gpu_by_name).collect::<Result<_, _>>()?;
            }
            "--vgpus" => {
                args.vgpus = value(&mut i)?.parse().map_err(|e| format!("--vgpus: {e}"))?
            }
            "--clock" => {
                args.clock = value(&mut i)?.parse().map_err(|e| format!("--clock: {e}"))?
            }
            "--peer" => args.peers.push(value(&mut i)?),
            "--offload-threshold" => {
                args.offload_threshold =
                    Some(value(&mut i)?.parse().map_err(|e| format!("--offload-threshold: {e}"))?)
            }
            "--serialized" => args.vgpus = 1,
            "--load-balancing" => args.load_balancing = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: node-daemon [--listen ADDR] [--mux-listen ADDR] [--gpus LIST] \
                     [--vgpus N] [--clock SCALE] [--peer ADDR]... [--offload-threshold N] \
                     [--serialized] [--load-balancing]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // Make the Table 2 kernels resolvable for remote workloads.
    mtgpu_workloads::install_kernel_library();
    let cfg = RuntimeConfig {
        vgpus_per_device: args.vgpus,
        offload_threshold: args.offload_threshold,
        offload_peers: args.peers,
        dynamic_load_balancing: args.load_balancing,
        ..RuntimeConfig::paper_default()
    };
    let listener = std::net::TcpListener::bind(&args.listen).unwrap_or_else(|e| {
        eprintln!("cannot bind {}: {e}", args.listen);
        std::process::exit(1);
    });
    let mux_listener = std::net::TcpListener::bind(&args.mux_listen).unwrap_or_else(|e| {
        eprintln!("cannot bind {}: {e}", args.mux_listen);
        std::process::exit(1);
    });
    let names: Vec<&str> = args.gpus.iter().map(|g| g.name.as_str()).collect();
    let node = ClusterNode::start_with_listeners(
        "node".to_string(),
        Clock::with_scale(args.clock),
        args.gpus.clone(),
        cfg,
        listener,
        mux_listener,
    );
    // The line tooling (and the process-spawn tests) parse these two:
    println!("listening on {}", node.addr().expect("listening node"));
    println!("mux listening on {}", node.mux_addr().expect("mux endpoint"));
    println!(
        "devices: {} | vGPUs/device: {} | clock: 1 sim s = {} real s",
        names.join(", "),
        args.vgpus,
        args.clock
    );
    // Serve until killed, reporting load periodically on stderr.
    loop {
        // mtlint: allow(thread-sleep, reason = "daemon load-report cadence in real wall time; the daemon serves live TCP clients and is never replayed")
        std::thread::sleep(Duration::from_secs(5));
        let load = node.runtime().load();
        eprintln!(
            "[node] contexts={} bound={} waiting={} launches={}",
            load.contexts,
            load.bound,
            load.waiting,
            node.metrics().launches
        );
    }
}
