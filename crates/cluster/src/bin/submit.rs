//! Submits one Table 2 workload to a running `node-daemon` over TCP and
//! prints its report — the "application binary" of a multi-process
//! deployment.
//!
//! ```sh
//! submit --node 127.0.0.1:7070 --app MM-L --cpu-fraction 1.0 \
//!        --clock 1e-3 [--time-scale 1.0] [--mem-scale 1.0]
//! ```
//!
//! `--clock` must match the daemon's scale: the workload's CPU phases run
//! on the client side of the wire.

use mtgpu_api::transport::{FrontendClient, TcpTransport};
use mtgpu_api::CudaClient;
use mtgpu_simtime::{Clock, Stopwatch};
use mtgpu_workloads::calib::Scale;
use mtgpu_workloads::{register_workload, AppKind};

struct Args {
    node: String,
    app: AppKind,
    cpu_fraction: f64,
    clock: f64,
    scale: Scale,
}

fn app_by_name(name: &str) -> Option<AppKind> {
    AppKind::all().into_iter().find(|k| k.name().eq_ignore_ascii_case(name))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        node: "127.0.0.1:7070".to_string(),
        app: AppKind::Va,
        cpu_fraction: 0.0,
        clock: 1e-3,
        scale: Scale::PAPER,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--node" => args.node = value(&mut i)?,
            "--app" => {
                let name = value(&mut i)?;
                args.app = app_by_name(&name)
                    .ok_or_else(|| format!("unknown app `{name}` (use Table 2 names)"))?;
            }
            "--cpu-fraction" => {
                args.cpu_fraction =
                    value(&mut i)?.parse().map_err(|e| format!("--cpu-fraction: {e}"))?
            }
            "--clock" => {
                args.clock = value(&mut i)?.parse().map_err(|e| format!("--clock: {e}"))?
            }
            "--time-scale" => {
                args.scale.time =
                    value(&mut i)?.parse().map_err(|e| format!("--time-scale: {e}"))?
            }
            "--mem-scale" => {
                args.scale.mem = value(&mut i)?.parse().map_err(|e| format!("--mem-scale: {e}"))?
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: submit [--node ADDR] [--app NAME] [--cpu-fraction F] \
                     [--clock SCALE] [--time-scale F] [--mem-scale F]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    mtgpu_workloads::install_kernel_library();
    let clock = Clock::with_scale(args.clock);
    let transport = TcpTransport::connect(args.node.as_str()).unwrap_or_else(|e| {
        eprintln!("cannot reach node {}: {e}", args.node);
        std::process::exit(1);
    });
    let mut client: Box<dyn CudaClient> = Box::new(FrontendClient::new(transport));
    let job = args.app.build_with(args.scale, args.cpu_fraction);
    let watch = Stopwatch::start(&clock);
    let result = register_workload(client.as_mut(), job.as_ref())
        .and_then(|()| job.run(client.as_mut(), &clock));
    let _ = client.exit();
    match result {
        Ok(report) => {
            println!(
                "app={} kernel_calls={} elapsed={} verified={}",
                report.name,
                report.kernel_calls,
                watch.elapsed(),
                report.verified
            );
            if !report.verified {
                std::process::exit(3);
            }
        }
        Err(e) => {
            eprintln!("job failed: {e}");
            std::process::exit(1);
        }
    }
}
