//! Cross-node context staging: the host-staged half of live migration.
//!
//! Within a node, `NodeRuntime::migrate_ctx` moves the working set
//! peer-to-peer over the PCIe fabric. Across nodes there is no shared
//! fabric, so migration degrades to checkpoint/restart (§4.6): the source
//! node checkpoints the context into a [`ContextImage`] (an implicit
//! checkpoint synchronizes every dirty page first), the image travels as
//! plain serializable data, and the destination node restores it into a
//! fresh context with every virtual address preserved.
//!
//! The commit discipline mirrors the intra-node protocol: the source
//! context is left fully intact until the destination import returns
//! `Ok` — a failure at any point leaves the application exactly where it
//! was, still runnable on the source node.

use mtgpu_api::protocol::ContextImage;
use mtgpu_api::{CudaClient, CudaResult};

/// What a completed staging moved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedContext {
    /// Declared bytes across all allocations (the virtual working set).
    pub declared_bytes: u64,
    /// Materialized bytes actually carried in the image.
    pub payload_bytes: u64,
    /// Number of allocations restored.
    pub entries: usize,
}

/// Stages `src`'s context onto `dst` (a fresh context on another node).
///
/// On success the destination context holds the full working set at the
/// original virtual addresses and the *caller* retires the source context
/// (`src.exit()`) — the single commit point, after which the application
/// continues on `dst`. On error the source context is untouched.
pub fn stage_context(
    src: &mut dyn CudaClient,
    dst: &mut dyn CudaClient,
) -> CudaResult<StagedContext> {
    let image: ContextImage = src.export_image()?;
    let staged = StagedContext {
        declared_bytes: image.declared_bytes(),
        payload_bytes: image.entries.iter().map(|e| e.data.len() as u64).sum(),
        entries: image.entries.len(),
    };
    dst.import_image(image)?;
    Ok(staged)
}
