//! A small counting semaphore (the GPU-aware head node's per-node capacity
//! gate).

use parking_lot::{Condvar, Mutex};

/// Counting semaphore.
pub struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore { permits: Mutex::new(permits), cv: Condvar::new() }
    }

    /// Blocks until a permit is available, then takes it.
    pub fn acquire(&self) {
        let mut p = self.permits.lock();
        while *p == 0 {
            self.cv.wait(&mut p);
        }
        *p -= 1;
    }

    /// Takes a permit if one is available.
    pub fn try_acquire(&self) -> bool {
        let mut p = self.permits.lock();
        if *p == 0 {
            return false;
        }
        *p -= 1;
        true
    }

    /// Returns a permit.
    pub fn release(&self) {
        *self.permits.lock() += 1;
        self.cv.notify_one();
    }

    /// Current permit count.
    pub fn available(&self) -> usize {
        *self.permits.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn acquire_release_roundtrip() {
        let s = Semaphore::new(2);
        assert!(s.try_acquire());
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        s.release();
        assert_eq!(s.available(), 1);
        s.acquire();
        assert_eq!(s.available(), 0);
    }

    #[test]
    fn blocked_acquire_wakes_on_release() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || s2.acquire());
        std::thread::sleep(std::time::Duration::from_millis(5));
        s.release();
        t.join().unwrap();
        assert_eq!(s.available(), 0);
    }
}
