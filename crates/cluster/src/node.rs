//! A cluster node: runtime daemon + TCP acceptor.

use mtgpu_api::transport::{
    spawn_reactor, ChannelTransport, FrontendClient, MuxChannel, MuxConnection, MuxPool,
    MuxService, ReactorConfig, ReactorHandle, ReactorStats, ReplySink, TcpServerConn, TcpTransport,
};
use mtgpu_core::{MetricsSnapshot, MuxGateway, MuxGatewayHandle, NodeRuntime, RuntimeConfig};
use mtgpu_gpusim::{Driver, GpuSpec};
use mtgpu_simtime::Clock;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Binds an ephemeral localhost listener (used to pre-reserve peer
/// addresses before the nodes exist).
pub(crate) fn reserve_listener() -> TcpListener {
    TcpListener::bind("127.0.0.1:0").expect("bind ephemeral listener")
}

/// The node's multiplexed endpoint: one reactor serving every mux
/// connection, backed by the gateway's worker pool.
struct MuxEndpoint {
    addr: SocketAddr,
    reactor: ReactorHandle,
    gateway: Arc<MuxGateway>,
    workers: Option<MuxGatewayHandle>,
}

/// One compute node: devices + runtime daemon + (optionally) a TCP
/// endpoint accepting remote frontends and offloaded connections.
///
/// Listening nodes open *two* ports: the legacy thread-per-connection
/// endpoint ([`ClusterNode::addr`], one handler thread and one socket per
/// frontend) and the multiplexed endpoint ([`ClusterNode::mux_addr`], one
/// nonblocking reactor multiplexing every connection; see DESIGN.md §12).
pub struct ClusterNode {
    name: String,
    runtime: Arc<NodeRuntime>,
    addr: Option<SocketAddr>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    mux: Option<MuxEndpoint>,
}

impl ClusterNode {
    /// Starts a node with the given GPUs; `listen` controls whether a TCP
    /// endpoint is opened.
    pub fn start(
        name: String,
        clock: Clock,
        specs: Vec<GpuSpec>,
        cfg: RuntimeConfig,
        listen: bool,
    ) -> ClusterNode {
        if listen {
            Self::start_with_listener(name, clock, specs, cfg, reserve_listener())
        } else {
            let driver = Driver::with_devices(clock, specs);
            let runtime = NodeRuntime::start(driver, cfg);
            ClusterNode {
                name,
                runtime,
                addr: None,
                stop: Arc::new(AtomicBool::new(false)),
                acceptor: None,
                mux: None,
            }
        }
    }

    /// Starts a node serving on an already-bound (legacy) listener; the
    /// multiplexed endpoint binds an ephemeral port of its own.
    pub fn start_with_listener(
        name: String,
        clock: Clock,
        specs: Vec<GpuSpec>,
        cfg: RuntimeConfig,
        listener: TcpListener,
    ) -> ClusterNode {
        Self::start_with_listeners(name, clock, specs, cfg, listener, reserve_listener())
    }

    /// Starts a node serving on already-bound legacy and mux listeners.
    pub fn start_with_listeners(
        name: String,
        clock: Clock,
        specs: Vec<GpuSpec>,
        cfg: RuntimeConfig,
        listener: TcpListener,
        mux_listener: TcpListener,
    ) -> ClusterNode {
        let driver = Driver::with_devices(clock, specs);
        let runtime = NodeRuntime::start(driver, cfg);
        let addr = listener.local_addr().expect("listener address");
        listener.set_nonblocking(true).expect("nonblocking listener");
        let stop = Arc::new(AtomicBool::new(false));
        let accept_rt = Arc::clone(&runtime);
        let accept_stop = Arc::clone(&stop);
        let acceptor = std::thread::Builder::new()
            .name(format!("{name}-accept"))
            .spawn(move || {
                while !accept_stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if let Ok(conn) = TcpServerConn::from_stream(stream) {
                                accept_rt.connect(Box::new(conn));
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            // mtlint: allow(thread-sleep, reason = "non-blocking TCP accept backoff on a real OS socket; outside every deterministic replay path")
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn acceptor");
        let mux_addr = mux_listener.local_addr().expect("mux listener address");
        let (sink, queue) = ReplySink::channel();
        let (gateway, workers) = MuxGateway::start(Arc::clone(&runtime), sink);
        let svc: Arc<dyn MuxService> = gateway.clone();
        let reactor = spawn_reactor(mux_listener, ReactorConfig::default(), svc, queue)
            .expect("spawn mux reactor");
        ClusterNode {
            name,
            runtime,
            addr: Some(addr),
            stop,
            acceptor: Some(acceptor),
            mux: Some(MuxEndpoint { addr: mux_addr, reactor, gateway, workers: Some(workers) }),
        }
    }

    /// Node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// TCP endpoint, if listening.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// The node's runtime.
    pub fn runtime(&self) -> &Arc<NodeRuntime> {
        &self.runtime
    }

    /// Runtime metric snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.runtime.metrics()
    }

    /// An in-process client (application running locally on this node).
    pub fn client(&self) -> FrontendClient<ChannelTransport> {
        self.runtime.local_client()
    }

    /// A client that bypasses the mtgpu runtime and talks straight to this
    /// node's CUDA driver — the "TORQUE natively on the bare CUDA runtime"
    /// comparator of §5.4. Subject to all the bare-runtime limits
    /// (≤8 contexts, hard OOM on over-commit, static binding).
    pub fn bare_client(&self) -> mtgpu_api::BareClient {
        mtgpu_api::BareClient::new(std::sync::Arc::clone(self.runtime.driver()))
    }

    /// A TCP client (application or VM frontend reaching the node over the
    /// network).
    pub fn tcp_client(&self) -> std::io::Result<FrontendClient<TcpTransport>> {
        let addr = self.addr.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "node not listening")
        })?;
        Ok(FrontendClient::new(TcpTransport::connect(addr)?))
    }

    /// Multiplexed TCP endpoint, if listening.
    pub fn mux_addr(&self) -> Option<SocketAddr> {
        self.mux.as_ref().map(|m| m.addr)
    }

    /// Reactor statistics for the multiplexed endpoint, if listening.
    pub fn mux_stats(&self) -> Option<&ReactorStats> {
        self.mux.as_ref().map(|m| m.reactor.stats())
    }

    /// Live multiplexed channels (diagnostic).
    pub fn mux_channel_count(&self) -> usize {
        self.mux.as_ref().map_or(0, |m| m.gateway.channel_count())
    }

    /// A client over its own multiplexed connection (first channel on a
    /// fresh socket).
    pub fn mux_client(&self) -> std::io::Result<FrontendClient<MuxChannel>> {
        let addr = self.mux_addr().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "node not listening")
        })?;
        Ok(FrontendClient::new(MuxConnection::connect(addr)?.channel()))
    }

    /// A pool of `conns` multiplexed connections; many frontends share them
    /// round-robin via [`MuxPool::channel`].
    pub fn mux_pool(&self, conns: usize) -> std::io::Result<MuxPool> {
        let addr = self.mux_addr().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "node not listening")
        })?;
        MuxPool::connect(addr, conns)
    }

    /// Physical GPUs on the node (what a GPU-aware scheduler sees).
    pub fn gpu_count(&self) -> usize {
        self.runtime.driver().device_count()
    }

    /// Stops the acceptors and the runtime. Ordering matters: the reactor
    /// goes first (no new mux requests, open connections disconnect), then
    /// the gateway workers drain queued teardowns, then the runtime stops.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(mut mux) = self.mux.take() {
            mux.reactor.shutdown();
            if let Some(workers) = mux.workers.take() {
                workers.shutdown();
            }
        }
        self.runtime.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtgpu_api::CudaClient;

    #[test]
    fn tcp_frontend_reaches_node_runtime() {
        let node = ClusterNode::start(
            "n0".into(),
            Clock::with_scale(1e-7),
            vec![GpuSpec::test_small()],
            RuntimeConfig::paper_default(),
            true,
        );
        let mut client = node.tcp_client().unwrap();
        // 1 device × 4 vGPUs visible through the socket.
        assert_eq!(client.get_device_count().unwrap(), 4);
        let ptr = client.malloc(1024).unwrap();
        client.memcpy_h2d(ptr, mtgpu_api::HostBuf::from_slice(&[3u8; 128])).unwrap();
        let back = client.memcpy_d2h(ptr, 128).unwrap();
        assert_eq!(back.payload, vec![3u8; 128]);
        client.exit().unwrap();
        node.shutdown();
    }

    #[test]
    fn mux_frontend_reaches_node_runtime() {
        let node = ClusterNode::start(
            "n0".into(),
            Clock::with_scale(1e-7),
            vec![GpuSpec::test_small()],
            RuntimeConfig::paper_default(),
            true,
        );
        assert!(node.mux_addr().is_some());
        // Two frontends multiplexed over one pooled connection.
        let pool = node.mux_pool(1).unwrap();
        let mut a = FrontendClient::new(pool.channel());
        let mut b = FrontendClient::new(pool.channel());
        assert_eq!(a.get_device_count().unwrap(), 4);
        let ptr = b.malloc(1024).unwrap();
        b.memcpy_h2d(ptr, mtgpu_api::HostBuf::from_slice(&[7u8; 64])).unwrap();
        assert_eq!(b.memcpy_d2h(ptr, 64).unwrap().payload, vec![7u8; 64]);
        a.exit().unwrap();
        b.exit().unwrap();
        assert!(node.runtime().wait_idle(std::time::Duration::from_secs(10)));
        assert_eq!(node.mux_channel_count(), 0);
        assert!(node.mux_stats().unwrap().requests.load(std::sync::atomic::Ordering::Relaxed) >= 2);
        node.shutdown();
    }

    #[test]
    fn non_listening_node_has_no_endpoint() {
        let node = ClusterNode::start(
            "n0".into(),
            Clock::with_scale(1e-7),
            vec![GpuSpec::test_small()],
            RuntimeConfig::paper_default(),
            false,
        );
        assert!(node.addr().is_none());
        assert!(node.tcp_client().is_err());
        assert!(node.mux_addr().is_none());
        assert!(node.mux_client().is_err());
        node.shutdown();
    }
}
