//! TORQUE-like cluster batch scheduler (§5.4).
//!
//! Jobs are submitted at a head node and executed on compute nodes. Two
//! interaction modes with the node runtimes are modelled:
//!
//! * [`GpuVisibility::Hidden`] — the paper's main configuration: "we hid
//!   from TORQUE the presence of GPUs"; the head node "divides the
//!   workload equally between the nodes" (round-robin) and every job is
//!   dispatched immediately; all GPU scheduling happens inside the node
//!   runtimes (and, when enabled, via inter-node offloading).
//! * [`GpuVisibility::Aware`] — TORQUE knows the per-node GPU counts and
//!   submits a job to a node only when one of its GPUs is free (the
//!   "TORQUE natively on the bare CUDA runtime" behaviour: serialized
//!   execution, no sharing).

use crate::node::ClusterNode;
use crate::sem::Semaphore;
use mtgpu_core::MetricsSnapshot;
use mtgpu_simtime::{Clock, SimDuration, Stopwatch};
use mtgpu_workloads::{register_workload, Workload, WorkloadReport};
use std::sync::Arc;

/// How much the cluster scheduler knows about GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuVisibility {
    /// GPUs hidden from the head node (handled by the node runtimes).
    Hidden,
    /// Head node gates dispatch on free physical GPUs.
    Aware,
}

/// Result of a cluster batch run.
#[derive(Debug)]
pub struct ClusterRunResult {
    /// First submit to last completion ("Tot").
    pub total: SimDuration,
    /// Mean per-job time ("Avg").
    pub avg: SimDuration,
    /// Per-job reports.
    pub reports: Vec<WorkloadReport>,
    /// Failed jobs.
    pub errors: Vec<String>,
    /// Runtime metrics per node at batch end.
    pub node_metrics: Vec<MetricsSnapshot>,
}

impl ClusterRunResult {
    /// Whether every job completed and verified.
    pub fn all_verified(&self) -> bool {
        self.errors.is_empty() && self.reports.iter().all(|r| r.verified)
    }

    /// Total swap operations across nodes (Fig. 11 annotation).
    pub fn total_swaps(&self) -> u64 {
        self.node_metrics.iter().map(|m| m.total_swaps()).sum()
    }

    /// Total offloaded connections across nodes.
    pub fn total_offloads(&self) -> u64 {
        self.node_metrics.iter().map(|m| m.offloaded_connections).sum()
    }
}

/// The head-node scheduler.
pub struct Torque<'a> {
    nodes: &'a [ClusterNode],
    visibility: GpuVisibility,
    /// Bypass the mtgpu runtime and run jobs on the bare CUDA runtime —
    /// the "TORQUE natively" configuration of §5.4. Only sensible with
    /// [`GpuVisibility::Aware`]: the bare runtime cannot absorb more
    /// concurrent jobs than GPUs.
    bare: bool,
}

impl<'a> Torque<'a> {
    /// Creates a scheduler over the cluster's nodes.
    pub fn new(nodes: &'a [ClusterNode], visibility: GpuVisibility) -> Self {
        assert!(!nodes.is_empty(), "cluster has no nodes");
        Torque { nodes, visibility, bare: false }
    }

    /// The §5.4 native comparator: GPU-aware dispatch straight onto the
    /// bare CUDA runtime ("TORQUE serializes the execution of concurrent
    /// jobs ... submitting them to the compute nodes only when a GPU
    /// becomes available").
    pub fn native_bare(nodes: &'a [ClusterNode]) -> Self {
        assert!(!nodes.is_empty(), "cluster has no nodes");
        Torque { nodes, visibility: GpuVisibility::Aware, bare: true }
    }

    /// Runs a FIFO batch of jobs to completion and reports cluster-level
    /// timing (§5.4 methodology: jobs submitted at the head node, executed
    /// on the compute nodes).
    pub fn run(&self, clock: &Clock, jobs: Vec<Box<dyn Workload>>) -> ClusterRunResult {
        let gates: Vec<Arc<Semaphore>> = self
            .nodes
            .iter()
            .map(|n| {
                Arc::new(match self.visibility {
                    // Effectively unbounded: dispatch never blocks.
                    GpuVisibility::Hidden => Semaphore::new(usize::MAX / 2),
                    GpuVisibility::Aware => Semaphore::new(n.gpu_count()),
                })
            })
            .collect();
        let batch_watch = Stopwatch::start(clock);
        let mut handles = Vec::new();
        let mut rr = 0usize;
        for job in jobs {
            // Round-robin placement ("TORQUE divides the workload equally
            // between the nodes"); under Aware visibility, wait here at the
            // head node until the chosen node has a free GPU.
            let node_idx = loop {
                let candidate = rr % self.nodes.len();
                rr += 1;
                match self.visibility {
                    GpuVisibility::Hidden => break candidate,
                    GpuVisibility::Aware => {
                        if gates[candidate].try_acquire() {
                            break candidate;
                        }
                        // All nodes busy: block on the round-robin choice.
                        if rr.is_multiple_of(self.nodes.len()) {
                            gates[candidate].acquire();
                            break candidate;
                        }
                    }
                }
            };
            let mut client: Box<dyn mtgpu_api::CudaClient> = if self.bare {
                Box::new(self.nodes[node_idx].bare_client())
            } else {
                Box::new(self.nodes[node_idx].client())
            };
            let gate = Arc::clone(&gates[node_idx]);
            let release = self.visibility == GpuVisibility::Aware;
            let clock = clock.clone();
            handles.push(std::thread::spawn(move || {
                let name = job.name().to_string();
                let watch = Stopwatch::start(&clock);
                let result = (|| {
                    register_workload(client.as_mut(), job.as_ref())?;
                    let mut report = job.run(client.as_mut(), &clock)?;
                    client.exit()?;
                    report.elapsed = watch.elapsed();
                    Ok::<_, mtgpu_api::CudaError>(report)
                })();
                if release {
                    gate.release();
                }
                (name, result)
            }));
        }
        let mut reports = Vec::new();
        let mut errors = Vec::new();
        for h in handles {
            match h.join() {
                Ok((_, Ok(report))) => reports.push(report),
                Ok((name, Err(e))) => errors.push(format!("{name}: {e}")),
                Err(_) => errors.push("job thread panicked".into()),
            }
        }
        let total = batch_watch.elapsed();
        let avg = if reports.is_empty() {
            SimDuration::ZERO
        } else {
            reports.iter().map(|r| r.elapsed).sum::<SimDuration>() / reports.len() as u64
        };
        ClusterRunResult {
            total,
            avg,
            reports,
            errors,
            node_metrics: self.nodes.iter().map(|n| n.metrics()).collect(),
        }
    }
}
