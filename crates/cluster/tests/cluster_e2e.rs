//! Cluster-level end-to-end tests: TORQUE dispatch modes and inter-node
//! offloading.

use mtgpu_cluster::{Cluster, ClusterNode, GpuVisibility, Torque};
use mtgpu_core::RuntimeConfig;
use mtgpu_gpusim::GpuSpec;
use mtgpu_simtime::Clock;
use mtgpu_workloads::calib::Scale;
use mtgpu_workloads::{install_kernel_library, AppKind, Workload};

fn short_jobs(n: usize) -> Vec<Box<dyn Workload>> {
    let pool = mtgpu_workloads::short_pool();
    (0..n).map(|i| pool[i % pool.len()].build(Scale::TINY)).collect()
}

#[test]
fn torque_hidden_round_robins_jobs_across_nodes() {
    install_kernel_library();
    let clock = Clock::with_scale(1e-7);
    let cluster = Cluster::start(
        clock.clone(),
        vec![vec![GpuSpec::test_small()], vec![GpuSpec::test_small()]],
        RuntimeConfig::paper_default(),
    );
    let torque = Torque::new(cluster.nodes(), GpuVisibility::Hidden);
    let result = torque.run(&clock, short_jobs(8));
    assert!(result.all_verified(), "{:?}", result.errors);
    assert_eq!(result.reports.len(), 8);
    // Equal split: both nodes serviced kernels.
    for node in cluster.nodes() {
        assert!(node.metrics().launches > 0, "{} idle", node.name());
    }
    cluster.shutdown();
}

#[test]
fn torque_aware_serializes_on_gpu_count() {
    install_kernel_library();
    let clock = Clock::with_scale(1e-7);
    let cluster = Cluster::start(
        clock.clone(),
        vec![vec![GpuSpec::test_small()]],
        RuntimeConfig::serialized(),
    );
    let torque = Torque::new(cluster.nodes(), GpuVisibility::Aware);
    let result = torque.run(&clock, short_jobs(4));
    assert!(result.all_verified(), "{:?}", result.errors);
    assert_eq!(result.reports.len(), 4);
    cluster.shutdown();
}

#[test]
fn overloaded_node_offloads_connections_to_peer() {
    install_kernel_library();
    let clock = Clock::with_scale(1e-7);
    let mut cfg = RuntimeConfig::paper_default();
    cfg.offload_threshold = Some(2);
    let cluster = Cluster::start(
        clock.clone(),
        vec![vec![GpuSpec::test_small()], vec![GpuSpec::test_small()]],
        cfg,
    );
    // Submit everything to node 0: its backlog crosses the threshold and
    // the excess connections must be relayed to node 1 (§4.7).
    let node0 = &cluster.nodes()[0];
    let node1 = &cluster.nodes()[1];
    let jobs = short_jobs(8);
    let handles: Vec<_> = jobs
        .into_iter()
        .map(|job| {
            let mut client: Box<dyn mtgpu_api::CudaClient> = Box::new(node0.client());
            let clock = clock.clone();
            std::thread::spawn(move || {
                mtgpu_workloads::register_workload(client.as_mut(), job.as_ref()).unwrap();
                let report = job.run(client.as_mut(), &clock).unwrap();
                client.exit().unwrap();
                report
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap().verified);
    }
    assert!(
        node0.metrics().offloaded_connections > 0,
        "node0 never offloaded: {:?}",
        node0.metrics()
    );
    assert!(node1.metrics().launches > 0, "node1 never ran an offloaded kernel");
    cluster.shutdown();
}

#[test]
fn remote_tcp_frontend_runs_full_workload() {
    install_kernel_library();
    let clock = Clock::with_scale(1e-7);
    let node = ClusterNode::start(
        "n0".into(),
        clock.clone(),
        vec![GpuSpec::test_small()],
        RuntimeConfig::paper_default(),
        true,
    );
    let mut client: Box<dyn mtgpu_api::CudaClient> = Box::new(node.tcp_client().unwrap());
    let job = AppKind::Hs.build(Scale::TINY);
    mtgpu_workloads::register_workload(client.as_mut(), job.as_ref()).unwrap();
    let report = job.run(client.as_mut(), &clock).unwrap();
    client.exit().unwrap();
    assert!(report.verified, "HS over TCP failed verification");
    node.shutdown();
}

#[test]
fn native_bare_torque_works_but_loses_to_the_runtime() {
    // §5.4: "we also performed experiments using TORQUE natively on the bare
    // CUDA runtime. However, the results ... are far worse than those
    // reported using TORQUE in combination with our runtime."
    install_kernel_library();
    // Coarse enough that simulated durations dominate per-call overhead:
    // MM-L kernels are 125 ms sim (125 µs real) at these scales.
    let clock = Clock::with_scale(1e-3);
    let cluster = Cluster::start(
        clock.clone(),
        vec![vec![GpuSpec::test_small()]],
        RuntimeConfig::paper_default(),
    );
    // Jobs with CPU phases: the bare runtime under GPU-aware gating holds a
    // whole GPU per job (idle through the CPU phases), while the mtgpu
    // runtime time-shares it across 4 vGPUs.
    let scale = mtgpu_workloads::calib::Scale { time: 0.1, mem: 1e-5 };
    let build = || -> Vec<Box<dyn Workload>> {
        (0..8).map(|_| AppKind::MmL.build_with(scale, 2.0)).collect()
    };
    let native = Torque::native_bare(cluster.nodes()).run(&clock, build());
    assert!(native.all_verified(), "{:?}", native.errors);
    let shared = Torque::new(cluster.nodes(), GpuVisibility::Hidden).run(&clock, build());
    assert!(shared.all_verified(), "{:?}", shared.errors);
    assert!(
        shared.total < native.total,
        "runtime sharing ({}) must beat native bare TORQUE ({})",
        shared.total,
        native.total
    );
    cluster.shutdown();
}
