//! Real multi-process deployment: a `node-daemon` OS process serving a
//! `submit` OS process over TCP — the closest shape to the paper's actual
//! gVirtuS-style deployment this test suite gets.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct DaemonGuard(Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_daemon(extra: &[&str]) -> (DaemonGuard, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_node_daemon"));
    cmd.args(["--listen", "127.0.0.1:0", "--gpus", "test", "--clock", "1e-6"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn node-daemon");
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("daemon banner");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line}"))
        .to_string();
    // Let the daemon keep printing without blocking on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    (DaemonGuard(child), addr)
}

fn submit(addr: &str, app: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_submit"))
        .args([
            "--node",
            addr,
            "--app",
            app,
            "--clock",
            "1e-6",
            "--time-scale",
            "1e-4",
            "--mem-scale",
            "1e-5",
        ])
        .output()
        .expect("run submit")
}

#[test]
fn daemon_serves_submitted_workloads_across_processes() {
    let (_daemon, addr) = spawn_daemon(&[]);
    for app in ["VA", "HS", "BFS"] {
        let out = submit(&addr, app);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "{app} failed: {stdout} {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(stdout.contains("verified=true"), "{app}: {stdout}");
    }
}

#[test]
fn concurrent_submits_share_the_daemon() {
    let (_daemon, addr) = spawn_daemon(&["--vgpus", "4"]);
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            let app = ["VA", "SP", "HS", "MT"][i];
            std::thread::spawn(move || submit(&addr, app))
        })
        .collect();
    for h in handles {
        let out = h.join().unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        assert!(String::from_utf8_lossy(&out.stdout).contains("verified=true"));
    }
}

#[test]
fn submit_fails_cleanly_when_daemon_absent() {
    let out = Command::new(env!("CARGO_BIN_EXE_submit"))
        .args(["--node", "127.0.0.1:1", "--app", "VA"])
        .output()
        .expect("run submit");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot reach node"));
    // And the daemon guard pattern above must not leave zombies behind.
    std::thread::sleep(Duration::from_millis(10));
}
