//! Cross-node staging (`mtgpu_cluster::stage_context`): the host-staged
//! migration path. The working set leaves node A as a checkpoint image,
//! lands on node B at the same virtual addresses, and a failed import
//! leaves the source context untouched — the commit discipline of the
//! intra-node protocol, stretched across the wire.

use mtgpu_api::{CudaClient, CudaError, HostBuf};
use mtgpu_cluster::{stage_context, ClusterNode};
use mtgpu_core::RuntimeConfig;
use mtgpu_gpusim::GpuSpec;
use mtgpu_simtime::Clock;

fn new_node(name: &str, clock: &Clock) -> ClusterNode {
    ClusterNode::start(
        name.to_string(),
        clock.clone(),
        vec![GpuSpec::test_small()],
        RuntimeConfig::paper_default(),
        false,
    )
}

#[test]
fn staging_moves_working_set_across_nodes_with_pointers_intact() {
    let clock = Clock::with_scale(1e-7);
    let node_a = new_node("a", &clock);
    let node_b = new_node("b", &clock);

    let mut src = node_a.client();
    let ptr = src.malloc(256).unwrap();
    src.memcpy_h2d(ptr, HostBuf::from_slice(&[0x42u8; 256])).unwrap();

    let mut dst = node_b.client();
    let staged = stage_context(&mut src, &mut dst).unwrap();
    assert_eq!(staged.entries, 1);
    assert_eq!(staged.declared_bytes, 256);
    assert!(staged.payload_bytes > 0, "materialized data must travel");

    // The application's pointer is valid verbatim on the new node.
    assert_eq!(dst.memcpy_d2h(ptr, 256).unwrap().payload, vec![0x42u8; 256]);

    // Commit: the caller retires the source context only after success.
    src.exit().unwrap();
    dst.exit().unwrap();
    node_a.shutdown();
    node_b.shutdown();
}

#[test]
fn failed_import_leaves_source_context_runnable() {
    let clock = Clock::with_scale(1e-7);
    let node_a = new_node("a", &clock);
    let node_b = new_node("b", &clock);

    // The destination context already holds an allocation, so the import
    // must be refused — and the source must remain fully usable.
    let mut dst = node_b.client();
    dst.malloc(64).unwrap();

    let mut src = node_a.client();
    let ptr = src.malloc(128).unwrap();
    src.memcpy_h2d(ptr, HostBuf::from_slice(&[7u8; 128])).unwrap();

    assert_eq!(stage_context(&mut src, &mut dst).unwrap_err(), CudaError::InvalidValue);
    assert_eq!(src.memcpy_d2h(ptr, 128).unwrap().payload, vec![7u8; 128]);

    src.exit().unwrap();
    dst.exit().unwrap();
    node_a.shutdown();
    node_b.shutdown();
}
