//! Property: for ANY schedule id, two replays of the same scenario are
//! bit-for-bit identical — same fingerprint, same event count, same
//! decision trace. This is the explorer's core soundness assumption (it
//! dedups converging prefixes by fingerprint), so it gets a generative
//! test rather than a handful of pinned cases.
#![cfg(all(debug_assertions, feature = "check"))]

use mtgpu_analysis::check::{explore, scenarios};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_schedule_replays_bit_for_bit(
        prefix in prop::collection::vec(0u32..4, 0..6),
        which in 0usize..4,
    ) {
        let clean: Vec<_> = scenarios::all().iter().filter(|s| s.expect_clean).collect();
        let scn = clean[which % clean.len()];
        let a = explore::replay(scn, &prefix);
        let b = explore::replay(scn, &prefix);
        prop_assert_eq!(a.fingerprint, b.fingerprint);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.decisions, b.decisions);
        prop_assert!(a.clean(), "workspace scenario raced under {:?}", prefix);
    }
}
