//! Integration tests for the mtcheck half: scenario-matrix sanity, the
//! seeded fixture's detection, and pinned-schedule regressions over the
//! dispatcher / lease-book / memory-manager paths. The engine needs the
//! debug-build instrumentation, so everything is compiled out in release.
#![cfg(all(debug_assertions, feature = "check"))]

use mtgpu_analysis::check::{explore, parse_schedule_id, scenarios, schedule_id};

#[test]
fn matrix_has_four_clean_scenarios_plus_the_fixture() {
    let clean: Vec<_> =
        scenarios::all().iter().filter(|s| s.expect_clean).map(|s| s.name).collect();
    assert_eq!(
        clean,
        ["dispatcher-churn", "swap-vs-free", "lease-admit-vs-reap", "migrate-vs-launch"]
    );
    let fixture = scenarios::find("fixture-race").expect("fixture scenario");
    assert!(!fixture.expect_clean);
}

#[test]
fn seeded_fixture_race_is_detected() {
    let fixture = scenarios::find("fixture-race").unwrap();
    let report = explore::explore_scenario(fixture, 8);
    assert!(
        report.violations.iter().any(|v| v.kind == "race"),
        "the detector must flag the seeded race: {:?}",
        report.violations
    );
    assert!(report.passed(), "the fixture's expectation is the detection itself");
}

#[test]
fn workspace_scenarios_explore_clean_on_a_small_budget() {
    for scn in scenarios::all().iter().filter(|s| s.expect_clean) {
        let report = explore::explore_scenario(scn, 10);
        assert!(
            report.violations.is_empty(),
            "{}: unexpected violations {:?}",
            scn.name,
            report.violations
        );
        assert!(report.distinct() >= 2, "{}: exploration found no branching", scn.name);
    }
}

/// Pinned-schedule regressions: one adversarial interleaving per runtime
/// path, replayed twice — the verdict must be clean and the replay
/// bit-for-bit. If a future change introduces an unordered access on one
/// of these paths, the pinned schedule re-derives it deterministically.
#[test]
fn pinned_schedules_stay_clean_and_replay_identically() {
    let pins: &[(&str, &str)] = &[
        // Let ctx B win the shard lock first, then alternate.
        ("dispatcher-churn", "s:1.0.1"),
        // Frees overtake the first malloc.
        ("swap-vs-free", "s:1.1.0"),
        // The reaper expires the lease before any admit runs.
        ("lease-admit-vs-reap", "s:1"),
        // Migration planning preempts the launch-closure walk.
        ("migrate-vs-launch", "s:1.1"),
    ];
    for (name, id) in pins {
        let scn = scenarios::find(name).unwrap();
        let prefix = parse_schedule_id(id).unwrap();
        let a = explore::replay(scn, &prefix);
        let b = explore::replay(scn, &prefix);
        assert!(a.clean(), "{name} {id}: {:?} {:?} {:?}", a.races, a.deadlock, a.panics);
        assert_eq!(a.fingerprint, b.fingerprint, "{name} {id}: replay diverged");
        assert_eq!(a.events, b.events, "{name} {id}");
        assert_eq!(a.decisions, b.decisions, "{name} {id}");
        // The pin must actually steer: it names a real decision prefix.
        assert!(a.decisions.len() >= prefix.len(), "{name} {id}: schedule underran its prefix");
    }
}

#[test]
fn schedule_ids_round_trip_through_the_report() {
    let scn = scenarios::find("dispatcher-churn").unwrap();
    let report = explore::explore_scenario(scn, 6);
    for sched in &report.schedules {
        let prefix = parse_schedule_id(&sched.id).unwrap();
        assert_eq!(schedule_id(&prefix), sched.id);
        let run = explore::replay(scn, &prefix);
        assert_eq!(
            run.fingerprint, sched.fingerprint,
            "{}: recorded fingerprint must replay bit-for-bit",
            sched.id
        );
    }
}
