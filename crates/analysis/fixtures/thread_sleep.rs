// mtlint fixture: the sleep below must trip `thread-sleep`.
use std::time::Duration;

fn hazard() {
    std::thread::sleep(Duration::from_millis(5));
}
