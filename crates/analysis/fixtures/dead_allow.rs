//! Fixture: stale allow annotations. The first allow vouches for a hazard
//! that is still present (live, not a violation); the other two suppress
//! nothing and must be flagged as `dead-allow`.

pub fn live_allow(d: std::time::Duration) {
    // mtlint: allow(thread-sleep, reason = "fixture: hazard still present")
    std::thread::sleep(d);
}

pub fn stale_allow_nothing_below() {
    // mtlint: allow(wall-clock, reason = "fixture: the Instant::now call was removed")
    let _x = 1 + 1;
}

// mtlint: allow(notify-all, reason = "fixture: broadcast was converted to notify_one")
pub fn stale_allow_wrong_rule(flag: &std::sync::atomic::AtomicBool) {
    flag.store(true, std::sync::atomic::Ordering::Release);
}
