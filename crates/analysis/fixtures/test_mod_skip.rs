// mtlint fixture: hazards confined to #[cfg(test)] items are exempt — the
// lint's contract covers shipped runtime code only.
fn shipped() -> u32 {
    41 + 1
}

#[cfg(test)]
mod tests {
    use std::time::{Duration, Instant};

    #[test]
    fn timing_helper() {
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        cv.notify_all();
        assert!(t0.elapsed() >= Duration::from_millis(1));
    }
}
