// mtlint fixture: all four sites must trip `unranked-lock` (the fixtures
// directory is treated as runtime-crate scope).
use parking_lot::{Condvar, Mutex};

struct Bad {
    state: Mutex<u32>, // hazard 1: raw lock field in a runtime crate
}

fn hazards() {
    let _m = Mutex::new(0u32); // hazard 2: raw construction
    let _c = Condvar::new(); // hazard 3: raw condvar
    let _r = RankedMutex::new(pick_rank(), 0u32); // hazard 4: rank not a lock_rank constant
}

fn clean() {
    let _ok = RankedMutex::new(lock_rank::MM_STATE, 0u32);
}
