// mtlint fixture: both annotations are malformed and must trip `bad-allow`
// (and must NOT suppress the hazards they sit on).
use std::time::Instant;

fn hazards() {
    // mtlint: allow(wall-clock)
    let _a = Instant::now();
    // mtlint: allow(wall-clock, reason = "")
    let _b = Instant::now();
}
