// mtlint fixture: every hazard below must trip `hashmap-iter`.
// Not compiled — consumed as text by the lint's unit tests.
use std::collections::{HashMap, HashSet};

struct Table {
    slots: HashMap<u32, String>,
}

fn hazards(t: &Table) -> usize {
    let mut total = 0;
    for (_k, v) in t.slots.iter() {
        total += v.len(); // hazard 1: method iteration over a HashMap field
    }
    let mut seen = HashSet::new();
    seen.insert(7u32);
    for v in &seen {
        total += *v as usize; // hazard 2: direct for-in over a HashSet
    }
    let mut m = HashMap::new();
    m.insert(1u32, 2u32);
    m.retain(|_, v| *v > 0); // hazard 3: retain visits in hash order
    total
}

fn clean(t: &Table) -> Option<&String> {
    t.slots.get(&1) // key access never observes iteration order
}
