// mtlint fixture: the broadcast call must trip `notify-all`; the method
// definition of the same name must not.
struct Gate {
    cv: parking_lot::Condvar,
}

impl Gate {
    // A definition named notify_all is not a call site.
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }
}
