// mtlint fixture: every hazard carries a well-formed allow, so the file
// must lint clean (zero violations, several reported-but-allowed findings).
use std::time::{Duration, Instant};

fn allowed_hazards() {
    // mtlint: allow(wall-clock, reason = "fixture: real-time watchdog deadline only")
    let _t0 = Instant::now();
    // mtlint: allow(thread-sleep, reason = "fixture: backoff outside any replay path")
    std::thread::sleep(Duration::from_millis(1));
    // mtlint: allow(notify-all, reason = "fixture: turnstile requires waking every waiter")
    cv.notify_all();
}
