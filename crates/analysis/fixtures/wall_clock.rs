// mtlint fixture: both reads below must trip `wall-clock`.
use std::time::{Instant, SystemTime};

fn hazards() -> u64 {
    let t0 = Instant::now();
    let _epoch = SystemTime::now();
    t0.elapsed().as_nanos() as u64
}
