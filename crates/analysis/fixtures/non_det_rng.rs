// mtlint fixture: every line below must trip `non-det-rng`.
fn hazards() {
    let _r = rand::thread_rng();
    let _s = StdRng::from_entropy();
    let _h: std::collections::hash_map::RandomState = Default::default();
}
