//! `mtgpu-analysis`: static analysis for the workspace's determinism and
//! locking discipline.
//!
//! Two halves:
//!
//! 1. **mtlint** ([`lint_source`] / the `mtlint` binary) — a token-pattern
//!    lint over the runtime crates that flags determinism hazards (see
//!    [`rules`] for the rule list) with an inline, reason-carrying escape
//!    hatch (see [`allow`]).
//! 2. **Lock-graph extraction** ([`lock_graph`]) — harvests the declared
//!    lock ranks and every ranked-lock construction site, emits the
//!    workspace lock-order graph (JSON + DOT), and fails on rank cycles.
//!
//! The crate has no dependencies and parses Rust with a deliberately small
//! hand-rolled lexer ([`lexer`]); it trades full-fidelity parsing for a
//! rule set whose patterns are robust at the token level.

pub mod allow;
#[cfg(feature = "check")]
pub mod check;
pub mod lexer;
pub mod lock_graph;
pub mod report;
pub mod rules;

pub use rules::Finding;

/// Lints one file's source text. Returns every finding, with `allowed` set
/// on those suppressed by a well-formed `// mtlint: allow(…)` annotation;
/// malformed annotations surface as `bad-allow` findings.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let toks = lexer::strip_test_regions(lexer::lex(src));
    let allows = allow::parse(path, src);
    let mut findings = rules::scan(path, &toks);
    for f in &mut findings {
        if allows.permits(&f.rule, f.line) {
            f.allowed = true;
        }
    }
    // Dead-allow audit: a well-formed allow whose target line no longer
    // trips its rule is stale — the hazard it vouched for is gone, and a
    // lingering allow would silently mask a future regression. Surface it
    // as its own violation so `--deny` forces the cleanup.
    for a in allows.all() {
        let live =
            findings.iter().any(|f| f.rule == a.rule && (f.line == a.line || f.line == a.line + 1));
        if !live {
            findings.push(Finding {
                file: path.to_string(),
                line: a.line,
                rule: "dead-allow".to_string(),
                message: format!(
                    "allow({}) suppresses nothing: neither this line nor the next triggers the rule; delete the stale annotation",
                    a.rule
                ),
                allowed: false,
            });
        }
    }
    findings.extend(allows.bad);
    findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    findings
}

/// [`lint_source`] over a file on disk.
pub fn lint_file(path: &std::path::Path) -> std::io::Result<Vec<Finding>> {
    let src = std::fs::read_to_string(path)?;
    Ok(lint_source(&path.to_string_lossy(), &src))
}

#[cfg(test)]
mod fixture_tests {
    //! One test per rule over the checked-in fixture files: each fixture
    //! must trip its rule (mtlint exits non-zero on it under `--deny`),
    //! and the clean fixtures must not.

    use super::*;
    use std::path::PathBuf;

    fn fixture(name: &str) -> Vec<Finding> {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
        lint_file(&path).unwrap_or_else(|e| panic!("read fixture {name}: {e}"))
    }

    fn violations(findings: &[Finding]) -> Vec<(String, usize)> {
        findings.iter().filter(|f| !f.allowed).map(|f| (f.rule.clone(), f.line)).collect()
    }

    #[test]
    fn hashmap_iter_fixture() {
        let v = violations(&fixture("hashmap_iter.rs"));
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|(r, _)| r == "hashmap-iter"));
    }

    #[test]
    fn wall_clock_fixture() {
        let v = violations(&fixture("wall_clock.rs"));
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|(r, _)| r == "wall-clock"));
    }

    #[test]
    fn thread_sleep_fixture() {
        let v = violations(&fixture("thread_sleep.rs"));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].0, "thread-sleep");
    }

    #[test]
    fn notify_all_fixture() {
        let v = violations(&fixture("notify_all.rs"));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].0, "notify-all");
    }

    #[test]
    fn non_det_rng_fixture() {
        let v = violations(&fixture("non_det_rng.rs"));
        assert!(v.len() >= 3, "{v:?}");
        assert!(v.iter().all(|(r, _)| r == "non-det-rng"));
    }

    #[test]
    fn unranked_lock_fixture() {
        let v = violations(&fixture("unranked_lock.rs"));
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v.iter().all(|(r, _)| r == "unranked-lock"));
    }

    #[test]
    fn allowed_fixture_is_clean() {
        let findings = fixture("allowed_clean.rs");
        assert!(violations(&findings).is_empty(), "{:?}", violations(&findings));
        assert!(findings.iter().any(|f| f.allowed), "allows should still be reported");
    }

    #[test]
    fn bad_allow_fixture_is_refused() {
        let v = violations(&fixture("bad_allow.rs"));
        assert!(v.iter().filter(|(r, _)| r == "bad-allow").count() >= 2, "{v:?}");
    }

    #[test]
    fn dead_allow_fixture_flags_only_the_stale_allows() {
        let v = violations(&fixture("dead_allow.rs"));
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|(r, _)| r == "dead-allow"));
        // The live allow (thread-sleep over an actual sleep) stays allowed.
        let f = fixture("dead_allow.rs");
        assert!(f.iter().any(|f| f.allowed && f.rule == "thread-sleep"));
    }

    #[test]
    fn test_mod_fixture_is_exempt() {
        let v = violations(&fixture("test_mod_skip.rs"));
        assert!(v.is_empty(), "{v:?}");
    }
}
