//! Hand-rolled JSON emission for the machine-readable reports. The crate
//! is dependency-free, so the small amount of JSON it writes is assembled
//! by hand; `json_escape` covers the full set of mandatory escapes.

use crate::rules::Finding;

/// Escapes a string for inclusion inside JSON double quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The full lint report (`results/mtlint.json`): per-rule totals plus every
/// finding, suppressed ones included with their `allowed` flag so tooling
/// can audit the escape hatches.
pub fn lint_json(files_scanned: usize, findings: &[Finding]) -> String {
    let violations = findings.iter().filter(|f| !f.allowed).count();
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    s.push_str(&format!("  \"violations\": {violations},\n"));
    s.push_str(&format!("  \"allowed\": {},\n", findings.len() - violations));
    s.push_str("  \"by_rule\": {");
    let mut rules: Vec<&str> = crate::rules::RULES.to_vec();
    rules.push("bad-allow");
    rules.push("dead-allow");
    for (i, rule) in rules.iter().enumerate() {
        let n = findings.iter().filter(|f| f.rule == *rule && !f.allowed).count();
        s.push_str(&format!("\"{rule}\": {n}"));
        if i + 1 < rules.len() {
            s.push_str(", ");
        }
    }
    s.push_str("},\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"allowed\": {}, \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule,
            f.allowed,
            json_escape(&f.message)
        ));
        s.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_backslash_and_control() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn report_counts_violations_and_allowed_separately() {
        let findings = vec![
            Finding {
                file: "a.rs".into(),
                line: 1,
                rule: "wall-clock".into(),
                message: "m".into(),
                allowed: false,
            },
            Finding {
                file: "a.rs".into(),
                line: 2,
                rule: "thread-sleep".into(),
                message: "m".into(),
                allowed: true,
            },
        ];
        let json = lint_json(1, &findings);
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"allowed\": 1"));
        assert!(json.contains("\"wall-clock\": 1"));
        assert!(json.contains("\"thread-sleep\": 0"));
    }
}
