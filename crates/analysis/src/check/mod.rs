//! mtcheck — dynamic concurrency analysis over the ranked-lock layer.
//!
//! Complements the static mtlint half of this crate with two runtime
//! checks built on `mtgpu_simtime::mtcheck` (the debug-build vector-clock
//! instrumentation inside the ranked locks):
//!
//! 1. **Happens-before race detection** — every scenario run maintains
//!    per-thread vector clocks and flags unordered conflicting accesses to
//!    [`mtgpu_simtime::Shadow`] cells, annotated with the lock ranks each
//!    side held.
//! 2. **DPOR-lite schedule exploration** ([`explore`]) — small seeded
//!    scenarios ([`scenarios`]) run under a cooperative scheduler that
//!    records every lock-acquisition sync point; the explorer then
//!    systematically permutes the decision prefix, pruning branches whose
//!    dependence footprints cannot conflict, and replays any schedule id
//!    bit-for-bit.
//!
//! Schedule ids are the decision prefix rendered as dot-separated indices
//! into the sorted enabled set (`s:1.0.2`; the empty prefix is `s:-`).
//! Results are persisted to `results/mtcheck.json` by the `mtcheck` CLI.

pub mod explore;
pub mod json;
pub mod scenarios;

/// Renders a schedule prefix as a stable, greppable id.
pub fn schedule_id(prefix: &[u32]) -> String {
    if prefix.is_empty() {
        return "s:-".to_string();
    }
    let digits: Vec<String> = prefix.iter().map(|c| c.to_string()).collect();
    format!("s:{}", digits.join("."))
}

/// Parses a schedule id back into the choice prefix. Accepts both the
/// `s:`-prefixed form and bare dotted digits.
pub fn parse_schedule_id(id: &str) -> Result<Vec<u32>, String> {
    let body = id.strip_prefix("s:").unwrap_or(id);
    if body.is_empty() || body == "-" {
        return Ok(Vec::new());
    }
    body.split('.')
        .map(|d| d.parse::<u32>().map_err(|_| format!("bad schedule id component `{d}` in `{id}`")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_ids_round_trip() {
        for prefix in [vec![], vec![0], vec![1, 0, 2], vec![3, 3, 3, 3]] {
            assert_eq!(parse_schedule_id(&schedule_id(&prefix)).unwrap(), prefix);
        }
        assert_eq!(parse_schedule_id("1.2.3").unwrap(), vec![1, 2, 3]);
        assert!(parse_schedule_id("s:1.x").is_err());
    }
}
