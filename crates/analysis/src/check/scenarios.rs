//! The mtcheck scenario matrix: small, seeded, two-thread workloads over
//! the real runtime components, each hammering one of the shadowed state
//! cells the ISSUE's race detector audits:
//!
//! | scenario            | component          | shadow cell               |
//! |---------------------|--------------------|---------------------------|
//! | `dispatcher-churn`  | [`BindingManager`] | `sched.shard.free`        |
//! | `swap-vs-free`      | [`MemoryManager`]  | `mm.swap`                 |
//! | `lease-admit-vs-reap` | [`LeaseBook`]    | `policy.lease.global_used`|
//! | `migrate-vs-launch` | [`MemoryManager`]  | `mm.swap` (migration path)|
//! | `fixture-race`      | seeded fixture     | `fixture.check.cell`      |
//!
//! Every builder constructs *fresh* component state on the (unregistered)
//! setup thread, so the session only observes the participants, and the
//! participants only use public runtime APIs. `fixture-race` is the
//! deliberately broken control: two threads mutate a shadow cell under two
//! *different* ranked locks, which the detector must flag.

use mtgpu_core::memory::AllocKind;
use mtgpu_core::{
    BindingManager, CtxId, GpuLease, LeaseBook, MemoryConfig, MemoryManager, RuntimeMetrics,
    SchedulerPolicy, TenantPolicyConfig,
};
use mtgpu_gpusim::{DeviceId, Gpu, GpuSpec, KernelArg};
use mtgpu_simtime::mtcheck::Participant;
use mtgpu_simtime::{Clock, LockRank, RankedMutex, Shadow, SimDuration};
use std::sync::Arc;

/// One named scenario of the matrix.
pub struct Scenario {
    pub name: &'static str,
    pub about: &'static str,
    /// Whether a clean exploration is the pass criterion. The seeded
    /// fixture inverts this: it exists to prove the detector fires.
    pub expect_clean: bool,
    builder: fn() -> Vec<Participant>,
}

impl Scenario {
    /// Builds fresh participants for one run.
    pub fn participants(&self) -> Vec<Participant> {
        (self.builder)()
    }
}

/// The full matrix, in report order.
pub fn all() -> &'static [Scenario] {
    &MATRIX
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    MATRIX.iter().find(|s| s.name == name)
}

static MATRIX: [Scenario; 5] = [
    Scenario {
        name: "dispatcher-churn",
        about: "two contexts churn try_acquire_on/release against one \
                2-vGPU device (shard free-list under SHARD_STATE)",
        expect_clean: true,
        builder: dispatcher_churn,
    },
    Scenario {
        name: "swap-vs-free",
        about: "one context mallocs (swap reserve) while another frees \
                pre-staged allocations (swap release) under MM_STATE",
        expect_clean: true,
        builder: swap_vs_free,
    },
    Scenario {
        name: "lease-admit-vs-reap",
        about: "admission charges race the TTL reaper over the lease \
                book's global-used cell under TENANT_POLICY",
        expect_clean: true,
        builder: lease_admit_vs_reap,
    },
    Scenario {
        name: "migrate-vs-launch",
        about: "migration planning + context teardown race a launch-\
                closure walk over the same memory-manager state",
        expect_clean: true,
        builder: migrate_vs_launch,
    },
    Scenario {
        name: "fixture-race",
        about: "seeded control: two threads mutate one shadow cell under \
                two different ranked locks — must be detected",
        expect_clean: false,
        builder: fixture_race,
    },
];

fn metrics() -> Arc<RuntimeMetrics> {
    Arc::new(RuntimeMetrics::default())
}

fn dispatcher_churn() -> Vec<Participant> {
    let bm =
        Arc::new(BindingManager::new_seeded(SchedulerPolicy::FcfsRoundRobin, metrics(), 0x5eed));
    let gpu = Gpu::new(GpuSpec::tesla_c2050(), Clock::virtual_clock(), 0);
    bm.add_device(DeviceId(0), gpu, 2).expect("attach scenario device");
    (0..2u64)
        .map(|t| {
            let bm = Arc::clone(&bm);
            Box::new(move || {
                let ctx = CtxId(100 + t);
                for _ in 0..3 {
                    if let Some(binding) = bm.try_acquire_on(ctx, DeviceId(0)) {
                        bm.release(ctx, binding.vgpu);
                    }
                }
            }) as Participant
        })
        .collect()
}

fn swap_vs_free() -> Vec<Participant> {
    let mm = Arc::new(MemoryManager::new(MemoryConfig::default(), metrics()));
    mm.register_ctx(CtxId(1));
    mm.register_ctx(CtxId(2));
    // Pre-stage the allocations thread B frees, so both sides are inside
    // the session from their first lock acquisition.
    let staged: Vec<_> = (0..4)
        .map(|_| mm.malloc(CtxId(2), 4096, AllocKind::Linear).expect("stage allocation"))
        .collect();
    let (ma, mb) = (Arc::clone(&mm), mm);
    vec![
        Box::new(move || {
            for _ in 0..4 {
                ma.malloc(CtxId(1), 4096, AllocKind::Linear).expect("scenario malloc");
            }
        }),
        Box::new(move || {
            for vaddr in staged {
                mb.free(CtxId(2), vaddr, None).expect("scenario free");
            }
        }),
    ]
}

fn lease_admit_vs_reap() -> Vec<Participant> {
    let lease = GpuLease { mem_mb: 4, max_contexts: 0, ttl_s: 1, priority: 100 };
    let cfg = TenantPolicyConfig::default().with_default_lease(lease);
    let book = Arc::new(LeaseBook::new(Some(cfg)));
    let clock = Clock::virtual_clock();
    let t0 = clock.now();
    book.register_ctx(CtxId(1), t0);
    book.register_ctx(CtxId(2), t0);
    // Advance past the TTL on the setup thread: expiry is then purely a
    // question of whether the reaper's tick runs before an admit.
    clock.advance(SimDuration::from_secs(2));
    let reap_now = clock.now();
    let (admit, reaper) = (Arc::clone(&book), book);
    vec![
        Box::new(move || {
            for _ in 0..3 {
                // May legitimately fail once the reaper expired the lease;
                // the point is the lock/cell traffic, not the verdict.
                if admit.try_charge(CtxId(1), 64 << 10).is_ok() {
                    admit.uncharge(CtxId(1), 64 << 10);
                }
            }
        }),
        Box::new(move || {
            let (_expired, _doomed) = reaper.tick(reap_now);
            reaper.release_ctx(CtxId(2));
        }),
    ]
}

fn migrate_vs_launch() -> Vec<Participant> {
    let mm = Arc::new(MemoryManager::new(MemoryConfig::default(), metrics()));
    mm.register_ctx(CtxId(1));
    mm.register_ctx(CtxId(2));
    let launch_args: Vec<KernelArg> = (0..2)
        .map(|_| KernelArg::Ptr(mm.malloc(CtxId(1), 4096, AllocKind::Linear).expect("stage arg")))
        .collect();
    for _ in 0..2 {
        mm.malloc(CtxId(2), 4096, AllocKind::Linear).expect("stage migration source");
    }
    let (launcher, migrator) = (Arc::clone(&mm), mm);
    vec![
        Box::new(move || {
            for _ in 0..3 {
                let bases =
                    launcher.launch_closure(CtxId(1), &launch_args).expect("launch closure");
                launcher.mark_launched(CtxId(1), &bases);
            }
        }),
        Box::new(move || {
            let _plan = migrator.migration_plan(CtxId(2));
            let _plan_again = migrator.migration_plan(CtxId(2));
            migrator.remove_ctx(CtxId(2), None);
        }),
    ]
}

const CHK_A: LockRank = LockRank { value: 240, name: "CHK_A" };
const CHK_B: LockRank = LockRank { value: 241, name: "CHK_B" };

/// The deliberately seeded race: the shadow cell sits behind a raw shim
/// mutex (physically synchronized, no UB) while each thread "protects" it
/// with a *different* ranked lock — so the model sees no ordering edge.
fn fixture_race() -> Vec<Participant> {
    struct Fx {
        a: RankedMutex<()>,
        b: RankedMutex<()>,
        cell: parking_lot::Mutex<Shadow<u64>>,
    }
    let fx = Arc::new(Fx {
        a: RankedMutex::new(CHK_A, ()),
        b: RankedMutex::new(CHK_B, ()),
        cell: parking_lot::Mutex::new(Shadow::new("fixture.check.cell", 0)),
    });
    let (f1, f2) = (Arc::clone(&fx), fx);
    vec![
        Box::new(move || {
            let _g = f1.a.lock();
            **f1.cell.lock() += 1;
        }),
        Box::new(move || {
            let _g = f2.b.lock();
            **f2.cell.lock() += 1;
        }),
    ]
}
