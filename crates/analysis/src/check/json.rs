//! `results/mtcheck.json` emission: explored-schedule fingerprints and
//! violations, hand-assembled like the rest of this dependency-free crate
//! (see [`crate::report`] for the escaping rules).

use super::explore::ScenarioReport;
use crate::report::json_escape;

/// Serializes the whole exploration matrix.
pub fn mtcheck_json(reports: &[ScenarioReport]) -> String {
    let mut s = String::from("{\n  \"scenarios\": [\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str(&scenario_json(r, "    "));
        s.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn scenario_json(r: &ScenarioReport, pad: &str) -> String {
    let mut s = format!("{pad}{{\n");
    s.push_str(&format!("{pad}  \"name\": \"{}\",\n", json_escape(&r.name)));
    s.push_str(&format!("{pad}  \"expect_clean\": {},\n", r.expect_clean));
    s.push_str(&format!("{pad}  \"passed\": {},\n", r.passed()));
    s.push_str(&format!("{pad}  \"runs\": {},\n", r.runs));
    s.push_str(&format!("{pad}  \"distinct_schedules\": {},\n", r.distinct()));
    s.push_str(&format!("{pad}  \"pruned_branches\": {},\n", r.pruned));
    s.push_str(&format!("{pad}  \"schedules\": [\n"));
    for (i, sched) in r.schedules.iter().enumerate() {
        s.push_str(&format!(
            "{pad}    {{\"id\": \"{}\", \"fingerprint\": \"{:016x}\", \"decisions\": {}, \"events\": {}, \"clean\": {}}}",
            json_escape(&sched.id),
            sched.fingerprint,
            sched.decisions,
            sched.events,
            sched.clean
        ));
        s.push_str(if i + 1 < r.schedules.len() { ",\n" } else { "\n" });
    }
    s.push_str(&format!("{pad}  ],\n"));
    s.push_str(&format!("{pad}  \"violations\": [\n"));
    for (i, v) in r.violations.iter().enumerate() {
        s.push_str(&format!(
            "{pad}    {{\"schedule\": \"{}\", \"kind\": \"{}\", \"detail\": \"{}\"}}",
            json_escape(&v.schedule),
            v.kind,
            json_escape(&v.detail)
        ));
        s.push_str(if i + 1 < r.violations.len() { ",\n" } else { "\n" });
    }
    s.push_str(&format!("{pad}  ]\n"));
    s.push_str(&format!("{pad}}}"));
    s
}
