//! The DPOR-lite schedule explorer.
//!
//! Depth-first over decision prefixes: run the scenario under a prefix,
//! look at every decision the cooperative scheduler recorded past that
//! prefix, and enqueue each unexplored alternative choice — *unless* the
//! dependence footprint of the chosen segment is disjoint from every later
//! segment's footprint, in which case reordering that decision cannot
//! change any happens-before relation and the whole branch is pruned
//! (the "lite" part of dynamic partial-order reduction: footprints are
//! per-segment lock/cell sets, not full vector-clock dependence).
//!
//! Replays are bit-for-bit: the same schedule id always yields the same
//! event trace and fingerprint, which the explorer relies on to dedup
//! converging prefixes.

use super::scenarios::Scenario;
use super::schedule_id;
use mtgpu_simtime::mtcheck::{self, Decision, RunReport};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One distinct explored schedule.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    pub id: String,
    pub fingerprint: u64,
    pub decisions: usize,
    pub events: u64,
    pub clean: bool,
}

/// One violation, pinned to the schedule that produced it.
#[derive(Debug, Clone)]
pub struct Violation {
    pub schedule: String,
    pub kind: &'static str,
    pub detail: String,
}

/// Everything the explorer learned about one scenario.
#[derive(Debug)]
pub struct ScenarioReport {
    pub name: String,
    pub expect_clean: bool,
    /// Total runs spent (distinct + converged duplicates).
    pub runs: usize,
    /// Branches skipped by the footprint-disjointness pruning.
    pub pruned: usize,
    pub schedules: Vec<ScheduleOutcome>,
    pub violations: Vec<Violation>,
}

impl ScenarioReport {
    /// Distinct schedules (by fingerprint) actually exercised.
    pub fn distinct(&self) -> usize {
        self.schedules.len()
    }

    /// Whether the scenario met its expectation: clean everywhere for the
    /// workspace scenarios, at least one detected race for the fixture.
    pub fn passed(&self) -> bool {
        if self.expect_clean {
            self.violations.is_empty()
        } else {
            self.violations.iter().any(|v| v.kind == "race")
        }
    }
}

/// Runs one scenario under a single pinned schedule (the replay entry
/// point — also what the regression tests use).
pub fn replay(scn: &Scenario, prefix: &[u32]) -> RunReport {
    mtcheck::explore(prefix, scn.participants())
}

/// Explores up to `budget` schedules of `scn`, breadth-first from the
/// empty prefix.
pub fn explore_scenario(scn: &Scenario, budget: usize) -> ScenarioReport {
    let mut report = ScenarioReport {
        name: scn.name.to_string(),
        expect_clean: scn.expect_clean,
        runs: 0,
        pruned: 0,
        schedules: Vec::new(),
        violations: Vec::new(),
    };
    let mut frontier: VecDeque<Vec<u32>> = VecDeque::from([Vec::new()]);
    let mut queued: BTreeSet<Vec<u32>> = BTreeSet::from([Vec::new()]);
    let mut seen: BTreeMap<u64, String> = BTreeMap::new();

    while let Some(prefix) = frontier.pop_front() {
        if report.runs >= budget {
            break;
        }
        let run = mtcheck::explore(&prefix, scn.participants());
        report.runs += 1;
        let id = schedule_id(&prefix);
        record_violations(&mut report, &id, &run);
        if seen.insert(run.fingerprint, id.clone()).is_none() {
            report.schedules.push(ScheduleOutcome {
                id,
                fingerprint: run.fingerprint,
                decisions: run.decisions.len(),
                events: run.events,
                clean: run.clean(),
            });
        }
        // Branch generation: flip every under-determined decision past the
        // prefix whose segment can actually interfere with a later one.
        for (i, d) in run.decisions.iter().enumerate().skip(prefix.len()) {
            if d.enabled.len() <= 1 {
                continue;
            }
            if !conflicts_later(&run.decisions, i) {
                report.pruned += d.enabled.len() - 1;
                continue;
            }
            for alt in 0..d.enabled.len() as u32 {
                if alt == d.chosen {
                    continue;
                }
                let mut flipped: Vec<u32> = run.decisions[..i].iter().map(|d| d.chosen).collect();
                flipped.push(alt);
                if queued.insert(flipped.clone()) {
                    frontier.push_back(flipped);
                }
            }
        }
    }
    report
}

/// Whether decision `i`'s segment footprint intersects any later segment's:
/// the DPOR dependence test. Disjoint segments commute, so alternatives at
/// `i` are sound to prune.
fn conflicts_later(decisions: &[Decision], i: usize) -> bool {
    let fp: BTreeSet<u64> = decisions[i].footprint.iter().copied().collect();
    if fp.is_empty() {
        return false;
    }
    decisions[i + 1..].iter().any(|d| d.footprint.iter().any(|w| fp.contains(w)))
}

fn record_violations(report: &mut ScenarioReport, id: &str, run: &RunReport) {
    for race in &run.races {
        report.violations.push(Violation {
            schedule: id.to_string(),
            kind: "race",
            detail: race.describe(),
        });
    }
    for (tid, payload) in &run.panics {
        report.violations.push(Violation {
            schedule: id.to_string(),
            kind: "panic",
            detail: format!("thread {tid} panicked: {payload}"),
        });
    }
    if let Some(dead) = &run.deadlock {
        report.violations.push(Violation {
            schedule: id.to_string(),
            kind: "deadlock",
            detail: dead.clone(),
        });
    }
    if run.stalled {
        report.violations.push(Violation {
            schedule: id.to_string(),
            kind: "stall",
            detail: "watchdog fired: a granted thread never reached its next sync point"
                .to_string(),
        });
    }
}
