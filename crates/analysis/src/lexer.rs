//! A minimal hand-rolled Rust lexer — just enough fidelity for mtlint's
//! token-pattern rules.
//!
//! Produces identifiers, punctuation, and literals with their 1-based line
//! numbers; comments and whitespace are stripped. The tricky corners that
//! matter for not mis-lexing real workspace code are handled: nested block
//! comments, string escapes, raw strings (`r"…"`, `r#"…"#`), byte strings,
//! and the lifetime-vs-char-literal ambiguity after `'`.

/// Token category. Rules mostly match on [`Token::text`]; the kind
/// disambiguates `'a` (lifetime) from `'a'` (literal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Punct,
    Literal,
    Lifetime,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Token {
    fn new(kind: TokKind, text: impl Into<String>, line: usize) -> Self {
        Token { kind, text: text.into(), line }
    }
}

/// Lexes `src` into a token stream. Never panics on malformed input; an
/// unterminated literal simply consumes to end of file.
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == '"' {
            let l = line;
            i = skip_string(&b, i, &mut line);
            out.push(Token::new(TokKind::Literal, "\"\"", l));
        } else if c == '\'' {
            let l = line;
            if b.get(i + 1) == Some(&'\\') {
                // Escaped char literal: '\n', '\u{..}', …
                i += 2;
                while i < b.len() && b[i] != '\'' {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i += 1;
                out.push(Token::new(TokKind::Literal, "''", l));
            } else if b.get(i + 2) == Some(&'\'') {
                // Simple char literal: 'a'.
                i += 3;
                out.push(Token::new(TokKind::Literal, "''", l));
            } else {
                // Lifetime: 'a, 'static, '_.
                i += 1;
                let start = i;
                while i < b.len() && (b[i] == '_' || b[i].is_alphanumeric()) {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                out.push(Token::new(TokKind::Lifetime, text, l));
            }
        } else if c.is_ascii_digit() {
            let l = line;
            let start = i;
            while i < b.len() {
                let d = b[i];
                if d.is_ascii_alphanumeric() || d == '_' {
                    i += 1;
                } else if d == '.' && b.get(i + 1).is_some_and(|n| n.is_ascii_digit()) {
                    // Consume `1.5` but stop before `0..n` and `x.0.iter()`.
                    i += 1;
                } else {
                    break;
                }
            }
            let text: String = b[start..i].iter().collect();
            out.push(Token::new(TokKind::Literal, text, l));
        } else if c == '_' || c.is_alphanumeric() {
            let l = line;
            let start = i;
            while i < b.len() && (b[i] == '_' || b[i].is_alphanumeric()) {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            if (text == "r" || text == "br") && matches!(b.get(i), Some('"') | Some('#')) {
                let mut hashes = 0;
                while b.get(i) == Some(&'#') {
                    hashes += 1;
                    i += 1;
                }
                if b.get(i) == Some(&'"') {
                    // Raw (byte) string: scan for `"` followed by `hashes` #s.
                    i += 1;
                    while i < b.len() {
                        if b[i] == '\n' {
                            line += 1;
                            i += 1;
                        } else if b[i] == '"' && (0..hashes).all(|k| b.get(i + 1 + k) == Some(&'#'))
                        {
                            i += 1 + hashes;
                            break;
                        } else {
                            i += 1;
                        }
                    }
                    out.push(Token::new(TokKind::Literal, "\"\"", l));
                } else {
                    // Raw identifier (`r#type`): lex the ident after the #s.
                    let start = i;
                    while i < b.len() && (b[i] == '_' || b[i].is_alphanumeric()) {
                        i += 1;
                    }
                    let text: String = b[start..i].iter().collect();
                    out.push(Token::new(TokKind::Ident, text, l));
                }
            } else if text == "b" && b.get(i) == Some(&'"') {
                i = skip_string(&b, i, &mut line);
                out.push(Token::new(TokKind::Literal, "\"\"", l));
            } else {
                out.push(Token::new(TokKind::Ident, text, l));
            }
        } else if c == ':' && b.get(i + 1) == Some(&':') {
            out.push(Token::new(TokKind::Punct, "::", line));
            i += 2;
        } else {
            out.push(Token::new(TokKind::Punct, c.to_string(), line));
            i += 1;
        }
    }
    out
}

/// Skips a `"…"` string starting at the opening quote; returns the index
/// just past the closing quote and updates `line` for embedded newlines.
fn skip_string(b: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            // An escape may hide a newline (string line-continuation).
            '\\' => {
                if b.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Removes every `#[cfg(test)]`-gated item (attribute through closing brace
/// or semicolon) from the stream. Test modules are full of deliberate
/// sleeps, wall-clock reads, and raw locks; the lint's contract covers
/// shipped runtime code only.
pub fn strip_test_regions(toks: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(&toks, i) {
            i = skip_attr(&toks, i);
            while i < toks.len() && toks[i].text == "#" {
                i = skip_attr(&toks, i);
            }
            let mut depth = 0usize;
            while i < toks.len() {
                match toks[i].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            out.push(toks[i].clone());
            i += 1;
        }
    }
    out
}

fn is_cfg_test_attr(toks: &[Token], i: usize) -> bool {
    let t = |k: usize| toks.get(i + k).map(|t| t.text.as_str());
    t(0) == Some("#")
        && t(1) == Some("[")
        && t(2) == Some("cfg")
        && t(3) == Some("(")
        && t(4) == Some("test")
        && t(5) == Some(")")
        && t(6) == Some("]")
}

/// Skips a `#[…]` attribute starting at `#`; returns the index just past
/// the matching `]`.
fn skip_attr(toks: &[Token], mut i: usize) -> usize {
    debug_assert_eq!(toks[i].text, "#");
    i += 1;
    if toks.get(i).map(|t| t.text.as_str()) != Some("[") {
        return i;
    }
    let mut depth = 0usize;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_paths() {
        assert_eq!(texts("a.b::c()"), ["a", ".", "b", "::", "c", "(", ")"]);
    }

    #[test]
    fn comments_are_stripped_and_lines_tracked() {
        let toks = lex("// top\nfoo /* multi\nline */ bar");
        assert_eq!(toks.len(), 2);
        assert_eq!((toks[0].text.as_str(), toks[0].line), ("foo", 2));
        assert_eq!((toks[1].text.as_str(), toks[1].line), ("bar", 3));
    }

    #[test]
    fn nested_block_comment() {
        assert_eq!(texts("/* a /* b */ c */ x"), ["x"]);
    }

    #[test]
    fn string_escapes_do_not_terminate_early() {
        assert_eq!(texts(r#"f("a\"b") g"#), ["f", "(", "\"\"", ")", "g"]);
    }

    #[test]
    fn string_line_continuations_keep_line_numbers() {
        let toks = lex("let s = \"a \\\n   b \\\n   c\";\nnext");
        let next = toks.iter().find(|t| t.text == "next").unwrap();
        assert_eq!(next.line, 4);
    }

    #[test]
    fn raw_strings_with_hashes() {
        assert_eq!(texts(r###"x r#"quote " inside"# y"###), ["x", "\"\"", "y"]);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'q'; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.clone()).collect();
        assert_eq!(lifetimes, ["a", "a"]);
        assert_eq!(toks.iter().filter(|t| t.text == "''").count(), 1);
    }

    #[test]
    fn tuple_index_method_call_survives() {
        // `.0.iter()` must not swallow `iter` into the number literal.
        assert!(texts("t.0.iter()").contains(&"iter".to_string()));
    }

    #[test]
    fn float_and_range_literals() {
        assert_eq!(texts("1.5 0..10"), ["1.5", "0", ".", ".", "10"]);
    }

    #[test]
    fn cfg_test_mod_is_stripped() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn dead() { sleep(); } }\nfn tail() {}";
        let toks = strip_test_regions(lex(src));
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"live"));
        assert!(texts.contains(&"tail"));
        assert!(!texts.contains(&"sleep"));
    }

    #[test]
    fn cfg_test_with_extra_attr_and_semicolon_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nuse std::thread::sleep;\nfn live() {}";
        let toks = strip_test_regions(lex(src));
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(!texts.contains(&"sleep"));
        assert!(texts.contains(&"live"));
    }
}
