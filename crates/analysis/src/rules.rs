//! The determinism rules.
//!
//! Each rule flags a construct that can make a replayed run diverge from
//! the recorded one (§4.6 of the paper needs call streams to re-execute
//! byte-identically) or that breaks the workspace's concurrency discipline:
//!
//! - `hashmap-iter` — iterating a `HashMap`/`HashSet` observes allocator
//!   randomized order; scheduler, memory-manager, and replay paths must use
//!   `BTreeMap` or sort first.
//! - `wall-clock` — `Instant::now`/`SystemTime::now` outside `mtgpu-simtime`
//!   leaks real time into simulated control flow.
//! - `thread-sleep` — `thread::sleep` outside the `Clock` bypasses the
//!   scaled simulation clock.
//! - `notify-all` — broadcast wakeups hide lost-wakeup bugs and make wake
//!   order scheduler-dependent; each call site must justify why a targeted
//!   `notify_one` is wrong.
//! - `non-det-rng` — any randomness source other than the seeded `DetRng`.
//! - `unranked-lock` — in `mtgpu-core`/`mtgpu-gpusim`, every lock must be a
//!   `Ranked*` wrapper constructed with a declared `lock_rank` constant so
//!   the runtime order checker can see it.

use crate::lexer::{TokKind, Token};
use std::collections::BTreeSet;

/// Every lintable rule name, in the order reports list them.
pub const RULES: &[&str] =
    &["hashmap-iter", "wall-clock", "thread-sleep", "notify-all", "non-det-rng", "unranked-lock"];

/// One lint hit. `allowed` is set after matching against the file's
/// [`crate::allow::AllowSet`].
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: String,
    pub message: String,
    pub allowed: bool,
}

/// Methods whose call on a hash collection observes iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Identifiers that reach for a non-deterministic randomness source.
const RNG_IDENTS: &[&str] = &["thread_rng", "from_entropy", "StdRng", "SmallRng", "RandomState"];

/// Whether the `unranked-lock` rule applies to `path`: the ranked-lock
/// contract covers the runtime crates — core, gpusim, and since the
/// mtcheck work also the client-facing `api` and workload `loadgen`
/// crates (their locks sit on the same call paths the race detector
/// audits) — plus the lint's own fixtures.
fn ranked_lock_scope(path: &str) -> bool {
    ["crates/core/", "crates/gpusim/", "crates/api/", "crates/loadgen/"]
        .iter()
        .any(|p| path.contains(p))
        || path.contains("fixtures")
}

/// Runs every rule over one file's (test-stripped) token stream.
pub fn scan(path: &str, toks: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    let hash_idents = collect_hash_idents(toks);
    let check_ranks = ranked_lock_scope(path);
    let text = |k: usize| toks.get(k).map(|t| t.text.as_str());
    let mut push = |line: usize, rule: &str, message: String| {
        out.push(Finding {
            file: path.to_string(),
            line,
            rule: rule.to_string(),
            message,
            allowed: false,
        });
    };

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident && t.text != "#" {
            continue;
        }
        let word = t.text.as_str();

        // hashmap-iter: `<hash ident>.<iter method>(…)`.
        if ITER_METHODS.contains(&word)
            && i >= 2
            && text(i - 1) == Some(".")
            && text(i + 1) == Some("(")
            && toks[i - 2].kind == TokKind::Ident
            && hash_idents.contains(toks[i - 2].text.as_str())
        {
            push(
                t.line,
                "hashmap-iter",
                format!(
                    "`{}.{}()` iterates a HashMap/HashSet in nondeterministic order; use a BTreeMap/BTreeSet or sort first",
                    toks[i - 2].text, word
                ),
            );
        }

        // hashmap-iter: `for … in <hash ident> {` (direct IntoIterator).
        if word == "in" {
            for j in (i + 1)..toks.len().min(i + 16) {
                if toks[j].text == "{" {
                    let recv = &toks[j - 1];
                    if recv.kind == TokKind::Ident && hash_idents.contains(recv.text.as_str()) {
                        push(
                            t.line,
                            "hashmap-iter",
                            format!(
                                "`for … in {}` iterates a HashMap/HashSet in nondeterministic order",
                                recv.text
                            ),
                        );
                    }
                    break;
                }
            }
        }

        // wall-clock: Instant::now / SystemTime::now.
        if (word == "Instant" || word == "SystemTime")
            && text(i + 1) == Some("::")
            && text(i + 2) == Some("now")
        {
            push(
                t.line,
                "wall-clock",
                format!("`{word}::now()` reads the wall clock; simulated control flow must go through mtgpu-simtime's Clock"),
            );
        }

        // thread-sleep: thread::sleep.
        if word == "thread" && text(i + 1) == Some("::") && text(i + 2) == Some("sleep") {
            push(
                t.line,
                "thread-sleep",
                "`thread::sleep` bypasses the scaled simulation clock; use Clock::sleep_sim or a condvar wait".to_string(),
            );
        }

        // notify-all: any call site (definitions `fn notify_all` are fine).
        if word == "notify_all" && (i == 0 || text(i - 1) != Some("fn")) {
            push(
                t.line,
                "notify-all",
                "`notify_all` broadcast wakeup: wake order becomes scheduler-dependent; prefer notify_one or justify the broadcast".to_string(),
            );
        }

        // non-det-rng.
        if RNG_IDENTS.contains(&word) {
            push(
                t.line,
                "non-det-rng",
                format!("`{word}` is a nondeterministic randomness source; use the seeded DetRng"),
            );
        }
        if word == "rand" && text(i + 1) == Some("::") {
            push(
                t.line,
                "non-det-rng",
                "`rand::…` is a nondeterministic randomness source; use the seeded DetRng"
                    .to_string(),
            );
        }

        // unranked-lock (runtime crates only).
        if check_ranks && matches!(word, "Mutex" | "RwLock" | "Condvar") {
            if text(i + 1) == Some("::") && text(i + 2) == Some("new") {
                push(
                    t.line,
                    "unranked-lock",
                    format!("raw `{word}::new` in a runtime crate; use Ranked{word} with a lock_rank constant"),
                );
            } else if i >= 1 && text(i - 1) == Some(":") {
                push(
                    t.line,
                    "unranked-lock",
                    format!("field declared as raw `{word}` in a runtime crate; use Ranked{word}"),
                );
            }
        }
        if check_ranks
            && matches!(word, "RankedMutex" | "RankedRwLock")
            && text(i + 1) == Some("::")
            && text(i + 2) == Some("new")
            && text(i + 3) == Some("(")
            && text(i + 4) != Some("lock_rank")
        {
            push(
                t.line,
                "unranked-lock",
                format!("`{word}::new` without a `lock_rank::…` constant; every ranked lock must declare its rank at the construction site"),
            );
        }
    }
    out
}

/// Pass 1: identifiers bound to a `HashMap`/`HashSet` in this file, from
/// type annotations (`x: HashMap<…>` — fields, params, lets) and inferred
/// lets (`let [mut] x = HashMap::new()`).
fn collect_hash_idents(toks: &[Token]) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].text != "HashMap" && toks[i].text != "HashSet" {
            continue;
        }
        let prev = |k: usize| i.checked_sub(k).map(|j| toks[j].text.as_str());
        if prev(1) == Some(":") && i >= 2 && toks[i - 2].kind == TokKind::Ident {
            set.insert(toks[i - 2].text.clone());
        } else if prev(1) == Some("=") && i >= 2 && toks[i - 2].kind == TokKind::Ident {
            let binder = prev(3);
            if prev(3) == Some("let") || (binder == Some("mut") && prev(4) == Some("let")) {
                set.insert(toks[i - 2].text.clone());
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        scan(path, &lexer::strip_test_regions(lexer::lex(src)))
    }

    fn rules_hit(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn btreemap_methods_are_clean() {
        let src = "struct S { m: BTreeMap<u32, u32> }\nfn f(s: &S) { for v in s.m.values() {} }";
        assert!(run("crates/core/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_field_iteration_is_flagged() {
        let src = "struct S { m: HashMap<u32, u32> }\nfn f(s: &S) { for v in s.m.values() {} }";
        let f = run("crates/core/x.rs", src);
        assert_eq!(rules_hit(&f), ["hashmap-iter"]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn hashmap_direct_for_loop_is_flagged() {
        let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2); for kv in &m {} }";
        let f = run("crates/core/x.rs", src);
        assert_eq!(rules_hit(&f), ["hashmap-iter"]);
    }

    #[test]
    fn hashmap_key_access_is_clean() {
        let src = "struct S { m: HashMap<u32, u32> }\nfn f(s: &S) -> Option<&u32> { s.m.get(&1) }";
        assert!(run("crates/core/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_and_sleep_are_flagged() {
        let src = "fn f() { let t = Instant::now(); std::thread::sleep(d); SystemTime::now(); }";
        let f = run("crates/core/x.rs", src);
        assert_eq!(rules_hit(&f), ["wall-clock", "thread-sleep", "wall-clock"]);
    }

    #[test]
    fn notify_all_definition_is_clean_call_is_flagged() {
        let src = "pub fn notify_all(&self) { self.cv.notify_all(); }";
        let f = run("crates/core/x.rs", src);
        assert_eq!(rules_hit(&f), ["notify-all"]);
    }

    #[test]
    fn rng_sources_are_flagged() {
        let src = "fn f() { let r = rand::thread_rng(); let s = StdRng::from_entropy(); }";
        let f = run("crates/core/x.rs", src);
        assert!(f.iter().all(|f| f.rule == "non-det-rng"));
        assert!(f.len() >= 3);
    }

    #[test]
    fn unranked_lock_only_in_runtime_crates() {
        let src =
            "struct S { m: Mutex<u32> }\nfn f() { let m = Mutex::new(0); let c = Condvar::new(); }";
        let core = run("crates/core/x.rs", src);
        assert_eq!(rules_hit(&core), ["unranked-lock", "unranked-lock", "unranked-lock"]);
        assert!(run("crates/cluster/x.rs", src).is_empty());
    }

    #[test]
    fn ranked_lock_without_rank_is_flagged() {
        let ok = "static L: RankedMutex<u32> = RankedMutex::new(lock_rank::MM_STATE, 0);";
        assert!(run("crates/core/x.rs", ok).is_empty());
        let bad = "fn f() { let l = RankedMutex::new(some_rank(), 0); }";
        assert_eq!(rules_hit(&run("crates/core/x.rs", bad)), ["unranked-lock"]);
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn f() { Instant::now(); cv.notify_all(); } }";
        assert!(run("crates/core/x.rs", src).is_empty());
    }
}
