//! The workspace lock graph.
//!
//! Rank declarations are harvested from `crates/simtime/src/sync.rs`
//! (`pub const NAME: LockRank = LockRank { value: N, name: "…" }`) and
//! construction sites from the runtime crates
//! (`RankedMutex::new(lock_rank::NAME, …)` / `RankedRwLock::new(…)`).
//!
//! Because ranks impose a total acquisition order, the legal graph is the
//! chain of declared ranks in ascending order; an edge `A → B` reads "A may
//! be held while acquiring B". A *cycle* in this model is a pair of locks
//! with equal rank values — neither orders before the other, so the runtime
//! checker cannot separate them and the order is ambiguous. Undeclared
//! ranks referenced at a construction site are also errors.

use crate::lexer::{self, Token};
use crate::report::json_escape;

/// One declared rank with every construction site that uses it.
#[derive(Debug, Clone)]
pub struct LockNode {
    pub name: String,
    pub rank: u64,
    pub sites: Vec<Site>,
}

/// One `Ranked*::new(lock_rank::…, …)` construction site.
#[derive(Debug, Clone)]
pub struct Site {
    pub rank_name: String,
    pub kind: String,
    pub file: String,
    pub line: usize,
}

/// The assembled graph plus any consistency errors.
#[derive(Debug)]
pub struct LockGraph {
    pub nodes: Vec<LockNode>,
    /// Ascending-rank chain: `(outer, inner)` pairs.
    pub edges: Vec<(String, String)>,
    pub errors: Vec<String>,
}

impl LockGraph {
    pub fn acyclic(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Extracts `(name, value)` pairs from the `lock_rank` module source.
/// Test-only ranks (sync.rs's own unit tests declare a few) are excluded.
pub fn parse_ranks(sync_src: &str) -> Vec<(String, u64)> {
    let toks = lexer::strip_test_regions(lexer::lex(sync_src));
    let text = |k: usize| toks.get(k).map(|t| t.text.as_str());
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].text == "const"
            && text(i + 2) == Some(":")
            && text(i + 3) == Some("LockRank")
            && text(i + 4) == Some("=")
            && text(i + 5) == Some("LockRank")
            && text(i + 6) == Some("{")
            && text(i + 7) == Some("value")
            && text(i + 8) == Some(":")
        {
            let name = toks[i + 1].text.clone();
            if let Some(value) = toks.get(i + 9).and_then(|t| t.text.parse::<u64>().ok()) {
                out.push((name, value));
            }
        }
    }
    out
}

/// Harvests ranked-lock construction sites from one file's token stream.
pub fn collect_sites(path: &str, toks: &[Token], out: &mut Vec<Site>) {
    let text = |k: usize| toks.get(k).map(|t| t.text.as_str());
    for i in 0..toks.len() {
        if matches!(toks[i].text.as_str(), "RankedMutex" | "RankedRwLock")
            && text(i + 1) == Some("::")
            && text(i + 2) == Some("new")
            && text(i + 3) == Some("(")
            && text(i + 4) == Some("lock_rank")
            && text(i + 5) == Some("::")
        {
            if let Some(rank_tok) = toks.get(i + 6) {
                out.push(Site {
                    rank_name: rank_tok.text.clone(),
                    kind: toks[i].text.clone(),
                    file: path.to_string(),
                    line: toks[i].line,
                });
            }
        }
    }
}

/// Assembles the graph and runs the consistency checks.
pub fn build(ranks: &[(String, u64)], sites: Vec<Site>) -> LockGraph {
    let mut errors = Vec::new();
    let mut nodes: Vec<LockNode> = ranks
        .iter()
        .map(|(name, rank)| LockNode { name: name.clone(), rank: *rank, sites: Vec::new() })
        .collect();
    nodes.sort_by_key(|n| (n.rank, n.name.clone()));
    for pair in nodes.windows(2) {
        if pair[0].rank == pair[1].rank {
            errors.push(format!(
                "rank cycle: {} and {} share rank {} — neither orders before the other",
                pair[0].name, pair[1].name, pair[0].rank
            ));
        }
    }
    for site in sites {
        match nodes.iter_mut().find(|n| n.name == site.rank_name) {
            Some(node) => node.sites.push(site),
            None => errors.push(format!(
                "{}:{}: {}::new references undeclared rank lock_rank::{}",
                site.file, site.line, site.kind, site.rank_name
            )),
        }
    }
    for node in &mut nodes {
        node.sites.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }
    let edges = nodes.windows(2).map(|pair| (pair[0].name.clone(), pair[1].name.clone())).collect();
    LockGraph { nodes, edges, errors }
}

impl LockGraph {
    /// Machine-readable form, written to `results/lock_graph.json`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"acyclic\": ");
        s.push_str(if self.acyclic() { "true" } else { "false" });
        s.push_str(",\n  \"nodes\": [\n");
        for (i, n) in self.nodes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"rank\": {}, \"sites\": [",
                json_escape(&n.name),
                n.rank
            ));
            for (j, site) in n.sites.iter().enumerate() {
                s.push_str(&format!(
                    "{{\"kind\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
                    json_escape(&site.kind),
                    json_escape(&site.file),
                    site.line
                ));
                if j + 1 < n.sites.len() {
                    s.push_str(", ");
                }
            }
            s.push_str("]}");
            s.push_str(if i + 1 < self.nodes.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n  \"edges\": [\n");
        for (i, (a, b)) in self.edges.iter().enumerate() {
            s.push_str(&format!("    [\"{}\", \"{}\"]", json_escape(a), json_escape(b)));
            s.push_str(if i + 1 < self.edges.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n  \"errors\": [\n");
        for (i, e) in self.errors.iter().enumerate() {
            s.push_str(&format!("    \"{}\"", json_escape(e)));
            s.push_str(if i + 1 < self.errors.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Graphviz form, written to `results/lock_graph.dot`.
    pub fn to_dot(&self) -> String {
        let mut s = String::from(
            "digraph lock_order {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n",
        );
        for n in &self.nodes {
            let files: Vec<&str> = {
                let mut fs: Vec<&str> = n.sites.iter().map(|s| s.file.as_str()).collect();
                fs.dedup();
                fs
            };
            let label = if files.is_empty() {
                format!("{} ({})", n.name, n.rank)
            } else {
                format!("{} ({})\\n{}", n.name, n.rank, files.join("\\n"))
            };
            s.push_str(&format!("  \"{}\" [label=\"{}\"];\n", n.name, label));
        }
        for (a, b) in &self.edges {
            s.push_str(&format!("  \"{a}\" -> \"{b}\";\n"));
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SYNC_SRC: &str = r#"
        pub mod lock_rank {
            pub const OUTER: LockRank = LockRank { value: 10, name: "OUTER" };
            pub const INNER: LockRank = LockRank { value: 20, name: "INNER" };
            pub const ALL: &[LockRank] = &[OUTER, INNER];
        }
    "#;

    #[test]
    fn ranks_parse_and_all_is_skipped() {
        let ranks = parse_ranks(SYNC_SRC);
        assert_eq!(ranks, [("OUTER".to_string(), 10), ("INNER".to_string(), 20)]);
    }

    #[test]
    fn chain_edges_follow_ascending_rank() {
        let g = build(&parse_ranks(SYNC_SRC), Vec::new());
        assert!(g.acyclic());
        assert_eq!(g.edges, [("OUTER".to_string(), "INNER".to_string())]);
    }

    #[test]
    fn duplicate_rank_is_a_cycle() {
        let ranks = vec![("A".to_string(), 10), ("B".to_string(), 10)];
        let g = build(&ranks, Vec::new());
        assert!(!g.acyclic());
        assert!(g.errors[0].contains("share rank 10"));
    }

    #[test]
    fn sites_attach_to_nodes_and_unknown_ranks_error() {
        let src = "let a = RankedMutex::new(lock_rank::OUTER, ());\nlet b = RankedRwLock::new(lock_rank::GHOST, ());";
        let mut sites = Vec::new();
        collect_sites("core/x.rs", &lexer::lex(src), &mut sites);
        assert_eq!(sites.len(), 2);
        let g = build(&parse_ranks(SYNC_SRC), sites);
        assert_eq!(g.nodes.iter().find(|n| n.name == "OUTER").unwrap().sites.len(), 1);
        assert!(g.errors.iter().any(|e| e.contains("GHOST")));
        let json = g.to_json();
        assert!(json.contains("\"acyclic\": false"));
        assert!(g.to_dot().contains("\"OUTER\" -> \"INNER\""));
    }
}
