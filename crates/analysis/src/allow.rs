//! The inline escape hatch: `// mtlint: allow(<rule>, reason = "…")`.
//!
//! An allow suppresses findings of `<rule>` on its own line or on the line
//! directly below it (the idiomatic placement is the line above the flagged
//! code). The `reason` is mandatory and must be non-empty: an allow is a
//! reviewed claim that the hazard is intentional, and the claim has to say
//! why. A malformed or reason-less allow is itself reported as a
//! `bad-allow` finding so `--deny` refuses it.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// One parsed allow annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    pub reason: String,
    pub line: usize,
}

/// All allows in one file, indexed by line, plus the malformed ones
/// (already converted to findings).
#[derive(Debug, Default)]
pub struct AllowSet {
    by_line: BTreeMap<usize, Vec<Allow>>,
    pub bad: Vec<Finding>,
}

impl AllowSet {
    /// Whether a finding of `rule` at `line` is suppressed.
    pub fn permits(&self, rule: &str, line: usize) -> bool {
        let at = |l: usize| self.by_line.get(&l).is_some_and(|v| v.iter().any(|a| a.rule == rule));
        at(line) || (line > 1 && at(line - 1))
    }

    /// Every well-formed allow, in line order (used for reporting).
    pub fn all(&self) -> impl Iterator<Item = &Allow> {
        self.by_line.values().flatten()
    }
}

const MARKER: &str = "mtlint:";

/// Scans raw source lines for allow annotations. Line-based on purpose:
/// allows live in comments, which the lexer strips.
pub fn parse(path: &str, src: &str) -> AllowSet {
    let mut set = AllowSet::default();
    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let Some(pos) = raw.find(MARKER) else { continue };
        let rest = raw[pos + MARKER.len()..].trim_start();
        match parse_clause(rest) {
            Ok(Some((rule, reason))) => {
                set.by_line.entry(line).or_default().push(Allow { rule, reason, line });
            }
            Ok(None) => {}
            Err(why) => set.bad.push(Finding {
                file: path.to_string(),
                line,
                rule: "bad-allow".to_string(),
                message: why,
                allowed: false,
            }),
        }
    }
    set
}

/// Parses the text after `mtlint:`. `Ok(None)` means the marker introduces
/// something other than an allow (reserved for future directives).
fn parse_clause(rest: &str) -> Result<Option<(String, String)>, String> {
    let Some(body) = rest.strip_prefix("allow") else {
        return Err(format!("unrecognized mtlint directive: `{}`", rest.trim()));
    };
    let body = body.trim_start();
    let Some(body) = body.strip_prefix('(') else {
        return Err("allow needs the form `allow(<rule>, reason = \"…\")`".to_string());
    };
    let Some(close) = body.rfind(')') else {
        return Err("unterminated allow(…) clause".to_string());
    };
    let inner = &body[..close];
    let (rule, tail) = match inner.split_once(',') {
        Some((r, t)) => (r.trim(), t.trim()),
        None => (inner.trim(), ""),
    };
    if rule.is_empty() {
        return Err("allow(…) names no rule".to_string());
    }
    if !crate::rules::RULES.contains(&rule) {
        return Err(format!("allow(…) names unknown rule `{rule}`"));
    }
    let Some(reason) = tail.strip_prefix("reason") else {
        return Err(format!("allow({rule}) is missing the mandatory `reason = \"…\"`"));
    };
    let reason = reason.trim_start();
    let Some(reason) = reason.strip_prefix('=') else {
        return Err(format!("allow({rule}): expected `reason = \"…\"`"));
    };
    let reason = reason.trim();
    let unquoted = reason.strip_prefix('"').and_then(|r| r.strip_suffix('"'));
    let Some(text) = unquoted else {
        return Err(format!("allow({rule}): reason must be a quoted string"));
    };
    if text.trim().is_empty() {
        return Err(format!("allow({rule}): reason must not be empty"));
    }
    Ok(Some((rule.to_string(), text.to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_allow_parses_and_permits_line_below() {
        let set = parse(
            "f.rs",
            "// mtlint: allow(thread-sleep, reason = \"monitor cadence\")\nsleep();\n",
        );
        assert!(set.bad.is_empty());
        assert!(set.permits("thread-sleep", 1));
        assert!(set.permits("thread-sleep", 2));
        assert!(!set.permits("thread-sleep", 3));
        assert!(!set.permits("wall-clock", 2));
    }

    #[test]
    fn missing_reason_is_bad_allow() {
        let set = parse("f.rs", "// mtlint: allow(wall-clock)\n");
        assert_eq!(set.bad.len(), 1);
        assert!(set.bad[0].message.contains("mandatory"));
        assert!(!set.permits("wall-clock", 1));
    }

    #[test]
    fn empty_reason_is_bad_allow() {
        let set = parse("f.rs", "// mtlint: allow(wall-clock, reason = \"  \")\n");
        assert_eq!(set.bad.len(), 1);
        assert!(set.bad[0].message.contains("empty"));
    }

    #[test]
    fn unknown_rule_is_bad_allow() {
        let set = parse("f.rs", "// mtlint: allow(made-up, reason = \"x\")\n");
        assert_eq!(set.bad.len(), 1);
        assert!(set.bad[0].message.contains("unknown rule"));
    }

    #[test]
    fn reason_may_contain_commas_and_parens() {
        let set = parse(
            "f.rs",
            "// mtlint: allow(notify-all, reason = \"turnstile (all waiters, on purpose)\")\n",
        );
        assert!(set.bad.is_empty(), "{:?}", set.bad);
        assert!(set.permits("notify-all", 1));
        assert_eq!(set.all().next().unwrap().reason, "turnstile (all waiters, on purpose)");
    }
}
