//! mtlint — determinism lint + ranked-lock order checker for the mtgpu
//! workspace.
//!
//! ```text
//! mtlint [--deny] [--out DIR] [--root DIR] [FILE…]
//! ```
//!
//! With no `FILE` arguments it runs in *workspace mode*: lints every `.rs`
//! file under `crates/{core,gpusim,cluster,loadgen}/src`, extracts the
//! lock graph (rank declarations from `crates/simtime/src/sync.rs`,
//! construction sites from the runtime crates), and writes
//! `mtlint.json`, `lock_graph.json`, and `lock_graph.dot` into `--out`
//! (default `results/`). With explicit files it lints just those files and
//! writes nothing — the mode the fixture checks use.
//!
//! Exit status: 0 when clean; 1 under `--deny` when any unsuppressed
//! finding, malformed allow, or lock-graph error exists.

use mtgpu_analysis::{lint_file, lock_graph, report, Finding};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose sources the workspace walk lints. `simtime` is exempt: it
/// *implements* the clock and the ranked locks the rules steer code toward.
const LINT_CRATES: &[&str] = &["api", "cluster", "core", "gpusim", "loadgen"];

/// Crates that must construct every lock through the ranked wrappers; also
/// the crates the lock-graph sites are harvested from.
const RANKED_CRATES: &[&str] = &["core", "gpusim"];

fn main() -> ExitCode {
    let mut deny = false;
    let mut out_dir = PathBuf::from("results");
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--out" => out_dir = PathBuf::from(args.next().expect("--out needs a directory")),
            "--root" => root = PathBuf::from(args.next().expect("--root needs a directory")),
            "--help" | "-h" => {
                println!("usage: mtlint [--deny] [--out DIR] [--root DIR] [FILE...]");
                return ExitCode::SUCCESS;
            }
            other => files.push(PathBuf::from(other)),
        }
    }

    let workspace_mode = files.is_empty();
    if workspace_mode {
        if !root.join("crates").is_dir() {
            eprintln!(
                "mtlint: {} has no crates/ directory (run from the workspace root or pass --root)",
                root.display()
            );
            return ExitCode::FAILURE;
        }
        for krate in LINT_CRATES {
            collect_rs_files(&root.join("crates").join(krate).join("src"), &mut files);
        }
        files.sort();
    }

    let mut findings: Vec<Finding> = Vec::new();
    for file in &files {
        match lint_file(file) {
            Ok(f) => findings.extend(f),
            Err(e) => {
                eprintln!("mtlint: {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let mut failed = false;
    for f in findings.iter().filter(|f| !f.allowed) {
        println!("{}:{}: {}: {}", f.file, f.line, f.rule, f.message);
        failed = true;
    }

    let graph = workspace_mode.then(|| extract_lock_graph(&root, &files));
    if let Some(graph) = &graph {
        for e in &graph.errors {
            println!("lock-graph: {e}");
            failed = true;
        }
    }

    let violations = findings.iter().filter(|f| !f.allowed).count();
    let allowed = findings.len() - violations;
    println!(
        "mtlint: {} file(s), {} violation(s), {} allowed finding(s){}",
        files.len(),
        violations,
        allowed,
        match &graph {
            Some(g) => format!(
                ", lock graph: {} rank(s), {} site(s), {}",
                g.nodes.len(),
                g.nodes.iter().map(|n| n.sites.len()).sum::<usize>(),
                if g.acyclic() { "acyclic" } else { "CYCLIC" }
            ),
            None => String::new(),
        }
    );

    if workspace_mode {
        if let Err(e) = std::fs::create_dir_all(&out_dir) {
            eprintln!("mtlint: create {}: {e}", out_dir.display());
            return ExitCode::FAILURE;
        }
        let lint_json = report::lint_json(files.len(), &findings);
        let graph = graph.expect("workspace mode builds the graph");
        for (name, content) in [
            ("mtlint.json", lint_json),
            ("lock_graph.json", graph.to_json()),
            ("lock_graph.dot", graph.to_dot()),
        ] {
            let path = out_dir.join(name);
            if let Err(e) = std::fs::write(&path, content) {
                eprintln!("mtlint: write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if deny && failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Recursively collects `.rs` files (sorted later for deterministic output).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Builds the workspace lock graph: rank table from simtime's sync module,
/// construction sites from the ranked crates' lint file set.
fn extract_lock_graph(root: &Path, files: &[PathBuf]) -> lock_graph::LockGraph {
    let sync_path = root.join("crates/simtime/src/sync.rs");
    let ranks = match std::fs::read_to_string(&sync_path) {
        Ok(src) => lock_graph::parse_ranks(&src),
        Err(_) => Vec::new(),
    };
    let mut sites = Vec::new();
    for file in files {
        let path_str = file.to_string_lossy();
        let in_ranked_crate =
            RANKED_CRATES.iter().any(|k| path_str.contains(&format!("crates/{k}/")));
        if !in_ranked_crate {
            continue;
        }
        if let Ok(src) = std::fs::read_to_string(file) {
            let toks = mtgpu_analysis::lexer::lex(&src);
            lock_graph::collect_sites(&path_str, &toks, &mut sites);
        }
    }
    let mut graph = lock_graph::build(&ranks, sites);
    if graph.nodes.is_empty() {
        graph.errors.push(format!("no lock ranks found in {}", sync_path.display()));
    }
    graph
}
