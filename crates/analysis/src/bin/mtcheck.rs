//! mtcheck — happens-before race detector + DPOR-lite schedule explorer
//! over the mtgpu ranked-lock layer.
//!
//! ```text
//! mtcheck list
//! mtcheck explore [--scenario NAME] [--budget N] [--min-distinct N] [--deny] [--out DIR]
//! mtcheck replay --scenario NAME --schedule ID [--fingerprint HEX]
//! ```
//!
//! `explore` runs the scenario matrix (all workspace scenarios by default;
//! the seeded `fixture-race` control only when named explicitly), persists
//! explored-schedule fingerprints and violations to `<out>/mtcheck.json`,
//! and under `--deny` exits non-zero when any scenario misses its
//! expectation — a violation in a workspace scenario, or the fixture race
//! going *undetected*. `replay` re-executes one schedule id bit-for-bit
//! and prints its fingerprint (optionally verified against a recorded one).
//!
//! The vector-clock instrumentation lives only in debug builds; a release
//! build of this binary refuses to run rather than silently observing
//! nothing.

use mtgpu_analysis::check::{explore, json, parse_schedule_id, scenarios};
use mtgpu_simtime::mtcheck;
use std::path::PathBuf;
use std::process::ExitCode;

const DEFAULT_BUDGET: usize = 200;
const DEFAULT_MIN_DISTINCT: usize = 50;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    if !mtcheck::instrumentation_active() {
        eprintln!(
            "mtcheck: this is a release build: the vector-clock instrumentation is \
             compiled out (zero-cost in production). Rebuild with a debug profile."
        );
        return ExitCode::from(2);
    }
    match cmd.as_str() {
        "list" => {
            for s in scenarios::all() {
                println!(
                    "{:<22} {} ({})",
                    s.name,
                    s.about,
                    if s.expect_clean { "expect clean" } else { "expect race" }
                );
            }
            ExitCode::SUCCESS
        }
        "explore" => explore_cmd(args),
        "replay" => replay_cmd(args),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mtcheck list\n       \
         mtcheck explore [--scenario NAME] [--budget N] [--min-distinct N] [--deny] [--out DIR]\n       \
         mtcheck replay --scenario NAME --schedule ID [--fingerprint HEX]"
    );
    ExitCode::FAILURE
}

fn explore_cmd(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut deny = false;
    let mut budget = DEFAULT_BUDGET;
    let mut min_distinct = DEFAULT_MIN_DISTINCT;
    let mut out_dir = PathBuf::from("results");
    let mut only: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--budget" => budget = parse_num(args.next(), "--budget"),
            "--min-distinct" => min_distinct = parse_num(args.next(), "--min-distinct"),
            "--out" => out_dir = PathBuf::from(args.next().expect("--out needs a directory")),
            "--scenario" => only = Some(args.next().expect("--scenario needs a name")),
            other => {
                eprintln!("mtcheck explore: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let matrix: Vec<&scenarios::Scenario> = match &only {
        Some(name) => match scenarios::find(name) {
            Some(s) => vec![s],
            None => {
                eprintln!("mtcheck: unknown scenario `{name}` (see `mtcheck list`)");
                return ExitCode::FAILURE;
            }
        },
        // The seeded fixture is a detector self-test, not part of the
        // clean matrix; it only runs when named.
        None => scenarios::all().iter().filter(|s| s.expect_clean).collect(),
    };

    let mut failed = false;
    let mut reports = Vec::new();
    for scn in matrix {
        let report = explore::explore_scenario(scn, budget);
        let enough = report.distinct() >= min_distinct;
        // `--deny` is strictly violation-driven: a schedule that races,
        // deadlocks, panics, or stalls fails the run even for the seeded
        // fixture — that nonzero exit is exactly how CI proves the
        // detector fires. Exhausting the space below the distinct target
        // also fails: it means the scenario lost its coverage.
        let passed = report.violations.is_empty() && enough;
        println!(
            "{:<22} {} runs, {} distinct schedule(s), {} pruned branch(es), {} violation(s){}{}",
            report.name,
            report.runs,
            report.distinct(),
            report.pruned,
            report.violations.len(),
            if passed { " — ok" } else { " — FAIL" },
            if enough { String::new() } else { format!(" (needed >={min_distinct} distinct)") },
        );
        for v in &report.violations {
            println!("  [{}] {}: {}", report.name, v.schedule, v.detail);
        }
        failed |= !passed;
        reports.push(report);
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("mtcheck: create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let path = out_dir.join("mtcheck.json");
    if let Err(e) = std::fs::write(&path, json::mtcheck_json(&reports)) {
        eprintln!("mtcheck: write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }

    if deny && failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn replay_cmd(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut name: Option<String> = None;
    let mut schedule: Option<String> = None;
    let mut expect_fp: Option<u64> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => name = args.next(),
            "--schedule" => schedule = args.next(),
            "--fingerprint" => {
                let hex = args.next().expect("--fingerprint needs a hex value");
                match u64::from_str_radix(hex.trim_start_matches("0x"), 16) {
                    Ok(v) => expect_fp = Some(v),
                    Err(_) => {
                        eprintln!("mtcheck replay: bad fingerprint `{hex}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("mtcheck replay: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(name), Some(schedule)) = (name, schedule) else {
        eprintln!("mtcheck replay: --scenario and --schedule are required");
        return ExitCode::FAILURE;
    };
    let Some(scn) = scenarios::find(&name) else {
        eprintln!("mtcheck: unknown scenario `{name}` (see `mtcheck list`)");
        return ExitCode::FAILURE;
    };
    let prefix = match parse_schedule_id(&schedule) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mtcheck replay: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = explore::replay(scn, &prefix);
    println!(
        "{name} {schedule}: fingerprint {:016x}, {} decision(s), {} event(s), {}",
        run.fingerprint,
        run.decisions.len(),
        run.events,
        if run.clean() { "clean" } else { "VIOLATIONS" }
    );
    for race in &run.races {
        println!("  race: {}", race.describe());
    }
    if let Some(dead) = &run.deadlock {
        println!("  deadlock: {dead}");
    }
    for (tid, p) in &run.panics {
        println!("  panic (thread {tid}): {p}");
    }
    if let Some(expect) = expect_fp {
        if expect != run.fingerprint {
            eprintln!(
                "mtcheck replay: fingerprint mismatch: expected {expect:016x}, got {:016x}",
                run.fingerprint
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn parse_num(arg: Option<String>, flag: &str) -> usize {
    arg.and_then(|v| v.parse().ok()).unwrap_or_else(|| panic!("{flag} needs a positive integer"))
}
