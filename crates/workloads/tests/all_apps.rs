//! Every Table 2 application must run and verify on both the bare CUDA
//! baseline and the mtgpu runtime (including under sharing pressure).

use mtgpu_api::{BareClient, CudaClient};
use mtgpu_core::{NodeRuntime, RuntimeConfig};
use mtgpu_gpusim::{Driver, GpuSpec};
use mtgpu_simtime::Clock;
use mtgpu_workloads::calib::Scale;
use mtgpu_workloads::{install_kernel_library, run_batch, AppKind};

#[test]
fn all_13_apps_verify_on_bare_runtime() {
    install_kernel_library();
    let clock = Clock::with_scale(1e-7);
    let driver = Driver::with_devices(clock.clone(), vec![GpuSpec::tesla_c2050()]);
    for kind in AppKind::all() {
        let jobs = vec![kind.build(Scale::TINY)];
        let clients: Vec<Box<dyn CudaClient>> = vec![Box::new(BareClient::new(driver.clone()))];
        let result = run_batch(&clock, jobs, clients);
        assert!(
            result.all_verified(),
            "{} failed on bare runtime: {:?}",
            kind.name(),
            result.errors
        );
        assert_eq!(result.reports[0].name, kind.name());
    }
}

#[test]
fn all_13_apps_verify_on_mtgpu_runtime() {
    install_kernel_library();
    let clock = Clock::with_scale(1e-7);
    let driver = Driver::with_devices(clock.clone(), vec![GpuSpec::tesla_c2050()]);
    let rt = NodeRuntime::start(driver, RuntimeConfig::paper_default());
    let jobs: Vec<_> = AppKind::all().iter().map(|k| k.build(Scale::TINY)).collect();
    let clients: Vec<Box<dyn CudaClient>> =
        jobs.iter().map(|_| Box::new(rt.local_client()) as Box<dyn CudaClient>).collect();
    // All 13 concurrently: sharing, queueing, possibly swapping.
    let result = run_batch(&clock, jobs, clients);
    assert!(result.all_verified(), "errors: {:?}", result.errors);
    assert_eq!(result.reports.len(), 13);
    rt.shutdown();
}

#[test]
fn kernel_call_counts_match_table2_at_paper_scale() {
    // Verify the Table 2 kernel-call column for the apps cheap enough to
    // run at paper *call counts* (time scaled down, counts kept).
    install_kernel_library();
    let clock = Clock::with_scale(1e-7);
    let driver = Driver::with_devices(clock.clone(), vec![GpuSpec::tesla_c2050()]);
    // A scale with paper call counts but tiny kernel durations.
    let scale = Scale { time: 1e-1, mem: 1e-5 };
    for kind in [AppKind::Bp, AppKind::Bfs, AppKind::Hs, AppKind::Va, AppKind::MmL] {
        let jobs = vec![kind.build(scale)];
        let clients: Vec<Box<dyn CudaClient>> = vec![Box::new(BareClient::new(driver.clone()))];
        let result = run_batch(&clock, jobs, clients);
        assert!(result.all_verified(), "{}: {:?}", kind.name(), result.errors);
        assert_eq!(
            result.reports[0].kernel_calls,
            kind.kernel_calls(),
            "{} kernel calls",
            kind.name()
        );
    }
}

#[test]
fn mm_cpu_fraction_stretches_runtime() {
    install_kernel_library();
    // Coarse enough that the simulated durations dominate real-time
    // call overheads: MM-L = 10 kernels of 125 ms sim each at this scale.
    let clock = Clock::with_scale(1e-3);
    let driver = Driver::with_devices(clock.clone(), vec![GpuSpec::tesla_c2050()]);
    let mut elapsed = Vec::new();
    for frac in [0.0, 2.0] {
        let jobs = vec![AppKind::MmL.build_with(Scale { time: 1e-1, mem: 1e-5 }, frac)];
        let clients: Vec<Box<dyn CudaClient>> = vec![Box::new(BareClient::new(driver.clone()))];
        let result = run_batch(&clock, jobs, clients);
        assert!(result.all_verified());
        elapsed.push(result.reports[0].elapsed);
    }
    assert!(
        elapsed[1] > elapsed[0],
        "cpu_fraction=2 ({}) must take longer than 0 ({})",
        elapsed[1],
        elapsed[0]
    );
}
