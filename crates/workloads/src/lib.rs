//! Table 2 benchmark applications (Rodinia / CUDA SDK equivalents).
//!
//! Each application issues the same CUDA call sequence its original issues —
//! `malloc` / `copy_HD` / kernels ×N / `copy_DH` / `free` — with the
//! kernel-call counts of the paper's Table 2 and durations calibrated so
//! that on a Tesla C2050 the *short-running* applications take 3–5 simulated
//! seconds and the *long-running* ones 30–90 (§5.2).
//!
//! Footprints are **declared** at paper scale (driving all memory-pressure
//! behaviour) while each kernel also computes a **real result** on a small
//! shadow buffer — real vector adds, matrix products, Black-Scholes prices,
//! prefix sums — which the workload verifies after download. A workload
//! that survives swapping, migration or failure recovery with a wrong
//! answer fails its run; data integrity is checked end to end, not assumed.
//!
//! Applications are written against `mtgpu_api::CudaClient`, so the same
//! binary runs on the bare CUDA baseline and on the mtgpu runtime.

pub mod apps;
pub mod calib;
pub mod catalog;
pub mod report;
pub mod runner;

pub use catalog::{draw_kinds, draw_short_kinds, long_pool, short_pool, AppKind};
pub use report::WorkloadReport;
pub use runner::{run_batch, BatchResult};

use mtgpu_api::{CudaClient, CudaResult};
use mtgpu_gpusim::KernelDesc;
use mtgpu_simtime::Clock;

/// A benchmark application.
pub trait Workload: Send + Sync {
    /// Table 2 program name, e.g. `"MM-L"`.
    fn name(&self) -> &str;

    /// The kernels this application's fat binary registers.
    fn kernels(&self) -> Vec<KernelDesc>;

    /// Runs the application to completion against `client`, using `clock`
    /// for its CPU phases. Returns a report with verification status.
    fn run(&self, client: &mut dyn CudaClient, clock: &Clock) -> CudaResult<WorkloadReport>;

    /// Profiling information (§2): the job's estimated total GPU work in
    /// FLOPs, consumed by the shortest-job-first policy. `None` = unknown.
    fn estimated_flops(&self) -> Option<f64> {
        None
    }
}

/// Registers a workload's module with a client (the app binary's startup
/// registration sequence).
pub fn register_workload(client: &mut dyn CudaClient, workload: &dyn Workload) -> CudaResult<()> {
    let module = client.register_fat_binary()?;
    for k in workload.kernels() {
        client.register_function(module, k)?;
    }
    if let Some(flops) = workload.estimated_flops() {
        client.hint_job_length(flops)?;
    }
    Ok(())
}

/// Installs every Table 2 kernel payload into the process-global kernel
/// library (idempotent; call once per process before running workloads).
pub fn install_kernel_library() {
    apps::install_all();
}
