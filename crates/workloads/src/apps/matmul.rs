//! Matrix Multiplication (MM-S / MM-L): the paper's long-running workload
//! with injected CPU phases (§5.2, §5.3.3).
//!
//! * MM-S: 200 multiplications of 2K×2K matrices, variable CPU phases.
//! * MM-L: 10 multiplications of 10K×10K matrices, variable CPU phases;
//!   high memory requirements — three 10K×10K f32 matrices ≈ 1.2 GB, so
//!   more than two concurrent jobs on a 3 GiB C2050 conflict (§5.3.3).
//!
//! The CPU phase after each kernel simulates "different levels of
//! post-processing on the product" and is sized as
//! `cpu_fraction × per-kernel GPU time`.

use super::common::*;
use crate::calib::{scale_bytes, work_c2050, Scale};
use crate::report::WorkloadReport;
use crate::Workload;
use mtgpu_api::{CudaClient, CudaResult, KernelArg};
use mtgpu_gpusim::kernel::{library, KernelExec, RegisteredKernel};
use mtgpu_gpusim::KernelDesc;
use mtgpu_simtime::{Clock, SimDuration};
use std::sync::Arc;

/// Shadow matrices are 16×16.
const SHADOW_N: usize = 16;

/// The MM workload family.
pub struct MatMul {
    name: &'static str,
    /// Declared bytes per matrix (three are allocated).
    matrix_bytes: u64,
    /// Kernel calls (Table 2: MM-S 200, MM-L 10).
    repeats: u64,
    /// Per-kernel GPU seconds on a C2050.
    kernel_secs: f64,
    /// CPU phase per kernel as a fraction of the kernel's GPU time
    /// (Fig. 7 x-axis: 0 … 2).
    pub cpu_fraction: f64,
    scale: Scale,
}

impl MatMul {
    /// MM-S: 200 × 2K×2K (3 × 16 MiB), ~16 s of GPU work (30–90 s total
    /// with injected CPU phases).
    pub fn small(cpu_fraction: f64) -> Self {
        MatMul {
            name: "MM-S",
            matrix_bytes: 2048 * 2048 * 4,
            repeats: 200,
            kernel_secs: 0.08,
            cpu_fraction,
            scale: Scale::PAPER,
        }
    }

    /// MM-L: 10 × 10K×10K (3 × ~400 MB ⇒ ~1.2 GB/job), ~12.5 s of GPU
    /// work (30–90 s total with injected CPU phases).
    pub fn large(cpu_fraction: f64) -> Self {
        MatMul {
            name: "MM-L",
            matrix_bytes: 10_000 * 10_000 * 4,
            repeats: 10,
            kernel_secs: 1.25,
            cpu_fraction,
            scale: Scale::PAPER,
        }
    }

    /// Scales durations and footprints (tests).
    pub fn scaled(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }
}

/// Installs `mm_matmul`: C = A×B on the 16×16 shadows.
pub(crate) fn install() {
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("mm_matmul"),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let a = ptr_arg(exec, 0, "mm_matmul");
            let b = ptr_arg(exec, 1, "mm_matmul");
            let c = ptr_arg(exec, 2, "mm_matmul");
            let n = scalar_arg(exec, 3) as usize;
            let bytes = (n * n * 4) as u64;
            let mut av = vec![0f32; n * n];
            let mut bv = vec![0f32; n * n];
            exec.with_f32_mut(a, bytes, |s| av.copy_from_slice(&s[..n * n]))?;
            exec.with_f32_mut(b, bytes, |s| bv.copy_from_slice(&s[..n * n]))?;
            exec.with_f32_mut(c, bytes, |s| {
                for i in 0..n {
                    for j in 0..n {
                        let mut acc = 0f32;
                        for k in 0..n {
                            acc += av[i * n + k] * bv[k * n + j];
                        }
                        s[i * n + j] = acc;
                    }
                }
            })
        })),
    });
}

fn host_matmul(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut c = vec![0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0f32;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

impl Workload for MatMul {
    fn name(&self) -> &str {
        self.name
    }

    fn kernels(&self) -> Vec<KernelDesc> {
        vec![KernelDesc::plain("mm_matmul")]
    }

    fn estimated_flops(&self) -> Option<f64> {
        Some(crate::calib::flops_for_c2050_secs(
            self.kernel_secs * self.repeats as f64 * self.scale.time,
        ))
    }

    fn run(&self, client: &mut dyn CudaClient, clock: &Clock) -> CudaResult<WorkloadReport> {
        let mut rng = XorShift::new(0x5EED_0033);
        let a_host: Vec<f32> = (0..SHADOW_N * SHADOW_N).map(|_| rng.range_f32(-1.0, 1.0)).collect();
        let b_host: Vec<f32> = (0..SHADOW_N * SHADOW_N).map(|_| rng.range_f32(-1.0, 1.0)).collect();
        let declared = scale_bytes(self.matrix_bytes, &self.scale);
        // The paper's §4.5 sequence: malloc ×3, copy_HD inputs, kernels,
        // copy_DH result, free.
        let a = upload_f32(client, declared, &a_host)?;
        let b = upload_f32(client, declared, &b_host)?;
        let c = alloc(client, declared, (SHADOW_N * SHADOW_N) as u64 * 4)?;
        let cpu_phase =
            SimDuration::from_secs_f64(self.kernel_secs * self.cpu_fraction * self.scale.time);
        for _ in 0..self.repeats {
            launch(
                client,
                "mm_matmul",
                vec![
                    KernelArg::Ptr(a),
                    KernelArg::Ptr(b),
                    KernelArg::Ptr(c),
                    KernelArg::Scalar(SHADOW_N as u64),
                ],
                work_c2050(self.kernel_secs * self.scale.time),
            )?;
            // Post-processing CPU phase: the GPU is free for co-tenants.
            if !cpu_phase.is_zero() {
                clock.sleep(cpu_phase);
            }
        }
        let result = download_f32(client, c, SHADOW_N * SHADOW_N)?;
        for ptr in [a, b, c] {
            client.free(ptr)?;
        }
        let expected = host_matmul(&a_host, &b_host, SHADOW_N);
        let ok = approx_eq_slice(&result, &expected);
        Ok(if ok {
            WorkloadReport::verified(self.name, self.repeats)
        } else {
            WorkloadReport::failed(self.name, self.repeats)
        })
    }
}
