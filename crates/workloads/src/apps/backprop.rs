//! Back Propagation (BP): training of 20 neural networks with 64K input
//! nodes, 40 kernel calls (Rodinia `backprop`: one `layerforward` and one
//! `adjust_weights` per network).
//!
//! The shadow network is a single 64→8 layer trained for 20 iterations;
//! verification replays the same training on the host.

use super::common::*;
use crate::calib::{scale_bytes, work_c2050, Scale};
use crate::report::WorkloadReport;
use crate::Workload;
use mtgpu_api::{CudaClient, CudaResult, KernelArg};
use mtgpu_gpusim::kernel::{library, KernelExec, RegisteredKernel};
use mtgpu_gpusim::KernelDesc;
use mtgpu_simtime::Clock;
use std::sync::Arc;

const IN_N: usize = 64;
const HID_N: usize = 8;
const NETWORKS: u64 = 20;
/// Declared footprint: input layer 64K × hidden 16 weights, f32.
const WEIGHTS_BYTES: u64 = 65_536 * 16 * 4;
const INPUT_BYTES: u64 = 65_536 * 4;
const KERNEL_SECS: f64 = 3.2 / (2.0 * NETWORKS as f64);
/// Host-side error evaluation between networks.
const CPU_SECS_PER_NET: f64 = 0.04;
const LEARN_RATE: f32 = 0.3;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Forward pass: `hidden[j] = σ(Σ_i in[i]·w[i][j])`.
fn forward(input: &[f32], weights: &[f32]) -> Vec<f32> {
    (0..HID_N)
        .map(|j| sigmoid((0..IN_N).map(|i| input[i] * weights[i * HID_N + j]).sum()))
        .collect()
}

/// Weight update: `w[i][j] += lr · (target[j] − hidden[j]) · in[i]`.
fn adjust(input: &[f32], hidden: &[f32], target: &[f32], weights: &mut [f32]) {
    for i in 0..IN_N {
        for j in 0..HID_N {
            weights[i * HID_N + j] += LEARN_RATE * (target[j] - hidden[j]) * input[i];
        }
    }
}

/// The BP workload.
pub struct BackProp {
    scale: Scale,
}

impl BackProp {
    /// Paper-scale instance.
    pub fn paper() -> Self {
        BackProp { scale: Scale::PAPER }
    }

    /// Custom-scale instance.
    pub fn with_scale(scale: Scale) -> Self {
        BackProp { scale }
    }
}

/// Installs `bp_layerforward` and `bp_adjust_weights`.
pub(crate) fn install() {
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("bp_layerforward"),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let input = ptr_arg(exec, 0, "bp_layerforward");
            let weights = ptr_arg(exec, 1, "bp_layerforward");
            let hidden = ptr_arg(exec, 2, "bp_layerforward");
            let mut in_v = vec![0f32; IN_N];
            let mut w_v = vec![0f32; IN_N * HID_N];
            exec.with_f32_mut(input, (IN_N * 4) as u64, |v| in_v.copy_from_slice(&v[..IN_N]))?;
            exec.with_f32_mut(weights, (IN_N * HID_N * 4) as u64, |v| {
                w_v.copy_from_slice(&v[..IN_N * HID_N])
            })?;
            let h = forward(&in_v, &w_v);
            exec.with_f32_mut(hidden, (HID_N * 4) as u64, |v| v[..HID_N].copy_from_slice(&h))
        })),
    });
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("bp_adjust_weights"),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let input = ptr_arg(exec, 0, "bp_adjust_weights");
            let weights = ptr_arg(exec, 1, "bp_adjust_weights");
            let hidden = ptr_arg(exec, 2, "bp_adjust_weights");
            let target = ptr_arg(exec, 3, "bp_adjust_weights");
            let mut in_v = vec![0f32; IN_N];
            let mut h_v = vec![0f32; HID_N];
            let mut t_v = vec![0f32; HID_N];
            exec.with_f32_mut(input, (IN_N * 4) as u64, |v| in_v.copy_from_slice(&v[..IN_N]))?;
            exec.with_f32_mut(hidden, (HID_N * 4) as u64, |v| h_v.copy_from_slice(&v[..HID_N]))?;
            exec.with_f32_mut(target, (HID_N * 4) as u64, |v| t_v.copy_from_slice(&v[..HID_N]))?;
            exec.with_f32_mut(weights, (IN_N * HID_N * 4) as u64, |v| {
                adjust(&in_v, &h_v, &t_v, &mut v[..IN_N * HID_N])
            })
        })),
    });
}

impl Workload for BackProp {
    fn name(&self) -> &str {
        "BP"
    }

    fn kernels(&self) -> Vec<KernelDesc> {
        vec![KernelDesc::plain("bp_layerforward"), KernelDesc::plain("bp_adjust_weights")]
    }

    fn estimated_flops(&self) -> Option<f64> {
        Some(crate::calib::flops_for_c2050_secs(
            KERNEL_SECS * 2.0 * NETWORKS as f64 * self.scale.time,
        ))
    }

    fn run(&self, client: &mut dyn CudaClient, clock: &Clock) -> CudaResult<WorkloadReport> {
        let mut rng = XorShift::new(0x5EED_00B9);
        let input_host: Vec<f32> = (0..IN_N).map(|_| rng.range_f32(0.0, 1.0)).collect();
        let weights_host: Vec<f32> = (0..IN_N * HID_N).map(|_| rng.range_f32(-0.5, 0.5)).collect();
        let target_host: Vec<f32> = (0..HID_N).map(|_| rng.range_f32(0.0, 1.0)).collect();
        let input = upload_f32(client, scale_bytes(INPUT_BYTES, &self.scale), &input_host)?;
        let weights = upload_f32(client, scale_bytes(WEIGHTS_BYTES, &self.scale), &weights_host)?;
        let hidden = alloc(client, 256, HID_N as u64 * 4)?;
        let target = upload_f32(client, 256.max((HID_N * 4) as u64), &target_host)?;
        let work = work_c2050(KERNEL_SECS * self.scale.time);
        for _ in 0..NETWORKS {
            launch(
                client,
                "bp_layerforward",
                vec![KernelArg::Ptr(input), KernelArg::Ptr(weights), KernelArg::Ptr(hidden)],
                work,
            )?;
            launch(
                client,
                "bp_adjust_weights",
                vec![
                    KernelArg::Ptr(input),
                    KernelArg::Ptr(weights),
                    KernelArg::Ptr(hidden),
                    KernelArg::Ptr(target),
                ],
                work,
            )?;
            // Host evaluates training error before the next network.
            cpu_phase(clock, CPU_SECS_PER_NET * self.scale.time);
        }
        let final_hidden = download_f32(client, hidden, HID_N)?;
        let final_weights = download_f32(client, weights, IN_N * HID_N)?;
        for ptr in [input, weights, hidden, target] {
            client.free(ptr)?;
        }
        // Host replay of the 20 training iterations.
        let mut w = weights_host.clone();
        let mut h = Vec::new();
        for _ in 0..NETWORKS {
            h = forward(&input_host, &w);
            adjust(&input_host, &h, &target_host, &mut w);
        }
        let ok = approx_eq_slice(&final_hidden, &h) && approx_eq_slice(&final_weights, &w);
        Ok(if ok {
            WorkloadReport::verified("BP", 2 * NETWORKS)
        } else {
            WorkloadReport::failed("BP", 2 * NETWORKS)
        })
    }
}
