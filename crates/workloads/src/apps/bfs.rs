//! Breadth-First Search (BFS): traversal of a 1M-node graph, 24 kernel
//! calls — one frontier-expansion kernel per level (Rodinia `bfs`).
//!
//! The shadow graph is a 64-node chain: level kernel `k` relaxes every node
//! at distance `k` into its successor, so after 24 levels `dist[i] == i`
//! for `i ≤ 24` and unreached beyond — which verification checks.

use super::common::*;
use crate::calib::{scale_bytes, work_c2050, Scale};
use crate::report::WorkloadReport;
use crate::Workload;
use mtgpu_api::{CudaClient, CudaResult, KernelArg};
use mtgpu_gpusim::kernel::{library, KernelExec, RegisteredKernel};
use mtgpu_gpusim::KernelDesc;
use mtgpu_simtime::Clock;
use std::sync::Arc;

const SHADOW_NODES: usize = 64;
const LEVELS: u64 = 24;
/// Declared footprint of the 1M-node graph (CSR arrays + distances).
const GRAPH_BYTES: u64 = 48 << 20;
const KERNEL_SECS: f64 = 2.3 / LEVELS as f64;
/// Host-side frontier bookkeeping per level.
const CPU_SECS_PER_LEVEL: f64 = 0.04;
/// "Infinite" distance marker.
const INF: f32 = 1.0e9;

/// The BFS workload.
pub struct Bfs {
    scale: Scale,
}

impl Bfs {
    /// Paper-scale instance.
    pub fn paper() -> Self {
        Bfs { scale: Scale::PAPER }
    }

    /// Custom-scale instance.
    pub fn with_scale(scale: Scale) -> Self {
        Bfs { scale }
    }
}

/// Installs `bfs_level`: one level of frontier expansion on the chain.
pub(crate) fn install() {
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("bfs_level"),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let dist = ptr_arg(exec, 0, "bfs_level");
            let level = scalar_arg(exec, 1) as f32;
            let n = scalar_arg(exec, 2) as usize;
            exec.with_f32_mut(dist, (n * 4) as u64, |v| {
                for i in 0..n.saturating_sub(1) {
                    if (v[i] - level).abs() < 0.5 && v[i + 1] > level + 1.0 {
                        v[i + 1] = level + 1.0;
                    }
                }
            })
        })),
    });
}

impl Workload for Bfs {
    fn name(&self) -> &str {
        "BFS"
    }

    fn kernels(&self) -> Vec<KernelDesc> {
        vec![KernelDesc::plain("bfs_level")]
    }

    fn estimated_flops(&self) -> Option<f64> {
        Some(crate::calib::flops_for_c2050_secs(KERNEL_SECS * LEVELS as f64 * self.scale.time))
    }

    fn run(&self, client: &mut dyn CudaClient, clock: &Clock) -> CudaResult<WorkloadReport> {
        let mut dist_host = vec![INF; SHADOW_NODES];
        dist_host[0] = 0.0;
        let dist = upload_f32(client, scale_bytes(GRAPH_BYTES, &self.scale), &dist_host)?;
        for level in 0..LEVELS {
            launch(
                client,
                "bfs_level",
                vec![
                    KernelArg::Ptr(dist),
                    KernelArg::Scalar(level),
                    KernelArg::Scalar(SHADOW_NODES as u64),
                ],
                work_c2050(KERNEL_SECS * self.scale.time),
            )?;
            // Host checks the frontier before expanding the next level.
            cpu_phase(clock, CPU_SECS_PER_LEVEL * self.scale.time);
        }
        let result = download_f32(client, dist, SHADOW_NODES)?;
        client.free(dist)?;
        let ok = (0..SHADOW_NODES).all(|i| {
            if i as u64 <= LEVELS {
                approx_eq(result[i], i as f32)
            } else {
                result[i] >= INF / 2.0
            }
        });
        Ok(if ok {
            WorkloadReport::verified("BFS", LEVELS)
        } else {
            WorkloadReport::failed("BFS", LEVELS)
        })
    }
}
