//! Shared helpers for the benchmark applications.

use mtgpu_api::{CudaClient, CudaResult, HostBuf, KernelArg, LaunchConfig, LaunchSpec};
use mtgpu_gpusim::{DeviceAddr, Dim3, KernelExec, Work};

/// Uploads `shadow` as the materialized prefix of a `declared`-byte
/// allocation; returns the (virtual) device pointer.
pub(crate) fn upload_f32(
    client: &mut dyn CudaClient,
    declared: u64,
    shadow: &[f32],
) -> CudaResult<DeviceAddr> {
    // Scaled-down test footprints must still hold the functional shadow.
    let declared = declared.max(shadow.len() as u64 * 4);
    let ptr = client.malloc(declared)?;
    let buf = HostBuf::from_f32s(shadow);
    client.memcpy_h2d(ptr, HostBuf::with_shadow(declared, buf.payload))?;
    Ok(ptr)
}

/// Allocates `max(declared, shadow_bytes)` bytes without uploading content
/// (output buffers): the allocation must at least hold its functional
/// shadow even under scaled-down test footprints.
pub(crate) fn alloc(
    client: &mut dyn CudaClient,
    declared: u64,
    shadow_bytes: u64,
) -> CudaResult<DeviceAddr> {
    client.malloc(declared.max(shadow_bytes))
}

/// Downloads `count` f32s from `ptr`.
pub(crate) fn download_f32(
    client: &mut dyn CudaClient,
    ptr: DeviceAddr,
    count: usize,
) -> CudaResult<Vec<f32>> {
    Ok(client.memcpy_d2h(ptr, count as u64 * 4)?.as_f32s())
}

/// Launches `kernel` with a 1-D default configuration.
pub(crate) fn launch(
    client: &mut dyn CudaClient,
    kernel: &str,
    args: Vec<KernelArg>,
    work: Work,
) -> CudaResult<()> {
    client.launch(LaunchSpec {
        kernel: kernel.to_string(),
        config: LaunchConfig { grid: Dim3::x(1024), block: Dim3::x(256), shared_mem_bytes: 0 },
        args,
        work,
    })
}

/// Spends a CPU phase of `secs` simulated seconds (host-side work between
/// GPU phases, §1: "applications that use GPUs alternate CPU and GPU
/// phases").
pub(crate) fn cpu_phase(clock: &mtgpu_simtime::Clock, secs: f64) {
    if secs > 0.0 {
        clock.sleep(mtgpu_simtime::SimDuration::from_secs_f64(secs));
    }
}

/// Tolerant float comparison for verification.
pub(crate) fn approx_eq(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-3 * (1.0 + a.abs().max(b.abs()))
}

/// Compares two float slices element-wise.
pub(crate) fn approx_eq_slice(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| approx_eq(*x, *y))
}

/// Reads the `i`-th scalar argument of a kernel launch (0 if absent or not
/// a scalar).
pub(crate) fn scalar_arg(exec: &KernelExec<'_>, i: usize) -> u64 {
    match exec.args().get(i) {
        Some(KernelArg::Scalar(v)) => *v,
        _ => 0,
    }
}

/// Reads the `i`-th pointer argument; panics with the kernel's name if the
/// caller launched with a malformed argument list (programming error in the
/// workload, not a runtime condition).
pub(crate) fn ptr_arg(exec: &KernelExec<'_>, i: usize, kernel: &str) -> DeviceAddr {
    exec.args()
        .get(i)
        .and_then(|a| a.as_ptr())
        .unwrap_or_else(|| panic!("kernel {kernel} expects pointer argument {i}"))
}

/// A deterministic xorshift PRNG for reproducible inputs.
pub(crate) struct XorShift(u64);

impl XorShift {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform f32 in [0, 1).
    pub(crate) fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform f32 in [lo, hi).
    pub(crate) fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let v = XorShift::new(7).next_f32();
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn approx_eq_tolerates_float_noise() {
        assert!(approx_eq(1.0, 1.0 + 1e-6));
        assert!(!approx_eq(1.0, 1.1));
        assert!(approx_eq_slice(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(!approx_eq_slice(&[1.0], &[1.0, 2.0]));
    }
}
