//! Vector Addition (VA): 100M-element vector addition, 1 kernel call
//! (CUDA SDK `vectorAdd`).

use super::common::*;
use crate::calib::{scale_bytes, work_c2050, Scale};
use crate::report::WorkloadReport;
use crate::Workload;
use mtgpu_api::{CudaClient, CudaResult, KernelArg};
use mtgpu_gpusim::kernel::{library, KernelExec, RegisteredKernel};
use mtgpu_gpusim::KernelDesc;
use mtgpu_simtime::Clock;
use std::sync::Arc;

/// Elements in the functional shadow.
const SHADOW: usize = 1024;
/// Declared bytes per paper-scale vector (~110 MiB each, three vectors —
/// "memory requirements well below the capacity of the GPUs", §5.2).
const VEC_BYTES: u64 = 110 << 20;
/// Seconds of GPU work on a C2050 (short app target: 3–5 s).
const KERNEL_SECS: f64 = 2.4;
/// Host-side input generation before the GPU phase.
const CPU_SECS: f64 = 0.8;

/// The VA workload.
pub struct VecAdd {
    scale: Scale,
}

impl VecAdd {
    /// Paper-scale instance.
    pub fn paper() -> Self {
        VecAdd { scale: Scale::PAPER }
    }

    /// Custom-scale instance.
    pub fn with_scale(scale: Scale) -> Self {
        VecAdd { scale }
    }
}

/// Installs the `va_add` kernel payload: `c[i] = a[i] + b[i]` on shadows.
pub(crate) fn install() {
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("va_add"),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let a = ptr_arg(exec, 0, "va_add");
            let b = ptr_arg(exec, 1, "va_add");
            let c = ptr_arg(exec, 2, "va_add");
            let n = scalar_arg(exec, 3) as usize;
            let bytes = (n * 4) as u64;
            let mut av = vec![0f32; n];
            let mut bv = vec![0f32; n];
            exec.with_f32_mut(a, bytes, |s| av.copy_from_slice(&s[..n]))?;
            exec.with_f32_mut(b, bytes, |s| bv.copy_from_slice(&s[..n]))?;
            exec.with_f32_mut(c, bytes, |s| {
                for i in 0..n {
                    s[i] = av[i] + bv[i];
                }
            })
        })),
    });
}

impl Workload for VecAdd {
    fn name(&self) -> &str {
        "VA"
    }

    fn kernels(&self) -> Vec<KernelDesc> {
        vec![KernelDesc::plain("va_add")]
    }

    fn estimated_flops(&self) -> Option<f64> {
        Some(crate::calib::flops_for_c2050_secs(KERNEL_SECS * self.scale.time))
    }

    fn run(&self, client: &mut dyn CudaClient, clock: &Clock) -> CudaResult<WorkloadReport> {
        cpu_phase(clock, CPU_SECS * self.scale.time);
        let mut rng = XorShift::new(0x5EED_00A1);
        let a_host: Vec<f32> = (0..SHADOW).map(|_| rng.range_f32(-10.0, 10.0)).collect();
        let b_host: Vec<f32> = (0..SHADOW).map(|_| rng.range_f32(-10.0, 10.0)).collect();
        let declared = scale_bytes(VEC_BYTES, &self.scale);
        let a = upload_f32(client, declared, &a_host)?;
        let b = upload_f32(client, declared, &b_host)?;
        let c = alloc(client, declared, SHADOW as u64 * 4)?;
        launch(
            client,
            "va_add",
            vec![
                KernelArg::Ptr(a),
                KernelArg::Ptr(b),
                KernelArg::Ptr(c),
                KernelArg::Scalar(SHADOW as u64),
            ],
            work_c2050(KERNEL_SECS * self.scale.time),
        )?;
        let result = download_f32(client, c, SHADOW)?;
        for ptr in [a, b, c] {
            client.free(ptr)?;
        }
        let expected: Vec<f32> = a_host.iter().zip(&b_host).map(|(x, y)| x + y).collect();
        let ok = approx_eq_slice(&result, &expected);
        Ok(if ok { WorkloadReport::verified("VA", 1) } else { WorkloadReport::failed("VA", 1) })
    }
}
