//! Black-Scholes (BS-S / BS-L): European option pricing, 256 kernel calls
//! (CUDA SDK `BlackScholes`).
//!
//! * BS-S: 4M options (short-running).
//! * BS-L: 40M options (long-running, GPU-intensive, very short CPU
//!   phases; memory requirements below MM-L — §5.3.3).

use super::common::*;
use crate::calib::{scale_bytes, work_c2050, Scale};
use crate::report::WorkloadReport;
use crate::Workload;
use mtgpu_api::{CudaClient, CudaResult, KernelArg};
use mtgpu_gpusim::kernel::{library, KernelExec, RegisteredKernel};
use mtgpu_gpusim::KernelDesc;
use mtgpu_simtime::Clock;
use std::sync::Arc;

const SHADOW: usize = 256;
const RISK_FREE: f32 = 0.02;
const VOLATILITY: f32 = 0.30;

/// The BS workload family.
pub struct BlackScholes {
    name: &'static str,
    /// Declared option count (paper scale).
    options: u64,
    /// Kernel calls (Table 2: 256).
    repeats: u64,
    /// Per-kernel GPU seconds on a C2050.
    kernel_secs: f64,
    scale: Scale,
}

impl BlackScholes {
    /// BS-S: 4M options, short-running (≈3.5 s).
    pub fn small() -> Self {
        BlackScholes {
            name: "BS-S",
            options: 4_000_000,
            repeats: 256,
            kernel_secs: 3.5 / 256.0,
            scale: Scale::PAPER,
        }
    }

    /// BS-L: long-running (≈40 s). The option count is calibrated so that
    /// four concurrent BS-L tenants fit a 3 GiB C2050 alongside the vGPU
    /// context reservations — Figure 8 of the paper reports *zero* swap
    /// operations at the 100% BS-L mix, which pins BS-L's footprint below
    /// a quarter of the device ("memory requirements of BS-L are below
    /// those of MM-L", §5.3.3).
    pub fn large() -> Self {
        BlackScholes {
            name: "BS-L",
            options: 32_000_000,
            repeats: 256,
            kernel_secs: 40.0 / 256.0,
            scale: Scale::PAPER,
        }
    }

    /// Scales durations and footprints (tests).
    pub fn scaled(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }
}

/// The Black-Scholes call/put prices via the cumulative normal
/// approximation used by the CUDA SDK sample.
// The Abramowitz–Stegun coefficients are quoted verbatim from the SDK
// sample; keeping every digit beats matching f32 representable precision.
#[allow(clippy::excessive_precision)]
fn cnd(d: f32) -> f32 {
    const A1: f32 = 0.319_381_53;
    const A2: f32 = -0.356_563_782;
    const A3: f32 = 1.781_477_937;
    const A4: f32 = -1.821_255_978;
    const A5: f32 = 1.330_274_429;
    let k = 1.0 / (1.0 + 0.231_641_9 * d.abs());
    let poly = k * (A1 + k * (A2 + k * (A3 + k * (A4 + k * A5))));
    let w = 1.0 - (-0.5 * d * d).exp() * poly / (2.0 * std::f32::consts::PI).sqrt();
    if d < 0.0 {
        1.0 - w
    } else {
        w
    }
}

/// Host reference pricing.
pub(crate) fn price(s: f32, x: f32, t: f32) -> (f32, f32) {
    let sqrt_t = t.sqrt();
    let d1 =
        ((s / x).ln() + (RISK_FREE + 0.5 * VOLATILITY * VOLATILITY) * t) / (VOLATILITY * sqrt_t);
    let d2 = d1 - VOLATILITY * sqrt_t;
    let exp_rt = (-RISK_FREE * t).exp();
    let call = s * cnd(d1) - x * exp_rt * cnd(d2);
    let put = x * exp_rt * cnd(-d2) - s * cnd(-d1);
    (call, put)
}

/// Installs `bs_price`: prices the shadow options into call/put arrays.
pub(crate) fn install() {
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("bs_price"),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let spot = ptr_arg(exec, 0, "bs_price");
            let strike = ptr_arg(exec, 1, "bs_price");
            let years = ptr_arg(exec, 2, "bs_price");
            let call_out = ptr_arg(exec, 3, "bs_price");
            let put_out = ptr_arg(exec, 4, "bs_price");
            let n = scalar_arg(exec, 5) as usize;
            let bytes = (n * 4) as u64;
            let mut s = vec![0f32; n];
            let mut x = vec![0f32; n];
            let mut t = vec![0f32; n];
            exec.with_f32_mut(spot, bytes, |v| s.copy_from_slice(&v[..n]))?;
            exec.with_f32_mut(strike, bytes, |v| x.copy_from_slice(&v[..n]))?;
            exec.with_f32_mut(years, bytes, |v| t.copy_from_slice(&v[..n]))?;
            let priced: Vec<(f32, f32)> = (0..n).map(|i| price(s[i], x[i], t[i])).collect();
            exec.with_f32_mut(call_out, bytes, |v| {
                for i in 0..n {
                    v[i] = priced[i].0;
                }
            })?;
            exec.with_f32_mut(put_out, bytes, |v| {
                for i in 0..n {
                    v[i] = priced[i].1;
                }
            })
        })),
    });
}

impl Workload for BlackScholes {
    fn name(&self) -> &str {
        self.name
    }

    fn kernels(&self) -> Vec<KernelDesc> {
        vec![KernelDesc::plain("bs_price")]
    }

    fn estimated_flops(&self) -> Option<f64> {
        Some(crate::calib::flops_for_c2050_secs(
            self.kernel_secs * self.repeats as f64 * self.scale.time,
        ))
    }

    fn run(&self, client: &mut dyn CudaClient, clock: &Clock) -> CudaResult<WorkloadReport> {
        // "BS-L is a GPU-intensive application with very short CPU phases"
        // (§5.3.3): only a brief host-side option-generation phase.
        cpu_phase(clock, 0.5 * self.scale.time);
        let mut rng = XorShift::new(0x5EED_00B5);
        let s_host: Vec<f32> = (0..SHADOW).map(|_| rng.range_f32(5.0, 30.0)).collect();
        let x_host: Vec<f32> = (0..SHADOW).map(|_| rng.range_f32(1.0, 100.0)).collect();
        let t_host: Vec<f32> = (0..SHADOW).map(|_| rng.range_f32(0.25, 10.0)).collect();
        let arr_bytes = scale_bytes(self.options * 4, &self.scale);
        let s = upload_f32(client, arr_bytes, &s_host)?;
        let x = upload_f32(client, arr_bytes, &x_host)?;
        let t = upload_f32(client, arr_bytes, &t_host)?;
        let call_out = alloc(client, arr_bytes, SHADOW as u64 * 4)?;
        let put_out = alloc(client, arr_bytes, SHADOW as u64 * 4)?;
        for _ in 0..self.repeats {
            launch(
                client,
                "bs_price",
                vec![
                    KernelArg::Ptr(s),
                    KernelArg::Ptr(x),
                    KernelArg::Ptr(t),
                    KernelArg::Ptr(call_out),
                    KernelArg::Ptr(put_out),
                    KernelArg::Scalar(SHADOW as u64),
                ],
                work_c2050(self.kernel_secs * self.scale.time),
            )?;
        }
        let calls = download_f32(client, call_out, SHADOW)?;
        let puts = download_f32(client, put_out, SHADOW)?;
        for ptr in [s, x, t, call_out, put_out] {
            client.free(ptr)?;
        }
        let ok = (0..SHADOW).all(|i| {
            let (ec, ep) = price(s_host[i], x_host[i], t_host[i]);
            approx_eq(calls[i], ec) && approx_eq(puts[i], ep)
        });
        Ok(if ok {
            WorkloadReport::verified(self.name, self.repeats)
        } else {
            WorkloadReport::failed(self.name, self.repeats)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_matches_known_values() {
        // Spot=100, strike=100, T=1y, r=2%, σ=30%: call ≈ 12.82, put ≈ 10.84
        // (standard Black-Scholes tables).
        let (call, put) = price(100.0, 100.0, 1.0);
        assert!((call - 12.82).abs() < 0.1, "call {call}");
        assert!((put - 10.84).abs() < 0.1, "put {put}");
    }

    #[test]
    fn put_call_parity_holds() {
        // C − P = S − X·e^(−rT) for any inputs.
        for (s, x, t) in [(20.0f32, 15.0f32, 2.0f32), (8.0, 30.0, 0.5), (50.0, 50.0, 5.0)] {
            let (c, p) = price(s, x, t);
            let parity = s - x * (-RISK_FREE * t).exp();
            assert!(
                (c - p - parity).abs() < 1e-2,
                "parity violated at S={s} X={x} T={t}: {c} - {p} != {parity}"
            );
        }
    }

    #[test]
    fn deep_in_the_money_call_approaches_intrinsic() {
        let (call, put) = price(1000.0, 1.0, 0.25);
        assert!(call > 990.0);
        assert!(put < 1e-3);
    }

    #[test]
    fn bs_l_footprint_fits_four_tenants_on_c2050() {
        // The Fig. 8 calibration invariant: 4 × BS-L + 4 vGPU reservations
        // must fit a 3 GiB C2050 (the paper reports zero swaps at the
        // 100% BS-L mix).
        let spec = mtgpu_gpusim::GpuSpec::tesla_c2050();
        let per_job = BlackScholes::large().options * 4 * 5; // 5 f32 arrays
        let reserved = spec.ctx_reserved_bytes * 4;
        assert!(
            4 * per_job + reserved <= spec.mem_bytes,
            "4 BS-L tenants must fit: 4×{per_job} + {reserved} > {}",
            spec.mem_bytes
        );
    }
}
