//! The Table 2 application implementations.

pub mod backprop;
pub mod bfs;
pub mod blackscholes;
pub(crate) mod common;
pub mod hotspot;
pub mod matmul;
pub mod needleman;
pub mod reduction;
pub mod scalar_prod;
pub mod scan;
pub mod transpose;
pub mod vecadd;

pub use backprop::BackProp;
pub use bfs::Bfs;
pub use blackscholes::BlackScholes;
pub use hotspot::HotSpot;
pub use matmul::MatMul;
pub use needleman::Needleman;
pub use reduction::Reduction;
pub use scalar_prod::ScalarProduct;
pub use scan::Scan;
pub use transpose::Transpose;
pub use vecadd::VecAdd;

/// Installs every application's kernel payloads into the process-global
/// kernel library. Idempotent.
pub fn install_all() {
    backprop::install();
    bfs::install();
    blackscholes::install();
    hotspot::install();
    matmul::install();
    needleman::install();
    reduction::install();
    scalar_prod::install();
    scan::install();
    transpose::install();
    vecadd::install();
}
