//! Matrix Transpose (MT): 384×384 transpose, 816 kernel calls (CUDA SDK
//! `transpose`). Calls alternate src→dst / dst→src; after the even number
//! of calls the source buffer holds the original matrix again, which is
//! what verification checks.

use super::common::*;
use crate::calib::{scale_bytes, work_c2050, Scale};
use crate::report::WorkloadReport;
use crate::Workload;
use mtgpu_api::{CudaClient, CudaResult, KernelArg};
use mtgpu_gpusim::kernel::{library, KernelExec, RegisteredKernel};
use mtgpu_gpusim::KernelDesc;
use mtgpu_simtime::Clock;
use std::sync::Arc;

const SHADOW_N: usize = 16;
const MAT_BYTES: u64 = 384 * 384 * 4;
const REPEATS: u64 = 816;
const KERNEL_SECS: f64 = 3.4 / REPEATS as f64;
/// Host-side loop bookkeeping per launch.
const CPU_SECS_PER_CALL: f64 = 0.0008;

/// The MT workload.
pub struct Transpose {
    scale: Scale,
}

impl Transpose {
    /// Paper-scale instance.
    pub fn paper() -> Self {
        Transpose { scale: Scale::PAPER }
    }

    /// Custom-scale instance (fewer launches under `TINY`; the count stays
    /// even so verification still holds).
    pub fn with_scale(scale: Scale) -> Self {
        Transpose { scale }
    }

    fn repeats(&self) -> u64 {
        if self.scale.time < 1e-2 {
            8
        } else {
            REPEATS
        }
    }
}

/// Installs `mt_transpose`: dst = srcᵀ on the 16×16 shadows.
pub(crate) fn install() {
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("mt_transpose"),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let src = ptr_arg(exec, 0, "mt_transpose");
            let dst = ptr_arg(exec, 1, "mt_transpose");
            let n = scalar_arg(exec, 2) as usize;
            let bytes = (n * n * 4) as u64;
            let mut s = vec![0f32; n * n];
            exec.with_f32_mut(src, bytes, |v| s.copy_from_slice(&v[..n * n]))?;
            exec.with_f32_mut(dst, bytes, |v| {
                for i in 0..n {
                    for j in 0..n {
                        v[j * n + i] = s[i * n + j];
                    }
                }
            })
        })),
    });
}

impl Workload for Transpose {
    fn name(&self) -> &str {
        "MT"
    }

    fn kernels(&self) -> Vec<KernelDesc> {
        vec![KernelDesc::plain("mt_transpose")]
    }

    fn estimated_flops(&self) -> Option<f64> {
        Some(crate::calib::flops_for_c2050_secs(KERNEL_SECS * REPEATS as f64 * self.scale.time))
    }

    fn run(&self, client: &mut dyn CudaClient, clock: &Clock) -> CudaResult<WorkloadReport> {
        let mut rng = XorShift::new(0x5EED_0007);
        let original: Vec<f32> =
            (0..SHADOW_N * SHADOW_N).map(|_| rng.range_f32(-5.0, 5.0)).collect();
        let bytes = scale_bytes(MAT_BYTES, &self.scale);
        let a = upload_f32(client, bytes, &original)?;
        let b = alloc(client, bytes, (SHADOW_N * SHADOW_N) as u64 * 4)?;
        let repeats = self.repeats();
        for i in 0..repeats {
            let (src, dst) = if i % 2 == 0 { (a, b) } else { (b, a) };
            launch(
                client,
                "mt_transpose",
                vec![KernelArg::Ptr(src), KernelArg::Ptr(dst), KernelArg::Scalar(SHADOW_N as u64)],
                work_c2050(KERNEL_SECS * self.scale.time * (REPEATS as f64 / repeats as f64)),
            )?;
            cpu_phase(
                clock,
                CPU_SECS_PER_CALL * self.scale.time * (REPEATS as f64 / repeats as f64),
            );
        }
        // Even number of transposes: `a` holds the original again.
        let result = download_f32(client, a, SHADOW_N * SHADOW_N)?;
        for ptr in [a, b] {
            client.free(ptr)?;
        }
        let ok = approx_eq_slice(&result, &original);
        Ok(if ok {
            WorkloadReport::verified("MT", repeats)
        } else {
            WorkloadReport::failed("MT", repeats)
        })
    }
}
