//! Needleman-Wunsch (NW): DNA sequence alignment of 2K potential pairs,
//! 256 kernel calls (Rodinia `needle`). Each call aligns one batch of
//! pairs; the payload computes a real global-alignment score for a small
//! pair derived deterministically from the call index, written into the
//! score array, and verification recomputes every score on the host.

use super::common::*;
use crate::calib::{scale_bytes, work_c2050, Scale};
use crate::report::WorkloadReport;
use crate::Workload;
use mtgpu_api::{CudaClient, CudaResult, KernelArg};
use mtgpu_gpusim::kernel::{library, KernelExec, RegisteredKernel};
use mtgpu_gpusim::KernelDesc;
use mtgpu_simtime::Clock;
use std::sync::Arc;

const SEQ_LEN: usize = 12;
const CALLS: u64 = 256;
/// Declared footprint: DP matrices for 2K × 2K potential pairs.
const NW_BYTES: u64 = 96 << 20;
const KERNEL_SECS: f64 = 3.1 / CALLS as f64;
/// Host-side pair staging per batch.
const CPU_SECS_PER_CALL: f64 = 0.004;
const GAP: i32 = -1;
const MATCH: i32 = 2;
const MISMATCH: i32 = -1;

/// Deterministic "DNA" sequence for pair `idx`.
fn sequence(idx: u64, salt: u64) -> Vec<u8> {
    let mut rng = XorShift::new(idx * 2 + salt + 1);
    (0..SEQ_LEN).map(|_| (rng.next_u64() % 4) as u8).collect()
}

/// Global alignment score via the standard NW dynamic program.
pub(crate) fn align_score(a: &[u8], b: &[u8]) -> i32 {
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![0i32; (n + 1) * (m + 1)];
    for i in 0..=n {
        dp[i * (m + 1)] = GAP * i as i32;
    }
    for (j, cell) in dp.iter_mut().enumerate().take(m + 1) {
        *cell = GAP * j as i32;
    }
    for i in 1..=n {
        for j in 1..=m {
            let sub = if a[i - 1] == b[j - 1] { MATCH } else { MISMATCH };
            dp[i * (m + 1) + j] = (dp[(i - 1) * (m + 1) + j - 1] + sub)
                .max(dp[(i - 1) * (m + 1) + j] + GAP)
                .max(dp[i * (m + 1) + j - 1] + GAP);
        }
    }
    dp[n * (m + 1) + m]
}

/// The NW workload.
pub struct Needleman {
    scale: Scale,
}

impl Needleman {
    /// Paper-scale instance.
    pub fn paper() -> Self {
        Needleman { scale: Scale::PAPER }
    }

    /// Custom-scale instance (fewer calls under `TINY`).
    pub fn with_scale(scale: Scale) -> Self {
        Needleman { scale }
    }

    fn calls(&self) -> u64 {
        if self.scale.time < 1e-2 {
            16
        } else {
            CALLS
        }
    }
}

/// Installs `nw_align`: scores pair `idx` into `scores[idx % shadow]`.
pub(crate) fn install() {
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("nw_align"),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let scores = ptr_arg(exec, 0, "nw_align");
            let idx = scalar_arg(exec, 1);
            let shadow = scalar_arg(exec, 2) as usize;
            let score = align_score(&sequence(idx, 0), &sequence(idx, 1)) as f32;
            exec.with_f32_mut(scores, (shadow * 4) as u64, |v| {
                v[idx as usize % shadow] = score;
            })
        })),
    });
}

impl Workload for Needleman {
    fn name(&self) -> &str {
        "NW"
    }

    fn kernels(&self) -> Vec<KernelDesc> {
        vec![KernelDesc::plain("nw_align")]
    }

    fn estimated_flops(&self) -> Option<f64> {
        Some(crate::calib::flops_for_c2050_secs(KERNEL_SECS * CALLS as f64 * self.scale.time))
    }

    fn run(&self, client: &mut dyn CudaClient, clock: &Clock) -> CudaResult<WorkloadReport> {
        let calls = self.calls();
        let shadow = calls.min(256) as usize;
        let scores = alloc(client, scale_bytes(NW_BYTES, &self.scale), shadow as u64 * 4)?;
        for idx in 0..calls {
            launch(
                client,
                "nw_align",
                vec![
                    KernelArg::Ptr(scores),
                    KernelArg::Scalar(idx),
                    KernelArg::Scalar(shadow as u64),
                ],
                work_c2050(KERNEL_SECS * self.scale.time * (CALLS as f64 / calls as f64)),
            )?;
            cpu_phase(clock, CPU_SECS_PER_CALL * self.scale.time * (CALLS as f64 / calls as f64));
        }
        let result = download_f32(client, scores, shadow)?;
        client.free(scores)?;
        let ok = (0..calls).all(|idx| {
            let expected = align_score(&sequence(idx, 0), &sequence(idx, 1)) as f32;
            approx_eq(result[idx as usize % shadow], expected)
        });
        Ok(if ok {
            WorkloadReport::verified("NW", calls)
        } else {
            WorkloadReport::failed("NW", calls)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_score_perfectly() {
        let s = vec![0u8, 1, 2, 3, 0, 1];
        assert_eq!(align_score(&s, &s), MATCH * s.len() as i32);
    }

    #[test]
    fn all_gaps_when_one_sequence_empty() {
        let s = vec![0u8, 1, 2];
        assert_eq!(align_score(&s, &[]), GAP * 3);
        assert_eq!(align_score(&[], &s), GAP * 3);
    }

    #[test]
    fn alignment_is_symmetric() {
        let a = sequence(5, 0);
        let b = sequence(5, 1);
        assert_eq!(align_score(&a, &b), align_score(&b, &a));
    }

    #[test]
    fn single_mismatch_better_than_two_gaps() {
        // AC vs AG: mismatch (2-1=1... MATCH+MISMATCH=1) beats gap-gap
        // (MATCH+2·GAP=0).
        assert_eq!(align_score(&[0, 1], &[0, 2]), MATCH + MISMATCH);
    }
}
