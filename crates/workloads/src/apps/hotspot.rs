//! HotSpot (HS): thermal simulation of a 1M-cell grid, 1 kernel call
//! (Rodinia `hotspot`). The payload performs one Jacobi relaxation step on
//! a 16×16 shadow grid.

use super::common::*;
use crate::calib::{scale_bytes, work_c2050, Scale};
use crate::report::WorkloadReport;
use crate::Workload;
use mtgpu_api::{CudaClient, CudaResult, KernelArg};
use mtgpu_gpusim::kernel::{library, KernelExec, RegisteredKernel};
use mtgpu_gpusim::KernelDesc;
use mtgpu_simtime::Clock;
use std::sync::Arc;

const SHADOW_N: usize = 16;
const GRID_BYTES: u64 = 1024 * 1024 * 4;
const KERNEL_SECS: f64 = 2.6;
/// Host-side grid initialization.
const CPU_SECS: f64 = 0.9;
/// Power coupling coefficient of the relaxation step.
const K_POWER: f32 = 0.05;

/// The HS workload.
pub struct HotSpot {
    scale: Scale,
}

impl HotSpot {
    /// Paper-scale instance.
    pub fn paper() -> Self {
        HotSpot { scale: Scale::PAPER }
    }

    /// Custom-scale instance.
    pub fn with_scale(scale: Scale) -> Self {
        HotSpot { scale }
    }
}

/// One Jacobi step: `out = avg4(temp) + k·power` with edge clamping.
pub(crate) fn stencil_step(temp: &[f32], power: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0f32; n * n];
    let at = |i: isize, j: isize| -> f32 {
        let i = i.clamp(0, n as isize - 1) as usize;
        let j = j.clamp(0, n as isize - 1) as usize;
        temp[i * n + j]
    };
    for i in 0..n {
        for j in 0..n {
            let (ii, jj) = (i as isize, j as isize);
            out[i * n + j] = 0.25
                * (at(ii - 1, jj) + at(ii + 1, jj) + at(ii, jj - 1) + at(ii, jj + 1))
                + K_POWER * power[i * n + j];
        }
    }
    out
}

/// Installs `hs_stencil`.
pub(crate) fn install() {
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("hs_stencil"),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let temp = ptr_arg(exec, 0, "hs_stencil");
            let power = ptr_arg(exec, 1, "hs_stencil");
            let out = ptr_arg(exec, 2, "hs_stencil");
            let n = scalar_arg(exec, 3) as usize;
            let bytes = (n * n * 4) as u64;
            let mut t = vec![0f32; n * n];
            let mut p = vec![0f32; n * n];
            exec.with_f32_mut(temp, bytes, |v| t.copy_from_slice(&v[..n * n]))?;
            exec.with_f32_mut(power, bytes, |v| p.copy_from_slice(&v[..n * n]))?;
            let result = stencil_step(&t, &p, n);
            exec.with_f32_mut(out, bytes, |v| v[..n * n].copy_from_slice(&result))
        })),
    });
}

impl Workload for HotSpot {
    fn name(&self) -> &str {
        "HS"
    }

    fn kernels(&self) -> Vec<KernelDesc> {
        vec![KernelDesc::plain("hs_stencil")]
    }

    fn estimated_flops(&self) -> Option<f64> {
        Some(crate::calib::flops_for_c2050_secs(KERNEL_SECS * self.scale.time))
    }

    fn run(&self, client: &mut dyn CudaClient, clock: &Clock) -> CudaResult<WorkloadReport> {
        cpu_phase(clock, CPU_SECS * self.scale.time);
        let mut rng = XorShift::new(0x5EED_0045);
        let temp_host: Vec<f32> =
            (0..SHADOW_N * SHADOW_N).map(|_| rng.range_f32(40.0, 90.0)).collect();
        let power_host: Vec<f32> =
            (0..SHADOW_N * SHADOW_N).map(|_| rng.range_f32(0.0, 10.0)).collect();
        let bytes = scale_bytes(GRID_BYTES, &self.scale);
        let temp = upload_f32(client, bytes, &temp_host)?;
        let power = upload_f32(client, bytes, &power_host)?;
        let out = alloc(client, bytes, (SHADOW_N * SHADOW_N) as u64 * 4)?;
        launch(
            client,
            "hs_stencil",
            vec![
                KernelArg::Ptr(temp),
                KernelArg::Ptr(power),
                KernelArg::Ptr(out),
                KernelArg::Scalar(SHADOW_N as u64),
            ],
            work_c2050(KERNEL_SECS * self.scale.time),
        )?;
        let result = download_f32(client, out, SHADOW_N * SHADOW_N)?;
        for ptr in [temp, power, out] {
            client.free(ptr)?;
        }
        let expected = stencil_step(&temp_host, &power_host, SHADOW_N);
        let ok = approx_eq_slice(&result, &expected);
        Ok(if ok { WorkloadReport::verified("HS", 1) } else { WorkloadReport::failed("HS", 1) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_grid_stays_uniform_without_power() {
        let temp = vec![50.0f32; 16 * 16];
        let power = vec![0.0f32; 16 * 16];
        let out = stencil_step(&temp, &power, 16);
        assert!(out.iter().all(|&t| (t - 50.0).abs() < 1e-4));
    }

    #[test]
    fn power_raises_local_temperature() {
        let temp = vec![50.0f32; 16 * 16];
        let mut power = vec![0.0f32; 16 * 16];
        power[8 * 16 + 8] = 10.0;
        let out = stencil_step(&temp, &power, 16);
        assert!(out[8 * 16 + 8] > 50.0);
        // Neighbours unaffected within one step (Jacobi).
        assert!((out[8 * 16 + 7] - 50.0).abs() < 1e-4);
    }

    #[test]
    fn edges_clamp_instead_of_wrapping() {
        let mut temp = vec![0.0f32; 16 * 16];
        temp[0] = 100.0; // hot corner
        let power = vec![0.0f32; 16 * 16];
        let out = stencil_step(&temp, &power, 16);
        // Corner averages its two real neighbours (0) and two clamped
        // copies of itself (100): (100+0+100+0)/4 = 50.
        assert!((out[0] - 50.0).abs() < 1e-4, "corner {}", out[0]);
        // The opposite corner must not see the hot corner (no wraparound).
        assert!(out[16 * 16 - 1].abs() < 1e-4);
    }
}
