//! Scan (SC): parallel prefix sum of 260K elements, 3,300 kernel calls
//! (CUDA SDK `scan` — the workload with the most launches in Table 2,
//! stressing per-call runtime overhead).

use super::common::*;
use crate::calib::{scale_bytes, work_c2050, Scale};
use crate::report::WorkloadReport;
use crate::Workload;
use mtgpu_api::{CudaClient, CudaResult, KernelArg};
use mtgpu_gpusim::kernel::{library, KernelExec, RegisteredKernel};
use mtgpu_gpusim::KernelDesc;
use mtgpu_simtime::Clock;
use std::sync::Arc;

const SHADOW: usize = 512;
const ARR_BYTES: u64 = 260_000 * 4;
const REPEATS: u64 = 3_300;
const KERNEL_SECS: f64 = 3.4 / REPEATS as f64;
/// Host-side loop bookkeeping per launch.
const CPU_SECS_PER_CALL: f64 = 0.0002;

/// The SC workload.
pub struct Scan {
    scale: Scale,
}

impl Scan {
    /// Paper-scale instance.
    pub fn paper() -> Self {
        Scan { scale: Scale::PAPER }
    }

    /// Custom-scale instance (also shrinks the launch count under `TINY`
    /// so unit tests stay fast).
    pub fn with_scale(scale: Scale) -> Self {
        Scan { scale }
    }

    fn repeats(&self) -> u64 {
        if self.scale.time < 1e-2 {
            33
        } else {
            REPEATS
        }
    }
}

/// Installs `sc_scan`: exclusive prefix sum of the input shadow.
pub(crate) fn install() {
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("sc_scan"),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let input = ptr_arg(exec, 0, "sc_scan");
            let output = ptr_arg(exec, 1, "sc_scan");
            let n = scalar_arg(exec, 2) as usize;
            let bytes = (n * 4) as u64;
            let mut inp = vec![0f32; n];
            exec.with_f32_mut(input, bytes, |v| inp.copy_from_slice(&v[..n]))?;
            exec.with_f32_mut(output, bytes, |v| {
                let mut acc = 0f32;
                for i in 0..n {
                    v[i] = acc;
                    acc += inp[i];
                }
            })
        })),
    });
}

impl Workload for Scan {
    fn name(&self) -> &str {
        "SC"
    }

    fn kernels(&self) -> Vec<KernelDesc> {
        vec![KernelDesc::plain("sc_scan")]
    }

    fn estimated_flops(&self) -> Option<f64> {
        Some(crate::calib::flops_for_c2050_secs(KERNEL_SECS * REPEATS as f64 * self.scale.time))
    }

    fn run(&self, client: &mut dyn CudaClient, clock: &Clock) -> CudaResult<WorkloadReport> {
        let mut rng = XorShift::new(0x5EED_005C);
        let input_host: Vec<f32> = (0..SHADOW).map(|_| rng.range_f32(0.0, 4.0)).collect();
        let bytes = scale_bytes(ARR_BYTES, &self.scale);
        let input = upload_f32(client, bytes, &input_host)?;
        let output = alloc(client, bytes, SHADOW as u64 * 4)?;
        let repeats = self.repeats();
        for _ in 0..repeats {
            launch(
                client,
                "sc_scan",
                vec![
                    KernelArg::Ptr(input),
                    KernelArg::Ptr(output),
                    KernelArg::Scalar(SHADOW as u64),
                ],
                work_c2050(KERNEL_SECS * self.scale.time * (REPEATS as f64 / repeats as f64)),
            )?;
            cpu_phase(
                clock,
                CPU_SECS_PER_CALL * self.scale.time * (REPEATS as f64 / repeats as f64),
            );
        }
        let result = download_f32(client, output, SHADOW)?;
        for ptr in [input, output] {
            client.free(ptr)?;
        }
        let mut expected = vec![0f32; SHADOW];
        let mut acc = 0f32;
        for i in 0..SHADOW {
            expected[i] = acc;
            acc += input_host[i];
        }
        let ok = approx_eq_slice(&result, &expected);
        Ok(if ok {
            WorkloadReport::verified("SC", repeats)
        } else {
            WorkloadReport::failed("SC", repeats)
        })
    }
}
