//! Scalar Product (SP): dot products of vector pairs, 1 kernel call
//! (CUDA SDK `scalarProd`: 512 pairs of 1M-element vectors).

use super::common::*;
use crate::calib::{scale_bytes, work_c2050, Scale};
use crate::report::WorkloadReport;
use crate::Workload;
use mtgpu_api::{CudaClient, CudaResult, KernelArg};
use mtgpu_gpusim::kernel::{library, KernelExec, RegisteredKernel};
use mtgpu_gpusim::KernelDesc;
use mtgpu_simtime::Clock;
use std::sync::Arc;

const SHADOW: usize = 512;
/// Declared input footprint (~2 × 128 MiB vectors).
const VEC_BYTES: u64 = 128 << 20;
const OUT_BYTES: u64 = 512 * 4;
const KERNEL_SECS: f64 = 2.4;
/// Host-side input generation before the GPU phase.
const CPU_SECS: f64 = 0.8;

/// The SP workload.
pub struct ScalarProduct {
    scale: Scale,
}

impl ScalarProduct {
    /// Paper-scale instance.
    pub fn paper() -> Self {
        ScalarProduct { scale: Scale::PAPER }
    }

    /// Custom-scale instance.
    pub fn with_scale(scale: Scale) -> Self {
        ScalarProduct { scale }
    }
}

/// Installs `sp_dot`: `out[0] = Σ a[i]·b[i]` over the shadows.
pub(crate) fn install() {
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("sp_dot"),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let a = ptr_arg(exec, 0, "sp_dot");
            let b = ptr_arg(exec, 1, "sp_dot");
            let out = ptr_arg(exec, 2, "sp_dot");
            let n = scalar_arg(exec, 3) as usize;
            let bytes = (n * 4) as u64;
            let mut av = vec![0f32; n];
            let mut bv = vec![0f32; n];
            exec.with_f32_mut(a, bytes, |s| av.copy_from_slice(&s[..n]))?;
            exec.with_f32_mut(b, bytes, |s| bv.copy_from_slice(&s[..n]))?;
            let dot: f32 = av.iter().zip(&bv).map(|(x, y)| x * y).sum();
            exec.with_f32_mut(out, 4, |s| s[0] = dot)
        })),
    });
}

impl Workload for ScalarProduct {
    fn name(&self) -> &str {
        "SP"
    }

    fn kernels(&self) -> Vec<KernelDesc> {
        vec![KernelDesc::plain("sp_dot")]
    }

    fn estimated_flops(&self) -> Option<f64> {
        Some(crate::calib::flops_for_c2050_secs(KERNEL_SECS * self.scale.time))
    }

    fn run(&self, client: &mut dyn CudaClient, clock: &Clock) -> CudaResult<WorkloadReport> {
        cpu_phase(clock, CPU_SECS * self.scale.time);
        let mut rng = XorShift::new(0x5EED_0059);
        let a_host: Vec<f32> = (0..SHADOW).map(|_| rng.range_f32(-1.0, 1.0)).collect();
        let b_host: Vec<f32> = (0..SHADOW).map(|_| rng.range_f32(-1.0, 1.0)).collect();
        let vec_bytes = scale_bytes(VEC_BYTES, &self.scale);
        let a = upload_f32(client, vec_bytes, &a_host)?;
        let b = upload_f32(client, vec_bytes, &b_host)?;
        let out = alloc(client, scale_bytes(OUT_BYTES, &self.scale), 256)?;
        launch(
            client,
            "sp_dot",
            vec![
                KernelArg::Ptr(a),
                KernelArg::Ptr(b),
                KernelArg::Ptr(out),
                KernelArg::Scalar(SHADOW as u64),
            ],
            work_c2050(KERNEL_SECS * self.scale.time),
        )?;
        let result = download_f32(client, out, 1)?;
        for ptr in [a, b, out] {
            client.free(ptr)?;
        }
        let expected: f32 = a_host.iter().zip(&b_host).map(|(x, y)| x * y).sum();
        let ok = !result.is_empty() && approx_eq(result[0], expected);
        Ok(if ok { WorkloadReport::verified("SP", 1) } else { WorkloadReport::failed("SP", 1) })
    }
}
