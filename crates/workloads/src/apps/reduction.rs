//! Parallel Reduction (PR): sum of 4M elements, 801 kernel calls
//! (CUDA SDK `reduction`).

use super::common::*;
use crate::calib::{scale_bytes, work_c2050, Scale};
use crate::report::WorkloadReport;
use crate::Workload;
use mtgpu_api::{CudaClient, CudaResult, KernelArg};
use mtgpu_gpusim::kernel::{library, KernelExec, RegisteredKernel};
use mtgpu_gpusim::KernelDesc;
use mtgpu_simtime::Clock;
use std::sync::Arc;

const SHADOW: usize = 1024;
const ARR_BYTES: u64 = 4_000_000 * 4;
const REPEATS: u64 = 801;
const KERNEL_SECS: f64 = 2.9 / REPEATS as f64;
/// Host-side loop bookkeeping per launch.
const CPU_SECS_PER_CALL: f64 = 0.0008;

/// The PR workload.
pub struct Reduction {
    scale: Scale,
}

impl Reduction {
    /// Paper-scale instance.
    pub fn paper() -> Self {
        Reduction { scale: Scale::PAPER }
    }

    /// Custom-scale instance (fewer launches under `TINY`).
    pub fn with_scale(scale: Scale) -> Self {
        Reduction { scale }
    }

    fn repeats(&self) -> u64 {
        if self.scale.time < 1e-2 {
            9
        } else {
            REPEATS
        }
    }
}

/// Installs `pr_reduce`: `out[0] = Σ input[i]` over the shadow.
pub(crate) fn install() {
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("pr_reduce"),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let input = ptr_arg(exec, 0, "pr_reduce");
            let output = ptr_arg(exec, 1, "pr_reduce");
            let n = scalar_arg(exec, 2) as usize;
            let bytes = (n * 4) as u64;
            let mut sum = 0f32;
            exec.with_f32_mut(input, bytes, |v| sum = v[..n].iter().sum())?;
            exec.with_f32_mut(output, 4, |v| v[0] = sum)
        })),
    });
}

impl Workload for Reduction {
    fn name(&self) -> &str {
        "PR"
    }

    fn kernels(&self) -> Vec<KernelDesc> {
        vec![KernelDesc::plain("pr_reduce")]
    }

    fn estimated_flops(&self) -> Option<f64> {
        Some(crate::calib::flops_for_c2050_secs(KERNEL_SECS * REPEATS as f64 * self.scale.time))
    }

    fn run(&self, client: &mut dyn CudaClient, clock: &Clock) -> CudaResult<WorkloadReport> {
        let mut rng = XorShift::new(0x5EED_00F2);
        let input_host: Vec<f32> = (0..SHADOW).map(|_| rng.range_f32(0.0, 1.0)).collect();
        let input = upload_f32(client, scale_bytes(ARR_BYTES, &self.scale), &input_host)?;
        let output = alloc(client, 256, 256)?;
        let repeats = self.repeats();
        for _ in 0..repeats {
            launch(
                client,
                "pr_reduce",
                vec![
                    KernelArg::Ptr(input),
                    KernelArg::Ptr(output),
                    KernelArg::Scalar(SHADOW as u64),
                ],
                work_c2050(KERNEL_SECS * self.scale.time * (REPEATS as f64 / repeats as f64)),
            )?;
            cpu_phase(
                clock,
                CPU_SECS_PER_CALL * self.scale.time * (REPEATS as f64 / repeats as f64),
            );
        }
        let result = download_f32(client, output, 1)?;
        for ptr in [input, output] {
            client.free(ptr)?;
        }
        let expected: f32 = input_host.iter().sum();
        let ok = !result.is_empty() && approx_eq(result[0], expected);
        Ok(if ok {
            WorkloadReport::verified("PR", repeats)
        } else {
            WorkloadReport::failed("PR", repeats)
        })
    }
}
