//! Timing calibration (§5.2 / DESIGN.md §6).
//!
//! Kernel work is expressed in FLOPs so that execution time scales with the
//! device it lands on. The calibration anchor is the Tesla C2050: a kernel
//! declared via [`flops_for_c2050_secs`] runs for that many simulated
//! seconds on a C2050 and proportionally longer on slower devices.

use mtgpu_gpusim::{GpuSpec, Work};

/// Effective C2050 throughput in FLOP/s (the calibration anchor).
pub fn c2050_flops() -> f64 {
    GpuSpec::tesla_c2050().effective_flops()
}

/// Work that occupies a C2050 for `secs` simulated seconds.
pub fn flops_for_c2050_secs(secs: f64) -> f64 {
    secs * c2050_flops()
}

/// A compute-bound [`Work`] calibrated to `secs` on a C2050.
pub fn work_c2050(secs: f64) -> Work {
    Work { flops: flops_for_c2050_secs(secs), bytes: 0.0 }
}

/// Scale shared by every workload: `1.0` = paper-calibrated durations and
/// footprints; tests use small values to run in microseconds of wall time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Multiplier on kernel durations and CPU phases.
    pub time: f64,
    /// Multiplier on declared memory footprints.
    pub mem: f64,
}

impl Scale {
    /// Paper-calibrated scale.
    pub const PAPER: Scale = Scale { time: 1.0, mem: 1.0 };

    /// A small scale for unit tests (microsecond kernels, kilobyte
    /// footprints).
    pub const TINY: Scale = Scale { time: 1e-4, mem: 1e-5 };

    /// Uniform scale.
    pub fn uniform(s: f64) -> Scale {
        Scale { time: s, mem: s }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::PAPER
    }
}

/// Scales a byte count, keeping at least 256 bytes so allocations stay
/// valid.
pub fn scale_bytes(bytes: u64, scale: &Scale) -> u64 {
    ((bytes as f64 * scale.mem) as u64).max(256)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2050_anchor_is_about_one_teraflop() {
        assert!((0.9e12..1.2e12).contains(&c2050_flops()));
    }

    #[test]
    fn work_timing_inverts_on_anchor_device() {
        let spec = GpuSpec::tesla_c2050();
        let w = work_c2050(2.0);
        let secs = w.flops / spec.effective_flops();
        assert!((secs - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scale_bytes_floors_at_alignment() {
        assert_eq!(scale_bytes(10, &Scale::TINY), 256);
        assert_eq!(scale_bytes(1 << 30, &Scale::PAPER), 1 << 30);
    }
}
