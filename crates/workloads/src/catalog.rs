//! The Table 2 catalogue: enumerable application kinds, the short/long
//! pools the experiments draw from, and expected kernel-call counts.

use crate::apps;
use crate::calib::Scale;
use crate::Workload;
use mtgpu_simtime::DetRng;
use serde::{Deserialize, Serialize};

/// The thirteen benchmark programs of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// Back Propagation — 20 networks, 64K input nodes.
    Bp,
    /// Breadth-First Search — 1M-node graph.
    Bfs,
    /// HotSpot — 1M-cell thermal grid.
    Hs,
    /// Needleman-Wunsch — 2K sequence pairs.
    Nw,
    /// Scalar Product — 512 pairs of 1M-element vectors.
    Sp,
    /// Matrix Transpose — 384×384.
    Mt,
    /// Parallel Reduction — 4M elements.
    Pr,
    /// Scan — 260K-element prefix sum.
    Sc,
    /// Black-Scholes small — 4M options.
    BsS,
    /// Vector Addition — 100M elements.
    Va,
    /// Matrix Multiplication small — 200 × 2K×2K.
    MmS,
    /// Matrix Multiplication large — 10 × 10K×10K.
    MmL,
    /// Black-Scholes large — 40M options.
    BsL,
}

impl AppKind {
    /// Table 2 program name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Bp => "BP",
            AppKind::Bfs => "BFS",
            AppKind::Hs => "HS",
            AppKind::Nw => "NW",
            AppKind::Sp => "SP",
            AppKind::Mt => "MT",
            AppKind::Pr => "PR",
            AppKind::Sc => "SC",
            AppKind::BsS => "BS-S",
            AppKind::Va => "VA",
            AppKind::MmS => "MM-S",
            AppKind::MmL => "MM-L",
            AppKind::BsL => "BS-L",
        }
    }

    /// Kernel calls per Table 2 (at paper scale).
    pub fn kernel_calls(self) -> u64 {
        match self {
            AppKind::Bp => 40,
            AppKind::Bfs => 24,
            AppKind::Hs => 1,
            AppKind::Nw => 256,
            AppKind::Sp => 1,
            AppKind::Mt => 816,
            AppKind::Pr => 801,
            AppKind::Sc => 3_300,
            AppKind::BsS => 256,
            AppKind::Va => 1,
            AppKind::MmS => 200,
            AppKind::MmL => 10,
            AppKind::BsL => 256,
        }
    }

    /// Whether Table 2 classes the program as long-running.
    pub fn is_long_running(self) -> bool {
        matches!(self, AppKind::MmS | AppKind::MmL | AppKind::BsL)
    }

    /// Builds the workload at the given scale. Matrix-multiplication kinds
    /// take a CPU-work fraction (§5.3.3); other kinds ignore it.
    pub fn build_with(self, scale: Scale, cpu_fraction: f64) -> Box<dyn Workload> {
        match self {
            AppKind::Bp => Box::new(apps::BackProp::with_scale(scale)),
            AppKind::Bfs => Box::new(apps::Bfs::with_scale(scale)),
            AppKind::Hs => Box::new(apps::HotSpot::with_scale(scale)),
            AppKind::Nw => Box::new(apps::Needleman::with_scale(scale)),
            AppKind::Sp => Box::new(apps::ScalarProduct::with_scale(scale)),
            AppKind::Mt => Box::new(apps::Transpose::with_scale(scale)),
            AppKind::Pr => Box::new(apps::Reduction::with_scale(scale)),
            AppKind::Sc => Box::new(apps::Scan::with_scale(scale)),
            AppKind::BsS => Box::new(apps::BlackScholes::small().scaled(scale)),
            AppKind::Va => Box::new(apps::VecAdd::with_scale(scale)),
            AppKind::MmS => Box::new(apps::MatMul::small(cpu_fraction).scaled(scale)),
            AppKind::MmL => Box::new(apps::MatMul::large(cpu_fraction).scaled(scale)),
            AppKind::BsL => Box::new(apps::BlackScholes::large().scaled(scale)),
        }
    }

    /// Builds the workload at the given scale with no CPU phases.
    pub fn build(self, scale: Scale) -> Box<dyn Workload> {
        self.build_with(scale, 0.0)
    }

    /// All thirteen programs, Table 2 order.
    pub fn all() -> [AppKind; 13] {
        [
            AppKind::Bp,
            AppKind::Bfs,
            AppKind::Hs,
            AppKind::Nw,
            AppKind::Sp,
            AppKind::Mt,
            AppKind::Pr,
            AppKind::Sc,
            AppKind::BsS,
            AppKind::Va,
            AppKind::MmS,
            AppKind::MmL,
            AppKind::BsL,
        ]
    }
}

/// The short-running pool the paper draws random jobs from (§5.3.1).
pub fn short_pool() -> Vec<AppKind> {
    AppKind::all().into_iter().filter(|k| !k.is_long_running()).collect()
}

/// The long-running programs (§5.2).
pub fn long_pool() -> Vec<AppKind> {
    AppKind::all().into_iter().filter(|k| k.is_long_running()).collect()
}

/// Draws `n` kinds uniformly from `pool` through a deterministic
/// generator — the single code path for every "randomly drawn combination
/// of jobs" (§5.3.1), so a run's job mix is a pure function of the seed.
///
/// # Panics
/// Panics if `pool` is empty and `n > 0`.
pub fn draw_kinds(pool: &[AppKind], n: usize, rng: &mut DetRng) -> Vec<AppKind> {
    (0..n).map(|_| pool[rng.pick_index(pool.len())]).collect()
}

/// Seeded draw of `n` short-running kinds. Forks the `"workloads"` stream
/// off the root seed, so draws here never perturb scheduler or fault
/// randomness derived from the same seed.
pub fn draw_short_kinds(n: usize, seed: u64) -> Vec<AppKind> {
    let mut rng = DetRng::from_seed(seed).fork("workloads");
    draw_kinds(&short_pool(), n, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_partition_table2() {
        let short = short_pool();
        let long = long_pool();
        assert_eq!(short.len(), 10);
        assert_eq!(long.len(), 3);
        assert_eq!(short.len() + long.len(), AppKind::all().len());
        assert!(long.contains(&AppKind::MmL));
        assert!(!short.contains(&AppKind::BsL));
    }

    #[test]
    fn kernel_calls_match_table2() {
        assert_eq!(AppKind::Sc.kernel_calls(), 3_300);
        assert_eq!(AppKind::Mt.kernel_calls(), 816);
        assert_eq!(AppKind::MmL.kernel_calls(), 10);
        assert_eq!(AppKind::Hs.kernel_calls(), 1);
    }

    #[test]
    fn seeded_draws_replay() {
        let a = draw_short_kinds(16, 42);
        let b = draw_short_kinds(16, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|k| !k.is_long_running()));
        // A longer draw with the same seed starts with the same prefix.
        let c = draw_short_kinds(32, 42);
        assert_eq!(&c[..16], &a[..]);
    }

    #[test]
    fn build_produces_named_workloads() {
        for kind in AppKind::all() {
            let w = kind.build(Scale::TINY);
            assert_eq!(w.name(), kind.name());
            assert!(!w.kernels().is_empty());
        }
    }
}
