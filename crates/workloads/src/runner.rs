//! Concurrent batch execution: the measurement harness of §5.
//!
//! "The metric reported in all experiments is the overall execution time
//! for a batch of concurrent jobs (the time elapsed between the first job
//! starts and the last job finishes)"; the average per-job time is also
//! tracked (Figs. 10–11 report both).

use crate::report::WorkloadReport;
use crate::{register_workload, Workload};
use mtgpu_api::{CudaClient, CudaResult};
use mtgpu_simtime::{Clock, SimDuration, Stopwatch};

/// The outcome of one concurrent batch.
#[derive(Debug)]
pub struct BatchResult {
    /// Time from first job start to last job finish ("Tot" in the paper).
    pub total: SimDuration,
    /// Mean per-job execution time ("Avg").
    pub avg: SimDuration,
    /// Individual job reports, in submission order.
    pub reports: Vec<WorkloadReport>,
    /// Jobs that returned an error instead of a report.
    pub errors: Vec<String>,
}

impl BatchResult {
    /// Whether every job completed and verified its result.
    pub fn all_verified(&self) -> bool {
        self.errors.is_empty() && self.reports.iter().all(|r| r.verified)
    }
}

/// Runs `jobs` concurrently, one thread per job, each against its own
/// client produced by `clients` (pre-built so the factory itself needs no
/// synchronization). Returns batch timing in simulated seconds.
pub fn run_batch(
    clock: &Clock,
    jobs: Vec<Box<dyn Workload>>,
    clients: Vec<Box<dyn CudaClient>>,
) -> BatchResult {
    assert_eq!(jobs.len(), clients.len(), "one client per job");
    let batch_watch = Stopwatch::start(clock);
    let handles: Vec<_> = jobs
        .into_iter()
        .zip(clients)
        .map(|(job, mut client)| {
            let clock = clock.clone();
            std::thread::spawn(move || -> (String, CudaResult<WorkloadReport>) {
                let name = job.name().to_string();
                let watch = Stopwatch::start(&clock);
                let result = (|| {
                    register_workload(client.as_mut(), job.as_ref())?;
                    let mut report = job.run(client.as_mut(), &clock)?;
                    client.exit()?;
                    report.elapsed = watch.elapsed();
                    Ok(report)
                })();
                (name, result)
            })
        })
        .collect();
    let mut reports = Vec::new();
    let mut errors = Vec::new();
    for h in handles {
        match h.join() {
            Ok((_, Ok(report))) => reports.push(report),
            Ok((name, Err(e))) => errors.push(format!("{name}: {e}")),
            Err(_) => errors.push("job thread panicked".to_string()),
        }
    }
    let total = batch_watch.elapsed();
    let avg = if reports.is_empty() {
        SimDuration::ZERO
    } else {
        reports.iter().map(|r| r.elapsed).sum::<SimDuration>() / reports.len() as u64
    };
    BatchResult { total, avg, reports, errors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::Scale;
    use crate::catalog::AppKind;
    use mtgpu_api::BareClient;
    use mtgpu_gpusim::{Driver, GpuSpec};

    #[test]
    fn batch_runs_two_jobs_on_bare_driver() {
        crate::install_kernel_library();
        let clock = Clock::with_scale(1e-7);
        let driver = Driver::with_devices(clock.clone(), vec![GpuSpec::tesla_c2050()]);
        let jobs: Vec<Box<dyn Workload>> =
            vec![AppKind::Va.build(Scale::TINY), AppKind::Hs.build(Scale::TINY)];
        let clients: Vec<Box<dyn CudaClient>> = (0..2)
            .map(|_| Box::new(BareClient::new(driver.clone())) as Box<dyn CudaClient>)
            .collect();
        let result = run_batch(&clock, jobs, clients);
        assert!(result.all_verified(), "{:?}", result.errors);
        assert_eq!(result.reports.len(), 2);
        assert!(result.total >= result.avg);
        assert!(!result.total.is_zero());
    }
}
