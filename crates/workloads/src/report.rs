//! Per-run reports.

use mtgpu_simtime::SimDuration;
use serde::{Deserialize, Serialize};

/// The result of one workload execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Table 2 program name.
    pub name: String,
    /// Kernel launches performed.
    pub kernel_calls: u64,
    /// Whether the functional result verified against the host reference.
    pub verified: bool,
    /// Simulated execution time (filled by the batch runner; a bare
    /// workload run leaves it zero).
    pub elapsed: SimDuration,
}

impl WorkloadReport {
    /// A verified report.
    pub fn verified(name: impl Into<String>, kernel_calls: u64) -> Self {
        WorkloadReport {
            name: name.into(),
            kernel_calls,
            verified: true,
            elapsed: SimDuration::ZERO,
        }
    }

    /// A report that failed verification.
    pub fn failed(name: impl Into<String>, kernel_calls: u64) -> Self {
        WorkloadReport {
            name: name.into(),
            kernel_calls,
            verified: false,
            elapsed: SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(WorkloadReport::verified("VA", 1).verified);
        assert!(!WorkloadReport::failed("VA", 1).verified);
    }
}
