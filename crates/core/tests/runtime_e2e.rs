//! End-to-end tests of the node runtime through the interposition client:
//! virtual memory, sharing, swapping, fault tolerance, migration.

use mtgpu_api::{CudaClient, CudaError, HostBuf, KernelArg, LaunchConfig, LaunchSpec, Work};
use mtgpu_core::{NodeRuntime, RuntimeConfig};
use mtgpu_gpusim::kernel::{library, KernelExec, RegisteredKernel};
use mtgpu_gpusim::{DeviceAddr, DeviceId, Driver, GpuSpec, KernelDesc};
use mtgpu_simtime::Clock;
use std::sync::Arc;
use std::time::Duration;

const MIB: u64 = 1024 * 1024;

/// Registers the test kernels in the process-global library (idempotent).
fn install_kernels() {
    // fill: writes the low byte of arg1 (scalar) over the buffer at arg0.
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("fill"),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let ptr = exec.args()[0].as_ptr().expect("fill needs a pointer");
            let value = match exec.args()[1] {
                KernelArg::Scalar(v) => v as u8,
                _ => 0,
            };
            let len = match exec.args().get(2) {
                Some(KernelArg::Scalar(l)) => *l,
                _ => 64,
            };
            exec.with_bytes_mut(ptr, len, &mut |bytes| bytes.fill(value))
        })),
    });
    // add_one: increments every byte of the buffer at arg0.
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("add_one"),
        payload: Some(Arc::new(|exec: &mut KernelExec<'_>| {
            let ptr = exec.args()[0].as_ptr().expect("add_one needs a pointer");
            let len = match exec.args().get(1) {
                Some(KernelArg::Scalar(l)) => *l,
                _ => 64,
            };
            exec.with_bytes_mut(ptr, len, &mut |bytes| {
                for b in bytes.iter_mut() {
                    *b = b.wrapping_add(1);
                }
            })
        })),
    });
    // noop: timing-only.
    library::register(RegisteredKernel { desc: KernelDesc::plain("noop"), payload: None });
}

fn launch(kernel: &str, args: Vec<KernelArg>, flops: f64) -> LaunchSpec {
    LaunchSpec {
        kernel: kernel.into(),
        config: LaunchConfig::default(),
        args,
        work: Work::flops(flops),
    }
}

fn test_runtime(n_devices: u32, cfg: RuntimeConfig) -> Arc<NodeRuntime> {
    install_kernels();
    let specs = (0..n_devices).map(|_| GpuSpec::test_small()).collect();
    let driver = Driver::with_devices(Clock::with_scale(1e-7), specs);
    NodeRuntime::start(driver, cfg)
}

/// Registers the standard module on a fresh client.
fn register(client: &mut impl CudaClient) {
    let m = client.register_fat_binary().unwrap();
    for name in ["fill", "add_one", "noop"] {
        client.register_function(m, KernelDesc::plain(name)).unwrap();
    }
}

#[test]
fn end_to_end_fill_roundtrip() {
    let rt = test_runtime(1, RuntimeConfig::paper_default());
    let mut c = rt.local_client();
    register(&mut c);
    let ptr = c.malloc(256).unwrap();
    c.launch(launch(
        "fill",
        vec![KernelArg::Ptr(ptr), KernelArg::Scalar(7), KernelArg::Scalar(256)],
        1e6,
    ))
    .unwrap();
    let back = c.memcpy_d2h(ptr, 256).unwrap();
    assert_eq!(back.payload, vec![7u8; 256]);
    c.free(ptr).unwrap();
    c.exit().unwrap();
    rt.shutdown();
}

#[test]
fn virtual_addresses_are_not_device_addresses() {
    let rt = test_runtime(1, RuntimeConfig::paper_default());
    let mut c = rt.local_client();
    register(&mut c);
    let ptr = c.malloc(64).unwrap();
    // Virtual space starts at 0x7f00_0000_0000; device space is salted
    // under (ordinal+1)<<40.
    assert!(ptr.0 >= 0x7f00_0000_0000, "app saw a non-virtual address {ptr}");
    c.exit().unwrap();
    rt.shutdown();
}

#[test]
fn deferral_no_device_traffic_before_launch() {
    let rt = test_runtime(1, RuntimeConfig::paper_default());
    let gpu = rt.driver().device(DeviceId(0)).unwrap();
    let mut c = rt.local_client();
    register(&mut c);
    let ptr = c.malloc(MIB).unwrap();
    c.memcpy_h2d(ptr, HostBuf::with_shadow(MIB, vec![1u8; 128])).unwrap();
    c.memcpy_h2d(ptr, HostBuf::with_shadow(MIB, vec![2u8; 128])).unwrap();
    // Nothing has touched the device: no H2D bytes, no app allocations
    // (only the vGPU context reservations).
    assert_eq!(gpu.stats().snapshot().h2d_bytes, 0);
    assert_eq!(gpu.stats().snapshot().allocs, 0);
    // The second copy coalesced into the pending bulk transfer.
    assert!(rt.metrics().coalesced_copies >= 1);
    c.launch(launch("noop", vec![KernelArg::Ptr(ptr)], 1e6)).unwrap();
    let snap = gpu.stats().snapshot();
    assert_eq!(snap.allocs, 1, "single device allocation at launch");
    assert_eq!(snap.h2d_bytes, MIB, "one bulk upload of the declared size");
    assert!(rt.metrics().bulk_uploads >= 1);
    c.exit().unwrap();
    rt.shutdown();
}

#[test]
fn copy_d2h_without_launch_serves_from_swap() {
    let rt = test_runtime(1, RuntimeConfig::paper_default());
    let mut c = rt.local_client();
    register(&mut c);
    let ptr = c.malloc(64).unwrap();
    c.memcpy_h2d(ptr, HostBuf::from_slice(&[5u8; 64])).unwrap();
    let back = c.memcpy_d2h(ptr, 64).unwrap();
    assert_eq!(back.payload, vec![5u8; 64]);
    c.exit().unwrap();
    rt.shutdown();
}

#[test]
fn interior_pointer_arithmetic_works_via_virtual_space() {
    let rt = test_runtime(1, RuntimeConfig::paper_default());
    let mut c = rt.local_client();
    register(&mut c);
    let ptr = c.malloc(256).unwrap();
    let mid = DeviceAddr(ptr.0 + 128);
    c.memcpy_h2d(mid, HostBuf::from_slice(&[9u8; 16])).unwrap();
    let back = c.memcpy_d2h(mid, 16).unwrap();
    assert_eq!(back.payload, vec![9u8; 16]);
    c.exit().unwrap();
    rt.shutdown();
}

#[test]
fn table1_error_paths() {
    let rt = test_runtime(1, RuntimeConfig::paper_default());
    let mut c = rt.local_client();
    register(&mut c);
    // No valid PTE.
    assert_eq!(
        c.memcpy_h2d(DeviceAddr(0xdead), HostBuf::from_slice(&[0; 4])),
        Err(CudaError::InvalidDevicePointer)
    );
    assert_eq!(c.memcpy_d2h(DeviceAddr(0xdead), 4), Err(CudaError::InvalidDevicePointer));
    assert_eq!(c.free(DeviceAddr(0xdead)), Err(CudaError::InvalidDevicePointer));
    // Swap-data size mismatch: copy beyond the allocation.
    let ptr = c.malloc(64).unwrap();
    assert_eq!(c.memcpy_h2d(ptr, HostBuf::declared(128)), Err(CudaError::SizeMismatch));
    assert_eq!(c.memcpy_d2h(ptr, 128), Err(CudaError::OutOfBounds));
    assert!(rt.metrics().bad_ops_rejected >= 2);
    // Launch with an unregistered kernel.
    assert_eq!(
        c.launch(launch("ghost", vec![KernelArg::Ptr(ptr)], 1.0)),
        Err(CudaError::InvalidDeviceFunction("ghost".into()))
    );
    // Launch with an invalid pointer.
    assert_eq!(
        c.launch(launch("noop", vec![KernelArg::Ptr(DeviceAddr(0xbad))], 1.0)),
        Err(CudaError::InvalidDevicePointer)
    );
    c.exit().unwrap();
    rt.shutdown();
}

#[test]
fn set_device_is_ignored_and_count_reports_vgpus() {
    let rt = test_runtime(2, RuntimeConfig::paper_default());
    let mut c = rt.local_client();
    register(&mut c);
    // cudaSetDevice is overridden: any ordinal is accepted.
    c.set_device(99).unwrap();
    // 2 devices × 4 vGPUs.
    assert_eq!(c.get_device_count().unwrap(), 8);
    let props = c.get_device_properties(5).unwrap();
    assert_eq!(props.name, "TestGPU-64M");
    c.exit().unwrap();
    rt.shutdown();
}

#[test]
fn intra_app_swap_runs_oversized_application() {
    // Paper §4.5: three matrices where only ~two fit; the intra-application
    // swap must let the app complete although its footprint exceeds device
    // memory.
    let rt = test_runtime(1, RuntimeConfig::paper_default());
    let gpu = rt.driver().device(DeviceId(0)).unwrap();
    let avail = gpu.mem_available();
    let chunk = avail / 5 * 2; // two fit, three do not
    let mut c = rt.local_client();
    register(&mut c);
    let a = c.malloc(chunk).unwrap();
    let b = c.malloc(chunk).unwrap();
    let d = c.malloc(chunk).unwrap();
    c.memcpy_h2d(a, HostBuf::with_shadow(chunk, vec![1u8; 64])).unwrap();
    // k1 uses A, B; k2 uses B, D — A must be evicted for k2.
    c.launch(launch("noop", vec![KernelArg::Ptr(a), KernelArg::Ptr(b)], 1e6)).unwrap();
    c.launch(launch("noop", vec![KernelArg::Ptr(b), KernelArg::Ptr(d)], 1e6)).unwrap();
    let m = rt.metrics();
    assert!(m.intra_app_swaps >= 1, "expected intra-app swap, got {m:?}");
    // A's data survived the eviction.
    let back = c.memcpy_d2h(a, 64).unwrap();
    assert_eq!(back.payload, vec![1u8; 64]);
    c.exit().unwrap();
    rt.shutdown();
}

#[test]
fn inter_app_swap_resolves_conflicting_tenants() {
    // Two applications, each fitting alone but not together, time-share the
    // device through inter-application swap (§4.5).
    let rt = test_runtime(1, RuntimeConfig::paper_default());
    let gpu = rt.driver().device(DeviceId(0)).unwrap();
    let chunk = gpu.mem_available() * 6 / 10;
    let rt_a = Arc::clone(&rt);
    let rt_b = Arc::clone(&rt);
    let worker = move |rt: Arc<NodeRuntime>, tag: u8| {
        move || {
            let mut c = rt.local_client();
            register(&mut c);
            let ptr = c.malloc(chunk).unwrap();
            c.memcpy_h2d(ptr, HostBuf::with_shadow(chunk, vec![tag; 32])).unwrap();
            for _ in 0..4 {
                c.launch(launch("add_one", vec![KernelArg::Ptr(ptr), KernelArg::Scalar(32)], 1e7))
                    .unwrap();
                // CPU phase: the context goes idle, making it a swap victim.
                std::thread::sleep(Duration::from_millis(10));
            }
            let back = c.memcpy_d2h(ptr, 32).unwrap();
            c.exit().unwrap();
            back.payload
        }
    };
    let ta = std::thread::spawn(worker(rt_a, 10));
    let tb = std::thread::spawn(worker(rt_b, 20));
    let ra = ta.join().unwrap();
    let rb = tb.join().unwrap();
    // Each app incremented its buffer 4 times; data integrity across swaps.
    assert_eq!(ra, vec![14u8; 32]);
    assert_eq!(rb, vec![24u8; 32]);
    let m = rt.metrics();
    assert!(
        m.inter_app_swaps + m.launch_retries >= 1,
        "conflicting tenants must have swapped or retried: {m:?}"
    );
    rt.shutdown();
}

#[test]
fn serialized_config_never_shares() {
    let rt = test_runtime(1, RuntimeConfig::serialized());
    let rt2 = Arc::clone(&rt);
    let t = std::thread::spawn(move || {
        let mut c = rt2.local_client();
        register(&mut c);
        let p = c.malloc(1024).unwrap();
        c.launch(launch("noop", vec![KernelArg::Ptr(p)], 1e8)).unwrap();
        c.exit().unwrap();
    });
    let mut c = rt.local_client();
    register(&mut c);
    let p = c.malloc(1024).unwrap();
    c.launch(launch("noop", vec![KernelArg::Ptr(p)], 1e8)).unwrap();
    c.exit().unwrap();
    t.join().unwrap();
    // One vGPU ⇒ never more than one binding at a time; both jobs ran.
    assert_eq!(rt.metrics().launches, 2);
    rt.shutdown();
}

#[test]
fn checkpoint_then_device_failure_recovers_transparently() {
    let rt = test_runtime(2, RuntimeConfig::paper_default());
    let mut c = rt.local_client();
    register(&mut c);
    let ptr = c.malloc(128).unwrap();
    c.launch(launch(
        "fill",
        vec![KernelArg::Ptr(ptr), KernelArg::Scalar(3), KernelArg::Scalar(128)],
        1e6,
    ))
    .unwrap();
    // Explicit checkpoint: dirty device data flushed to swap.
    c.checkpoint().unwrap();
    assert!(rt.metrics().checkpoints >= 1);
    // Kill the device the context is bound to (one of the two).
    let bound_device = rt
        .driver()
        .devices()
        .into_iter()
        .find(|(_, g)| g.stats().snapshot().kernels_launched > 0)
        .map(|(id, _)| id)
        .expect("some device ran the kernel");
    rt.driver().device(bound_device).unwrap().fail();
    // Next launch transparently rebinds to the surviving device.
    c.launch(launch("add_one", vec![KernelArg::Ptr(ptr), KernelArg::Scalar(128)], 1e6)).unwrap();
    let back = c.memcpy_d2h(ptr, 128).unwrap();
    assert_eq!(back.payload, vec![4u8; 128], "state survived the failure");
    assert!(rt.metrics().recovered_contexts >= 1);
    c.exit().unwrap();
    rt.shutdown();
}

#[test]
fn failure_without_checkpoint_fails_context_but_not_runtime() {
    let rt = test_runtime(1, RuntimeConfig::paper_default());
    let mut c = rt.local_client();
    register(&mut c);
    let ptr = c.malloc(128).unwrap();
    c.launch(launch(
        "fill",
        vec![KernelArg::Ptr(ptr), KernelArg::Scalar(3), KernelArg::Scalar(128)],
        1e6,
    ))
    .unwrap();
    // Dirty data only on device; fail it.
    rt.driver().device(DeviceId(0)).unwrap().fail();
    let err = c.memcpy_d2h(ptr, 128).unwrap_err();
    assert_eq!(err, CudaError::DeviceUnavailable);
    assert_eq!(rt.metrics().failed_contexts, 1);
    // The error is sticky for this context.
    assert_eq!(
        c.launch(launch("noop", vec![KernelArg::Ptr(ptr)], 1.0)),
        Err(CudaError::DeviceUnavailable)
    );
    c.exit().unwrap();
    rt.shutdown();
}

#[test]
fn auto_checkpoint_after_long_kernels() {
    let mut cfg = RuntimeConfig::paper_default();
    cfg.auto_checkpoint_after = Some(mtgpu_simtime::SimDuration::from_millis(1));
    let rt = test_runtime(2, cfg);
    let mut c = rt.local_client();
    register(&mut c);
    let ptr = c.malloc(128).unwrap();
    // A kernel long enough to cross the auto-checkpoint threshold.
    c.launch(launch(
        "fill",
        vec![KernelArg::Ptr(ptr), KernelArg::Scalar(9), KernelArg::Scalar(128)],
        1e9,
    ))
    .unwrap();
    assert!(rt.metrics().checkpoints >= 1, "auto checkpoint should fire");
    // Failure after the automatic checkpoint is survivable.
    let bound_device = rt
        .driver()
        .devices()
        .into_iter()
        .find(|(_, g)| g.stats().snapshot().kernels_launched > 0)
        .map(|(id, _)| id)
        .unwrap();
    rt.driver().device(bound_device).unwrap().fail();
    let back = c.memcpy_d2h(ptr, 128).unwrap();
    assert_eq!(back.payload, vec![9u8; 128]);
    c.exit().unwrap();
    rt.shutdown();
}

#[test]
fn migration_moves_idle_job_to_fast_gpu() {
    install_kernels();
    // Start with only the slow Quadro; the job must bind there.
    let clock = Clock::with_scale(1e-7);
    let driver = Driver::with_devices(clock, vec![GpuSpec::quadro_2000()]);
    let mut cfg = RuntimeConfig::paper_default().with_vgpus(1);
    cfg.dynamic_load_balancing = true;
    cfg.monitor_interval = Duration::from_millis(2);
    let rt = NodeRuntime::start(driver, cfg);
    let mut c = rt.local_client();
    register(&mut c);
    let p = c.malloc(2048).unwrap();
    c.launch(launch(
        "fill",
        vec![KernelArg::Ptr(p), KernelArg::Scalar(5), KernelArg::Scalar(64)],
        1e8,
    ))
    .unwrap();
    assert!(rt.driver().device(DeviceId(0)).unwrap().stats().snapshot().kernels_launched >= 1);
    // Hot-attach a fast C2050 (dynamic upgrade, §2). The monitor must
    // migrate the idle job from the slow to the fast device (§5.3.4).
    let fast = rt.attach_device(GpuSpec::tesla_c2050());
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while rt.metrics().migrations == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(rt.metrics().migrations >= 1, "idle job never migrated to the fast GPU");
    // The next kernel runs on the fast device with state intact.
    c.launch(launch("add_one", vec![KernelArg::Ptr(p), KernelArg::Scalar(64)], 1e8)).unwrap();
    assert_eq!(c.memcpy_d2h(p, 64).unwrap().payload, vec![6u8; 64]);
    assert!(
        rt.driver().device(fast).unwrap().stats().snapshot().kernels_launched >= 1,
        "post-migration kernel must run on the fast device"
    );
    c.exit().unwrap();
    rt.shutdown();
}

#[test]
fn hot_attach_unblocks_waiting_jobs() {
    install_kernels();
    // Runtime with zero devices: the first launch waits.
    let driver = Driver::new(Clock::with_scale(1e-7));
    let rt = NodeRuntime::start(driver, RuntimeConfig::paper_default());
    let rt2 = Arc::clone(&rt);
    let job = std::thread::spawn(move || {
        let mut c = rt2.local_client();
        register(&mut c);
        let p = c.malloc(64).unwrap();
        c.launch(launch(
            "fill",
            vec![KernelArg::Ptr(p), KernelArg::Scalar(1), KernelArg::Scalar(64)],
            1e6,
        ))
        .unwrap();
        let back = c.memcpy_d2h(p, 64).unwrap();
        c.exit().unwrap();
        back.payload
    });
    std::thread::sleep(Duration::from_millis(30));
    assert!(!job.is_finished(), "launch must wait with no devices");
    rt.attach_device(GpuSpec::test_small());
    assert_eq!(job.join().unwrap(), vec![1u8; 64]);
    rt.shutdown();
}

#[test]
fn detach_device_recovers_clean_contexts() {
    let rt = test_runtime(2, RuntimeConfig::paper_default());
    let mut c = rt.local_client();
    register(&mut c);
    let ptr = c.malloc(64).unwrap();
    c.memcpy_h2d(ptr, HostBuf::from_slice(&[8u8; 64])).unwrap();
    c.launch(launch("noop", vec![KernelArg::Ptr(ptr)], 1e6)).unwrap();
    c.checkpoint().unwrap();
    let bound_device = rt
        .driver()
        .devices()
        .into_iter()
        .find(|(_, g)| g.stats().snapshot().kernels_launched > 0)
        .map(|(id, _)| id)
        .unwrap();
    rt.detach_device(bound_device);
    // Context rebinds to the remaining device on the next kernel.
    c.launch(launch("add_one", vec![KernelArg::Ptr(ptr), KernelArg::Scalar(64)], 1e6)).unwrap();
    assert_eq!(c.memcpy_d2h(ptr, 64).unwrap().payload, vec![9u8; 64]);
    c.exit().unwrap();
    rt.shutdown();
}

#[test]
fn nested_structures_swap_consistently() {
    let rt = test_runtime(1, RuntimeConfig::paper_default());
    let mut c = rt.local_client();
    register(&mut c);
    let parent = c.malloc(64).unwrap();
    let member = c.malloc(64).unwrap();
    c.register_nested(parent, vec![member]).unwrap();
    c.memcpy_h2d(member, HostBuf::from_slice(&[4u8; 64])).unwrap();
    // Launching with only the parent must also materialize the member.
    c.launch(launch("noop", vec![KernelArg::Ptr(parent)], 1e6)).unwrap();
    let gpu = rt.driver().device(DeviceId(0)).unwrap();
    assert_eq!(gpu.stats().snapshot().allocs, 2, "parent + member both resident");
    c.exit().unwrap();
    rt.shutdown();
}

#[test]
fn dynamic_alloc_kernels_are_ineligible_but_run() {
    install_kernels();
    library::register(RegisteredKernel {
        desc: KernelDesc {
            name: "devmalloc".into(),
            uses_nested_pointers: false,
            uses_dynamic_alloc: true,
            read_only_args: Vec::new(),
        },
        payload: None,
    });
    let rt = test_runtime(1, RuntimeConfig::paper_default());
    let mut c = rt.local_client();
    let m = c.register_fat_binary().unwrap();
    c.register_function(
        m,
        KernelDesc {
            name: "devmalloc".into(),
            uses_nested_pointers: false,
            uses_dynamic_alloc: true,
            read_only_args: Vec::new(),
        },
    )
    .unwrap();
    let p = c.malloc(64).unwrap();
    // §1: such applications may still use the runtime...
    c.launch(launch("devmalloc", vec![KernelArg::Ptr(p)], 1e6)).unwrap();
    c.exit().unwrap();
    rt.shutdown();
}

#[test]
fn many_concurrent_jobs_beyond_cuda_context_limit() {
    // 24 concurrent applications on one device: far beyond the CUDA
    // runtime's 8-context limit, possible because apps share the 4 vGPU
    // contexts (§4.4).
    let rt = test_runtime(1, RuntimeConfig::paper_default());
    let handles: Vec<_> = (0..24)
        .map(|i| {
            let rt = Arc::clone(&rt);
            std::thread::spawn(move || {
                let mut c = rt.local_client();
                register(&mut c);
                let p = c.malloc(4096).unwrap();
                c.launch(launch(
                    "fill",
                    vec![KernelArg::Ptr(p), KernelArg::Scalar(i), KernelArg::Scalar(16)],
                    1e6,
                ))
                .unwrap();
                let back = c.memcpy_d2h(p, 16).unwrap();
                c.exit().unwrap();
                assert_eq!(back.payload, vec![i as u8; 16]);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(rt.metrics().launches, 24);
    // The device never held more than 4 contexts (vGPUs).
    let gpu = rt.driver().device(DeviceId(0)).unwrap();
    assert_eq!(gpu.stats().snapshot().contexts_created, 4);
    rt.shutdown();
}

#[test]
fn unbind_retry_when_no_victim_accepts() {
    // One tenant permanently busy (long kernels back to back), another
    // needing more memory than remains: it must unbind-and-retry, then
    // succeed once the busy tenant finishes.
    let rt = test_runtime(1, RuntimeConfig::paper_default());
    let gpu = rt.driver().device(DeviceId(0)).unwrap();
    let chunk = gpu.mem_available() * 6 / 10;
    let rt_busy = Arc::clone(&rt);
    let busy = std::thread::spawn(move || {
        let mut c = rt_busy.local_client();
        register(&mut c);
        let p = c.malloc(chunk).unwrap();
        for _ in 0..3 {
            c.launch(launch("noop", vec![KernelArg::Ptr(p)], 5e8)).unwrap();
        }
        c.exit().unwrap();
    });
    std::thread::sleep(Duration::from_millis(20));
    let mut c = rt.local_client();
    register(&mut c);
    let p = c.malloc(chunk).unwrap();
    c.launch(launch(
        "fill",
        vec![KernelArg::Ptr(p), KernelArg::Scalar(2), KernelArg::Scalar(16)],
        1e6,
    ))
    .unwrap();
    assert_eq!(c.memcpy_d2h(p, 16).unwrap().payload, vec![2u8; 16]);
    c.exit().unwrap();
    busy.join().unwrap();
    rt.shutdown();
}

#[test]
fn trace_records_lifecycle_events() {
    use mtgpu_core::TraceEvent;
    let rt = test_runtime(1, RuntimeConfig::paper_default());
    let mut c = rt.local_client();
    register(&mut c);
    let p = c.malloc(128).unwrap();
    c.launch(launch(
        "fill",
        vec![KernelArg::Ptr(p), KernelArg::Scalar(1), KernelArg::Scalar(16)],
        1e6,
    ))
    .unwrap();
    c.checkpoint().unwrap();
    c.exit().unwrap();
    rt.wait_idle(Duration::from_secs(2));
    let events = rt.trace();
    let has = |pred: &dyn Fn(&TraceEvent) -> bool| events.iter().any(|r| pred(&r.event));
    assert!(has(&|e| matches!(e, TraceEvent::ContextCreated { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::Bound { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::Checkpointed { explicit: true, .. })));
    assert!(has(&|e| matches!(e, TraceEvent::ContextFinished { .. })));
    // Created precedes Bound precedes Finished for the same context.
    let created =
        events.iter().position(|r| matches!(r.event, TraceEvent::ContextCreated { .. })).unwrap();
    let bound = events.iter().position(|r| matches!(r.event, TraceEvent::Bound { .. })).unwrap();
    let finished =
        events.iter().position(|r| matches!(r.event, TraceEvent::ContextFinished { .. })).unwrap();
    assert!(created < bound && bound < finished);
    rt.shutdown();
}

#[test]
fn trace_disabled_by_zero_capacity() {
    let mut cfg = RuntimeConfig::paper_default();
    cfg.trace_capacity = 0;
    let rt = test_runtime(1, cfg);
    let mut c = rt.local_client();
    c.malloc(64).unwrap();
    c.exit().unwrap();
    rt.wait_idle(Duration::from_secs(2));
    assert!(rt.trace().is_empty());
    rt.shutdown();
}

#[test]
fn cuda4_application_threads_colocate() {
    // §4.8: threads announcing the same application id must land on the
    // same device, even when load balancing would otherwise spread them.
    let rt = test_runtime(3, RuntimeConfig::paper_default());
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let rt = Arc::clone(&rt);
            std::thread::spawn(move || {
                let mut c = rt.local_client();
                c.set_application(42).unwrap();
                register(&mut c);
                let p = c.malloc(1024).unwrap();
                c.launch(launch(
                    "fill",
                    vec![KernelArg::Ptr(p), KernelArg::Scalar(i), KernelArg::Scalar(16)],
                    1e7,
                ))
                .unwrap();
                // Hold the binding briefly so siblings bind while we are on
                // a device.
                std::thread::sleep(Duration::from_millis(20));
                let ok = c.memcpy_d2h(p, 16).unwrap().payload == vec![i as u8; 16];
                c.exit().unwrap();
                ok
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap());
    }
    // Exactly one device ran kernels.
    let active_devices = rt
        .driver()
        .devices()
        .into_iter()
        .filter(|(_, g)| g.stats().snapshot().kernels_launched > 0)
        .count();
    assert_eq!(active_devices, 1, "application threads were split across devices");
    rt.shutdown();
}

#[test]
fn cuda4_different_applications_still_spread() {
    let rt = test_runtime(3, RuntimeConfig::paper_default());
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let rt = Arc::clone(&rt);
            std::thread::spawn(move || {
                let mut c = rt.local_client();
                c.set_application(100 + i).unwrap(); // six distinct apps
                register(&mut c);
                let p = c.malloc(1024).unwrap();
                c.launch(launch("noop", vec![KernelArg::Ptr(p)], 1e8)).unwrap();
                std::thread::sleep(Duration::from_millis(20));
                c.exit().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let active_devices = rt
        .driver()
        .devices()
        .into_iter()
        .filter(|(_, g)| g.stats().snapshot().kernels_launched > 0)
        .count();
    assert!(active_devices >= 2, "independent applications should load-balance");
    rt.shutdown();
}

#[test]
fn retry_backoff_advances_virtual_time_only() {
    // Regression: the unbind-and-retry backoff used to be a real
    // `thread::sleep`, which stalled virtual-clock runs and leaked wall
    // time into replays. It must now advance the virtual timeline instead.
    install_kernels();
    let clock = Clock::virtual_clock();
    let driver = Driver::with_devices(clock.clone(), vec![GpuSpec::test_small()]);
    let mut cfg = RuntimeConfig::paper_default();
    cfg.inter_app_swap = false; // force the unbind-and-retry path
    let rt = NodeRuntime::start(driver, cfg);
    let gpu = rt.driver().device(DeviceId(0)).unwrap();
    let chunk = gpu.mem_available() * 6 / 10;
    // Tenant A occupies most of the device and stays bound.
    let mut a = rt.local_client();
    register(&mut a);
    let pa = a.malloc(chunk).unwrap();
    a.launch(launch("noop", vec![KernelArg::Ptr(pa)], 1e6)).unwrap();
    let v0 = clock.now();
    // Tenant B needs more memory than remains: no inter-app swap allowed,
    // so its launch unbinds-and-retries until A frees.
    let rt_b = Arc::clone(&rt);
    let tb = std::thread::spawn(move || {
        let mut b = rt_b.local_client();
        register(&mut b);
        let pb = b.malloc(chunk).unwrap();
        b.launch(launch(
            "fill",
            vec![KernelArg::Ptr(pb), KernelArg::Scalar(6), KernelArg::Scalar(16)],
            1e6,
        ))
        .unwrap();
        let back = b.memcpy_d2h(pb, 16).unwrap();
        b.exit().unwrap();
        back.payload
    });
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while rt.metrics().launch_retries == 0 {
        assert!(std::time::Instant::now() < deadline, "retry path never taken");
        std::thread::sleep(Duration::from_millis(1));
    }
    a.free(pa).unwrap();
    assert_eq!(tb.join().unwrap(), vec![6u8; 16]);
    let retries = rt.metrics().launch_retries;
    assert!(retries >= 1);
    // Each retry advanced the virtual timeline by the 2ms backoff; with a
    // real sleep the virtual clock would not have moved at all (kernel
    // durations here are far below a millisecond of simulated time).
    let v_elapsed = clock.now().duration_since(v0);
    assert!(
        v_elapsed.as_nanos() >= retries * 2_000_000,
        "virtual time did not absorb the backoff: {retries} retries but only {v_elapsed} elapsed"
    );
    a.exit().unwrap();
    rt.shutdown();
}

#[test]
fn read_only_annotations_skip_swap_synchronization() {
    // §4.5 fine-grained handling: an input annotated read-only stays clean
    // after the launch, so evicting it costs no device-to-host copy —
    // while the conservative default synchronizes everything.
    install_kernels();
    library::register(RegisteredKernel {
        desc: KernelDesc::plain("ro_consume").with_read_only_args(vec![0]),
        payload: None,
    });
    let run = |annotated: bool| -> (u64, Vec<u8>) {
        let rt = test_runtime(1, RuntimeConfig::paper_default());
        let gpu = rt.driver().device(DeviceId(0)).unwrap();
        let mut c = rt.local_client();
        let m = c.register_fat_binary().unwrap();
        let kernel = if annotated {
            KernelDesc::plain("ro_consume").with_read_only_args(vec![0])
        } else {
            KernelDesc::plain("ro_consume")
        };
        c.register_function(m, kernel).unwrap();
        c.register_function(m, KernelDesc::plain("noop")).unwrap();
        let input = c.malloc(1 << 20).unwrap();
        let output = c.malloc(1 << 20).unwrap();
        c.memcpy_h2d(input, HostBuf::with_shadow(1 << 20, vec![3u8; 32])).unwrap();
        // args: [input (read-only when annotated), output]
        c.launch(launch("ro_consume", vec![KernelArg::Ptr(input), KernelArg::Ptr(output)], 1e6))
            .unwrap();
        // Force an eviction: a working set larger than the remaining free
        // memory, so intra-app swap must evict input+output.
        let big = c.malloc(gpu.mem_available() + (1 << 20)).unwrap();
        c.launch(launch("noop", vec![KernelArg::Ptr(big)], 1e6)).unwrap();
        let d2h = gpu.stats().snapshot().d2h_bytes;
        let input_back = c.memcpy_d2h(input, 32).unwrap().payload;
        c.exit().unwrap();
        rt.shutdown();
        (d2h, input_back)
    };
    let (d2h_conservative, data_a) = run(false);
    let (d2h_annotated, data_b) = run(true);
    assert_eq!(data_a, vec![3u8; 32], "conservative path preserved data");
    assert_eq!(data_b, vec![3u8; 32], "annotated path preserved data");
    assert!(
        d2h_annotated < d2h_conservative,
        "read-only annotation must save swap-out copies: {d2h_annotated} >= {d2h_conservative}"
    );
}
