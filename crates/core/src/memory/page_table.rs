//! Page-table entries and the Figure 4 flag state machine.
//!
//! Each memory allocation an application makes produces one
//! [`PageTableEntry`] holding three locations for the data — the virtual
//! pointer returned to the application, the swap slab in host memory, and
//! (when resident) the device pointer — plus the
//! `isAllocated`/`toCopy2Dev`/`toCopy2Swap` flags whose transitions Figure 4
//! of the paper specifies. The pure transition function lives in [`Flags`]
//! so it can be property-tested in isolation; the memory manager performs
//! the corresponding device operations and keeps the real state in sync.

use crate::memory::eviction::TouchStamp;
use mtgpu_api::protocol::AllocKind;
use mtgpu_gpusim::DeviceAddr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The `isAllocated` / `toCopy2Dev` / `toCopy2Swap` flag triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Flags {
    /// A device allocation backs this entry.
    pub allocated: bool,
    /// The authoritative data lives only in the swap slab and must be
    /// uploaded before the next kernel touches it.
    pub to_dev: bool,
    /// The authoritative data lives only on the device and must be copied
    /// down before it can be served to the host or the entry evicted.
    pub to_swap: bool,
}

impl Flags {
    /// State of a freshly created entry: no device allocation, no data.
    pub const INITIAL: Flags = Flags { allocated: false, to_dev: false, to_swap: false };

    /// Host-to-device copy under deferral: the slab now holds the
    /// authoritative data, superseding any device copy.
    #[must_use]
    pub fn on_copy_hd(self) -> Flags {
        Flags { allocated: self.allocated, to_dev: true, to_swap: false }
    }

    /// Kernel launch touching this entry: data was uploaded if needed and
    /// the kernel may have modified it on device.
    #[must_use]
    pub fn on_launch(self) -> Flags {
        Flags { allocated: true, to_dev: false, to_swap: true }
    }

    /// Device-to-host copy: if the device held the only copy, the slab is
    /// now synchronized; otherwise nothing changes.
    #[must_use]
    pub fn on_copy_dh(self) -> Flags {
        if self.to_swap {
            Flags { allocated: self.allocated, to_dev: false, to_swap: false }
        } else {
            self
        }
    }

    /// Swap-out: device copy (synchronized first if dirty) is dropped; the
    /// slab becomes authoritative. No-op when not allocated.
    #[must_use]
    pub fn on_swap(self) -> Flags {
        if self.allocated {
            Flags { allocated: false, to_dev: true, to_swap: false }
        } else {
            self
        }
    }

    /// The five reachable states of Figure 4, as (allocated, to_dev,
    /// to_swap) triples.
    pub const REACHABLE: [Flags; 5] = [
        Flags { allocated: false, to_dev: false, to_swap: false },
        Flags { allocated: false, to_dev: true, to_swap: false },
        Flags { allocated: true, to_dev: false, to_swap: false },
        Flags { allocated: true, to_dev: true, to_swap: false },
        Flags { allocated: true, to_dev: false, to_swap: true },
    ];
}

/// The swap-area slab backing one entry: declared length plus the
/// materialized shadow payload.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapSlab {
    /// Bytes this slab represents.
    pub declared: u64,
    /// Materialized bytes (a lazily grown prefix of the declared content;
    /// unwritten materialized bytes read as zero).
    pub data: Vec<u8>,
    /// Materialization cap: `min(declared, configured cap)`.
    pub max_len: u64,
}

impl SwapSlab {
    /// Creates a slab of `declared` bytes, materializing lazily up to `cap`
    /// real bytes.
    pub fn new(declared: u64, cap: u64) -> Self {
        SwapSlab { declared, data: Vec::new(), max_len: declared.min(cap) }
    }

    /// Writes `payload` at `offset`, growing the materialized prefix up to
    /// the cap; bytes past the cap are dropped (shadow semantics).
    pub fn write(&mut self, offset: u64, payload: &[u8]) {
        let target = (offset + payload.len() as u64).min(self.max_len) as usize;
        if self.data.len() < target {
            self.data.resize(target, 0);
        }
        let start = offset as usize;
        if start >= self.data.len() {
            return;
        }
        let n = payload.len().min(self.data.len() - start);
        self.data[start..start + n].copy_from_slice(&payload[..n]);
    }

    /// Reads up to `len` materialized bytes at `offset`.
    pub fn read(&self, offset: u64, len: u64) -> Vec<u8> {
        let start = (offset as usize).min(self.data.len());
        let end = ((offset + len) as usize).min(self.data.len());
        self.data[start..end].to_vec()
    }
}

/// One page-table entry (the paper's `PageTableEntry`, §4.5).
#[derive(Debug, Clone)]
pub struct PageTableEntry {
    /// The virtual pointer handed to the application.
    pub vaddr: DeviceAddr,
    /// Declared size in bytes.
    pub size: u64,
    /// Device pointer when resident.
    pub device_ptr: Option<DeviceAddr>,
    /// Data-location flags (Figure 4).
    pub flags: Flags,
    /// Allocation kind (Table 1 distinguishes Malloc variants via `type`).
    pub kind: AllocKind,
    /// Swap slab (allocated at `malloc` time, per Table 1).
    pub slab: SwapSlab,
    /// Virtual addresses of nested members (entries this one points into),
    /// registered through the runtime API (§1).
    pub nested_members: Vec<DeviceAddr>,
    /// Virtual address of the nesting parent, if this entry is a member.
    pub nested_parent: Option<DeviceAddr>,
    /// Most recent deterministic touch (virtual clock + manager sequence);
    /// the recency signal the eviction policies order by.
    pub last_touch: TouchStamp,
    /// The owning table's launch generation when this entry last belonged
    /// to a materialized working set.
    pub touch_gen: u64,
}

impl PageTableEntry {
    /// Whether a device allocation currently backs the entry. Kept in sync
    /// with `device_ptr` by construction.
    pub fn is_allocated(&self) -> bool {
        debug_assert_eq!(self.flags.allocated, self.device_ptr.is_some());
        self.device_ptr.is_some()
    }
}

/// A context's page table: virtual-address-ordered entries with interior
/// pointer resolution (applications do pointer arithmetic on their virtual
/// pointers just as they would on device pointers).
#[derive(Debug, Default)]
pub struct PageTable {
    entries: BTreeMap<u64, PageTableEntry>,
    /// Launch generation: bumped once per materialized working set. The
    /// `WorkingSet` eviction policy compares entry `touch_gen`s against it.
    generation: u64,
}

impl PageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Inserts an entry keyed by its virtual base address.
    pub fn insert(&mut self, entry: PageTableEntry) {
        self.entries.insert(entry.vaddr.0, entry);
    }

    /// Removes the entry with virtual base `vaddr` (base only, CUDA
    /// semantics).
    pub fn remove(&mut self, vaddr: DeviceAddr) -> Option<PageTableEntry> {
        self.entries.remove(&vaddr.0)
    }

    /// Resolves a (possibly interior) virtual address to `(base, offset)`.
    pub fn resolve(&self, vaddr: DeviceAddr) -> Option<(DeviceAddr, u64)> {
        let (&base, e) = self.entries.range(..=vaddr.0).next_back()?;
        (vaddr.0 < base + e.size).then(|| (DeviceAddr(base), vaddr.0 - base))
    }

    /// The entry with virtual base `vaddr`.
    pub fn get(&self, vaddr: DeviceAddr) -> Option<&PageTableEntry> {
        self.entries.get(&vaddr.0)
    }

    /// Mutable access to the entry with virtual base `vaddr`.
    pub fn get_mut(&mut self, vaddr: DeviceAddr) -> Option<&mut PageTableEntry> {
        self.entries.get_mut(&vaddr.0)
    }

    /// Iterates over entries in virtual-address order.
    pub fn iter(&self) -> impl Iterator<Item = &PageTableEntry> {
        self.entries.values()
    }

    /// Mutable iteration in virtual-address order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut PageTableEntry> {
        self.entries.values_mut()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of declared sizes (the context's `MemUsage`, §4.5).
    pub fn mem_usage(&self) -> u64 {
        self.entries.values().map(|e| e.size).sum()
    }

    /// Sum of declared sizes currently resident on device.
    pub fn resident_bytes(&self) -> u64 {
        self.entries.values().filter(|e| e.is_allocated()).map(|e| e.size).sum()
    }

    /// Sum of resident sizes whose device copy is dirty (`to_swap`) — the
    /// writeback bill an eviction of this whole table would pay.
    pub fn dirty_bytes(&self) -> u64 {
        self.entries.values().filter(|e| e.is_allocated() && e.flags.to_swap).map(|e| e.size).sum()
    }

    /// Most recent touch across all entries (swapped-out entries included:
    /// recency describes the application, not residency).
    pub fn last_touch(&self) -> TouchStamp {
        self.entries.values().map(|e| e.last_touch).max().unwrap_or_default()
    }

    /// Current launch generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Starts a new launch generation and returns it.
    pub fn advance_generation(&mut self) -> u64 {
        self.generation += 1;
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(base: u64, size: u64) -> PageTableEntry {
        PageTableEntry {
            vaddr: DeviceAddr(base),
            size,
            device_ptr: None,
            flags: Flags::INITIAL,
            kind: AllocKind::Linear,
            slab: SwapSlab::new(size, 1 << 20),
            nested_members: Vec::new(),
            nested_parent: None,
            last_touch: TouchStamp::default(),
            touch_gen: 0,
        }
    }

    #[test]
    fn figure4_canonical_path() {
        // malloc → copyHD → launch → copyDH → swap, the paper's example.
        let s0 = Flags::INITIAL;
        assert_eq!(s0, Flags { allocated: false, to_dev: false, to_swap: false });
        let s1 = s0.on_copy_hd();
        assert_eq!(s1, Flags { allocated: false, to_dev: true, to_swap: false });
        let s2 = s1.on_launch();
        assert_eq!(s2, Flags { allocated: true, to_dev: false, to_swap: true });
        let s3 = s2.on_copy_dh();
        assert_eq!(s3, Flags { allocated: true, to_dev: false, to_swap: false });
        let s4 = s3.on_swap();
        assert_eq!(s4, Flags { allocated: false, to_dev: true, to_swap: false });
    }

    #[test]
    fn figure4_copy_hd_supersedes_device_data() {
        // T/F/T --copyHD--> T/T/F: the host write makes the device copy stale.
        let dirty = Flags { allocated: true, to_dev: false, to_swap: true };
        assert_eq!(dirty.on_copy_hd(), Flags { allocated: true, to_dev: true, to_swap: false });
    }

    #[test]
    fn figure4_copy_dh_without_device_data_is_noop() {
        let host_only = Flags { allocated: false, to_dev: true, to_swap: false };
        assert_eq!(host_only.on_copy_dh(), host_only);
    }

    #[test]
    fn figure4_swap_on_unallocated_is_noop() {
        assert_eq!(Flags::INITIAL.on_swap(), Flags::INITIAL);
    }

    #[test]
    fn figure4_closure_over_five_states() {
        // Applying every event to every reachable state stays within the
        // five states of Figure 4.
        for s in Flags::REACHABLE {
            for next in [s.on_copy_hd(), s.on_launch(), s.on_copy_dh(), s.on_swap()] {
                assert!(
                    Flags::REACHABLE.contains(&next),
                    "{s:?} transitioned outside Figure 4 to {next:?}"
                );
            }
        }
    }

    #[test]
    fn slab_write_read_roundtrip() {
        let mut slab = SwapSlab::new(64, 1 << 20);
        slab.write(8, &[1, 2, 3, 4]);
        assert_eq!(slab.read(8, 4), vec![1, 2, 3, 4]);
        assert_eq!(slab.read(0, 4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn slab_clamps_to_materialized_prefix() {
        let mut slab = SwapSlab::new(1 << 30, 16);
        slab.write(0, &[9u8; 64]);
        assert_eq!(slab.data.len(), 16);
        assert_eq!(slab.read(0, 64), vec![9u8; 16]);
        // Writes entirely past the prefix are dropped.
        slab.write(1 << 20, &[1, 2, 3]);
        assert_eq!(slab.read(0, 16), vec![9u8; 16]);
    }

    #[test]
    fn resolve_interior_addresses() {
        let mut pt = PageTable::new();
        pt.insert(entry(0x1000, 256));
        pt.insert(entry(0x2000, 128));
        assert_eq!(pt.resolve(DeviceAddr(0x1000)), Some((DeviceAddr(0x1000), 0)));
        assert_eq!(pt.resolve(DeviceAddr(0x10ff)), Some((DeviceAddr(0x1000), 0xff)));
        assert_eq!(pt.resolve(DeviceAddr(0x1100)), None);
        assert_eq!(pt.resolve(DeviceAddr(0x2040)), Some((DeviceAddr(0x2000), 0x40)));
        assert_eq!(pt.resolve(DeviceAddr(0xfff)), None);
    }

    #[test]
    fn mem_usage_sums_declared() {
        let mut pt = PageTable::new();
        pt.insert(entry(0x1000, 256));
        pt.insert(entry(0x2000, 128));
        assert_eq!(pt.mem_usage(), 384);
        assert_eq!(pt.resident_bytes(), 0);
        pt.remove(DeviceAddr(0x1000)).unwrap();
        assert_eq!(pt.mem_usage(), 128);
    }
}
