//! Pluggable victim-selection policies for the memory manager.
//!
//! The seed runtime hard-codes two victim orders: intra-application eviction
//! picks the largest allocated entry (ties broken by the page table's vaddr
//! iteration order), and inter-application swap sorts candidates by
//! `(resident, id)` — the paper's §4.5 behavior. This module lifts both into
//! a policy layer selected by [`EvictionPolicyKind`] in `RuntimeConfig`:
//!
//! * [`EvictionPolicyKind::SeedOrder`] reproduces the seed orders bit for
//!   bit, so default-config replays and fingerprints are unchanged.
//! * [`EvictionPolicyKind::Lru`] evicts the least-recently-touched entry
//!   (oldest [`TouchStamp`]).
//! * [`EvictionPolicyKind::WorkingSet`] evicts entries outside the current
//!   working set first — anything not touched in the current or previous
//!   launch generation — falling back to LRU order inside each class.
//! * [`EvictionPolicyKind::CostAware`] scores candidates as
//!   `bytes × staleness / writeback-cost` using the clean/dirty PTE bit
//!   (`to_swap`): a dirty victim must be written back over PCIe before its
//!   device memory can be reused, so dirty entries score half as attractive
//!   as clean ones of the same size and age.
//!
//! Every input to a policy decision is deterministic under seeded replay:
//! touch stamps combine the *virtual* clock with a per-manager sequence
//! number assigned under the `MmState` lock (no wall-clock reads), and all
//! orderings break ties on vaddr / context id. Given the same op sequence,
//! every policy therefore picks the same victims on every run — the policies
//! differ from each other, not from themselves.

use crate::ctx::CtxId;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;

/// Which victim-selection policy drives intra- and inter-application
/// eviction. See the module docs for the semantics of each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EvictionPolicyKind {
    /// The seed runtime's fixed orders: largest entry intra-app,
    /// `(resident, id)` inter-app.
    #[default]
    SeedOrder,
    /// Least-recently-touched first.
    Lru,
    /// Entries outside the last two launch generations first, LRU within.
    WorkingSet,
    /// Maximize reclaimed bytes per writeback cost, weighted by staleness.
    CostAware,
}

impl EvictionPolicyKind {
    /// All policy kinds, in a canonical order (useful for sweeps).
    pub const ALL: [EvictionPolicyKind; 4] = [
        EvictionPolicyKind::SeedOrder,
        EvictionPolicyKind::Lru,
        EvictionPolicyKind::WorkingSet,
        EvictionPolicyKind::CostAware,
    ];

    /// Stable lowercase name (bench report rows, traces).
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicyKind::SeedOrder => "seed_order",
            EvictionPolicyKind::Lru => "lru",
            EvictionPolicyKind::WorkingSet => "working_set",
            EvictionPolicyKind::CostAware => "cost_aware",
        }
    }
}

/// A deterministic touch stamp: the virtual-clock reading paired with a
/// per-manager monotone sequence number assigned under the `MmState` lock.
///
/// The sequence component makes stamps totally ordered even when the virtual
/// clock does not advance between touches (common in unit tests and at plan
/// boundaries), so recency comparisons never tie and never depend on thread
/// arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct TouchStamp {
    /// Virtual-clock nanos at the touch.
    pub nanos: u64,
    /// Per-manager sequence number; strictly increasing across touches.
    pub seq: u64,
}

/// An intra-application eviction candidate, snapshotted from a
/// `PageTableEntry` under the `MmState` lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryCandidate {
    /// Virtual address (unique per context; the deterministic tie-break).
    pub vaddr: u64,
    /// Declared size in bytes.
    pub size: u64,
    /// The `to_swap` PTE bit: device copy diverged from the host slab, so
    /// eviction must pay a D2H writeback first.
    pub dirty: bool,
    /// Most recent touch.
    pub last_touch: TouchStamp,
    /// Launch generation of the owning table when this entry last belonged
    /// to a materialized working set.
    pub touch_gen: u64,
}

/// An inter-application victim candidate, snapshotted per bound context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtxCandidate {
    /// Context id (the deterministic tie-break).
    pub id: CtxId,
    /// Device-resident bytes.
    pub resident: u64,
    /// Resident bytes that are dirty (`to_swap`): the writeback bill an
    /// eviction of this context would pay.
    pub dirty_bytes: u64,
    /// Most recent touch of any entry in the context's table.
    pub last_touch: TouchStamp,
}

/// `CostAware` score: reclaimed bytes × staleness, halved when the entry is
/// dirty (eviction pays a writeback before the memory is reusable). Larger
/// scores are better victims. Pure and overflow-safe (u128 arithmetic).
pub fn cost_score(c: &EntryCandidate, now_seq: u64) -> u128 {
    let age = now_seq.saturating_sub(c.last_touch.seq) as u128 + 1;
    let cost = if c.dirty { 2 } else { 1 };
    (c.size as u128) * age / cost
}

/// True when the entry was touched in the table's current or previous launch
/// generation — the `WorkingSet` policy's definition of "in the working set".
pub fn in_working_set(c: &EntryCandidate, table_gen: u64) -> bool {
    c.touch_gen + 1 >= table_gen
}

/// Orders intra-application eviction candidates so the best victim is
/// first. The order is invariant within one plan generation (evictions only
/// remove candidates), which is what lets the manager build the queue once
/// per materialize call instead of re-scanning on every OOM re-plan.
pub fn order_entry_victims(
    kind: EvictionPolicyKind,
    candidates: &mut [EntryCandidate],
    table_gen: u64,
    now_seq: u64,
) {
    match kind {
        // The seed behavior is `max_by_key(size)` over vaddr-ascending
        // iteration, which returns the *last* maximum — i.e. the largest
        // vaddr among equal-size entries. Sorting by (size desc, vaddr
        // desc) and popping from the front replays that choice sequence
        // exactly as entries are removed.
        EvictionPolicyKind::SeedOrder => {
            candidates.sort_by_key(|c| (Reverse(c.size), Reverse(c.vaddr)));
        }
        EvictionPolicyKind::Lru => {
            candidates.sort_by_key(|c| (c.last_touch, c.vaddr));
        }
        // `false < true`, so out-of-working-set candidates sort first.
        EvictionPolicyKind::WorkingSet => {
            candidates.sort_by_key(|c| (in_working_set(c, table_gen), c.last_touch, c.vaddr));
        }
        EvictionPolicyKind::CostAware => {
            candidates.sort_by_key(|c| (Reverse(cost_score(c, now_seq)), c.vaddr));
        }
    }
}

/// Sort key for inter-application victim candidates; smaller keys are
/// evicted first. Kept as a plain tuple so callers can compose it with
/// higher-priority keys (the preemption path prefixes the tenant priority).
pub fn ctx_victim_key(kind: EvictionPolicyKind, c: &CtxCandidate) -> (u64, u64, u64) {
    match kind {
        // Seed behavior: smallest sufficient resident set, ties by id.
        EvictionPolicyKind::SeedOrder => (c.resident, c.id.0, 0),
        // Context-level recency: the table least recently touched goes
        // first. WorkingSet has no per-context generation, so it shares
        // the LRU order at this granularity (documented in DESIGN.md §14).
        EvictionPolicyKind::Lru | EvictionPolicyKind::WorkingSet => {
            (c.last_touch.nanos, c.last_touch.seq, c.id.0)
        }
        // Cheapest writeback bill first, then smallest resident set.
        EvictionPolicyKind::CostAware => (c.dirty_bytes, c.resident, c.id.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(vaddr: u64, size: u64, dirty: bool, seq: u64, touch_gen: u64) -> EntryCandidate {
        EntryCandidate {
            vaddr,
            size,
            dirty,
            last_touch: TouchStamp { nanos: seq * 10, seq },
            touch_gen,
        }
    }

    fn victims(
        kind: EvictionPolicyKind,
        mut cands: Vec<EntryCandidate>,
        table_gen: u64,
        now_seq: u64,
    ) -> Vec<u64> {
        order_entry_victims(kind, &mut cands, table_gen, now_seq);
        cands.iter().map(|c| c.vaddr).collect()
    }

    #[test]
    fn seed_order_matches_last_max_by_size() {
        // Equal sizes: the seed's max_by_key keeps the last (largest vaddr).
        let cands =
            vec![cand(1, 100, false, 1, 0), cand(2, 100, true, 2, 0), cand(3, 50, false, 3, 0)];
        assert_eq!(victims(EvictionPolicyKind::SeedOrder, cands, 0, 3), vec![2, 1, 3]);
    }

    #[test]
    fn lru_orders_by_stamp_oldest_first() {
        let cands =
            vec![cand(1, 10, false, 5, 0), cand(2, 999, true, 1, 0), cand(3, 10, false, 3, 0)];
        assert_eq!(victims(EvictionPolicyKind::Lru, cands, 0, 5), vec![2, 3, 1]);
    }

    #[test]
    fn lru_seq_breaks_equal_nanos() {
        let mut cands = vec![
            EntryCandidate {
                vaddr: 7,
                size: 1,
                dirty: false,
                last_touch: TouchStamp { nanos: 0, seq: 2 },
                touch_gen: 0,
            },
            EntryCandidate {
                vaddr: 8,
                size: 1,
                dirty: false,
                last_touch: TouchStamp { nanos: 0, seq: 1 },
                touch_gen: 0,
            },
        ];
        order_entry_victims(EvictionPolicyKind::Lru, &mut cands, 0, 2);
        assert_eq!(cands[0].vaddr, 8);
    }

    #[test]
    fn working_set_evicts_stale_generations_first() {
        // Generation 5: entries touched in gen 4 or 5 are protected-ish.
        let cands = vec![
            cand(1, 10, false, 9, 5), // current gen
            cand(2, 10, false, 1, 2), // stale, oldest
            cand(3, 10, false, 4, 4), // previous gen
            cand(4, 10, false, 2, 3), // stale, newer
        ];
        assert_eq!(victims(EvictionPolicyKind::WorkingSet, cands, 5, 9), vec![2, 4, 3, 1]);
    }

    #[test]
    fn cost_aware_prefers_clean_stale_bytes() {
        // Same size and age: the clean entry scores double the dirty one.
        let clean = cand(1, 100, false, 1, 0);
        let dirty = cand(2, 100, true, 1, 0);
        assert!(cost_score(&clean, 10) > cost_score(&dirty, 10));
        assert_eq!(victims(EvictionPolicyKind::CostAware, vec![dirty, clean], 0, 10), vec![1, 2]);
        // A dirty entry must be big or stale enough to outscore a clean one.
        let big_dirty = cand(3, 500, true, 1, 0);
        let small_clean = cand(4, 100, false, 1, 0);
        assert_eq!(
            victims(EvictionPolicyKind::CostAware, vec![small_clean, big_dirty], 0, 10),
            vec![3, 4]
        );
    }

    #[test]
    fn cost_score_is_overflow_safe() {
        let c = EntryCandidate {
            vaddr: 0,
            size: u64::MAX,
            dirty: false,
            last_touch: TouchStamp { nanos: 0, seq: 0 },
            touch_gen: 0,
        };
        // u64::MAX bytes times u64::MAX age fits in u128.
        let _ = cost_score(&c, u64::MAX);
    }

    #[test]
    fn ctx_keys_reproduce_seed_and_diverge_elsewhere() {
        let a = CtxCandidate {
            id: CtxId(1),
            resident: 100,
            dirty_bytes: 100,
            last_touch: TouchStamp { nanos: 50, seq: 5 },
        };
        let b = CtxCandidate {
            id: CtxId(2),
            resident: 50,
            dirty_bytes: 0,
            last_touch: TouchStamp { nanos: 90, seq: 9 },
        };
        let order = |kind| {
            let mut v = [a, b];
            v.sort_by_key(|c| ctx_victim_key(kind, c));
            v.iter().map(|c| c.id).collect::<Vec<_>>()
        };
        // Seed: smallest resident first.
        assert_eq!(order(EvictionPolicyKind::SeedOrder), vec![CtxId(2), CtxId(1)]);
        // LRU: oldest touch first.
        assert_eq!(order(EvictionPolicyKind::Lru), vec![CtxId(1), CtxId(2)]);
        // CostAware: cheapest writeback first.
        assert_eq!(order(EvictionPolicyKind::CostAware), vec![CtxId(2), CtxId(1)]);
    }

    #[test]
    fn policy_names_are_stable() {
        let names: Vec<_> = EvictionPolicyKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["seed_order", "lru", "working_set", "cost_aware"]);
    }

    #[test]
    fn serde_roundtrip() {
        for kind in EvictionPolicyKind::ALL {
            let s = serde_json::to_string(&kind).unwrap();
            let back: EvictionPolicyKind = serde_json::from_str(&s).unwrap();
            assert_eq!(kind, back);
        }
        assert_eq!(EvictionPolicyKind::default(), EvictionPolicyKind::SeedOrder);
    }
}
