//! Pipelined transfer-plan execution.
//!
//! The memory manager's hot paths (`materialize`, `swap_out_ctx`,
//! `checkpoint`) build a *plan* — the full list of H2D/D2H operations a
//! state transition needs — under one `MmState` lock, then hand it to
//! [`execute`] with the lock released. The executor spreads the plan across
//! the device's copy-engine lanes so a C2050's two engines both carry
//! traffic, while a single-engine C1060 runs the plan inline with zero
//! threading overhead.
//!
//! Determinism: operation `i` is pinned to lane `i % lanes`, and each lane
//! issues its operations in plan order via the lane-pinned memcpy entry
//! points ([`mtgpu_gpusim::Gpu::memcpy_h2d_on`]/`memcpy_d2h_on`). Which
//! engine serves which transfer is therefore a pure function of the plan,
//! not of thread scheduling, and per-engine busy time replays bit-for-bit
//! under the virtual clock (concurrent sleeps on a shared atomic clock sum
//! commutatively).

use mtgpu_api::{CudaError, CudaResult};
use mtgpu_gpusim::{DeviceAddr, Gpu, GpuContextId};

/// One operation of a transfer plan, addressed by the page-table entry's
/// virtual base so the caller can commit flag transitions afterwards.
#[derive(Debug, Clone)]
pub struct TransferOp {
    /// Virtual base address of the page-table entry this op serves.
    pub base: u64,
    /// Resolved device pointer to transfer to/from.
    pub dptr: DeviceAddr,
    /// Declared transfer size in bytes (what the PCIe model charges).
    pub size: u64,
    /// `Some(bytes)` uploads host data to the device (H2D); `None` reads
    /// the device copy back (D2H sync).
    pub payload: Option<Vec<u8>>,
}

/// Result of one plan operation, reported in plan order.
#[derive(Debug)]
pub struct TransferOutcome {
    /// Virtual base address of the entry the op served.
    pub base: u64,
    /// Declared size of the op.
    pub size: u64,
    /// `Ok(Some(bytes))` for a completed D2H sync, `Ok(None)` for a
    /// completed H2D upload, `Err` if the device rejected the transfer.
    pub result: CudaResult<Option<Vec<u8>>>,
}

/// What a plan execution looked like, for metrics/trace accounting.
#[derive(Debug, Clone, Copy)]
pub struct PlanShape {
    /// Operations in the plan.
    pub ops: u32,
    /// Copy-engine lanes the plan was spread across.
    pub lanes: u32,
    /// Total declared bytes moved (attempted).
    pub bytes: u64,
    /// Whether more than one transfer could be in flight at once.
    pub overlapped: bool,
}

fn run_op(gpu: &Gpu, gpu_ctx: GpuContextId, op: &TransferOp, lane: usize) -> TransferOutcome {
    let result = match &op.payload {
        Some(bytes) => gpu
            .memcpy_h2d_on(gpu_ctx, op.dptr, op.size, bytes, lane)
            .map(|()| None)
            .map_err(CudaError::from_gpu),
        None => gpu
            .memcpy_d2h_on(gpu_ctx, op.dptr, op.size, lane)
            .map(Some)
            .map_err(CudaError::from_gpu),
    };
    TransferOutcome { base: op.base, size: op.size, result }
}

/// Executes a transfer plan across up to `lanes` copy-engine lanes.
///
/// With one lane (or one op) the plan runs inline on the calling thread —
/// the serial path pays no synchronization at all, which keeps the
/// single-engine C1060 at parity with the pre-pipelining code. With more,
/// lane 0 runs on the calling thread and lanes 1.. on scoped threads; every
/// lane issues its ops in plan order, so placement is canonical (op `i` →
/// lane `i % lanes`).
///
/// Outcomes are returned in plan order regardless of completion order. A
/// failed op does not stop its lane: later ops still run (on a failed
/// device they fail fast via the alive check, so nothing stalls), and the
/// caller decides per-entry what to commit.
pub fn execute(
    gpu: &Gpu,
    gpu_ctx: GpuContextId,
    ops: Vec<TransferOp>,
    lanes: usize,
) -> (Vec<TransferOutcome>, PlanShape) {
    execute_on_lanes(gpu, gpu_ctx, ops, lanes, 0)
}

/// [`execute`] with a lane offset: op `i` is pinned to lane
/// `lane_offset + (i % lanes)`. Speculative work (prefetch, the second wave
/// of a double-buffered launch) runs at offset 1 so the admit path keeps
/// lane 0 to itself; the engine bank wraps lane indices modulo its engine
/// count, so the offset is safe on single-engine devices (where it simply
/// lands back on the only engine).
pub fn execute_on_lanes(
    gpu: &Gpu,
    gpu_ctx: GpuContextId,
    ops: Vec<TransferOp>,
    lanes: usize,
    lane_offset: usize,
) -> (Vec<TransferOutcome>, PlanShape) {
    let lanes = lanes.max(1).min(ops.len().max(1));
    let shape = PlanShape {
        ops: ops.len() as u32,
        lanes: lanes as u32,
        bytes: ops.iter().map(|o| o.size).sum(),
        overlapped: lanes > 1 && ops.len() > 1,
    };
    if ops.is_empty() {
        return (Vec::new(), shape);
    }
    if lanes == 1 {
        let outcomes = ops.iter().map(|op| run_op(gpu, gpu_ctx, op, lane_offset)).collect();
        return (outcomes, shape);
    }
    let mut outcomes: Vec<Option<TransferOutcome>> = Vec::new();
    outcomes.resize_with(ops.len(), || None);
    // Deal ops and their outcome slots to lanes round-robin, preserving
    // plan order within each lane.
    let mut per_lane: Vec<Vec<(&TransferOp, &mut Option<TransferOutcome>)>> =
        (0..lanes).map(|_| Vec::new()).collect();
    let mut slot_iter = outcomes.iter_mut();
    for (i, op) in ops.iter().enumerate() {
        let slot = slot_iter.next().expect("one slot per op");
        per_lane[i % lanes].push((op, slot));
    }
    drop(slot_iter);
    std::thread::scope(|scope| {
        let mut lane_work = per_lane.into_iter().enumerate();
        let (lane0_idx, lane0) = lane_work.next().expect("lanes >= 1");
        for (lane_idx, work) in lane_work {
            scope.spawn(move || {
                for (op, slot) in work {
                    *slot = Some(run_op(gpu, gpu_ctx, op, lane_offset + lane_idx));
                }
            });
        }
        for (op, slot) in lane0 {
            *slot = Some(run_op(gpu, gpu_ctx, op, lane_offset + lane0_idx));
        }
    });
    let outcomes = outcomes.into_iter().map(|o| o.expect("every op executed")).collect();
    (outcomes, shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtgpu_gpusim::GpuSpec;
    use mtgpu_simtime::Clock;
    use std::time::Instant;

    fn gpu_with(spec: GpuSpec, scale: f64) -> std::sync::Arc<Gpu> {
        Gpu::new(spec, Clock::with_scale(scale), 0)
    }

    fn upload_plan(gpu: &Gpu, ctx: GpuContextId, n: usize, size: u64) -> Vec<TransferOp> {
        (0..n)
            .map(|i| TransferOp {
                base: i as u64,
                dptr: gpu.malloc(ctx, size).unwrap(),
                size,
                payload: Some(vec![i as u8; 64]),
            })
            .collect()
    }

    #[test]
    fn serial_and_pipelined_agree_functionally() {
        for lanes in [1, 2, 4] {
            let gpu = gpu_with(GpuSpec::tesla_c2050(), 1e-7);
            let ctx = gpu.create_context().unwrap();
            let ops = upload_plan(&gpu, ctx, 6, 4096);
            let dptrs: Vec<DeviceAddr> = ops.iter().map(|o| o.dptr).collect();
            let (outcomes, shape) = execute(&gpu, ctx, ops, lanes);
            assert_eq!(outcomes.len(), 6);
            for (i, out) in outcomes.iter().enumerate() {
                assert_eq!(out.base, i as u64, "outcomes must keep plan order");
                assert!(out.result.is_ok());
                assert_eq!(gpu.peek(dptrs[i], 64).unwrap(), vec![i as u8; 64]);
            }
            assert_eq!(shape.overlapped, lanes > 1);
            assert_eq!(gpu.stats().snapshot().h2d_bytes, 6 * 4096);
        }
    }

    #[test]
    fn d2h_ops_return_payloads_in_plan_order() {
        let gpu = gpu_with(GpuSpec::tesla_c2050(), 1e-7);
        let ctx = gpu.create_context().unwrap();
        let uploads = upload_plan(&gpu, ctx, 4, 1024);
        let sync_ops: Vec<TransferOp> = uploads
            .iter()
            .map(|o| TransferOp { base: o.base, dptr: o.dptr, size: 64, payload: None })
            .collect();
        let (outs, _) = execute(&gpu, ctx, uploads.clone(), 2);
        assert!(outs.iter().all(|o| o.result.is_ok()));
        let (outs, shape) = execute(&gpu, ctx, sync_ops, 2);
        assert!(shape.overlapped);
        for (i, out) in outs.iter().enumerate() {
            let bytes = out.result.as_ref().unwrap().as_ref().unwrap();
            assert_eq!(bytes, &vec![i as u8; 64], "op {i} returned wrong payload");
        }
    }

    #[test]
    fn two_lanes_halve_wall_time_on_two_engines() {
        // Wall-clock check at real scale: 4 transfers of 4 MiB over a
        // 4 GB/s PCIe model are ~1ms each; two engines should finish the
        // batch in about half the serial time.
        let gpu = gpu_with(GpuSpec::tesla_c2050(), 1.0);
        let ctx = gpu.create_context().unwrap();
        let size = 4u64 << 20;
        let serial_ops = upload_plan(&gpu, ctx, 4, size);
        let pipelined_ops = serial_ops.clone();
        let start = Instant::now();
        let (outs, _) = execute(&gpu, ctx, serial_ops, 1);
        let serial = start.elapsed();
        assert!(outs.iter().all(|o| o.result.is_ok()));
        let start = Instant::now();
        let (outs, shape) = execute(&gpu, ctx, pipelined_ops, 2);
        let pipelined = start.elapsed();
        assert!(outs.iter().all(|o| o.result.is_ok()));
        assert!(shape.overlapped);
        assert!(
            pipelined.as_secs_f64() < serial.as_secs_f64() * 0.75,
            "2 lanes should overlap: serial {serial:?} pipelined {pipelined:?}"
        );
    }

    #[test]
    fn failed_device_reports_errors_without_hanging() {
        let gpu = gpu_with(GpuSpec::tesla_c2050(), 1e-7);
        let ctx = gpu.create_context().unwrap();
        let ops = upload_plan(&gpu, ctx, 4, 1024);
        gpu.fail();
        let (outs, _) = execute(&gpu, ctx, ops, 2);
        assert_eq!(outs.len(), 4);
        assert!(outs.iter().all(|o| o.result.is_err()));
    }

    #[test]
    fn lane_offset_shifts_engine_placement() {
        // With offset 1 on a two-engine device, a single-lane plan lands on
        // engine 1 instead of engine 0 — the admit path's lane stays idle.
        let gpu = gpu_with(GpuSpec::tesla_c2050(), 1e-7);
        let ctx = gpu.create_context().unwrap();
        let ops = upload_plan(&gpu, ctx, 3, 4096);
        let (outs, shape) = execute_on_lanes(&gpu, ctx, ops, 1, 1);
        assert!(outs.iter().all(|o| o.result.is_ok()));
        assert!(!shape.overlapped);
        let busy = gpu.engine_busy_times();
        assert_eq!(busy[0], mtgpu_simtime::SimDuration::ZERO, "lane 0 must stay idle");
        assert!(busy[1] > mtgpu_simtime::SimDuration::ZERO, "offset lane carries the plan");
    }

    #[test]
    fn lane_offset_wraps_on_single_engine_devices() {
        let gpu = gpu_with(GpuSpec::tesla_c1060(), 1e-7);
        let ctx = gpu.create_context().unwrap();
        let ops = upload_plan(&gpu, ctx, 2, 1024);
        let (outs, _) = execute_on_lanes(&gpu, ctx, ops, 2, 1);
        assert!(outs.iter().all(|o| o.result.is_ok()));
    }

    #[test]
    fn empty_plan_is_a_noop() {
        let gpu = gpu_with(GpuSpec::tesla_c2050(), 1e-7);
        let ctx = gpu.create_context().unwrap();
        let (outs, shape) = execute(&gpu, ctx, Vec::new(), 2);
        assert!(outs.is_empty());
        assert_eq!(shape.ops, 0);
        assert!(!shape.overlapped);
    }
}
