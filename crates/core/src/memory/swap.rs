//! Swap-area accounting.
//!
//! The swap area is the host-memory tier of the paper's memory hierarchy
//! (§4.5): it holds "not yet allocated or swapped-out GPU data". The actual
//! bytes live in each entry's [`super::page_table::SwapSlab`]; this type
//! tracks the aggregate declared footprint against an optional capacity so
//! the Table 1 "Swap memory cannot be allocated" error can fire.

use mtgpu_api::CudaError;

/// Aggregate swap-area accounting for one node runtime.
#[derive(Debug)]
pub struct SwapArea {
    used: u64,
    capacity: Option<u64>,
}

impl SwapArea {
    /// Creates an accounting region; `capacity: None` is unbounded.
    pub fn new(capacity: Option<u64>) -> Self {
        SwapArea { used: 0, capacity }
    }

    /// Reserves `bytes`; fails with [`CudaError::SwapAllocation`] when the
    /// capacity would be exceeded.
    pub fn reserve(&mut self, bytes: u64) -> Result<(), CudaError> {
        if let Some(cap) = self.capacity {
            if self.used.saturating_add(bytes) > cap {
                return Err(CudaError::SwapAllocation);
            }
        }
        self.used += bytes;
        Ok(())
    }

    /// Releases `bytes` previously reserved.
    pub fn release(&mut self, bytes: u64) {
        debug_assert!(self.used >= bytes, "swap release underflow");
        self.used = self.used.saturating_sub(bytes);
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Configured capacity.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_fails() {
        let mut s = SwapArea::new(None);
        s.reserve(u64::MAX / 2).unwrap();
        s.reserve(u64::MAX / 2).unwrap();
    }

    #[test]
    fn capacity_enforced() {
        let mut s = SwapArea::new(Some(1000));
        s.reserve(600).unwrap();
        assert_eq!(s.reserve(500), Err(CudaError::SwapAllocation));
        assert_eq!(s.used(), 600);
        s.release(600);
        s.reserve(1000).unwrap();
    }
}
