//! The memory manager: virtual memory for GPUs (§4.5).
//!
//! Applications never see device addresses — `malloc` returns *virtual*
//! addresses minted here, and data lives in the host-side swap area, moving
//! to a device only on demand (at kernel-launch time under transfer
//! deferral). The manager implements the full Table 1 action matrix, the
//! Figure 4 flag state machine, intra- and inter-application swap,
//! bulk-transfer coalescing, bad-operation detection, nested-structure
//! consistency, checkpointing, and device-loss recovery.
//!
//! # Locking contract
//!
//! Every method taking a [`CtxId`] assumes the caller holds that context's
//! *service lock* ([`crate::ctx::AppContext::service_lock`]): a context's
//! memory state is only ever mutated by one thread at a time (its handler,
//! or a swapper/migrator that won its `try_lock`). The manager's internal
//! mutex is short-held and never spans a simulated-time device operation —
//! transfers are planned under the lock, executed outside it, and committed
//! under it again.

use crate::ctx::{Binding, CtxId};
use crate::memory::eviction::{self, CtxCandidate, EntryCandidate, EvictionPolicyKind, TouchStamp};
use crate::memory::page_table::{PageTable, PageTableEntry, SwapSlab};
use crate::memory::swap::SwapArea;
use crate::memory::transfer::{self, PlanShape, TransferOp};
use crate::metrics::RuntimeMetrics;
use crate::trace::{TraceEvent, Tracer};
use mtgpu_api::protocol::AllocKind;
use mtgpu_api::{CudaError, CudaResult, HostBuf};
use mtgpu_gpusim::device::DEFAULT_MATERIALIZE_CAP;
use mtgpu_gpusim::{DeviceAddr, DeviceId, KernelArg};
use mtgpu_simtime::{lock_rank, Clock, RankedMutex, Shadow};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Base of the virtual address space handed to applications. High enough to
/// never collide with device-salted physical addresses.
const VADDR_BASE: u64 = 0x7f00_0000_0000;
/// Virtual allocation alignment (matches the device allocator).
const VALIGN: u64 = 256;

/// Result of trying to make a launch's working set resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Materialize {
    /// Everything resident and uploaded; launch may proceed.
    Ready,
    /// Even after intra-application swapping, `0.0 +` this many bytes could
    /// not be allocated on the device. The caller escalates (inter-app swap
    /// or unbind-and-retry).
    NeedBytes(u64),
}

/// Why a context's device state is being evicted (metric attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapReason {
    /// Evicted as the victim of another application's memory need (§4.5).
    InterAppVictim,
    /// Unbound voluntarily (requeue after failed materialization).
    Unbind,
    /// Migrating to a different device (§5.3.4).
    Migration,
    /// Device failed or was removed.
    DeviceLoss,
    /// Evicted by priority preemption: a higher-priority tenant was under
    /// memory pressure and this context's tenant holds a lower lease
    /// priority.
    Preempted,
}

/// Accounting of one whole-context swap-out ([`MemoryManager::swap_out_ctx`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapOutcome {
    /// Device bytes freed.
    pub freed: u64,
    /// Freed bytes that needed a D2H writeback first (dirty on device).
    pub writeback_bytes: u64,
    /// Freed bytes whose swap copy was already current — no writeback.
    pub clean_bytes: u64,
}

/// One entry of a live-migration transfer plan
/// ([`MemoryManager::migration_plan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationEntry {
    /// The entry's virtual address (plan key — stable across the move).
    pub vaddr: DeviceAddr,
    /// Its current allocation on the source device.
    pub src_dptr: DeviceAddr,
    pub size: u64,
    /// The device copy is current (`!to_dev`): the bytes must travel with
    /// the context. Otherwise the slab is authoritative and the source
    /// copy is dropped.
    pub device_current: bool,
}

/// Outcome of device-loss recovery for one context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// All device-resident data had a consistent swap copy; the context can
    /// transparently rebind elsewhere.
    Recovered,
    /// Some data existed only on the lost device (dirty, never
    /// checkpointed): the context cannot be transparently resumed.
    LostDirtyData,
}

/// The remainder wave of a double-buffered launch: uploads planned but not
/// yet executed, streamed on the speculative lane while the kernel runs.
/// Until [`MemoryManager::execute_wave`] commits, every deferred entry keeps
/// its `to_dev` flag — a device lost between the waves leaves each PTE in
/// its classifiable "upload pending" state, slab data intact.
#[derive(Debug)]
pub struct PendingWave {
    ops: Vec<TransferOp>,
}

impl PendingWave {
    /// Number of deferred upload operations.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Total deferred bytes.
    pub fn bytes(&self) -> u64 {
        self.ops.iter().map(|o| o.size).sum()
    }
}

/// An async-prefetch plan: predicted next-launch buffers and the lease
/// charge uploading them would incur.
#[derive(Debug, Clone, Default)]
pub struct PrefetchPlan {
    /// PTE bases to warm.
    pub bases: Vec<DeviceAddr>,
    /// Declared bytes across `bases` (the tenant-lease charge).
    pub bytes: u64,
}

/// The lane offset speculative waves execute on: lane 0 serves the admit
/// path's own plan, so prefetches and remainder waves stream from lane 1
/// upward. A pure function of the plan — never of observed engine load — so
/// placement replays bit-for-bit.
const SPECULATIVE_LANE_OFFSET: usize = 1;

struct MmState {
    tables: HashMap<CtxId, PageTable>,
    /// Host swap accounting. Shadowed so mtcheck's happens-before detector
    /// audits every reserve/release against the memory-manager lock.
    swap: Shadow<SwapArea>,
    next_vaddr: u64,
    /// Monotone touch sequence shared by every table; assigned under this
    /// lock so stamps are totally ordered and replay-stable.
    touch_seq: u64,
    /// Per-context argument closure of the most recent materialized launch —
    /// the prefetch predictor's one-launch history.
    last_launch: HashMap<CtxId, Vec<DeviceAddr>>,
    /// Cumulative per-device swap traffic: `device → (bytes_in, bytes_out)`.
    /// `in` counts host→device upload commits, `out` counts device→host
    /// writeback commits — the pressure signal the rebalancer reads.
    dev_swap: BTreeMap<DeviceId, (u64, u64)>,
}

/// Memory-manager configuration slice (copied from
/// [`crate::config::RuntimeConfig`]).
#[derive(Debug, Clone)]
pub struct MemoryConfig {
    pub defer_transfers: bool,
    pub coalesce_transfers: bool,
    pub intra_app_swap: bool,
    /// Spread transfer plans across the bound device's copy engines.
    pub pipelined_transfers: bool,
    /// Per-plan in-flight cap; `0` = the device's copy-engine count.
    pub max_inflight_transfers: usize,
    pub max_ptes_per_context: usize,
    pub swap_capacity: Option<u64>,
    pub materialize_cap: u64,
    /// Victim-selection policy for intra-application eviction (and, via the
    /// service layer, inter-application victim ordering).
    pub eviction_policy: EvictionPolicyKind,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            defer_transfers: true,
            coalesce_transfers: true,
            intra_app_swap: true,
            pipelined_transfers: true,
            max_inflight_transfers: 0,
            max_ptes_per_context: 1 << 20,
            swap_capacity: None,
            materialize_cap: DEFAULT_MATERIALIZE_CAP,
            eviction_policy: EvictionPolicyKind::SeedOrder,
        }
    }
}

/// The node-wide memory manager.
pub struct MemoryManager {
    cfg: MemoryConfig,
    metrics: Arc<RuntimeMetrics>,
    tracer: Option<Arc<Tracer>>,
    /// Virtual clock feeding touch stamps. Defaults to a fresh (never
    /// advanced) virtual clock, in which case stamp ordering degenerates to
    /// the sequence counter — still total, still deterministic.
    clock: Clock,
    state: RankedMutex<MmState>,
}

impl MemoryManager {
    /// Creates a manager.
    pub fn new(cfg: MemoryConfig, metrics: Arc<RuntimeMetrics>) -> Self {
        let swap = Shadow::new("mm.swap", SwapArea::new(cfg.swap_capacity));
        MemoryManager {
            cfg,
            metrics,
            tracer: None,
            clock: Clock::virtual_clock(),
            state: RankedMutex::new(
                lock_rank::MM_STATE,
                MmState {
                    tables: HashMap::new(),
                    swap,
                    next_vaddr: VADDR_BASE,
                    touch_seq: 0,
                    last_launch: HashMap::new(),
                    dev_swap: BTreeMap::new(),
                },
            ),
        }
    }

    /// Attaches the runtime's clock so touch stamps carry virtual time in
    /// addition to the sequence counter.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Mints the next touch stamp. Callers hold the `MmState` lock (the
    /// `&mut` proves it), so sequence numbers are race-free.
    fn stamp(&self, st: &mut MmState) -> TouchStamp {
        st.touch_seq += 1;
        TouchStamp { nanos: self.clock.now().since_epoch().as_nanos(), seq: st.touch_seq }
    }

    /// Contended `MmState` acquisitions since the last monitor pass (debug
    /// builds only — the ranked-lock observability hook).
    pub(crate) fn take_lock_contention(&self) -> u64 {
        self.state.take_contended()
    }

    /// Attaches a tracer so transfer plans emit
    /// [`TraceEvent::TransferPlan`] records.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }

    /// How many copy-engine lanes a plan of `ops` operations may use on the
    /// bound device: 1 when pipelining is off, otherwise the engine count
    /// clamped by `max_inflight_transfers` (0 = no extra clamp) and by the
    /// plan size.
    fn plan_lanes(&self, binding: &Binding, ops: usize) -> usize {
        if !self.cfg.pipelined_transfers {
            return 1;
        }
        let engines = binding.gpu.spec().copy_engines as usize;
        let cap = match self.cfg.max_inflight_transfers {
            0 => engines,
            n => n.min(engines),
        };
        cap.max(1).min(ops.max(1))
    }

    /// Accounts an executed transfer plan (metrics + trace).
    fn note_plan(&self, ctx: CtxId, shape: &PlanShape) {
        RuntimeMetrics::bump(&self.metrics.transfer_plans);
        if shape.overlapped {
            RuntimeMetrics::bump(&self.metrics.transfer_overlap_events);
        }
        if let Some(tracer) = &self.tracer {
            tracer.record(TraceEvent::TransferPlan {
                ctx,
                ops: shape.ops,
                lanes: shape.lanes,
                bytes: shape.bytes,
            });
        }
    }

    /// Records swap traffic against a device, under the held `MmState` lock.
    fn note_dev_swap(st: &mut MmState, dev: DeviceId, bytes_in: u64, bytes_out: u64) {
        let e = st.dev_swap.entry(dev).or_insert((0, 0));
        e.0 += bytes_in;
        e.1 += bytes_out;
    }

    /// Cumulative `(bytes_in, bytes_out)` swap traffic of one device.
    pub fn device_swap_traffic(&self, dev: DeviceId) -> (u64, u64) {
        self.state.lock().dev_swap.get(&dev).copied().unwrap_or((0, 0))
    }

    /// Registers a fresh context.
    pub fn register_ctx(&self, ctx: CtxId) {
        self.state.lock().tables.insert(ctx, PageTable::new());
    }

    /// Removes a context, releasing its swap reservation and (when bound)
    /// its device allocations.
    pub fn remove_ctx(&self, ctx: CtxId, binding: Option<&Binding>) {
        let frees: Vec<(DeviceAddr, u64)> = {
            let mut st = self.state.lock();
            st.last_launch.remove(&ctx);
            let Some(table) = st.tables.remove(&ctx) else { return };
            let mut frees = Vec::new();
            let mut swap_bytes = 0;
            for e in table.iter() {
                swap_bytes += e.size;
                if let Some(d) = e.device_ptr {
                    frees.push((d, e.size));
                }
            }
            st.swap.release(swap_bytes);
            frees
        };
        if let Some(b) = binding {
            for (d, _) in frees {
                let _ = b.gpu.free(b.gpu_ctx, d);
            }
        }
    }

    /// `cudaMalloc` (Table 1): create PTE, allocate swap. No device action.
    pub fn malloc(&self, ctx: CtxId, size: u64, kind: AllocKind) -> CudaResult<DeviceAddr> {
        if size == 0 {
            return Err(CudaError::InvalidValue);
        }
        let mut st = self.state.lock();
        let max_ptes = self.cfg.max_ptes_per_context;
        let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
        if table.len() >= max_ptes {
            return Err(CudaError::VirtualAddressExhausted);
        }
        st.swap.reserve(size)?;
        let vaddr = DeviceAddr(st.next_vaddr);
        st.next_vaddr += (size + VALIGN - 1) & !(VALIGN - 1);
        let slab = SwapSlab::new(size, self.cfg.materialize_cap);
        let last_touch = self.stamp(&mut st);
        let table = st.tables.get_mut(&ctx).expect("table vanished");
        let touch_gen = table.generation();
        table.insert(PageTableEntry {
            vaddr,
            size,
            device_ptr: None,
            flags: crate::memory::page_table::Flags::INITIAL,
            kind,
            slab,
            nested_members: Vec::new(),
            nested_parent: None,
            last_touch,
            touch_gen,
        });
        Ok(vaddr)
    }

    /// `cudaFree` (Table 1): check PTE, de-allocate swap, free device copy
    /// if resident. Returns the allocation's declared size so the caller
    /// can settle lease accounting.
    pub fn free(
        &self,
        ctx: CtxId,
        vaddr: DeviceAddr,
        binding: Option<&Binding>,
    ) -> CudaResult<u64> {
        let entry = {
            let mut st = self.state.lock();
            let table = st.tables.get_mut(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
            let entry = table.remove(vaddr).ok_or(CudaError::InvalidDevicePointer)?;
            st.swap.release(entry.size);
            entry
        };
        if let Some(dptr) = entry.device_ptr {
            let b = binding.ok_or(CudaError::SwapDeallocation)?;
            b.gpu.free(b.gpu_ctx, dptr).map_err(CudaError::from_gpu)?;
        }
        Ok(entry.size)
    }

    /// `cudaMemcpy` host→device (Table 1): check PTE, move data to swap.
    /// Under deferral no device action occurs; in eager mode the region is
    /// written through when the entry is already resident.
    pub fn copy_h2d(
        &self,
        ctx: CtxId,
        dst: DeviceAddr,
        buf: &HostBuf,
        binding: Option<&Binding>,
    ) -> CudaResult<()> {
        if buf.declared_len == 0 {
            return Err(CudaError::InvalidValue);
        }
        // Phase 0: if the entry is dirty on device (a kernel wrote it and
        // no checkpoint followed), synchronize the slab first — a *partial*
        // host write must merge into the kernel's output, not clobber the
        // untouched region with the stale pre-kernel slab at the next bulk
        // upload. (Figure 4's flags are per-entry; this keeps the swap tier
        // authoritative at byte granularity.)
        let sync_plan = {
            let st = self.state.lock();
            let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
            let (base, _) = table.resolve(dst).ok_or(CudaError::InvalidDevicePointer)?;
            let entry = table.get(base).expect("resolved entry vanished");
            (entry.flags.to_swap && entry.flags.allocated)
                .then(|| (base, entry.device_ptr.expect("allocated without ptr"), entry.size))
        };
        if let Some((base, dptr, size)) = sync_plan {
            let b = binding.ok_or(CudaError::InvalidDevicePointer)?;
            let bytes = b.gpu.memcpy_d2h(b.gpu_ctx, dptr, size).map_err(CudaError::from_gpu)?;
            let mut st = self.state.lock();
            if let Some(entry) = st.tables.get_mut(&ctx).and_then(|t| t.get_mut(base)) {
                entry.slab.write(0, &bytes);
                entry.flags = entry.flags.on_copy_dh();
            }
        }
        // Phase 1: validate, update slab + flags under the lock.
        let eager_plan = {
            let mut st = self.state.lock();
            let touch = self.stamp(&mut st);
            let table = st.tables.get_mut(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
            let (base, offset) = table.resolve(dst).ok_or(CudaError::InvalidDevicePointer)?;
            let entry = table.get_mut(base).expect("resolved entry vanished");
            if offset + buf.declared_len > entry.size {
                RuntimeMetrics::bump(&self.metrics.bad_ops_rejected);
                return Err(CudaError::SizeMismatch);
            }
            if entry.flags.to_dev && self.cfg.coalesce_transfers {
                // A previous copy into this entry has not been uploaded yet:
                // this one merges into the same future bulk transfer.
                RuntimeMetrics::bump(&self.metrics.coalesced_copies);
            }
            entry.slab.write(offset, &buf.payload);
            entry.flags = entry.flags.on_copy_hd();
            entry.last_touch = touch;
            if !self.cfg.defer_transfers && entry.flags.allocated {
                entry.device_ptr.map(|d| (d, entry.size, entry.slab.data.clone()))
            } else {
                None
            }
        };
        // Phase 2 (eager mode only): write through to the device.
        if let (Some((dptr, size, data)), Some(b)) = (eager_plan, binding) {
            b.gpu.memcpy_h2d(b.gpu_ctx, dptr, size, &data).map_err(CudaError::from_gpu)?;
            let mut st = self.state.lock();
            if let Some(entry) = st
                .tables
                .get_mut(&ctx)
                .and_then(|t| t.resolve(dst).map(|(b, _)| b))
                .and_then(|base| st.tables.get_mut(&ctx).unwrap().get_mut(base))
            {
                entry.flags.to_dev = false;
            }
        }
        Ok(())
    }

    /// `cudaMemcpy` device→host (Table 1): check PTE; if the device holds
    /// the only copy, synchronize the slab first; serve from swap.
    pub fn copy_d2h(
        &self,
        ctx: CtxId,
        src: DeviceAddr,
        len: u64,
        binding: Option<&Binding>,
    ) -> CudaResult<HostBuf> {
        if len == 0 {
            return Err(CudaError::InvalidValue);
        }
        // Phase 1: plan.
        let (base, offset, sync_plan) = {
            let st = self.state.lock();
            let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
            let (base, offset) = table.resolve(src).ok_or(CudaError::InvalidDevicePointer)?;
            let entry = table.get(base).expect("resolved entry vanished");
            if offset + len > entry.size {
                RuntimeMetrics::bump(&self.metrics.bad_ops_rejected);
                return Err(CudaError::OutOfBounds);
            }
            let sync = (entry.flags.to_swap && entry.flags.allocated)
                .then(|| (entry.device_ptr.expect("allocated without ptr"), entry.size));
            (base, offset, sync)
        };
        // Phase 2: synchronize the whole entry from device if dirty.
        if let Some((dptr, size)) = sync_plan {
            let b = binding.ok_or(CudaError::InvalidDevicePointer)?;
            let bytes = b.gpu.memcpy_d2h(b.gpu_ctx, dptr, size).map_err(CudaError::from_gpu)?;
            let mut st = self.state.lock();
            if let Some(entry) = st.tables.get_mut(&ctx).and_then(|t| t.get_mut(base)) {
                entry.slab.write(0, &bytes);
                entry.flags = entry.flags.on_copy_dh();
            }
            Self::note_dev_swap(&mut st, b.vgpu.device, 0, size);
        }
        // Phase 3: serve from the slab (a read is a touch — recency
        // policies must not evict what the application is actively reading).
        let mut st = self.state.lock();
        let touch = self.stamp(&mut st);
        let entry = st
            .tables
            .get_mut(&ctx)
            .and_then(|t| t.get_mut(base))
            .ok_or(CudaError::InvalidDevicePointer)?;
        entry.last_touch = touch;
        Ok(HostBuf::with_shadow(len, entry.slab.read(offset, len)))
    }

    /// `cudaMemcpy` device→device. When both entries are resident on the
    /// bound device with their device copies current, the copy runs
    /// device-side — one memory-bus operation, no PCIe round trip. Any
    /// other state (unbound, entry swapped out, or a pending upload making
    /// the slab the newer copy) falls back to routing through the swap
    /// tier (D2H then H2D), preserving flags semantics.
    pub fn copy_d2d(
        &self,
        ctx: CtxId,
        dst: DeviceAddr,
        src: DeviceAddr,
        len: u64,
        binding: Option<&Binding>,
    ) -> CudaResult<()> {
        if len == 0 {
            return Err(CudaError::InvalidValue);
        }
        // Validate both endpoints under one lock (same error kinds as the
        // host route: src overflow reads out of bounds, dst overflow is a
        // size mismatch) and decide the route.
        let device_plan = {
            let st = self.state.lock();
            let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
            let (src_base, src_off) = table.resolve(src).ok_or(CudaError::InvalidDevicePointer)?;
            let (dst_base, dst_off) = table.resolve(dst).ok_or(CudaError::InvalidDevicePointer)?;
            let src_entry = table.get(src_base).expect("resolved entry vanished");
            let dst_entry = table.get(dst_base).expect("resolved entry vanished");
            if src_off + len > src_entry.size {
                RuntimeMetrics::bump(&self.metrics.bad_ops_rejected);
                return Err(CudaError::OutOfBounds);
            }
            if dst_off + len > dst_entry.size {
                RuntimeMetrics::bump(&self.metrics.bad_ops_rejected);
                return Err(CudaError::SizeMismatch);
            }
            let device_current = |e: &PageTableEntry| e.flags.allocated && !e.flags.to_dev;
            (device_current(src_entry) && device_current(dst_entry)).then(|| {
                let sdptr = src_entry.device_ptr.expect("allocated without ptr");
                let ddptr = dst_entry.device_ptr.expect("allocated without ptr");
                (dst_base, DeviceAddr(ddptr.0 + dst_off), DeviceAddr(sdptr.0 + src_off))
            })
        };
        if let (Some((dst_base, ddptr, sdptr)), Some(b)) = (device_plan, binding) {
            b.gpu.memcpy_d2d(b.gpu_ctx, ddptr, sdptr, len).map_err(CudaError::from_gpu)?;
            RuntimeMetrics::bump(&self.metrics.d2d_device_copies);
            let mut st = self.state.lock();
            let touch = self.stamp(&mut st);
            if let Some(entry) = st.tables.get_mut(&ctx).and_then(|t| t.get_mut(dst_base)) {
                // The device now holds data the slab doesn't: same state a
                // kernel write leaves behind.
                entry.flags = entry.flags.on_launch();
                entry.last_touch = touch;
            }
            return Ok(());
        }
        let data = self.copy_d2h(ctx, src, len, binding)?;
        self.copy_h2d(ctx, dst, &data, binding)
    }

    /// Registers a nested structure (§1): `parent` holds device pointers to
    /// `members`; the manager keeps them consistent by extending launch
    /// materialization and swaps to the whole closure.
    pub fn register_nested(
        &self,
        ctx: CtxId,
        parent: DeviceAddr,
        members: Vec<DeviceAddr>,
    ) -> CudaResult<()> {
        let mut st = self.state.lock();
        let table = st.tables.get_mut(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
        let parent_base =
            table.resolve(parent).map(|(b, _)| b).ok_or(CudaError::InvalidDevicePointer)?;
        let mut member_bases = Vec::with_capacity(members.len());
        for m in &members {
            let base = table.resolve(*m).map(|(b, _)| b).ok_or(CudaError::InvalidDevicePointer)?;
            member_bases.push(base);
        }
        for &mb in &member_bases {
            table.get_mut(mb).expect("member vanished").nested_parent = Some(parent_base);
        }
        table.get_mut(parent_base).expect("parent vanished").nested_members = member_bases;
        Ok(())
    }

    /// Resolves a launch's pointer arguments to PTE bases and extends the
    /// set with registered nested members (transitively).
    pub fn launch_closure(&self, ctx: CtxId, args: &[KernelArg]) -> CudaResult<Vec<DeviceAddr>> {
        let st = self.state.lock();
        let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
        let mut closure: Vec<DeviceAddr> = Vec::new();
        let mut stack: Vec<DeviceAddr> = Vec::new();
        for arg in args {
            if let KernelArg::Ptr(p) = arg {
                let base =
                    table.resolve(*p).map(|(b, _)| b).ok_or(CudaError::InvalidDevicePointer)?;
                stack.push(base);
            }
        }
        while let Some(base) = stack.pop() {
            if closure.contains(&base) {
                continue;
            }
            closure.push(base);
            let entry = table.get(base).ok_or(CudaError::InvalidDevicePointer)?;
            stack.extend(entry.nested_members.iter().copied());
        }
        Ok(closure)
    }

    /// Makes every entry in `bases` device-resident and uploaded on the
    /// bound device, applying **intra-application swap** on memory pressure
    /// (§4.5). Returns [`Materialize::NeedBytes`] if the device cannot hold
    /// the working set even after evicting everything else this context
    /// owns.
    pub fn materialize(
        &self,
        ctx: CtxId,
        bases: &[DeviceAddr],
        binding: &Binding,
    ) -> CudaResult<Materialize> {
        if let Some(need) = self.ensure_resident(ctx, bases, binding)? {
            return Ok(Materialize::NeedBytes(need));
        }
        let ops = self.plan_uploads(ctx, bases)?;
        self.touch_working_set(ctx, bases);
        if ops.is_empty() {
            return Ok(Materialize::Ready);
        }
        // Execute concurrent uploads across the copy engines, no manager
        // lock held; commit flag transitions under the lock after.
        let lanes = self.plan_lanes(binding, ops.len());
        let (outcomes, shape) = transfer::execute(&binding.gpu, binding.gpu_ctx, ops, lanes);
        self.note_plan(ctx, &shape);
        match self.commit_uploads(ctx, binding.vgpu.device, outcomes) {
            None => Ok(Materialize::Ready),
            Some(e) => Err(e),
        }
    }

    /// Double-buffered variant of [`Self::materialize`]: the upload plan is
    /// split into a **first-touch wave** (`first_touch` — normally the
    /// kernel's direct pointer arguments) executed and committed before
    /// returning, and a **remainder wave** (nested members, reached later by
    /// pointer chasing) returned as a [`PendingWave`] for the caller to
    /// stream on the speculative lane *while the kernel runs*.
    ///
    /// Residency (allocation) still covers the full closure before the
    /// kernel dispatches — only payload uploads are deferred. In this
    /// simulator a kernel payload dereferences its direct arguments only,
    /// never nested members, so deferring member uploads past dispatch is
    /// functionally safe; a real CUDA backend would fault wave-2 pages in
    /// on demand.
    pub fn materialize_split(
        &self,
        ctx: CtxId,
        bases: &[DeviceAddr],
        first_touch: &[DeviceAddr],
        binding: &Binding,
    ) -> CudaResult<(Materialize, Option<PendingWave>)> {
        if let Some(need) = self.ensure_resident(ctx, bases, binding)? {
            return Ok((Materialize::NeedBytes(need), None));
        }
        let ops = self.plan_uploads(ctx, bases)?;
        self.touch_working_set(ctx, bases);
        let (wave1, wave2): (Vec<TransferOp>, Vec<TransferOp>) =
            ops.into_iter().partition(|op| first_touch.contains(&DeviceAddr(op.base)));
        if !wave1.is_empty() {
            let lanes = self.plan_lanes(binding, wave1.len());
            let (outcomes, shape) = transfer::execute(&binding.gpu, binding.gpu_ctx, wave1, lanes);
            self.note_plan(ctx, &shape);
            if let Some(e) = self.commit_uploads(ctx, binding.vgpu.device, outcomes) {
                return Err(e);
            }
        }
        Ok((Materialize::Ready, (!wave2.is_empty()).then_some(PendingWave { ops: wave2 })))
    }

    /// Executes and commits a remainder wave on the speculative lane. Safe
    /// to run concurrently with the kernel launch: no manager lock is held
    /// during the transfers, and lane pinning keeps engine placement a pure
    /// function of the plan. Ops that fail keep their `to_dev` flag, so
    /// every entry stays classifiable after a device loss (the slab still
    /// holds the authoritative data).
    pub fn execute_wave(&self, ctx: CtxId, binding: &Binding, wave: PendingWave) -> CudaResult<()> {
        if wave.ops.is_empty() {
            return Ok(());
        }
        let (outcomes, shape) = transfer::execute_on_lanes(
            &binding.gpu,
            binding.gpu_ctx,
            wave.ops,
            1,
            SPECULATIVE_LANE_OFFSET,
        );
        self.note_plan(ctx, &shape);
        match self.commit_uploads(ctx, binding.vgpu.device, outcomes) {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Resolves a launch's *direct* pointer arguments to PTE bases, without
    /// the nested-member extension — the first-touch set of a
    /// double-buffered launch.
    pub fn arg_bases(&self, ctx: CtxId, args: &[KernelArg]) -> CudaResult<Vec<DeviceAddr>> {
        let st = self.state.lock();
        let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
        let mut bases = Vec::new();
        for arg in args {
            if let KernelArg::Ptr(p) = arg {
                let base =
                    table.resolve(*p).map(|(b, _)| b).ok_or(CudaError::InvalidDevicePointer)?;
                if !bases.contains(&base) {
                    bases.push(base);
                }
            }
        }
        Ok(bases)
    }

    /// Phase A of materialization: make every entry in `bases` device-
    /// resident, evicting the context's own non-working-set entries on OOM
    /// (intra-application swap, §4.5). Returns `Some(shortfall)` when the
    /// device cannot hold the working set even after evicting everything
    /// else this context owns. Mallocs cost no simulated time; an OOM
    /// triggers one eviction and a full re-plan, since eviction changes
    /// which entries are resident.
    fn ensure_resident(
        &self,
        ctx: CtxId,
        bases: &[DeviceAddr],
        binding: &Binding,
    ) -> CudaResult<Option<u64>> {
        // The policy-ordered victim queue is built lazily on the first OOM
        // and reused across re-plans: candidate order is invariant within
        // one plan generation (evictions only remove entries), so the seed
        // behavior of re-sorting the full resident set on every re-plan
        // was pure overhead.
        let mut victims: Option<VecDeque<DeviceAddr>> = None;
        'alloc: loop {
            let pending: Vec<(DeviceAddr, u64)> = {
                let st = self.state.lock();
                let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
                let mut pending = Vec::new();
                for &base in bases {
                    let entry = table.get(base).ok_or(CudaError::InvalidDevicePointer)?;
                    if !entry.flags.allocated {
                        pending.push((base, entry.size));
                    }
                }
                pending
            };
            if pending.is_empty() {
                return Ok(None);
            }
            for (base, size) in pending {
                match binding.gpu.malloc(binding.gpu_ctx, size) {
                    Ok(dptr) => {
                        let mut st = self.state.lock();
                        if let Some(entry) = st.tables.get_mut(&ctx).and_then(|t| t.get_mut(base)) {
                            entry.device_ptr = Some(dptr);
                            entry.flags.allocated = true;
                        } else {
                            // Entry freed concurrently is impossible under
                            // the service lock; release the orphan.
                            let _ = binding.gpu.free(binding.gpu_ctx, dptr);
                        }
                    }
                    Err(mtgpu_gpusim::GpuError::OutOfMemory) => {
                        if !self.cfg.intra_app_swap
                            || !self.evict_next_own_entry(ctx, bases, binding, &mut victims)?
                        {
                            return Ok(Some(size));
                        }
                        continue 'alloc;
                    }
                    Err(e) => return Err(CudaError::from_gpu(e)),
                }
            }
        }
    }

    /// Plans one upload per entry awaiting its slab, in working-set order,
    /// under one lock.
    fn plan_uploads(&self, ctx: CtxId, bases: &[DeviceAddr]) -> CudaResult<Vec<TransferOp>> {
        let st = self.state.lock();
        let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
        Ok(bases
            .iter()
            .filter_map(|&base| {
                let entry = table.get(base)?;
                (entry.flags.allocated && entry.flags.to_dev).then(|| TransferOp {
                    base: base.0,
                    dptr: entry.device_ptr.expect("allocated without ptr"),
                    size: entry.size,
                    payload: Some(entry.slab.data.clone()),
                })
            })
            .collect())
    }

    /// Commits `to_dev` clears for successful uploads under one lock; the
    /// first failed op (in plan order) becomes the caller's error.
    fn commit_uploads(
        &self,
        ctx: CtxId,
        dev: DeviceId,
        outcomes: Vec<transfer::TransferOutcome>,
    ) -> Option<CudaError> {
        let mut first_err = None;
        let mut st = self.state.lock();
        for out in outcomes {
            match out.result {
                Ok(_) => {
                    RuntimeMetrics::bump(&self.metrics.bulk_uploads);
                    let landed = st
                        .tables
                        .get_mut(&ctx)
                        .and_then(|t| t.get_mut(DeviceAddr(out.base)))
                        .map(|entry| entry.flags.to_dev = false)
                        .is_some();
                    if landed {
                        Self::note_dev_swap(&mut st, dev, out.size, 0);
                    }
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        first_err
    }

    /// Stamps a materialized working set, advances the table's launch
    /// generation, and records the set as the prefetch predictor's
    /// last-launch history.
    fn touch_working_set(&self, ctx: CtxId, bases: &[DeviceAddr]) {
        let mut st = self.state.lock();
        let touch = self.stamp(&mut st);
        st.last_launch.insert(ctx, bases.to_vec());
        if let Some(table) = st.tables.get_mut(&ctx) {
            let generation = table.advance_generation();
            for &base in bases {
                if let Some(entry) = table.get_mut(base) {
                    entry.last_touch = touch;
                    entry.touch_gen = generation;
                }
            }
        }
    }

    /// Evicts the next victim among `ctx`'s own resident entries outside
    /// the working set, in the configured policy's order. Returns `false`
    /// when there is nothing left to evict.
    fn evict_next_own_entry(
        &self,
        ctx: CtxId,
        protected: &[DeviceAddr],
        binding: &Binding,
        victims: &mut Option<VecDeque<DeviceAddr>>,
    ) -> CudaResult<bool> {
        if victims.is_none() {
            let st = self.state.lock();
            let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
            let mut cands: Vec<EntryCandidate> = table
                .iter()
                .filter(|e| e.flags.allocated && !protected.contains(&e.vaddr))
                .map(|e| EntryCandidate {
                    vaddr: e.vaddr.0,
                    size: e.size,
                    dirty: e.flags.to_swap,
                    last_touch: e.last_touch,
                    touch_gen: e.touch_gen,
                })
                .collect();
            eviction::order_entry_victims(
                self.cfg.eviction_policy,
                &mut cands,
                table.generation(),
                st.touch_seq,
            );
            *victims = Some(cands.into_iter().map(|c| DeviceAddr(c.vaddr)).collect());
        }
        let queue = victims.as_mut().expect("victim queue just built");
        while let Some(base) = queue.pop_front() {
            // Re-validate: no *new* candidates appear within a plan
            // generation, but a popped one may have been freed since.
            let plan = {
                let st = self.state.lock();
                st.tables.get(&ctx).and_then(|t| t.get(base)).filter(|e| e.flags.allocated).map(
                    |e| (e.device_ptr.expect("allocated without ptr"), e.size, e.flags.to_swap),
                )
            };
            let Some((dptr, size, dirty)) = plan else { continue };
            let synced = if dirty {
                Some(
                    binding
                        .gpu
                        .memcpy_d2h(binding.gpu_ctx, dptr, size)
                        .map_err(CudaError::from_gpu)?,
                )
            } else {
                None
            };
            binding.gpu.free(binding.gpu_ctx, dptr).map_err(CudaError::from_gpu)?;
            RuntimeMetrics::bump(&self.metrics.intra_app_swaps);
            RuntimeMetrics::add(&self.metrics.swap_bytes, size);
            let mut st = self.state.lock();
            if let Some(entry) = st.tables.get_mut(&ctx).and_then(|t| t.get_mut(base)) {
                if let Some(bytes) = synced {
                    entry.slab.write(0, &bytes);
                }
                entry.device_ptr = None;
                entry.flags = entry.flags.on_swap();
            }
            if dirty {
                Self::note_dev_swap(&mut st, binding.vgpu.device, 0, size);
            }
            return Ok(true);
        }
        Ok(false)
    }

    /// What an async prefetch for `ctx` would upload: the previous launch's
    /// working set minus `exclude` (the current launch's closure — the
    /// admit path uploads those itself), restricted to entries that still
    /// exist and still need device work. `bytes` is the charge the caller
    /// accounts against the tenant's lease before executing.
    pub fn prefetch_plan(&self, ctx: CtxId, exclude: &[DeviceAddr]) -> PrefetchPlan {
        let st = self.state.lock();
        let Some(table) = st.tables.get(&ctx) else {
            return PrefetchPlan::default();
        };
        let mut plan = PrefetchPlan::default();
        if let Some(last) = st.last_launch.get(&ctx) {
            for &base in last {
                if exclude.contains(&base) {
                    continue;
                }
                let Some(entry) = table.get(base) else { continue };
                if !entry.flags.allocated || entry.flags.to_dev {
                    plan.bases.push(base);
                    plan.bytes += entry.size;
                }
            }
        }
        plan
    }

    /// Executes a prefetch plan: opportunistically allocates (never
    /// evicting — an OOM just drops the candidate), uploads on the
    /// speculative lanes, and commits with re-validation. Entries whose
    /// state moved on since the plan (freed, rewritten) are dropped at
    /// commit — cancellation, counted in `prefetch_cancelled`. Returns the
    /// committed bytes. Device errors cancel remaining ops rather than
    /// erroring: a prefetch is speculative by definition, and the admit
    /// path that follows will surface any real device failure.
    pub fn prefetch(&self, ctx: CtxId, plan: &PrefetchPlan, binding: &Binding) -> u64 {
        if plan.bases.is_empty() {
            return 0;
        }
        RuntimeMetrics::bump(&self.metrics.prefetch_plans);
        // Phase A — opportunistic allocation from free memory only.
        for &base in &plan.bases {
            let need = {
                let st = self.state.lock();
                st.tables
                    .get(&ctx)
                    .and_then(|t| t.get(base))
                    .filter(|e| !e.flags.allocated)
                    .map(|e| e.size)
            };
            let Some(size) = need else { continue };
            let Ok(dptr) = binding.gpu.malloc(binding.gpu_ctx, size) else { continue };
            let mut st = self.state.lock();
            if let Some(entry) = st.tables.get_mut(&ctx).and_then(|t| t.get_mut(base)) {
                entry.device_ptr = Some(dptr);
                entry.flags.allocated = true;
            } else {
                let _ = binding.gpu.free(binding.gpu_ctx, dptr);
            }
        }
        // Phase B — plan uploads for whatever is now resident and pending.
        let ops: Vec<TransferOp> = {
            let st = self.state.lock();
            let Some(table) = st.tables.get(&ctx) else { return 0 };
            plan.bases
                .iter()
                .filter_map(|&base| {
                    let entry = table.get(base)?;
                    (entry.flags.allocated && entry.flags.to_dev).then(|| TransferOp {
                        base: base.0,
                        dptr: entry.device_ptr.expect("allocated without ptr"),
                        size: entry.size,
                        payload: Some(entry.slab.data.clone()),
                    })
                })
                .collect()
        };
        if ops.is_empty() {
            return 0;
        }
        // Phase C — execute on the speculative lanes, leaving lane 0 clear
        // for the admit path that follows.
        let lanes = self.plan_lanes(binding, ops.len());
        let planned = ops.len() as u64;
        let (outcomes, shape) = transfer::execute_on_lanes(
            &binding.gpu,
            binding.gpu_ctx,
            ops,
            lanes,
            SPECULATIVE_LANE_OFFSET,
        );
        self.note_plan(ctx, &shape);
        // Phase D — commit with re-validation; anything else is cancelled.
        let mut committed_bytes = 0;
        let mut committed_ops = 0u64;
        {
            let mut st = self.state.lock();
            for out in outcomes {
                let landed = out.result.is_ok();
                if let Some(entry) =
                    st.tables.get_mut(&ctx).and_then(|t| t.get_mut(DeviceAddr(out.base)))
                {
                    if landed && entry.flags.allocated && entry.flags.to_dev {
                        entry.flags.to_dev = false;
                        committed_bytes += out.size;
                        committed_ops += 1;
                    }
                }
            }
            Self::note_dev_swap(&mut st, binding.vgpu.device, committed_bytes, 0);
        }
        let cancelled = planned - committed_ops;
        RuntimeMetrics::add(&self.metrics.prefetch_bytes, committed_bytes);
        RuntimeMetrics::add(&self.metrics.prefetch_cancelled, cancelled);
        if let Some(tracer) = &self.tracer {
            tracer.record(TraceEvent::Prefetched {
                ctx,
                ops: committed_ops as u32,
                bytes: committed_bytes,
                cancelled: cancelled as u32,
            });
        }
        committed_bytes
    }

    /// Snapshot of a context as an inter-application victim candidate, for
    /// policy-ordered victim selection in the service layer.
    pub fn victim_candidate(&self, ctx: CtxId) -> Option<CtxCandidate> {
        let st = self.state.lock();
        let table = st.tables.get(&ctx)?;
        Some(CtxCandidate {
            id: ctx,
            resident: table.resident_bytes(),
            dirty_bytes: table.dirty_bytes(),
            last_touch: table.last_touch(),
        })
    }

    /// Rewrites a launch's virtual pointer arguments into device pointers.
    /// All referenced entries must be resident (call [`Self::materialize`]
    /// first).
    pub fn translate_args(&self, ctx: CtxId, args: &[KernelArg]) -> CudaResult<Vec<KernelArg>> {
        let st = self.state.lock();
        let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
        args.iter()
            .map(|arg| match arg {
                KernelArg::Ptr(p) => {
                    let (base, offset) =
                        table.resolve(*p).ok_or(CudaError::InvalidDevicePointer)?;
                    let entry = table.get(base).expect("resolved entry vanished");
                    let dptr = entry.device_ptr.ok_or(CudaError::InvalidDevicePointer)?;
                    Ok(KernelArg::Ptr(DeviceAddr(dptr.0 + offset)))
                }
                other => Ok(*other),
            })
            .collect()
    }

    /// Applies the Figure 4 `launch` transition to the working set: data is
    /// now resident and (conservatively) dirty on device.
    pub fn mark_launched(&self, ctx: CtxId, bases: &[DeviceAddr]) {
        let mut st = self.state.lock();
        let touch = self.stamp(&mut st);
        if let Some(table) = st.tables.get_mut(&ctx) {
            for &base in bases {
                if let Some(entry) = table.get_mut(base) {
                    entry.flags = entry.flags.on_launch();
                    entry.last_touch = touch;
                }
            }
        }
    }

    /// Swaps out **all** of a context's device-resident entries
    /// (synchronizing dirty ones first) and frees their device memory.
    /// This is the `Swap` internal function of Table 1 applied to the whole
    /// context — used for inter-application victims, voluntary unbinds and
    /// migration.
    ///
    /// Dirty entries are written back as one pipelined D2H plan, then
    /// committed to swap *before* any device memory is freed, so a device
    /// failure mid-swap can never silently drop dirty bytes: an entry whose
    /// writeback did not land stays allocated (and dirty), and device-loss
    /// handling reports it as [`Recovery::LostDirtyData`].
    pub fn swap_out_ctx(
        &self,
        ctx: CtxId,
        binding: &Binding,
        reason: SwapReason,
    ) -> CudaResult<SwapOutcome> {
        // Phase A — plan: every allocated entry, in page-table order.
        let plan: Vec<(DeviceAddr, DeviceAddr, u64, bool)> = {
            let st = self.state.lock();
            st.tables
                .get(&ctx)
                .map(|table| {
                    table
                        .iter()
                        .filter(|e| e.flags.allocated)
                        .map(|e| {
                            (
                                e.vaddr,
                                e.device_ptr.expect("allocated without ptr"),
                                e.size,
                                e.flags.to_swap,
                            )
                        })
                        .collect()
                })
                .unwrap_or_default()
        };
        if reason == SwapReason::InterAppVictim {
            RuntimeMetrics::bump(&self.metrics.inter_app_swaps);
        }
        if plan.is_empty() {
            return Ok(SwapOutcome::default());
        }
        // Phase B — execute: writeback of every dirty entry, pipelined.
        let sync_ops: Vec<TransferOp> = plan
            .iter()
            .filter(|&&(_, _, _, dirty)| dirty)
            .map(|&(base, dptr, size, _)| TransferOp { base: base.0, dptr, size, payload: None })
            .collect();
        let mut sync_err: Option<CudaError> = None;
        let mut synced: HashSet<u64> = HashSet::new();
        if !sync_ops.is_empty() {
            let lanes = self.plan_lanes(binding, sync_ops.len());
            let (outcomes, shape) =
                transfer::execute(&binding.gpu, binding.gpu_ctx, sync_ops, lanes);
            self.note_plan(ctx, &shape);
            // Phase C — commit the writebacks first: swap copies become
            // current before their device copies are released.
            let mut st = self.state.lock();
            for out in outcomes {
                match out.result {
                    Ok(bytes) => {
                        let bytes = bytes.expect("D2H op returns data");
                        let landed = st
                            .tables
                            .get_mut(&ctx)
                            .and_then(|t| t.get_mut(DeviceAddr(out.base)))
                            .map(|entry| {
                                entry.slab.write(0, &bytes);
                                entry.flags = entry.flags.on_copy_dh();
                            })
                            .is_some();
                        if landed {
                            synced.insert(out.base);
                            Self::note_dev_swap(&mut st, binding.vgpu.device, 0, out.size);
                        }
                    }
                    Err(e) => sync_err = sync_err.or(Some(e)),
                }
            }
        }
        // Phase D — free, in plan order. Dirty entries whose writeback
        // failed keep their device copy (the only current one).
        let mut out = SwapOutcome::default();
        let mut free_err: Option<CudaError> = None;
        for (base, dptr, size, dirty) in plan {
            if dirty && !synced.contains(&base.0) {
                continue;
            }
            if free_err.is_some() {
                break;
            }
            match binding.gpu.free(binding.gpu_ctx, dptr) {
                Ok(()) => {
                    out.freed += size;
                    if dirty {
                        out.writeback_bytes += size;
                    } else {
                        out.clean_bytes += size;
                        RuntimeMetrics::add(&self.metrics.swap_bytes_skipped_clean, size);
                    }
                    let mut st = self.state.lock();
                    if let Some(entry) = st.tables.get_mut(&ctx).and_then(|t| t.get_mut(base)) {
                        entry.device_ptr = None;
                        entry.flags = entry.flags.on_swap();
                    }
                }
                Err(e) => free_err = Some(CudaError::from_gpu(e)),
            }
        }
        if out.freed > 0 {
            RuntimeMetrics::add(&self.metrics.swap_bytes, out.freed);
        }
        match sync_err.or(free_err) {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Plans a live migration: every allocated entry of `ctx`, in
    /// page-table order. Entries whose device copy is current
    /// (`device_current`) must move with the context (peer-DMA on the
    /// transfer lanes); the rest are slab-authoritative and their source
    /// copies are simply dropped, rematerializing lazily on the
    /// destination. The plan does **not** mutate any PTE — a failure
    /// between plan and [`Self::commit_migration`] leaves the context
    /// fully on its source with every flag intact.
    pub fn migration_plan(&self, ctx: CtxId) -> Vec<MigrationEntry> {
        let st = self.state.lock();
        st.tables
            .get(&ctx)
            .map(|table| {
                table
                    .iter()
                    .filter(|e| e.flags.allocated)
                    .map(|e| MigrationEntry {
                        vaddr: e.vaddr,
                        src_dptr: e.device_ptr.expect("allocated without ptr"),
                        size: e.size,
                        device_current: !e.flags.to_dev,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Commits a live migration under one lock: `moves` rewrites each
    /// entry's device pointer to its destination allocation (flags
    /// untouched — a dirty entry stays dirty, now on the destination);
    /// `dropped` entries lose their (stale) source copy and fall back to
    /// their authoritative slab (`on_swap` transition). This is the
    /// migration's single atomic commit point: before it the context is
    /// fully on src, after it fully on dst.
    pub fn commit_migration(
        &self,
        ctx: CtxId,
        moves: &[(DeviceAddr, DeviceAddr)],
        dropped: &[DeviceAddr],
    ) {
        let mut st = self.state.lock();
        let Some(table) = st.tables.get_mut(&ctx) else { return };
        for &(vaddr, dst_dptr) in moves {
            if let Some(entry) = table.get_mut(vaddr) {
                entry.device_ptr = Some(dst_dptr);
            }
        }
        for &vaddr in dropped {
            if let Some(entry) = table.get_mut(vaddr) {
                entry.device_ptr = None;
                entry.flags = entry.flags.on_swap();
            }
        }
    }

    /// Checkpoint (§4.6): synchronize every dirty device-resident entry to
    /// the swap area *without* evicting it, leaving the context restartable.
    /// Dirty entries are synchronized as one pipelined D2H plan.
    pub fn checkpoint(&self, ctx: CtxId, binding: &Binding) -> CudaResult<()> {
        let ops: Vec<TransferOp> = {
            let st = self.state.lock();
            st.tables
                .get(&ctx)
                .map(|table| {
                    table
                        .iter()
                        .filter(|e| e.flags.allocated && e.flags.to_swap)
                        .map(|e| TransferOp {
                            base: e.vaddr.0,
                            dptr: e.device_ptr.expect("allocated without ptr"),
                            size: e.size,
                            payload: None,
                        })
                        .collect()
                })
                .unwrap_or_default()
        };
        let mut first_err = None;
        if !ops.is_empty() {
            let lanes = self.plan_lanes(binding, ops.len());
            let (outcomes, shape) = transfer::execute(&binding.gpu, binding.gpu_ctx, ops, lanes);
            self.note_plan(ctx, &shape);
            let mut st = self.state.lock();
            for out in outcomes {
                match out.result {
                    Ok(bytes) => {
                        let bytes = bytes.expect("D2H op returns data");
                        let landed = st
                            .tables
                            .get_mut(&ctx)
                            .and_then(|t| t.get_mut(DeviceAddr(out.base)))
                            .map(|entry| {
                                entry.slab.write(0, &bytes);
                                entry.flags = entry.flags.on_copy_dh();
                            })
                            .is_some();
                        if landed {
                            Self::note_dev_swap(&mut st, binding.vgpu.device, 0, out.size);
                        }
                    }
                    Err(e) => first_err = first_err.or(Some(e)),
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        RuntimeMetrics::bump(&self.metrics.checkpoints);
        Ok(())
    }

    /// Handles the loss of the device a context was bound to: resident
    /// entries are reset to host-authoritative. If any entry was dirty on
    /// the device (no checkpoint since its last kernel), the context's data
    /// is inconsistent and it cannot transparently resume.
    pub fn on_device_lost(&self, ctx: CtxId) -> Recovery {
        let mut st = self.state.lock();
        let Some(table) = st.tables.get_mut(&ctx) else {
            return Recovery::Recovered;
        };
        let mut lost = false;
        for entry in table.iter_mut() {
            if entry.flags.allocated {
                if entry.flags.to_swap {
                    lost = true;
                }
                entry.device_ptr = None;
                entry.flags.allocated = false;
                entry.flags.to_swap = false;
                entry.flags.to_dev = true;
            }
        }
        if lost {
            Recovery::LostDirtyData
        } else {
            Recovery::Recovered
        }
    }

    /// The context's total declared footprint (the paper's `MemUsage`).
    pub fn mem_usage(&self, ctx: CtxId) -> u64 {
        self.state.lock().tables.get(&ctx).map_or(0, |t| t.mem_usage())
    }

    /// Bytes of the context currently resident on its device.
    pub fn resident_bytes(&self, ctx: CtxId) -> u64 {
        self.state.lock().tables.get(&ctx).map_or(0, |t| t.resident_bytes())
    }

    /// Total swap-area bytes in use.
    pub fn swap_used(&self) -> u64 {
        self.state.lock().swap.used()
    }

    /// Number of live PTEs for a context (diagnostics).
    pub fn pte_count(&self, ctx: CtxId) -> usize {
        self.state.lock().tables.get(&ctx).map_or(0, |t| t.len())
    }

    /// Checkpoints (if bound) and exports the context's complete memory
    /// image with virtual addresses preserved (§4.6). The image is
    /// host-authoritative: residency is not captured — restoration
    /// re-materializes lazily at the next launch.
    pub fn export_image(
        &self,
        ctx: CtxId,
        label: &str,
        binding: Option<&Binding>,
    ) -> CudaResult<mtgpu_api::protocol::ContextImage> {
        if let Some(b) = binding {
            self.checkpoint(ctx, b)?;
        }
        let st = self.state.lock();
        let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
        let entries = table
            .iter()
            .map(|e| mtgpu_api::protocol::ImageEntry {
                vaddr: e.vaddr,
                size: e.size,
                kind: e.kind,
                data: e.slab.data.clone(),
                nested_members: e.nested_members.clone(),
                nested_parent: e.nested_parent,
            })
            .collect();
        Ok(mtgpu_api::protocol::ContextImage { label: label.to_string(), entries })
    }

    /// Restores an exported image into a context with an empty page table,
    /// preserving every virtual address. Fails with
    /// [`CudaError::InvalidValue`] if the context already has allocations,
    /// and with [`CudaError::SwapAllocation`] if the swap area cannot hold
    /// the image.
    pub fn import_image(
        &self,
        ctx: CtxId,
        image: mtgpu_api::protocol::ContextImage,
    ) -> CudaResult<()> {
        let mut st = self.state.lock();
        let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
        if !table.is_empty() {
            return Err(CudaError::InvalidValue);
        }
        st.swap.reserve(image.declared_bytes())?;
        // Future mallocs (of any context) must not collide with the
        // imported virtual range within this runtime.
        let max_end = image.entries.iter().map(|e| e.vaddr.0 + e.size).max().unwrap_or(VADDR_BASE);
        if st.next_vaddr < max_end {
            st.next_vaddr = (max_end + VALIGN - 1) & !(VALIGN - 1);
        }
        let cap = self.cfg.materialize_cap;
        let last_touch = self.stamp(&mut st);
        let table = st.tables.get_mut(&ctx).expect("table vanished");
        let touch_gen = table.generation();
        for e in image.entries {
            let mut slab = SwapSlab::new(e.size, cap);
            slab.write(0, &e.data);
            table.insert(PageTableEntry {
                vaddr: e.vaddr,
                size: e.size,
                device_ptr: None,
                // Host-authoritative: upload before the next kernel use.
                flags: crate::memory::page_table::Flags {
                    allocated: false,
                    to_dev: true,
                    to_swap: false,
                },
                kind: e.kind,
                slab,
                nested_members: e.nested_members,
                nested_parent: e.nested_parent,
                last_touch,
                touch_gen,
            });
        }
        Ok(())
    }

    /// Test/diagnostic hook: the flags of the entry at `vaddr`.
    pub fn flags_of(
        &self,
        ctx: CtxId,
        vaddr: DeviceAddr,
    ) -> Option<crate::memory::page_table::Flags> {
        let st = self.state.lock();
        let table = st.tables.get(&ctx)?;
        let (base, _) = table.resolve(vaddr)?;
        table.get(base).map(|e| e.flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::VGpuId;
    use mtgpu_gpusim::{DeviceId, Gpu, GpuSpec};
    use mtgpu_simtime::Clock;

    fn mm() -> MemoryManager {
        MemoryManager::new(MemoryConfig::default(), Arc::new(RuntimeMetrics::default()))
    }

    fn gpu_binding() -> Binding {
        let gpu = Gpu::new(GpuSpec::test_small(), Clock::with_scale(1e-7), 0);
        let gpu_ctx = gpu.create_context().unwrap();
        Binding { vgpu: VGpuId { device: DeviceId(0), index: 0 }, gpu, gpu_ctx }
    }

    const CTX: CtxId = CtxId(1);

    #[test]
    fn malloc_assigns_distinct_virtual_addresses() {
        let m = mm();
        m.register_ctx(CTX);
        let a = m.malloc(CTX, 100, AllocKind::Linear).unwrap();
        let b = m.malloc(CTX, 100, AllocKind::Linear).unwrap();
        assert_ne!(a, b);
        assert!(a.0 >= VADDR_BASE && b.0 >= VADDR_BASE);
        assert_eq!(m.pte_count(CTX), 2);
        assert_eq!(m.mem_usage(CTX), 200);
    }

    #[test]
    fn unknown_context_rejected() {
        let m = mm();
        assert_eq!(
            m.malloc(CtxId(99), 64, AllocKind::Linear),
            Err(CudaError::InvalidDevicePointer)
        );
    }

    #[test]
    fn materialize_uploads_once_and_translates() {
        let m = mm();
        m.register_ctx(CTX);
        let b = gpu_binding();
        let v = m.malloc(CTX, 1024, AllocKind::Linear).unwrap();
        let buf = HostBuf::from_slice(&[3u8; 1024]);
        m.copy_h2d(CTX, v, &buf, None).unwrap();
        assert_eq!(
            m.flags_of(CTX, v).unwrap(),
            crate::memory::page_table::Flags { allocated: false, to_dev: true, to_swap: false }
        );
        let closure = m.launch_closure(CTX, &[KernelArg::Ptr(v)]).unwrap();
        assert_eq!(m.materialize(CTX, &closure, &b).unwrap(), Materialize::Ready);
        assert_eq!(b.gpu.stats().snapshot().h2d_bytes, 1024);
        // Idempotent: a second materialize does nothing.
        assert_eq!(m.materialize(CTX, &closure, &b).unwrap(), Materialize::Ready);
        assert_eq!(b.gpu.stats().snapshot().h2d_bytes, 1024);
        // Translation yields a device pointer with offset arithmetic.
        let args = m.translate_args(CTX, &[KernelArg::Ptr(DeviceAddr(v.0 + 256))]).unwrap();
        let KernelArg::Ptr(dptr) = args[0] else { panic!("not a pointer") };
        assert_ne!(dptr.0 & 0xFFFF_0000_0000, VADDR_BASE & 0xFFFF_0000_0000);
        // The device accepts the translated interior pointer.
        assert!(b.gpu.memcpy_d2h(b.gpu_ctx, dptr, 16).is_ok());
    }

    #[test]
    fn intra_app_swap_evicts_non_working_set() {
        let m = mm();
        m.register_ctx(CTX);
        let b = gpu_binding();
        let avail = b.gpu.mem_available();
        let chunk = avail / 5 * 2;
        let x = m.malloc(CTX, chunk, AllocKind::Linear).unwrap();
        let y = m.malloc(CTX, chunk, AllocKind::Linear).unwrap();
        let z = m.malloc(CTX, chunk, AllocKind::Linear).unwrap();
        // x, y resident.
        let c1 = m.launch_closure(CTX, &[KernelArg::Ptr(x), KernelArg::Ptr(y)]).unwrap();
        assert_eq!(m.materialize(CTX, &c1, &b).unwrap(), Materialize::Ready);
        m.mark_launched(CTX, &c1);
        // y, z next: x must be evicted.
        let c2 = m.launch_closure(CTX, &[KernelArg::Ptr(y), KernelArg::Ptr(z)]).unwrap();
        assert_eq!(m.materialize(CTX, &c2, &b).unwrap(), Materialize::Ready);
        assert!(!m.flags_of(CTX, x).unwrap().allocated, "x should be swapped out");
        assert!(m.flags_of(CTX, y).unwrap().allocated);
        assert!(m.flags_of(CTX, z).unwrap().allocated);
    }

    #[test]
    fn materialize_reports_shortfall_when_working_set_too_big() {
        let cfg = MemoryConfig { intra_app_swap: true, ..MemoryConfig::default() };
        let m = MemoryManager::new(cfg, Arc::new(RuntimeMetrics::default()));
        m.register_ctx(CTX);
        let b = gpu_binding();
        let too_big = b.gpu.mem_available() + (1 << 20);
        let v = m.malloc(CTX, too_big, AllocKind::Linear).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(v)]).unwrap();
        match m.materialize(CTX, &c, &b).unwrap() {
            Materialize::NeedBytes(n) => assert!(n >= too_big),
            other => panic!("expected NeedBytes, got {other:?}"),
        }
    }

    #[test]
    fn swap_out_ctx_preserves_dirty_data() {
        let m = mm();
        m.register_ctx(CTX);
        let b = gpu_binding();
        let v = m.malloc(CTX, 512, AllocKind::Linear).unwrap();
        m.copy_h2d(CTX, v, &HostBuf::from_slice(&[7u8; 512]), None).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(v)]).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        m.mark_launched(CTX, &c); // dirty on device
        let out = m.swap_out_ctx(CTX, &b, SwapReason::Unbind).unwrap();
        assert_eq!(out.freed, 512);
        assert_eq!(out.writeback_bytes, 512);
        assert_eq!(out.clean_bytes, 0);
        assert_eq!(m.resident_bytes(CTX), 0);
        // Data must have been synchronized down before the free.
        let back = m.copy_d2h(CTX, v, 512, None).unwrap();
        assert_eq!(back.payload, vec![7u8; 512]);
    }

    #[test]
    fn checkpoint_clears_dirty_without_evicting() {
        let m = mm();
        m.register_ctx(CTX);
        let b = gpu_binding();
        let v = m.malloc(CTX, 256, AllocKind::Linear).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(v)]).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        m.mark_launched(CTX, &c);
        assert!(m.flags_of(CTX, v).unwrap().to_swap);
        m.checkpoint(CTX, &b).unwrap();
        let f = m.flags_of(CTX, v).unwrap();
        assert!(f.allocated && !f.to_swap && !f.to_dev, "T/F/F after checkpoint: {f:?}");
    }

    #[test]
    fn device_loss_recoverable_only_when_clean() {
        let m = mm();
        m.register_ctx(CTX);
        let b = gpu_binding();
        let v = m.malloc(CTX, 256, AllocKind::Linear).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(v)]).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        m.mark_launched(CTX, &c);
        // Dirty on device → lost.
        assert_eq!(m.on_device_lost(CTX), Recovery::LostDirtyData);
        // After the reset the entry is host-authoritative again.
        let f = m.flags_of(CTX, v).unwrap();
        assert!(!f.allocated && f.to_dev);
        // A clean context recovers.
        m.materialize(CTX, &c, &b).unwrap();
        m.mark_launched(CTX, &c);
        m.checkpoint(CTX, &b).unwrap();
        assert_eq!(m.on_device_lost(CTX), Recovery::Recovered);
    }

    #[test]
    fn nested_closure_is_transitive_and_deduplicated() {
        let m = mm();
        m.register_ctx(CTX);
        let a = m.malloc(CTX, 64, AllocKind::Linear).unwrap();
        let b1 = m.malloc(CTX, 64, AllocKind::Linear).unwrap();
        let b2 = m.malloc(CTX, 64, AllocKind::Linear).unwrap();
        let c = m.malloc(CTX, 64, AllocKind::Linear).unwrap();
        m.register_nested(CTX, a, vec![b1, b2]).unwrap();
        m.register_nested(CTX, b1, vec![c]).unwrap();
        let closure = m.launch_closure(CTX, &[KernelArg::Ptr(a), KernelArg::Ptr(b2)]).unwrap();
        assert_eq!(closure.len(), 4, "a, b1, b2, c exactly once: {closure:?}");
        for v in [a, b1, b2, c] {
            assert!(closure.contains(&v));
        }
    }

    #[test]
    fn copy_d2d_moves_data_between_entries() {
        let m = mm();
        m.register_ctx(CTX);
        let src = m.malloc(CTX, 128, AllocKind::Linear).unwrap();
        let dst = m.malloc(CTX, 128, AllocKind::Linear).unwrap();
        m.copy_h2d(CTX, src, &HostBuf::from_slice(&[9u8; 128]), None).unwrap();
        m.copy_d2d(CTX, dst, src, 128, None).unwrap();
        assert_eq!(m.copy_d2h(CTX, dst, 128, None).unwrap().payload, vec![9u8; 128]);
    }

    #[test]
    fn copy_d2d_uses_device_route_when_both_resident() {
        let m = mm();
        m.register_ctx(CTX);
        let b = gpu_binding();
        let src = m.malloc(CTX, 128, AllocKind::Linear).unwrap();
        let dst = m.malloc(CTX, 128, AllocKind::Linear).unwrap();
        m.copy_h2d(CTX, src, &HostBuf::from_slice(&[4u8; 128]), None).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(src), KernelArg::Ptr(dst)]).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        let before = b.gpu.stats().snapshot();
        m.copy_d2d(CTX, dst, src, 128, Some(&b)).unwrap();
        let after = b.gpu.stats().snapshot();
        // One device-internal copy: no PCIe traffic at all.
        assert_eq!(after.d2d_bytes - before.d2d_bytes, 128);
        assert_eq!(after.h2d_bytes, before.h2d_bytes);
        assert_eq!(after.d2h_bytes, before.d2h_bytes);
        // The destination is now device-authoritative (like a kernel write).
        let f = m.flags_of(CTX, dst).unwrap();
        assert!(f.allocated && !f.to_dev && f.to_swap, "{f:?}");
        // Reading it back syncs the device copy down and sees the data.
        assert_eq!(m.copy_d2h(CTX, dst, 128, Some(&b)).unwrap().payload, vec![4u8; 128]);
    }

    #[test]
    fn copy_d2d_falls_back_to_host_route_when_swapped_out() {
        let m = mm();
        m.register_ctx(CTX);
        let b = gpu_binding();
        let src = m.malloc(CTX, 128, AllocKind::Linear).unwrap();
        let dst = m.malloc(CTX, 128, AllocKind::Linear).unwrap();
        m.copy_h2d(CTX, src, &HostBuf::from_slice(&[5u8; 128]), None).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(src), KernelArg::Ptr(dst)]).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        m.swap_out_ctx(CTX, &b, SwapReason::Unbind).unwrap();
        let before = b.gpu.stats().snapshot();
        m.copy_d2d(CTX, dst, src, 128, Some(&b)).unwrap();
        let after = b.gpu.stats().snapshot();
        assert_eq!(after.d2d_bytes, before.d2d_bytes, "swapped-out entries go via the host");
        assert_eq!(m.copy_d2h(CTX, dst, 128, Some(&b)).unwrap().payload, vec![5u8; 128]);
    }

    #[test]
    fn copy_d2d_validates_bounds_up_front() {
        let m = mm();
        m.register_ctx(CTX);
        let src = m.malloc(CTX, 128, AllocKind::Linear).unwrap();
        let dst = m.malloc(CTX, 64, AllocKind::Linear).unwrap();
        assert_eq!(m.copy_d2d(CTX, dst, src, 0, None), Err(CudaError::InvalidValue));
        assert_eq!(m.copy_d2d(CTX, dst, src, 130, None), Err(CudaError::OutOfBounds));
        assert_eq!(m.copy_d2d(CTX, dst, src, 100, None), Err(CudaError::SizeMismatch));
    }

    #[test]
    fn migration_plan_and_commit_rewrite_only_what_moved() {
        let m = mm();
        m.register_ctx(CTX);
        let b = gpu_binding();
        let a_ptr = m.malloc(CTX, 128, AllocKind::Linear).unwrap();
        let b_ptr = m.malloc(CTX, 64, AllocKind::Linear).unwrap();
        m.copy_h2d(CTX, a_ptr, &HostBuf::from_slice(&[1u8; 128]), None).unwrap();
        m.copy_h2d(CTX, b_ptr, &HostBuf::from_slice(&[2u8; 64]), None).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(a_ptr), KernelArg::Ptr(b_ptr)]).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        // Host-touch `b_ptr` after the launch: its device copy goes stale
        // (to_dev), so a migration must *drop* it, not carry it.
        m.copy_h2d(CTX, b_ptr, &HostBuf::from_slice(&[3u8; 64]), None).unwrap();

        let plan = m.migration_plan(CTX);
        assert_eq!(plan.len(), 2);
        let pa = plan.iter().find(|e| e.vaddr == a_ptr).unwrap();
        let pb = plan.iter().find(|e| e.vaddr == b_ptr).unwrap();
        assert!(pa.device_current, "kernel output must travel with the context");
        assert!(!pb.device_current, "stale device copy must be dropped, slab wins");
        assert_eq!(pa.size, 128);

        let dst_dptr = DeviceAddr(0x7f00_0000);
        m.commit_migration(CTX, &[(a_ptr, dst_dptr)], &[b_ptr]);

        // Moved entry: flags untouched, pointer rewritten (visible through a
        // fresh plan). Dropped entry: host-authoritative `on_swap` state,
        // classifiable, slab intact.
        let plan2 = m.migration_plan(CTX);
        assert_eq!(plan2.len(), 1, "dropped entry must leave the resident set");
        assert_eq!(plan2[0].vaddr, a_ptr);
        assert_eq!(plan2[0].src_dptr, dst_dptr);
        let fa = m.flags_of(CTX, a_ptr).unwrap();
        assert!(fa.allocated && !fa.to_dev);
        let fb = m.flags_of(CTX, b_ptr).unwrap();
        assert!(!fb.allocated && fb.to_dev && !fb.to_swap);
        assert_eq!(m.copy_d2h(CTX, b_ptr, 64, None).unwrap().payload, vec![3u8; 64]);
    }

    #[test]
    fn copy_d2d_cross_device_non_resident_rejects_bad_bounds_before_staging() {
        // Regression for the migration path: a context that left its old
        // device (everything host-authoritative) and rebound elsewhere
        // issues a D2D copy. Bad bounds must reject *before* a single
        // staging byte moves on either device, and the valid copy must
        // host-route through the slabs — the old device is never touched
        // again.
        let m = mm();
        m.register_ctx(CTX);
        let old = gpu_binding();
        let src = m.malloc(CTX, 128, AllocKind::Linear).unwrap();
        let dst = m.malloc(CTX, 64, AllocKind::Linear).unwrap();
        m.copy_h2d(CTX, src, &HostBuf::from_slice(&[7u8; 128]), None).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(src), KernelArg::Ptr(dst)]).unwrap();
        m.materialize(CTX, &c, &old).unwrap();
        m.swap_out_ctx(CTX, &old, SwapReason::Migration).unwrap();
        let new = binding_with(GpuSpec::test_small());

        let before_old = old.gpu.stats().snapshot();
        let before_new = new.gpu.stats().snapshot();
        assert_eq!(m.copy_d2d(CTX, dst, src, 200, Some(&new)), Err(CudaError::OutOfBounds));
        assert_eq!(m.copy_d2d(CTX, dst, src, 100, Some(&new)), Err(CudaError::SizeMismatch));
        for (label, gpu, before) in [("old", &old.gpu, &before_old), ("new", &new.gpu, &before_new)]
        {
            let s = gpu.stats().snapshot();
            assert_eq!(s.h2d_bytes, before.h2d_bytes, "{label}: rejected copy staged H2D");
            assert_eq!(s.d2h_bytes, before.d2h_bytes, "{label}: rejected copy staged D2H");
            assert_eq!(s.d2d_bytes, before.d2d_bytes, "{label}: rejected copy ran D2D");
        }

        // The valid copy host-routes slab→slab: correct bytes, still zero
        // traffic on the old device (both entries are non-resident, so the
        // new device stays idle too until something materializes).
        m.copy_d2d(CTX, dst, src, 64, Some(&new)).unwrap();
        assert_eq!(m.copy_d2h(CTX, dst, 64, Some(&new)).unwrap().payload, vec![7u8; 64]);
        let after_old = old.gpu.stats().snapshot();
        assert_eq!(after_old.h2d_bytes, before_old.h2d_bytes, "old device touched after unbind");
        assert_eq!(after_old.d2h_bytes, before_old.d2h_bytes, "old device touched after unbind");
    }

    fn binding_with(spec: GpuSpec) -> Binding {
        let gpu = Gpu::new(spec, Clock::with_scale(1e-7), 0);
        let gpu_ctx = gpu.create_context().unwrap();
        Binding { vgpu: VGpuId { device: DeviceId(0), index: 0 }, gpu, gpu_ctx }
    }

    #[test]
    fn pipelined_materialize_uploads_every_buffer_once() {
        let metrics = Arc::new(RuntimeMetrics::default());
        let m = MemoryManager::new(MemoryConfig::default(), Arc::clone(&metrics));
        m.register_ctx(CTX);
        let b = binding_with(GpuSpec::tesla_c2050());
        let mut ptrs = Vec::new();
        for i in 0..8u8 {
            let v = m.malloc(CTX, 4096, AllocKind::Linear).unwrap();
            m.copy_h2d(CTX, v, &HostBuf::from_slice(&[i; 4096]), None).unwrap();
            ptrs.push(KernelArg::Ptr(v));
        }
        let c = m.launch_closure(CTX, &ptrs).unwrap();
        assert_eq!(m.materialize(CTX, &c, &b).unwrap(), Materialize::Ready);
        assert_eq!(b.gpu.stats().snapshot().h2d_bytes, 8 * 4096);
        // Idempotent, and the plan overlapped on the 2-engine device.
        assert_eq!(m.materialize(CTX, &c, &b).unwrap(), Materialize::Ready);
        assert_eq!(b.gpu.stats().snapshot().h2d_bytes, 8 * 4096);
        let snap = metrics.snapshot();
        assert!(snap.transfer_plans >= 1);
        assert!(snap.transfer_overlap_events >= 1);
        // Every buffer's data reached the device intact.
        for (i, arg) in ptrs.iter().enumerate() {
            let KernelArg::Ptr(v) = arg else { unreachable!() };
            let args = m.translate_args(CTX, &[KernelArg::Ptr(*v)]).unwrap();
            let KernelArg::Ptr(dptr) = args[0] else { unreachable!() };
            assert_eq!(b.gpu.peek(dptr, 16).unwrap(), vec![i as u8; 16]);
        }
    }

    #[test]
    fn single_engine_plans_never_report_overlap() {
        let metrics = Arc::new(RuntimeMetrics::default());
        let m = MemoryManager::new(MemoryConfig::default(), Arc::clone(&metrics));
        m.register_ctx(CTX);
        let b = binding_with(GpuSpec::tesla_c1060());
        let mut ptrs = Vec::new();
        for _ in 0..6 {
            let v = m.malloc(CTX, 1024, AllocKind::Linear).unwrap();
            m.copy_h2d(CTX, v, &HostBuf::from_slice(&[1u8; 1024]), None).unwrap();
            ptrs.push(KernelArg::Ptr(v));
        }
        let c = m.launch_closure(CTX, &ptrs).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        let snap = metrics.snapshot();
        assert!(snap.transfer_plans >= 1);
        assert_eq!(snap.transfer_overlap_events, 0, "one engine cannot overlap");
    }

    #[test]
    fn pipelining_toggle_forces_serial_plans() {
        let metrics = Arc::new(RuntimeMetrics::default());
        let cfg = MemoryConfig { pipelined_transfers: false, ..MemoryConfig::default() };
        let m = MemoryManager::new(cfg, Arc::clone(&metrics));
        m.register_ctx(CTX);
        let b = binding_with(GpuSpec::tesla_c2050());
        let mut ptrs = Vec::new();
        for _ in 0..4 {
            let v = m.malloc(CTX, 1024, AllocKind::Linear).unwrap();
            m.copy_h2d(CTX, v, &HostBuf::from_slice(&[1u8; 1024]), None).unwrap();
            ptrs.push(KernelArg::Ptr(v));
        }
        let c = m.launch_closure(CTX, &ptrs).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        assert_eq!(metrics.snapshot().transfer_overlap_events, 0);
    }

    #[test]
    fn swap_out_skips_writeback_for_clean_entries() {
        let metrics = Arc::new(RuntimeMetrics::default());
        let m = MemoryManager::new(MemoryConfig::default(), Arc::clone(&metrics));
        m.register_ctx(CTX);
        let b = binding_with(GpuSpec::tesla_c2050());
        let clean = m.malloc(CTX, 1024, AllocKind::Linear).unwrap();
        let dirty = m.malloc(CTX, 512, AllocKind::Linear).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(clean), KernelArg::Ptr(dirty)]).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        // Only `dirty` gets a kernel write; `clean` stays synchronized.
        m.mark_launched(CTX, &[dirty]);
        let d2h_before = b.gpu.stats().snapshot().d2h_bytes;
        let out = m.swap_out_ctx(CTX, &b, SwapReason::Unbind).unwrap();
        assert_eq!(out.freed, 1536);
        assert_eq!(out.writeback_bytes, 512);
        assert_eq!(out.clean_bytes, 1024);
        assert_eq!(metrics.snapshot().swap_bytes_skipped_clean, 1024);
        assert_eq!(
            b.gpu.stats().snapshot().d2h_bytes - d2h_before,
            512,
            "only the dirty entry crosses PCIe"
        );
    }

    #[test]
    fn remove_ctx_frees_device_side() {
        let m = mm();
        m.register_ctx(CTX);
        let b = gpu_binding();
        let before = b.gpu.mem_available();
        let v = m.malloc(CTX, 4096, AllocKind::Linear).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(v)]).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        assert!(b.gpu.mem_available() < before);
        m.remove_ctx(CTX, Some(&b));
        assert_eq!(b.gpu.mem_available(), before);
        assert_eq!(m.swap_used(), 0);
    }

    #[test]
    fn eager_mode_writes_through_when_resident() {
        let cfg = MemoryConfig { defer_transfers: false, ..MemoryConfig::default() };
        let m = MemoryManager::new(cfg, Arc::new(RuntimeMetrics::default()));
        m.register_ctx(CTX);
        let b = gpu_binding();
        let v = m.malloc(CTX, 256, AllocKind::Linear).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(v)]).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        let h2d_before = b.gpu.stats().snapshot().h2d_bytes;
        m.copy_h2d(CTX, v, &HostBuf::from_slice(&[1u8; 256]), Some(&b)).unwrap();
        assert!(
            b.gpu.stats().snapshot().h2d_bytes > h2d_before,
            "eager mode must write through to the resident copy"
        );
        let f = m.flags_of(CTX, v).unwrap();
        assert!(f.allocated && !f.to_dev);
    }

    #[test]
    fn prefetch_restores_last_launch_working_set() {
        let metrics = Arc::new(RuntimeMetrics::default());
        let m = MemoryManager::new(MemoryConfig::default(), Arc::clone(&metrics));
        m.register_ctx(CTX);
        let b = binding_with(GpuSpec::tesla_c2050());
        let x = m.malloc(CTX, 4096, AllocKind::Linear).unwrap();
        let y = m.malloc(CTX, 2048, AllocKind::Linear).unwrap();
        m.copy_h2d(CTX, x, &HostBuf::from_slice(&[7u8; 4096]), None).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(x), KernelArg::Ptr(y)]).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        // Swapped out wholesale (unbind): the next launch would fault the
        // set back in through the admit path — unless prefetch beats it.
        m.swap_out_ctx(CTX, &b, SwapReason::Unbind).unwrap();
        // Prediction = last launch's argument set minus the new closure.
        let plan = m.prefetch_plan(CTX, &[y]);
        assert_eq!(plan.bases, vec![x]);
        assert_eq!(plan.bytes, 4096);
        assert_eq!(m.prefetch(CTX, &plan, &b), 4096);
        let f = m.flags_of(CTX, x).unwrap();
        assert!(f.allocated && !f.to_dev, "prefetched entry is device-current");
        let snap = metrics.snapshot();
        assert_eq!(snap.prefetch_plans, 1);
        assert_eq!(snap.prefetch_bytes, 4096);
        assert_eq!(snap.prefetch_cancelled, 0);
        // The payload survived the swap → prefetch round trip.
        let args = m.translate_args(CTX, &[KernelArg::Ptr(x)]).unwrap();
        let KernelArg::Ptr(dptr) = args[0] else { unreachable!() };
        assert_eq!(b.gpu.peek(dptr, 16).unwrap(), vec![7u8; 16]);
    }

    #[test]
    fn prefetch_cancels_on_device_failure() {
        let metrics = Arc::new(RuntimeMetrics::default());
        let m = MemoryManager::new(MemoryConfig::default(), Arc::clone(&metrics));
        m.register_ctx(CTX);
        let b = binding_with(GpuSpec::tesla_c2050());
        let x = m.malloc(CTX, 1024, AllocKind::Linear).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(x)]).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        // Re-dirty on the host so the entry has a pending upload again.
        m.copy_h2d(CTX, x, &HostBuf::from_slice(&[9u8; 1024]), None).unwrap();
        b.gpu.fail();
        let plan = m.prefetch_plan(CTX, &[]);
        assert_eq!(plan.bases, vec![x]);
        assert_eq!(m.prefetch(CTX, &plan, &b), 0, "dead device commits nothing");
        assert_eq!(metrics.snapshot().prefetch_cancelled, 1);
        let f = m.flags_of(CTX, x).unwrap();
        assert!(f.allocated && f.to_dev, "cancelled prefetch keeps the entry classifiable");
        assert!(matches!(m.on_device_lost(CTX), Recovery::Recovered));
    }

    #[test]
    fn materialize_split_streams_nested_members_in_wave_two() {
        let m = mm();
        m.register_ctx(CTX);
        let b = binding_with(GpuSpec::tesla_c2050());
        let parent = m.malloc(CTX, 1024, AllocKind::Linear).unwrap();
        let member = m.malloc(CTX, 2048, AllocKind::Linear).unwrap();
        m.register_nested(CTX, parent, vec![member]).unwrap();
        m.copy_h2d(CTX, parent, &HostBuf::from_slice(&[1u8; 1024]), None).unwrap();
        m.copy_h2d(CTX, member, &HostBuf::from_slice(&[2u8; 2048]), None).unwrap();
        let closure = m.launch_closure(CTX, &[KernelArg::Ptr(parent)]).unwrap();
        assert_eq!(closure.len(), 2, "closure extends to the nested member");
        let first = m.arg_bases(CTX, &[KernelArg::Ptr(parent)]).unwrap();
        assert_eq!(first, vec![parent], "first touch is the direct args only");
        let (mat, wave) = m.materialize_split(CTX, &closure, &first, &b).unwrap();
        assert_eq!(mat, Materialize::Ready);
        let wave = wave.expect("member upload defers to wave 2");
        assert_eq!(wave.op_count(), 1);
        assert_eq!(wave.bytes(), 2048);
        // Wave 1 committed before dispatch; the member is resident (full
        // closure allocated) but its payload is still pending.
        let fp = m.flags_of(CTX, parent).unwrap();
        assert!(fp.allocated && !fp.to_dev);
        let fm = m.flags_of(CTX, member).unwrap();
        assert!(fm.allocated && fm.to_dev);
        m.execute_wave(CTX, &b, wave).unwrap();
        let fm = m.flags_of(CTX, member).unwrap();
        assert!(fm.allocated && !fm.to_dev);
        assert_eq!(b.gpu.stats().snapshot().h2d_bytes, 1024 + 2048);
    }

    #[test]
    fn wave_two_failure_leaves_every_pte_classifiable() {
        let m = mm();
        m.register_ctx(CTX);
        let b = binding_with(GpuSpec::tesla_c2050());
        let parent = m.malloc(CTX, 1024, AllocKind::Linear).unwrap();
        let member = m.malloc(CTX, 2048, AllocKind::Linear).unwrap();
        m.register_nested(CTX, parent, vec![member]).unwrap();
        m.copy_h2d(CTX, member, &HostBuf::from_slice(&[2u8; 2048]), None).unwrap();
        let closure = m.launch_closure(CTX, &[KernelArg::Ptr(parent)]).unwrap();
        let first = m.arg_bases(CTX, &[KernelArg::Ptr(parent)]).unwrap();
        let (_, wave) = m.materialize_split(CTX, &closure, &first, &b).unwrap();
        // Device dies between wave-1 commit and wave-2 execute.
        b.gpu.fail();
        assert!(m.execute_wave(CTX, &b, wave.unwrap()).is_err());
        let fm = m.flags_of(CTX, member).unwrap();
        assert!(fm.allocated && fm.to_dev, "uncommitted wave-2 op keeps to_dev");
        // Nothing dirty was device-only, so the context survives the loss.
        assert!(matches!(m.on_device_lost(CTX), Recovery::Recovered));
    }

    #[test]
    fn eviction_policy_changes_intra_app_victim() {
        // `large` is touched more recently than `small`; under pressure
        // SeedOrder evicts the biggest candidate while LRU protects the
        // recently-used one and evicts the stale small buffer instead.
        for (kind, large_evicted) in
            [(EvictionPolicyKind::SeedOrder, true), (EvictionPolicyKind::Lru, false)]
        {
            let cfg = MemoryConfig { eviction_policy: kind, ..MemoryConfig::default() };
            let m = MemoryManager::new(cfg, Arc::new(RuntimeMetrics::default()));
            m.register_ctx(CTX);
            let b = gpu_binding();
            let avail = b.gpu.mem_available();
            let large = m.malloc(CTX, avail / 5 * 2, AllocKind::Linear).unwrap();
            let small = m.malloc(CTX, avail / 3, AllocKind::Linear).unwrap();
            let c1 =
                m.launch_closure(CTX, &[KernelArg::Ptr(large), KernelArg::Ptr(small)]).unwrap();
            m.materialize(CTX, &c1, &b).unwrap();
            let c2 = m.launch_closure(CTX, &[KernelArg::Ptr(large)]).unwrap();
            m.materialize(CTX, &c2, &b).unwrap();
            let d = m.malloc(CTX, avail / 3, AllocKind::Linear).unwrap();
            let c3 = m.launch_closure(CTX, &[KernelArg::Ptr(d)]).unwrap();
            assert_eq!(m.materialize(CTX, &c3, &b).unwrap(), Materialize::Ready);
            assert_eq!(
                !m.flags_of(CTX, large).unwrap().allocated,
                large_evicted,
                "policy {kind:?} picked the wrong victim"
            );
            assert_eq!(!m.flags_of(CTX, small).unwrap().allocated, !large_evicted);
        }
    }

    #[test]
    fn cost_aware_evicts_clean_bytes_before_dirty() {
        // Equal sizes; `dirty` holds device-only kernel output, so its
        // eviction pays a writeback. CostAware halves its score and evicts
        // the clean buffer free of charge; SeedOrder breaks the size tie
        // by highest address and picks `dirty`.
        for (kind, clean_evicted) in
            [(EvictionPolicyKind::SeedOrder, false), (EvictionPolicyKind::CostAware, true)]
        {
            let cfg = MemoryConfig { eviction_policy: kind, ..MemoryConfig::default() };
            let m = MemoryManager::new(cfg, Arc::new(RuntimeMetrics::default()));
            m.register_ctx(CTX);
            let b = gpu_binding();
            let avail = b.gpu.mem_available();
            let clean = m.malloc(CTX, avail / 5 * 2, AllocKind::Linear).unwrap();
            let dirty = m.malloc(CTX, avail / 5 * 2, AllocKind::Linear).unwrap();
            let c1 =
                m.launch_closure(CTX, &[KernelArg::Ptr(clean), KernelArg::Ptr(dirty)]).unwrap();
            m.materialize(CTX, &c1, &b).unwrap();
            m.mark_launched(CTX, &[dirty]);
            let d = m.malloc(CTX, avail / 5 * 2, AllocKind::Linear).unwrap();
            let c2 = m.launch_closure(CTX, &[KernelArg::Ptr(d)]).unwrap();
            assert_eq!(m.materialize(CTX, &c2, &b).unwrap(), Materialize::Ready);
            assert_eq!(
                !m.flags_of(CTX, clean).unwrap().allocated,
                clean_evicted,
                "policy {kind:?} picked the wrong victim"
            );
            assert_eq!(!m.flags_of(CTX, dirty).unwrap().allocated, !clean_evicted);
        }
    }
}
