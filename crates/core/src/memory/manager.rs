//! The memory manager: virtual memory for GPUs (§4.5).
//!
//! Applications never see device addresses — `malloc` returns *virtual*
//! addresses minted here, and data lives in the host-side swap area, moving
//! to a device only on demand (at kernel-launch time under transfer
//! deferral). The manager implements the full Table 1 action matrix, the
//! Figure 4 flag state machine, intra- and inter-application swap,
//! bulk-transfer coalescing, bad-operation detection, nested-structure
//! consistency, checkpointing, and device-loss recovery.
//!
//! # Locking contract
//!
//! Every method taking a [`CtxId`] assumes the caller holds that context's
//! *service lock* ([`crate::ctx::AppContext::service_lock`]): a context's
//! memory state is only ever mutated by one thread at a time (its handler,
//! or a swapper/migrator that won its `try_lock`). The manager's internal
//! mutex is short-held and never spans a simulated-time device operation —
//! transfers are planned under the lock, executed outside it, and committed
//! under it again.

use crate::ctx::{Binding, CtxId};
use crate::memory::page_table::{PageTable, PageTableEntry, SwapSlab};
use crate::memory::swap::SwapArea;
use crate::metrics::RuntimeMetrics;
use mtgpu_api::protocol::AllocKind;
use mtgpu_api::{CudaError, CudaResult, HostBuf};
use mtgpu_gpusim::device::DEFAULT_MATERIALIZE_CAP;
use mtgpu_gpusim::{DeviceAddr, KernelArg};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Base of the virtual address space handed to applications. High enough to
/// never collide with device-salted physical addresses.
const VADDR_BASE: u64 = 0x7f00_0000_0000;
/// Virtual allocation alignment (matches the device allocator).
const VALIGN: u64 = 256;

/// Result of trying to make a launch's working set resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Materialize {
    /// Everything resident and uploaded; launch may proceed.
    Ready,
    /// Even after intra-application swapping, `0.0 +` this many bytes could
    /// not be allocated on the device. The caller escalates (inter-app swap
    /// or unbind-and-retry).
    NeedBytes(u64),
}

/// Why a context's device state is being evicted (metric attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapReason {
    /// Evicted as the victim of another application's memory need (§4.5).
    InterAppVictim,
    /// Unbound voluntarily (requeue after failed materialization).
    Unbind,
    /// Migrating to a different device (§5.3.4).
    Migration,
    /// Device failed or was removed.
    DeviceLoss,
}

/// Outcome of device-loss recovery for one context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// All device-resident data had a consistent swap copy; the context can
    /// transparently rebind elsewhere.
    Recovered,
    /// Some data existed only on the lost device (dirty, never
    /// checkpointed): the context cannot be transparently resumed.
    LostDirtyData,
}

struct MmState {
    tables: HashMap<CtxId, PageTable>,
    swap: SwapArea,
    next_vaddr: u64,
}

/// Memory-manager configuration slice (copied from
/// [`crate::config::RuntimeConfig`]).
#[derive(Debug, Clone)]
pub struct MemoryConfig {
    pub defer_transfers: bool,
    pub coalesce_transfers: bool,
    pub intra_app_swap: bool,
    pub max_ptes_per_context: usize,
    pub swap_capacity: Option<u64>,
    pub materialize_cap: u64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            defer_transfers: true,
            coalesce_transfers: true,
            intra_app_swap: true,
            max_ptes_per_context: 1 << 20,
            swap_capacity: None,
            materialize_cap: DEFAULT_MATERIALIZE_CAP,
        }
    }
}

/// The node-wide memory manager.
pub struct MemoryManager {
    cfg: MemoryConfig,
    metrics: Arc<RuntimeMetrics>,
    state: Mutex<MmState>,
}

impl MemoryManager {
    /// Creates a manager.
    pub fn new(cfg: MemoryConfig, metrics: Arc<RuntimeMetrics>) -> Self {
        let swap = SwapArea::new(cfg.swap_capacity);
        MemoryManager {
            cfg,
            metrics,
            state: Mutex::new(MmState { tables: HashMap::new(), swap, next_vaddr: VADDR_BASE }),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }

    /// Registers a fresh context.
    pub fn register_ctx(&self, ctx: CtxId) {
        self.state.lock().tables.insert(ctx, PageTable::new());
    }

    /// Removes a context, releasing its swap reservation and (when bound)
    /// its device allocations.
    pub fn remove_ctx(&self, ctx: CtxId, binding: Option<&Binding>) {
        let frees: Vec<(DeviceAddr, u64)> = {
            let mut st = self.state.lock();
            let Some(table) = st.tables.remove(&ctx) else { return };
            let mut frees = Vec::new();
            let mut swap_bytes = 0;
            for e in table.iter() {
                swap_bytes += e.size;
                if let Some(d) = e.device_ptr {
                    frees.push((d, e.size));
                }
            }
            st.swap.release(swap_bytes);
            frees
        };
        if let Some(b) = binding {
            for (d, _) in frees {
                let _ = b.gpu.free(b.gpu_ctx, d);
            }
        }
    }

    /// `cudaMalloc` (Table 1): create PTE, allocate swap. No device action.
    pub fn malloc(&self, ctx: CtxId, size: u64, kind: AllocKind) -> CudaResult<DeviceAddr> {
        if size == 0 {
            return Err(CudaError::InvalidValue);
        }
        let mut st = self.state.lock();
        let max_ptes = self.cfg.max_ptes_per_context;
        let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
        if table.len() >= max_ptes {
            return Err(CudaError::VirtualAddressExhausted);
        }
        st.swap.reserve(size)?;
        let vaddr = DeviceAddr(st.next_vaddr);
        st.next_vaddr += (size + VALIGN - 1) & !(VALIGN - 1);
        let slab = SwapSlab::new(size, self.cfg.materialize_cap);
        let table = st.tables.get_mut(&ctx).expect("table vanished");
        table.insert(PageTableEntry {
            vaddr,
            size,
            device_ptr: None,
            flags: crate::memory::page_table::Flags::INITIAL,
            kind,
            slab,
            nested_members: Vec::new(),
            nested_parent: None,
        });
        Ok(vaddr)
    }

    /// `cudaFree` (Table 1): check PTE, de-allocate swap, free device copy
    /// if resident.
    pub fn free(&self, ctx: CtxId, vaddr: DeviceAddr, binding: Option<&Binding>) -> CudaResult<()> {
        let entry = {
            let mut st = self.state.lock();
            let table = st.tables.get_mut(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
            let entry = table.remove(vaddr).ok_or(CudaError::InvalidDevicePointer)?;
            st.swap.release(entry.size);
            entry
        };
        if let Some(dptr) = entry.device_ptr {
            let b = binding.ok_or(CudaError::SwapDeallocation)?;
            b.gpu.free(b.gpu_ctx, dptr).map_err(CudaError::from_gpu)?;
        }
        Ok(())
    }

    /// `cudaMemcpy` host→device (Table 1): check PTE, move data to swap.
    /// Under deferral no device action occurs; in eager mode the region is
    /// written through when the entry is already resident.
    pub fn copy_h2d(
        &self,
        ctx: CtxId,
        dst: DeviceAddr,
        buf: &HostBuf,
        binding: Option<&Binding>,
    ) -> CudaResult<()> {
        if buf.declared_len == 0 {
            return Err(CudaError::InvalidValue);
        }
        // Phase 0: if the entry is dirty on device (a kernel wrote it and
        // no checkpoint followed), synchronize the slab first — a *partial*
        // host write must merge into the kernel's output, not clobber the
        // untouched region with the stale pre-kernel slab at the next bulk
        // upload. (Figure 4's flags are per-entry; this keeps the swap tier
        // authoritative at byte granularity.)
        let sync_plan = {
            let st = self.state.lock();
            let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
            let (base, _) = table.resolve(dst).ok_or(CudaError::InvalidDevicePointer)?;
            let entry = table.get(base).expect("resolved entry vanished");
            (entry.flags.to_swap && entry.flags.allocated)
                .then(|| (base, entry.device_ptr.expect("allocated without ptr"), entry.size))
        };
        if let Some((base, dptr, size)) = sync_plan {
            let b = binding.ok_or(CudaError::InvalidDevicePointer)?;
            let bytes = b.gpu.memcpy_d2h(b.gpu_ctx, dptr, size).map_err(CudaError::from_gpu)?;
            let mut st = self.state.lock();
            if let Some(entry) = st.tables.get_mut(&ctx).and_then(|t| t.get_mut(base)) {
                entry.slab.write(0, &bytes);
                entry.flags = entry.flags.on_copy_dh();
            }
        }
        // Phase 1: validate, update slab + flags under the lock.
        let eager_plan = {
            let mut st = self.state.lock();
            let table = st.tables.get_mut(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
            let (base, offset) = table.resolve(dst).ok_or(CudaError::InvalidDevicePointer)?;
            let entry = table.get_mut(base).expect("resolved entry vanished");
            if offset + buf.declared_len > entry.size {
                RuntimeMetrics::bump(&self.metrics.bad_ops_rejected);
                return Err(CudaError::SizeMismatch);
            }
            if entry.flags.to_dev && self.cfg.coalesce_transfers {
                // A previous copy into this entry has not been uploaded yet:
                // this one merges into the same future bulk transfer.
                RuntimeMetrics::bump(&self.metrics.coalesced_copies);
            }
            entry.slab.write(offset, &buf.payload);
            entry.flags = entry.flags.on_copy_hd();
            if !self.cfg.defer_transfers && entry.flags.allocated {
                entry.device_ptr.map(|d| (d, entry.size, entry.slab.data.clone()))
            } else {
                None
            }
        };
        // Phase 2 (eager mode only): write through to the device.
        if let (Some((dptr, size, data)), Some(b)) = (eager_plan, binding) {
            b.gpu.memcpy_h2d(b.gpu_ctx, dptr, size, &data).map_err(CudaError::from_gpu)?;
            let mut st = self.state.lock();
            if let Some(entry) = st
                .tables
                .get_mut(&ctx)
                .and_then(|t| t.resolve(dst).map(|(b, _)| b))
                .and_then(|base| st.tables.get_mut(&ctx).unwrap().get_mut(base))
            {
                entry.flags.to_dev = false;
            }
        }
        Ok(())
    }

    /// `cudaMemcpy` device→host (Table 1): check PTE; if the device holds
    /// the only copy, synchronize the slab first; serve from swap.
    pub fn copy_d2h(
        &self,
        ctx: CtxId,
        src: DeviceAddr,
        len: u64,
        binding: Option<&Binding>,
    ) -> CudaResult<HostBuf> {
        if len == 0 {
            return Err(CudaError::InvalidValue);
        }
        // Phase 1: plan.
        let (base, offset, sync_plan) = {
            let st = self.state.lock();
            let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
            let (base, offset) = table.resolve(src).ok_or(CudaError::InvalidDevicePointer)?;
            let entry = table.get(base).expect("resolved entry vanished");
            if offset + len > entry.size {
                RuntimeMetrics::bump(&self.metrics.bad_ops_rejected);
                return Err(CudaError::OutOfBounds);
            }
            let sync = (entry.flags.to_swap && entry.flags.allocated)
                .then(|| (entry.device_ptr.expect("allocated without ptr"), entry.size));
            (base, offset, sync)
        };
        // Phase 2: synchronize the whole entry from device if dirty.
        if let Some((dptr, size)) = sync_plan {
            let b = binding.ok_or(CudaError::InvalidDevicePointer)?;
            let bytes = b.gpu.memcpy_d2h(b.gpu_ctx, dptr, size).map_err(CudaError::from_gpu)?;
            let mut st = self.state.lock();
            if let Some(entry) = st.tables.get_mut(&ctx).and_then(|t| t.get_mut(base)) {
                entry.slab.write(0, &bytes);
                entry.flags = entry.flags.on_copy_dh();
            }
        }
        // Phase 3: serve from the slab.
        let st = self.state.lock();
        let entry =
            st.tables.get(&ctx).and_then(|t| t.get(base)).ok_or(CudaError::InvalidDevicePointer)?;
        Ok(HostBuf::with_shadow(len, entry.slab.read(offset, len)))
    }

    /// `cudaMemcpy` device→device: routed through the swap tier (both
    /// entries' authoritative copies), preserving flags semantics.
    pub fn copy_d2d(
        &self,
        ctx: CtxId,
        dst: DeviceAddr,
        src: DeviceAddr,
        len: u64,
        binding: Option<&Binding>,
    ) -> CudaResult<()> {
        let data = self.copy_d2h(ctx, src, len, binding)?;
        self.copy_h2d(ctx, dst, &data, binding)
    }

    /// Registers a nested structure (§1): `parent` holds device pointers to
    /// `members`; the manager keeps them consistent by extending launch
    /// materialization and swaps to the whole closure.
    pub fn register_nested(
        &self,
        ctx: CtxId,
        parent: DeviceAddr,
        members: Vec<DeviceAddr>,
    ) -> CudaResult<()> {
        let mut st = self.state.lock();
        let table = st.tables.get_mut(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
        let parent_base =
            table.resolve(parent).map(|(b, _)| b).ok_or(CudaError::InvalidDevicePointer)?;
        let mut member_bases = Vec::with_capacity(members.len());
        for m in &members {
            let base = table.resolve(*m).map(|(b, _)| b).ok_or(CudaError::InvalidDevicePointer)?;
            member_bases.push(base);
        }
        for &mb in &member_bases {
            table.get_mut(mb).expect("member vanished").nested_parent = Some(parent_base);
        }
        table.get_mut(parent_base).expect("parent vanished").nested_members = member_bases;
        Ok(())
    }

    /// Resolves a launch's pointer arguments to PTE bases and extends the
    /// set with registered nested members (transitively).
    pub fn launch_closure(&self, ctx: CtxId, args: &[KernelArg]) -> CudaResult<Vec<DeviceAddr>> {
        let st = self.state.lock();
        let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
        let mut closure: Vec<DeviceAddr> = Vec::new();
        let mut stack: Vec<DeviceAddr> = Vec::new();
        for arg in args {
            if let KernelArg::Ptr(p) = arg {
                let base =
                    table.resolve(*p).map(|(b, _)| b).ok_or(CudaError::InvalidDevicePointer)?;
                stack.push(base);
            }
        }
        while let Some(base) = stack.pop() {
            if closure.contains(&base) {
                continue;
            }
            closure.push(base);
            let entry = table.get(base).ok_or(CudaError::InvalidDevicePointer)?;
            stack.extend(entry.nested_members.iter().copied());
        }
        Ok(closure)
    }

    /// Makes every entry in `bases` device-resident and uploaded on the
    /// bound device, applying **intra-application swap** on memory pressure
    /// (§4.5). Returns [`Materialize::NeedBytes`] if the device cannot hold
    /// the working set even after evicting everything else this context
    /// owns.
    pub fn materialize(
        &self,
        ctx: CtxId,
        bases: &[DeviceAddr],
        binding: &Binding,
    ) -> CudaResult<Materialize> {
        loop {
            // Find the next piece of work under the lock.
            enum Step {
                Alloc { base: DeviceAddr, size: u64 },
                Upload { base: DeviceAddr, dptr: DeviceAddr, size: u64, data: Vec<u8> },
                Done,
            }
            let step = {
                let st = self.state.lock();
                let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
                let mut step = Step::Done;
                for &base in bases {
                    let entry = table.get(base).ok_or(CudaError::InvalidDevicePointer)?;
                    if !entry.flags.allocated {
                        step = Step::Alloc { base, size: entry.size };
                        break;
                    }
                    if entry.flags.to_dev {
                        step = Step::Upload {
                            base,
                            dptr: entry.device_ptr.expect("allocated without ptr"),
                            size: entry.size,
                            data: entry.slab.data.clone(),
                        };
                        break;
                    }
                }
                step
            };
            match step {
                Step::Done => return Ok(Materialize::Ready),
                Step::Alloc { base, size } => {
                    match binding.gpu.malloc(binding.gpu_ctx, size) {
                        Ok(dptr) => {
                            let mut st = self.state.lock();
                            if let Some(entry) =
                                st.tables.get_mut(&ctx).and_then(|t| t.get_mut(base))
                            {
                                entry.device_ptr = Some(dptr);
                                entry.flags.allocated = true;
                            } else {
                                // Entry freed concurrently is impossible under
                                // the service lock; release the orphan.
                                let _ = binding.gpu.free(binding.gpu_ctx, dptr);
                            }
                        }
                        Err(mtgpu_gpusim::GpuError::OutOfMemory) => {
                            if !self.cfg.intra_app_swap
                                || !self.evict_one_own_entry(ctx, bases, binding)?
                            {
                                return Ok(Materialize::NeedBytes(size));
                            }
                        }
                        Err(e) => return Err(CudaError::from_gpu(e)),
                    }
                }
                Step::Upload { base, dptr, size, data } => {
                    binding
                        .gpu
                        .memcpy_h2d(binding.gpu_ctx, dptr, size, &data)
                        .map_err(CudaError::from_gpu)?;
                    RuntimeMetrics::bump(&self.metrics.bulk_uploads);
                    let mut st = self.state.lock();
                    if let Some(entry) = st.tables.get_mut(&ctx).and_then(|t| t.get_mut(base)) {
                        entry.flags.to_dev = false;
                    }
                }
            }
        }
    }

    /// Evicts one of `ctx`'s own resident entries that is *not* part of the
    /// working set. Returns `false` when there is nothing left to evict.
    fn evict_one_own_entry(
        &self,
        ctx: CtxId,
        protected: &[DeviceAddr],
        binding: &Binding,
    ) -> CudaResult<bool> {
        let plan = {
            let st = self.state.lock();
            let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
            table
                .iter()
                .filter(|e| e.flags.allocated && !protected.contains(&e.vaddr))
                // Evict the largest non-working-set entry first: frees the
                // most contiguous space per swap operation.
                .max_by_key(|e| e.size)
                .map(|e| {
                    (e.vaddr, e.device_ptr.expect("allocated without ptr"), e.size, e.flags.to_swap)
                })
        };
        let Some((base, dptr, size, dirty)) = plan else {
            return Ok(false);
        };
        let synced = if dirty {
            Some(binding.gpu.memcpy_d2h(binding.gpu_ctx, dptr, size).map_err(CudaError::from_gpu)?)
        } else {
            None
        };
        binding.gpu.free(binding.gpu_ctx, dptr).map_err(CudaError::from_gpu)?;
        RuntimeMetrics::bump(&self.metrics.intra_app_swaps);
        RuntimeMetrics::add(&self.metrics.swap_bytes, size);
        let mut st = self.state.lock();
        if let Some(entry) = st.tables.get_mut(&ctx).and_then(|t| t.get_mut(base)) {
            if let Some(bytes) = synced {
                entry.slab.write(0, &bytes);
            }
            entry.device_ptr = None;
            entry.flags = entry.flags.on_swap();
        }
        Ok(true)
    }

    /// Rewrites a launch's virtual pointer arguments into device pointers.
    /// All referenced entries must be resident (call [`Self::materialize`]
    /// first).
    pub fn translate_args(&self, ctx: CtxId, args: &[KernelArg]) -> CudaResult<Vec<KernelArg>> {
        let st = self.state.lock();
        let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
        args.iter()
            .map(|arg| match arg {
                KernelArg::Ptr(p) => {
                    let (base, offset) =
                        table.resolve(*p).ok_or(CudaError::InvalidDevicePointer)?;
                    let entry = table.get(base).expect("resolved entry vanished");
                    let dptr = entry.device_ptr.ok_or(CudaError::InvalidDevicePointer)?;
                    Ok(KernelArg::Ptr(DeviceAddr(dptr.0 + offset)))
                }
                other => Ok(*other),
            })
            .collect()
    }

    /// Applies the Figure 4 `launch` transition to the working set: data is
    /// now resident and (conservatively) dirty on device.
    pub fn mark_launched(&self, ctx: CtxId, bases: &[DeviceAddr]) {
        let mut st = self.state.lock();
        if let Some(table) = st.tables.get_mut(&ctx) {
            for &base in bases {
                if let Some(entry) = table.get_mut(base) {
                    entry.flags = entry.flags.on_launch();
                }
            }
        }
    }

    /// Swaps out **all** of a context's device-resident entries
    /// (synchronizing dirty ones first) and frees their device memory.
    /// This is the `Swap` internal function of Table 1 applied to the whole
    /// context — used for inter-application victims, voluntary unbinds and
    /// migration. Returns the bytes freed on the device.
    pub fn swap_out_ctx(
        &self,
        ctx: CtxId,
        binding: &Binding,
        reason: SwapReason,
    ) -> CudaResult<u64> {
        let mut freed = 0;
        loop {
            let plan = {
                let st = self.state.lock();
                st.tables.get(&ctx).and_then(|table| {
                    table.iter().find(|e| e.flags.allocated).map(|e| {
                        (
                            e.vaddr,
                            e.device_ptr.expect("allocated without ptr"),
                            e.size,
                            e.flags.to_swap,
                        )
                    })
                })
            };
            let Some((base, dptr, size, dirty)) = plan else { break };
            let synced = if dirty {
                Some(
                    binding
                        .gpu
                        .memcpy_d2h(binding.gpu_ctx, dptr, size)
                        .map_err(CudaError::from_gpu)?,
                )
            } else {
                None
            };
            binding.gpu.free(binding.gpu_ctx, dptr).map_err(CudaError::from_gpu)?;
            freed += size;
            let mut st = self.state.lock();
            if let Some(entry) = st.tables.get_mut(&ctx).and_then(|t| t.get_mut(base)) {
                if let Some(bytes) = synced {
                    entry.slab.write(0, &bytes);
                }
                entry.device_ptr = None;
                entry.flags = entry.flags.on_swap();
            }
        }
        if freed > 0 {
            RuntimeMetrics::add(&self.metrics.swap_bytes, freed);
        }
        if reason == SwapReason::InterAppVictim {
            RuntimeMetrics::bump(&self.metrics.inter_app_swaps);
        }
        Ok(freed)
    }

    /// Checkpoint (§4.6): synchronize every dirty device-resident entry to
    /// the swap area *without* evicting it, leaving the context restartable.
    pub fn checkpoint(&self, ctx: CtxId, binding: &Binding) -> CudaResult<()> {
        loop {
            let plan = {
                let st = self.state.lock();
                st.tables.get(&ctx).and_then(|table| {
                    table
                        .iter()
                        .find(|e| e.flags.allocated && e.flags.to_swap)
                        .map(|e| (e.vaddr, e.device_ptr.expect("allocated without ptr"), e.size))
                })
            };
            let Some((base, dptr, size)) = plan else { break };
            let bytes =
                binding.gpu.memcpy_d2h(binding.gpu_ctx, dptr, size).map_err(CudaError::from_gpu)?;
            let mut st = self.state.lock();
            if let Some(entry) = st.tables.get_mut(&ctx).and_then(|t| t.get_mut(base)) {
                entry.slab.write(0, &bytes);
                entry.flags = entry.flags.on_copy_dh();
            }
        }
        RuntimeMetrics::bump(&self.metrics.checkpoints);
        Ok(())
    }

    /// Handles the loss of the device a context was bound to: resident
    /// entries are reset to host-authoritative. If any entry was dirty on
    /// the device (no checkpoint since its last kernel), the context's data
    /// is inconsistent and it cannot transparently resume.
    pub fn on_device_lost(&self, ctx: CtxId) -> Recovery {
        let mut st = self.state.lock();
        let Some(table) = st.tables.get_mut(&ctx) else {
            return Recovery::Recovered;
        };
        let mut lost = false;
        for entry in table.iter_mut() {
            if entry.flags.allocated {
                if entry.flags.to_swap {
                    lost = true;
                }
                entry.device_ptr = None;
                entry.flags.allocated = false;
                entry.flags.to_swap = false;
                entry.flags.to_dev = true;
            }
        }
        if lost {
            Recovery::LostDirtyData
        } else {
            Recovery::Recovered
        }
    }

    /// The context's total declared footprint (the paper's `MemUsage`).
    pub fn mem_usage(&self, ctx: CtxId) -> u64 {
        self.state.lock().tables.get(&ctx).map_or(0, |t| t.mem_usage())
    }

    /// Bytes of the context currently resident on its device.
    pub fn resident_bytes(&self, ctx: CtxId) -> u64 {
        self.state.lock().tables.get(&ctx).map_or(0, |t| t.resident_bytes())
    }

    /// Total swap-area bytes in use.
    pub fn swap_used(&self) -> u64 {
        self.state.lock().swap.used()
    }

    /// Number of live PTEs for a context (diagnostics).
    pub fn pte_count(&self, ctx: CtxId) -> usize {
        self.state.lock().tables.get(&ctx).map_or(0, |t| t.len())
    }

    /// Checkpoints (if bound) and exports the context's complete memory
    /// image with virtual addresses preserved (§4.6). The image is
    /// host-authoritative: residency is not captured — restoration
    /// re-materializes lazily at the next launch.
    pub fn export_image(
        &self,
        ctx: CtxId,
        label: &str,
        binding: Option<&Binding>,
    ) -> CudaResult<mtgpu_api::protocol::ContextImage> {
        if let Some(b) = binding {
            self.checkpoint(ctx, b)?;
        }
        let st = self.state.lock();
        let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
        let entries = table
            .iter()
            .map(|e| mtgpu_api::protocol::ImageEntry {
                vaddr: e.vaddr,
                size: e.size,
                kind: e.kind,
                data: e.slab.data.clone(),
                nested_members: e.nested_members.clone(),
                nested_parent: e.nested_parent,
            })
            .collect();
        Ok(mtgpu_api::protocol::ContextImage { label: label.to_string(), entries })
    }

    /// Restores an exported image into a context with an empty page table,
    /// preserving every virtual address. Fails with
    /// [`CudaError::InvalidValue`] if the context already has allocations,
    /// and with [`CudaError::SwapAllocation`] if the swap area cannot hold
    /// the image.
    pub fn import_image(
        &self,
        ctx: CtxId,
        image: mtgpu_api::protocol::ContextImage,
    ) -> CudaResult<()> {
        let mut st = self.state.lock();
        let table = st.tables.get(&ctx).ok_or(CudaError::InvalidDevicePointer)?;
        if !table.is_empty() {
            return Err(CudaError::InvalidValue);
        }
        st.swap.reserve(image.declared_bytes())?;
        // Future mallocs (of any context) must not collide with the
        // imported virtual range within this runtime.
        let max_end = image.entries.iter().map(|e| e.vaddr.0 + e.size).max().unwrap_or(VADDR_BASE);
        if st.next_vaddr < max_end {
            st.next_vaddr = (max_end + VALIGN - 1) & !(VALIGN - 1);
        }
        let cap = self.cfg.materialize_cap;
        let table = st.tables.get_mut(&ctx).expect("table vanished");
        for e in image.entries {
            let mut slab = SwapSlab::new(e.size, cap);
            slab.write(0, &e.data);
            table.insert(PageTableEntry {
                vaddr: e.vaddr,
                size: e.size,
                device_ptr: None,
                // Host-authoritative: upload before the next kernel use.
                flags: crate::memory::page_table::Flags {
                    allocated: false,
                    to_dev: true,
                    to_swap: false,
                },
                kind: e.kind,
                slab,
                nested_members: e.nested_members,
                nested_parent: e.nested_parent,
            });
        }
        Ok(())
    }

    /// Test/diagnostic hook: the flags of the entry at `vaddr`.
    pub fn flags_of(
        &self,
        ctx: CtxId,
        vaddr: DeviceAddr,
    ) -> Option<crate::memory::page_table::Flags> {
        let st = self.state.lock();
        let table = st.tables.get(&ctx)?;
        let (base, _) = table.resolve(vaddr)?;
        table.get(base).map(|e| e.flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::VGpuId;
    use mtgpu_gpusim::{DeviceId, Gpu, GpuSpec};
    use mtgpu_simtime::Clock;

    fn mm() -> MemoryManager {
        MemoryManager::new(MemoryConfig::default(), Arc::new(RuntimeMetrics::default()))
    }

    fn gpu_binding() -> Binding {
        let gpu = Gpu::new(GpuSpec::test_small(), Clock::with_scale(1e-7), 0);
        let gpu_ctx = gpu.create_context().unwrap();
        Binding { vgpu: VGpuId { device: DeviceId(0), index: 0 }, gpu, gpu_ctx }
    }

    const CTX: CtxId = CtxId(1);

    #[test]
    fn malloc_assigns_distinct_virtual_addresses() {
        let m = mm();
        m.register_ctx(CTX);
        let a = m.malloc(CTX, 100, AllocKind::Linear).unwrap();
        let b = m.malloc(CTX, 100, AllocKind::Linear).unwrap();
        assert_ne!(a, b);
        assert!(a.0 >= VADDR_BASE && b.0 >= VADDR_BASE);
        assert_eq!(m.pte_count(CTX), 2);
        assert_eq!(m.mem_usage(CTX), 200);
    }

    #[test]
    fn unknown_context_rejected() {
        let m = mm();
        assert_eq!(
            m.malloc(CtxId(99), 64, AllocKind::Linear),
            Err(CudaError::InvalidDevicePointer)
        );
    }

    #[test]
    fn materialize_uploads_once_and_translates() {
        let m = mm();
        m.register_ctx(CTX);
        let b = gpu_binding();
        let v = m.malloc(CTX, 1024, AllocKind::Linear).unwrap();
        let buf = HostBuf::from_slice(&[3u8; 1024]);
        m.copy_h2d(CTX, v, &buf, None).unwrap();
        assert_eq!(
            m.flags_of(CTX, v).unwrap(),
            crate::memory::page_table::Flags { allocated: false, to_dev: true, to_swap: false }
        );
        let closure = m.launch_closure(CTX, &[KernelArg::Ptr(v)]).unwrap();
        assert_eq!(m.materialize(CTX, &closure, &b).unwrap(), Materialize::Ready);
        assert_eq!(b.gpu.stats().snapshot().h2d_bytes, 1024);
        // Idempotent: a second materialize does nothing.
        assert_eq!(m.materialize(CTX, &closure, &b).unwrap(), Materialize::Ready);
        assert_eq!(b.gpu.stats().snapshot().h2d_bytes, 1024);
        // Translation yields a device pointer with offset arithmetic.
        let args = m.translate_args(CTX, &[KernelArg::Ptr(DeviceAddr(v.0 + 256))]).unwrap();
        let KernelArg::Ptr(dptr) = args[0] else { panic!("not a pointer") };
        assert_ne!(dptr.0 & 0xFFFF_0000_0000, VADDR_BASE & 0xFFFF_0000_0000);
        // The device accepts the translated interior pointer.
        assert!(b.gpu.memcpy_d2h(b.gpu_ctx, dptr, 16).is_ok());
    }

    #[test]
    fn intra_app_swap_evicts_non_working_set() {
        let m = mm();
        m.register_ctx(CTX);
        let b = gpu_binding();
        let avail = b.gpu.mem_available();
        let chunk = avail / 5 * 2;
        let x = m.malloc(CTX, chunk, AllocKind::Linear).unwrap();
        let y = m.malloc(CTX, chunk, AllocKind::Linear).unwrap();
        let z = m.malloc(CTX, chunk, AllocKind::Linear).unwrap();
        // x, y resident.
        let c1 = m.launch_closure(CTX, &[KernelArg::Ptr(x), KernelArg::Ptr(y)]).unwrap();
        assert_eq!(m.materialize(CTX, &c1, &b).unwrap(), Materialize::Ready);
        m.mark_launched(CTX, &c1);
        // y, z next: x must be evicted.
        let c2 = m.launch_closure(CTX, &[KernelArg::Ptr(y), KernelArg::Ptr(z)]).unwrap();
        assert_eq!(m.materialize(CTX, &c2, &b).unwrap(), Materialize::Ready);
        assert!(!m.flags_of(CTX, x).unwrap().allocated, "x should be swapped out");
        assert!(m.flags_of(CTX, y).unwrap().allocated);
        assert!(m.flags_of(CTX, z).unwrap().allocated);
    }

    #[test]
    fn materialize_reports_shortfall_when_working_set_too_big() {
        let cfg = MemoryConfig { intra_app_swap: true, ..MemoryConfig::default() };
        let m = MemoryManager::new(cfg, Arc::new(RuntimeMetrics::default()));
        m.register_ctx(CTX);
        let b = gpu_binding();
        let too_big = b.gpu.mem_available() + (1 << 20);
        let v = m.malloc(CTX, too_big, AllocKind::Linear).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(v)]).unwrap();
        match m.materialize(CTX, &c, &b).unwrap() {
            Materialize::NeedBytes(n) => assert!(n >= too_big),
            other => panic!("expected NeedBytes, got {other:?}"),
        }
    }

    #[test]
    fn swap_out_ctx_preserves_dirty_data() {
        let m = mm();
        m.register_ctx(CTX);
        let b = gpu_binding();
        let v = m.malloc(CTX, 512, AllocKind::Linear).unwrap();
        m.copy_h2d(CTX, v, &HostBuf::from_slice(&[7u8; 512]), None).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(v)]).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        m.mark_launched(CTX, &c); // dirty on device
        let freed = m.swap_out_ctx(CTX, &b, SwapReason::Unbind).unwrap();
        assert_eq!(freed, 512);
        assert_eq!(m.resident_bytes(CTX), 0);
        // Data must have been synchronized down before the free.
        let back = m.copy_d2h(CTX, v, 512, None).unwrap();
        assert_eq!(back.payload, vec![7u8; 512]);
    }

    #[test]
    fn checkpoint_clears_dirty_without_evicting() {
        let m = mm();
        m.register_ctx(CTX);
        let b = gpu_binding();
        let v = m.malloc(CTX, 256, AllocKind::Linear).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(v)]).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        m.mark_launched(CTX, &c);
        assert!(m.flags_of(CTX, v).unwrap().to_swap);
        m.checkpoint(CTX, &b).unwrap();
        let f = m.flags_of(CTX, v).unwrap();
        assert!(f.allocated && !f.to_swap && !f.to_dev, "T/F/F after checkpoint: {f:?}");
    }

    #[test]
    fn device_loss_recoverable_only_when_clean() {
        let m = mm();
        m.register_ctx(CTX);
        let b = gpu_binding();
        let v = m.malloc(CTX, 256, AllocKind::Linear).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(v)]).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        m.mark_launched(CTX, &c);
        // Dirty on device → lost.
        assert_eq!(m.on_device_lost(CTX), Recovery::LostDirtyData);
        // After the reset the entry is host-authoritative again.
        let f = m.flags_of(CTX, v).unwrap();
        assert!(!f.allocated && f.to_dev);
        // A clean context recovers.
        m.materialize(CTX, &c, &b).unwrap();
        m.mark_launched(CTX, &c);
        m.checkpoint(CTX, &b).unwrap();
        assert_eq!(m.on_device_lost(CTX), Recovery::Recovered);
    }

    #[test]
    fn nested_closure_is_transitive_and_deduplicated() {
        let m = mm();
        m.register_ctx(CTX);
        let a = m.malloc(CTX, 64, AllocKind::Linear).unwrap();
        let b1 = m.malloc(CTX, 64, AllocKind::Linear).unwrap();
        let b2 = m.malloc(CTX, 64, AllocKind::Linear).unwrap();
        let c = m.malloc(CTX, 64, AllocKind::Linear).unwrap();
        m.register_nested(CTX, a, vec![b1, b2]).unwrap();
        m.register_nested(CTX, b1, vec![c]).unwrap();
        let closure = m.launch_closure(CTX, &[KernelArg::Ptr(a), KernelArg::Ptr(b2)]).unwrap();
        assert_eq!(closure.len(), 4, "a, b1, b2, c exactly once: {closure:?}");
        for v in [a, b1, b2, c] {
            assert!(closure.contains(&v));
        }
    }

    #[test]
    fn copy_d2d_moves_data_between_entries() {
        let m = mm();
        m.register_ctx(CTX);
        let src = m.malloc(CTX, 128, AllocKind::Linear).unwrap();
        let dst = m.malloc(CTX, 128, AllocKind::Linear).unwrap();
        m.copy_h2d(CTX, src, &HostBuf::from_slice(&[9u8; 128]), None).unwrap();
        m.copy_d2d(CTX, dst, src, 128, None).unwrap();
        assert_eq!(m.copy_d2h(CTX, dst, 128, None).unwrap().payload, vec![9u8; 128]);
    }

    #[test]
    fn remove_ctx_frees_device_side() {
        let m = mm();
        m.register_ctx(CTX);
        let b = gpu_binding();
        let before = b.gpu.mem_available();
        let v = m.malloc(CTX, 4096, AllocKind::Linear).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(v)]).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        assert!(b.gpu.mem_available() < before);
        m.remove_ctx(CTX, Some(&b));
        assert_eq!(b.gpu.mem_available(), before);
        assert_eq!(m.swap_used(), 0);
    }

    #[test]
    fn eager_mode_writes_through_when_resident() {
        let cfg = MemoryConfig { defer_transfers: false, ..MemoryConfig::default() };
        let m = MemoryManager::new(cfg, Arc::new(RuntimeMetrics::default()));
        m.register_ctx(CTX);
        let b = gpu_binding();
        let v = m.malloc(CTX, 256, AllocKind::Linear).unwrap();
        let c = m.launch_closure(CTX, &[KernelArg::Ptr(v)]).unwrap();
        m.materialize(CTX, &c, &b).unwrap();
        let h2d_before = b.gpu.stats().snapshot().h2d_bytes;
        m.copy_h2d(CTX, v, &HostBuf::from_slice(&[1u8; 256]), Some(&b)).unwrap();
        assert!(
            b.gpu.stats().snapshot().h2d_bytes > h2d_before,
            "eager mode must write through to the resident copy"
        );
        let f = m.flags_of(CTX, v).unwrap();
        assert!(f.allocated && !f.to_dev);
    }
}
