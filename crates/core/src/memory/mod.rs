//! Virtual memory for GPUs: page table, swap area, memory manager (§4.5).

pub mod eviction;
pub mod manager;
pub mod page_table;
pub mod swap;
pub mod transfer;

pub use eviction::{CtxCandidate, EntryCandidate, EvictionPolicyKind, TouchStamp};
pub use manager::{
    Materialize, MemoryConfig, MemoryManager, MigrationEntry, PendingWave, PrefetchPlan, Recovery,
    SwapOutcome, SwapReason,
};
pub use page_table::{Flags, PageTable, PageTableEntry, SwapSlab};
pub use swap::SwapArea;
// The allocation-kind tag travels with the wire protocol; re-exported so
// tooling that drives the manager (mtcheck scenarios) needs no api dep.
pub use mtgpu_api::protocol::AllocKind;
pub use transfer::{PlanShape, TransferOp, TransferOutcome};
