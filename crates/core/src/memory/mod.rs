//! Virtual memory for GPUs: page table, swap area, memory manager (§4.5).

pub mod manager;
pub mod page_table;
pub mod swap;

pub use manager::{Materialize, MemoryConfig, MemoryManager, Recovery, SwapReason};
pub use page_table::{Flags, PageTable, PageTableEntry, SwapSlab};
pub use swap::SwapArea;
