//! Tenant leases and admission control (ROADMAP item 2).
//!
//! The paper's runtime multiplexes one node's GPUs among many applications,
//! and PR 5's multiplexed transport lets thousands of clients reach it — but
//! nothing bounded what any one of them could take. This module is the
//! policy layer: every tenant holds a [`GpuLease`] fixing its device-memory
//! quota, context cap, lifetime and priority, and the [`LeaseBook`] is the
//! admission controller the service layer consults before any allocation or
//! context adoption touches runtime state.
//!
//! Identity model: a context starts life as its own *anonymous* tenant
//! under the default lease; `cudaSetApplication` (§4.8) re-keys it onto the
//! application's tenant, which is where per-application quotas and context
//! caps bite. Charges move with the context.
//!
//! Determinism: all state lives in `BTreeMap`s under one ranked lock, TTL
//! expiry reads only the runtime's [`Clock`] (never the wall clock), and
//! every verdict is a pure function of (lease, charges, virtual now) — so
//! policy decisions replay bit-for-bit under the seeded harness.

use crate::ctx::CtxId;
use mtgpu_api::{CudaError, CudaResult};
use mtgpu_simtime::{lock_rank, RankedMutex, Shadow, SimDuration, SimInstant};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// One tenant's resource lease (per the Guardian/MTVGPU sharing model):
/// how much device memory it may hold, how many contexts it may run, how
/// long the lease lives, and how important its work is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuLease {
    /// Device-memory quota in MiB (declared allocation sizes). `0` means
    /// unlimited.
    pub mem_mb: u64,
    /// Concurrent contexts the tenant may hold. `0` means unlimited.
    pub max_contexts: u32,
    /// Lease lifetime in seconds of *virtual* time from the first grant.
    /// `0` means the lease never expires.
    pub ttl_s: u64,
    /// Scheduling priority: higher values may preempt lower ones under
    /// memory pressure.
    pub priority: u8,
}

impl GpuLease {
    /// The permissive default: unlimited memory and contexts, no expiry,
    /// mid-scale priority. Attaching this to unconfigured tenants keeps
    /// the policy layer invisible until an operator opts a tenant in.
    pub fn unlimited() -> Self {
        GpuLease { mem_mb: 0, max_contexts: 0, ttl_s: 0, priority: 100 }
    }

    /// Builder-style priority override.
    #[must_use]
    pub fn with_priority(mut self, p: u8) -> Self {
        self.priority = p;
        self
    }

    /// The memory quota in bytes, `u64::MAX` when unlimited.
    pub fn mem_bytes(&self) -> u64 {
        if self.mem_mb == 0 {
            u64::MAX
        } else {
            self.mem_mb << 20
        }
    }

    /// The TTL as a virtual duration, `None` when the lease never expires.
    pub fn ttl(&self) -> Option<SimDuration> {
        (self.ttl_s > 0).then(|| SimDuration::from_secs(self.ttl_s))
    }
}

impl Default for GpuLease {
    fn default() -> Self {
        GpuLease::unlimited()
    }
}

/// Node-wide tenant-policy configuration ([`crate::RuntimeConfig`] carries
/// it as `Option`: `None` disables the policy layer entirely).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantPolicyConfig {
    /// Lease attached to tenants with no explicit entry (including every
    /// anonymous per-context tenant).
    pub default_lease: GpuLease,
    /// Per-application leases, keyed by the `cudaSetApplication` id.
    /// Kept as a sorted list (not a map) so the wire form and iteration
    /// order are canonical.
    pub tenant_leases: Vec<(u64, GpuLease)>,
    /// Node-wide cap on the sum of all tenants' charged bytes; `None`
    /// disables the global backstop.
    pub global_mem_bytes: Option<u64>,
    /// How many times an over-quota allocation is retried (queued
    /// admission) before the rejection is returned. Each retry backs off
    /// through the runtime clock, so queued admission stays replayable.
    pub admission_retries: u32,
    /// Real-time backoff between admission retries (virtual clocks advance
    /// by the same nominal duration instead of blocking).
    pub admission_backoff: Duration,
}

impl Default for TenantPolicyConfig {
    fn default() -> Self {
        TenantPolicyConfig {
            default_lease: GpuLease::unlimited(),
            tenant_leases: Vec::new(),
            global_mem_bytes: None,
            admission_retries: 0,
            admission_backoff: Duration::from_millis(2),
        }
    }
}

impl TenantPolicyConfig {
    /// Builder-style default-lease override.
    #[must_use]
    pub fn with_default_lease(mut self, lease: GpuLease) -> Self {
        self.default_lease = lease;
        self
    }

    /// Builder-style per-application lease entry (kept sorted by id).
    #[must_use]
    pub fn with_tenant_lease(mut self, app_id: u64, lease: GpuLease) -> Self {
        self.tenant_leases.retain(|(id, _)| *id != app_id);
        self.tenant_leases.push((app_id, lease));
        self.tenant_leases.sort_by_key(|(id, _)| *id);
        self
    }

    /// Builder-style global memory backstop.
    #[must_use]
    pub fn with_global_mem_bytes(mut self, cap: u64) -> Self {
        self.global_mem_bytes = Some(cap);
        self
    }

    /// Builder-style queued-admission depth.
    #[must_use]
    pub fn with_admission_retries(mut self, n: u32) -> Self {
        self.admission_retries = n;
        self
    }

    /// The lease configured for `app_id`, or the default.
    pub fn lease_for(&self, app_id: u64) -> GpuLease {
        self.tenant_leases
            .iter()
            .find(|(id, _)| *id == app_id)
            .map(|(_, l)| *l)
            .unwrap_or(self.default_lease)
    }
}

/// A tenant identity: an application (via `cudaSetApplication`) or a lone
/// context that never declared one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TenantKey {
    /// An application id shared by all of the application's contexts.
    App(u64),
    /// A context that never joined an application: its own tenant.
    Anon(u64),
}

#[derive(Debug, Clone)]
struct TenantState {
    lease: GpuLease,
    /// Virtual instant the lease was granted (tenant first seen). The TTL
    /// counts from here; context churn does not reset it.
    granted_at: SimInstant,
    /// TTL elapsed: the tenant is condemned, awaiting (or past) reaping.
    expired: bool,
    /// Charged bytes per member context.
    charges: BTreeMap<CtxId, u64>,
}

impl TenantState {
    fn used(&self) -> u64 {
        self.charges.values().sum()
    }
}

#[derive(Debug)]
struct Book {
    tenants: BTreeMap<TenantKey, TenantState>,
    by_ctx: BTreeMap<CtxId, TenantKey>,
    /// Cluster-wide charged bytes. Shadowed so mtcheck's happens-before
    /// detector audits every read/write against the lease-book lock.
    global_used: Shadow<u64>,
}

impl Default for Book {
    fn default() -> Self {
        Book {
            tenants: BTreeMap::new(),
            by_ctx: BTreeMap::new(),
            global_used: Shadow::new("policy.lease.global_used", 0),
        }
    }
}

/// A snapshot of one tenant's standing, for tests and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantUsage {
    pub used_bytes: u64,
    pub contexts: usize,
    pub expired: bool,
    pub priority: u8,
}

/// The admission controller: every tenant's lease, charges and expiry
/// state, under one ranked lock. All mutating entry points are no-ops (or
/// unconditional grants) when the policy layer is disabled.
pub struct LeaseBook {
    cfg: Option<TenantPolicyConfig>,
    state: RankedMutex<Book>,
}

impl LeaseBook {
    /// A lease book; `None` disables the policy layer.
    pub fn new(cfg: Option<TenantPolicyConfig>) -> Self {
        LeaseBook { cfg, state: RankedMutex::new(lock_rank::TENANT_POLICY, Book::default()) }
    }

    /// Whether the policy layer is active.
    pub fn enabled(&self) -> bool {
        self.cfg.is_some()
    }

    /// The active configuration, if any.
    pub fn config(&self) -> Option<&TenantPolicyConfig> {
        self.cfg.as_ref()
    }

    /// Registers a fresh context as its own anonymous tenant under the
    /// default lease, granted at `now`.
    pub fn register_ctx(&self, ctx: CtxId, now: SimInstant) {
        let Some(cfg) = &self.cfg else { return };
        let mut book = self.state.lock();
        let key = TenantKey::Anon(ctx.0);
        book.by_ctx.insert(ctx, key);
        book.tenants.entry(key).or_insert_with(|| TenantState {
            lease: cfg.default_lease,
            granted_at: now,
            expired: false,
            charges: BTreeMap::new(),
        });
        if let Some(t) = book.tenants.get_mut(&key) {
            t.charges.entry(ctx).or_insert(0);
        }
    }

    /// Moves `ctx` (and its charges) onto application `app_id`'s tenant,
    /// creating that tenant — lease granted at `now` — on first sight.
    /// Rejects when the target lease is expired, over its context cap, or
    /// cannot absorb the context's already-charged bytes.
    pub fn adopt(&self, ctx: CtxId, app_id: u64, now: SimInstant) -> CudaResult<()> {
        let Some(cfg) = &self.cfg else { return Ok(()) };
        let mut book = self.state.lock();
        let from = match book.by_ctx.get(&ctx) {
            Some(k) => *k,
            None => return Err(CudaError::LeaseExpired),
        };
        let to = TenantKey::App(app_id);
        if from == to {
            return Ok(());
        }
        let moved = book.tenants.get(&from).and_then(|t| t.charges.get(&ctx)).copied().unwrap_or(0);
        book.tenants.entry(to).or_insert_with(|| TenantState {
            lease: cfg.lease_for(app_id),
            granted_at: now,
            expired: false,
            charges: BTreeMap::new(),
        });
        {
            let target = book.tenants.get(&to).expect("target tenant just ensured");
            if target.expired {
                return Err(CudaError::LeaseExpired);
            }
            let cap = target.lease.max_contexts;
            if cap > 0 && target.charges.len() as u32 >= cap {
                return Err(CudaError::QuotaExceeded(format!(
                    "application {app_id} is at its {cap}-context cap"
                )));
            }
            if target.used() + moved > target.lease.mem_bytes() {
                return Err(CudaError::QuotaExceeded(format!(
                    "application {app_id} cannot absorb {moved} charged bytes"
                )));
            }
        }
        if let Some(old) = book.tenants.get_mut(&from) {
            old.charges.remove(&ctx);
        }
        if matches!(from, TenantKey::Anon(_))
            && book.tenants.get(&from).is_some_and(|t| t.charges.is_empty())
        {
            book.tenants.remove(&from);
        }
        book.tenants.get_mut(&to).expect("target tenant exists").charges.insert(ctx, moved);
        book.by_ctx.insert(ctx, to);
        Ok(())
    }

    /// Admits an allocation of `bytes` for `ctx`: the tenant must be live
    /// and stay inside both its own `mem_mb` quota and the global cap. On
    /// success the bytes are charged; the caller must [`Self::uncharge`]
    /// if the underlying allocation then fails.
    pub fn try_charge(&self, ctx: CtxId, bytes: u64) -> CudaResult<()> {
        let Some(cfg) = &self.cfg else { return Ok(()) };
        let mut book = self.state.lock();
        let key = match book.by_ctx.get(&ctx) {
            Some(k) => *k,
            None => return Err(CudaError::LeaseExpired),
        };
        let global_used = *book.global_used;
        let tenant = book.tenants.get_mut(&key).expect("tenant of registered ctx");
        if tenant.expired {
            return Err(CudaError::LeaseExpired);
        }
        let used = tenant.used();
        if used.saturating_add(bytes) > tenant.lease.mem_bytes() {
            return Err(CudaError::QuotaExceeded(format!(
                "allocation of {bytes} bytes exceeds the tenant's {} MiB lease ({used} in use)",
                tenant.lease.mem_mb
            )));
        }
        if let Some(cap) = cfg.global_mem_bytes {
            if global_used.saturating_add(bytes) > cap {
                return Err(CudaError::QuotaExceeded(format!(
                    "allocation of {bytes} bytes exceeds the node's {cap}-byte admission cap \
                     ({global_used} in use)"
                )));
            }
        }
        *tenant.charges.entry(ctx).or_insert(0) += bytes;
        *book.global_used += bytes;
        Ok(())
    }

    /// Returns `bytes` of charge (free, failed allocation rollback).
    pub fn uncharge(&self, ctx: CtxId, bytes: u64) {
        if self.cfg.is_none() {
            return;
        }
        let mut book = self.state.lock();
        let Some(key) = book.by_ctx.get(&ctx).copied() else { return };
        if let Some(c) = book.tenants.get_mut(&key).and_then(|t| t.charges.get_mut(&ctx)) {
            let credited = bytes.min(*c);
            *c -= credited;
            *book.global_used = book.global_used.saturating_sub(credited);
        }
    }

    /// Whether `ctx`'s tenant may still submit work (lease not expired).
    pub fn check_active(&self, ctx: CtxId) -> CudaResult<()> {
        if self.cfg.is_none() {
            return Ok(());
        }
        let book = self.state.lock();
        match book.by_ctx.get(&ctx).and_then(|k| book.tenants.get(k)) {
            Some(t) if t.expired => Err(CudaError::LeaseExpired),
            Some(_) => Ok(()),
            None => Err(CudaError::LeaseExpired),
        }
    }

    /// The lease priority of `ctx`'s tenant (the default lease's priority
    /// when the policy layer is off or the context is unknown).
    pub fn priority_of(&self, ctx: CtxId) -> u8 {
        let Some(cfg) = &self.cfg else { return GpuLease::unlimited().priority };
        let book = self.state.lock();
        book.by_ctx
            .get(&ctx)
            .and_then(|k| book.tenants.get(k))
            .map(|t| t.lease.priority)
            .unwrap_or(cfg.default_lease.priority)
    }

    /// Removes `ctx` from its tenant, returning exactly the bytes that
    /// were charged to it. Idempotent. Empty anonymous tenants vanish;
    /// application tenants persist (their TTL keeps counting).
    pub fn release_ctx(&self, ctx: CtxId) -> u64 {
        if self.cfg.is_none() {
            return 0;
        }
        let mut book = self.state.lock();
        let Some(key) = book.by_ctx.remove(&ctx) else { return 0 };
        let freed = book.tenants.get_mut(&key).and_then(|t| t.charges.remove(&ctx)).unwrap_or(0);
        *book.global_used = book.global_used.saturating_sub(freed);
        if matches!(key, TenantKey::Anon(_))
            && book.tenants.get(&key).is_some_and(|t| t.charges.is_empty())
        {
            book.tenants.remove(&key);
        }
        freed
    }

    /// Marks every tenant whose TTL elapsed by `now` as expired and
    /// returns `(newly expired tenants, their member contexts)` — the reap
    /// list the runtime's monitor acts on. Deterministic: tenants and
    /// contexts come out in key order.
    pub fn tick(&self, now: SimInstant) -> (u64, Vec<CtxId>) {
        if self.cfg.is_none() {
            return (0, Vec::new());
        }
        let mut book = self.state.lock();
        let mut expired_tenants = 0;
        let mut doomed = Vec::new();
        for t in book.tenants.values_mut() {
            if t.expired {
                continue;
            }
            if let Some(ttl) = t.lease.ttl() {
                if now.duration_since(t.granted_at) >= ttl {
                    t.expired = true;
                    expired_tenants += 1;
                    doomed.extend(t.charges.keys().copied());
                }
            }
        }
        doomed.sort_unstable();
        (expired_tenants, doomed)
    }

    /// One tenant's standing, by application id.
    pub fn app_usage(&self, app_id: u64) -> Option<TenantUsage> {
        self.usage(TenantKey::App(app_id))
    }

    /// One tenant's standing.
    pub fn usage(&self, key: TenantKey) -> Option<TenantUsage> {
        let book = self.state.lock();
        book.tenants.get(&key).map(|t| TenantUsage {
            used_bytes: t.used(),
            contexts: t.charges.len(),
            expired: t.expired,
            priority: t.lease.priority,
        })
    }

    /// Sum of all tenants' charged bytes.
    pub fn global_used(&self) -> u64 {
        if self.cfg.is_none() {
            return 0;
        }
        *self.state.lock().global_used
    }
}

impl std::fmt::Debug for LeaseBook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaseBook").field("enabled", &self.enabled()).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtgpu_simtime::Clock;

    const MB: u64 = 1 << 20;

    fn book(cfg: TenantPolicyConfig) -> LeaseBook {
        LeaseBook::new(Some(cfg))
    }

    fn now(clock: &Clock) -> SimInstant {
        clock.now()
    }

    #[test]
    fn disabled_book_admits_everything() {
        let clock = Clock::virtual_clock();
        let b = LeaseBook::new(None);
        b.register_ctx(CtxId(1), now(&clock));
        assert!(b.try_charge(CtxId(1), u64::MAX).is_ok());
        assert!(b.adopt(CtxId(1), 7, now(&clock)).is_ok());
        assert_eq!(b.release_ctx(CtxId(1)), 0);
        assert_eq!(b.tick(now(&clock)), (0, Vec::new()));
    }

    #[test]
    fn mem_quota_is_enforced_and_credits_restore_headroom() {
        let clock = Clock::virtual_clock();
        let b = book(TenantPolicyConfig::default().with_default_lease(GpuLease {
            mem_mb: 4,
            max_contexts: 0,
            ttl_s: 0,
            priority: 50,
        }));
        b.register_ctx(CtxId(1), now(&clock));
        b.try_charge(CtxId(1), 3 * MB).unwrap();
        assert!(matches!(b.try_charge(CtxId(1), 2 * MB), Err(CudaError::QuotaExceeded(_))));
        b.uncharge(CtxId(1), 2 * MB);
        b.try_charge(CtxId(1), 2 * MB).unwrap();
        assert_eq!(b.release_ctx(CtxId(1)), 3 * MB);
        assert_eq!(b.global_used(), 0);
    }

    #[test]
    fn global_cap_bounds_the_sum_of_tenants() {
        let clock = Clock::virtual_clock();
        let b = book(TenantPolicyConfig::default().with_global_mem_bytes(5 * MB));
        b.register_ctx(CtxId(1), now(&clock));
        b.register_ctx(CtxId(2), now(&clock));
        b.try_charge(CtxId(1), 3 * MB).unwrap();
        assert!(matches!(b.try_charge(CtxId(2), 3 * MB), Err(CudaError::QuotaExceeded(_))));
        b.try_charge(CtxId(2), 2 * MB).unwrap();
        assert_eq!(b.global_used(), 5 * MB);
    }

    #[test]
    fn context_cap_bites_on_adoption() {
        let clock = Clock::virtual_clock();
        let b =
            book(TenantPolicyConfig::default().with_tenant_lease(
                9,
                GpuLease { mem_mb: 0, max_contexts: 2, ttl_s: 0, priority: 10 },
            ));
        for i in 1..=3 {
            b.register_ctx(CtxId(i), now(&clock));
        }
        b.adopt(CtxId(1), 9, now(&clock)).unwrap();
        b.adopt(CtxId(2), 9, now(&clock)).unwrap();
        assert!(matches!(b.adopt(CtxId(3), 9, now(&clock)), Err(CudaError::QuotaExceeded(_))));
        // Releasing a member frees a slot.
        assert_eq!(b.release_ctx(CtxId(1)), 0);
        b.adopt(CtxId(3), 9, now(&clock)).unwrap();
        assert_eq!(b.app_usage(9).unwrap().contexts, 2);
    }

    #[test]
    fn adoption_moves_charges_and_enforces_target_quota() {
        let clock = Clock::virtual_clock();
        let b =
            book(TenantPolicyConfig::default().with_tenant_lease(
                4,
                GpuLease { mem_mb: 2, max_contexts: 0, ttl_s: 0, priority: 10 },
            ));
        b.register_ctx(CtxId(1), now(&clock));
        b.try_charge(CtxId(1), 3 * MB).unwrap();
        // 3 MiB cannot move into a 2 MiB lease.
        assert!(matches!(b.adopt(CtxId(1), 4, now(&clock)), Err(CudaError::QuotaExceeded(_))));
        b.uncharge(CtxId(1), 2 * MB);
        b.adopt(CtxId(1), 4, now(&clock)).unwrap();
        assert_eq!(b.app_usage(4).unwrap().used_bytes, MB);
        // Repeated SetApplication with the same id is a no-op.
        b.adopt(CtxId(1), 4, now(&clock)).unwrap();
        assert_eq!(b.global_used(), MB);
    }

    #[test]
    fn ttl_expiry_condemns_the_tenant_deterministically() {
        let clock = Clock::virtual_clock();
        let b =
            book(TenantPolicyConfig::default().with_tenant_lease(
                2,
                GpuLease { mem_mb: 0, max_contexts: 0, ttl_s: 5, priority: 10 },
            ));
        b.register_ctx(CtxId(1), now(&clock));
        b.adopt(CtxId(1), 2, now(&clock)).unwrap();
        b.try_charge(CtxId(1), MB).unwrap();
        clock.advance(SimDuration::from_secs(4));
        assert_eq!(b.tick(now(&clock)), (0, Vec::new()));
        clock.advance(SimDuration::from_secs(1));
        assert_eq!(b.tick(now(&clock)), (1, vec![CtxId(1)]));
        // Expired tenants refuse further work with the typed error...
        assert_eq!(b.try_charge(CtxId(1), 1), Err(CudaError::LeaseExpired));
        assert_eq!(b.check_active(CtxId(1)), Err(CudaError::LeaseExpired));
        // ...and a second tick reports nothing new (reap once).
        assert_eq!(b.tick(now(&clock)), (0, Vec::new()));
        // Reaping frees exactly the charged bytes.
        assert_eq!(b.release_ctx(CtxId(1)), MB);
        assert_eq!(b.global_used(), 0);
    }

    #[test]
    fn priorities_come_from_the_lease() {
        let clock = Clock::virtual_clock();
        let b = book(
            TenantPolicyConfig::default()
                .with_default_lease(GpuLease::unlimited().with_priority(10))
                .with_tenant_lease(1, GpuLease::unlimited().with_priority(200)),
        );
        b.register_ctx(CtxId(1), now(&clock));
        b.register_ctx(CtxId(2), now(&clock));
        b.adopt(CtxId(1), 1, now(&clock)).unwrap();
        assert_eq!(b.priority_of(CtxId(1)), 200);
        assert_eq!(b.priority_of(CtxId(2)), 10);
    }
}
