//! The multiplex gateway: the runtime's [`MuxService`] implementation.
//!
//! Where the legacy path dedicates one handler thread to every connection,
//! the gateway serves *channels* — (connection, chan) pairs, each backed by
//! one [`AppContext`] — with a fixed worker pool. The reactor thread calls
//! [`MuxGateway::on_request`] for every decoded frame; the gateway enqueues
//! the call on its channel's FIFO and marks the channel runnable. Workers
//! pull runnable channels off a global work queue, execute exactly one call
//! under the context's service lock, and complete the reply through the
//! reactor's [`ReplySink`].
//!
//! Two invariants keep this sound:
//!
//! 1. **Per-channel ordering.** A channel is on the work queue at most once
//!    (`scheduled` flag, mutated only under the channel's queue lock), and a
//!    worker re-enqueues it only after finishing the head call — so calls of
//!    one channel execute strictly in arrival order, exactly like a legacy
//!    connection, while different channels proceed in parallel.
//! 2. **No pool-wide starvation.** Launches use the *bounded* dispatch path
//!    ([`service::try_handle_call`]). With unbounded waits, `mux_workers`
//!    launches waiting on fully-bound vGPUs would deadlock the pool — the
//!    bound contexts' own calls (the ones that would eventually release
//!    those vGPUs) could never run. A launch that cannot bind immediately
//!    parks its channel on the gateway's *bind-waiters* list instead of
//!    holding a worker: every completed call kicks one waiter back onto the
//!    work queue for a cheap retry (completions are the only events that
//!    release vGPUs, so a kick rides every release), and a worker with an
//!    otherwise-empty queue gives one waiter a bounded `mux_bind_slice`
//!    park inside the dispatcher's wait queue, where it gets the targeted
//!    wakeup on release. Either way the pool never wedges and never burns
//!    a full slice per retry under load.
//!
//! Teardown (Exit or disconnect) removes the channel from the map first;
//! whichever path wins the `BTreeMap::remove` does the context teardown, so
//! it happens exactly once even when an Exit races a connection drop.

use crate::ctx::AppContext;
use crate::metrics::RuntimeMetrics;
use crate::runtime::NodeRuntime;
use crate::service::{self, CallOutcome};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use mtgpu_api::protocol::{CudaCall, CudaReply};
use mtgpu_api::transport::{ConnId, MuxService, ReplySink};
use mtgpu_api::CudaError;
use mtgpu_simtime::{lock_rank, RankedMutex};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How many workers may simultaneously lend themselves to a parked
/// bind-waiter (a bounded `mux_bind_slice` wait inside the dispatcher).
/// Capped so a burst of fresh requests always finds free workers even
/// while many channels queue for vGPUs.
const MAX_IDLE_PARKERS: usize = 2;

/// A channel's key: (connection, channel-on-that-connection).
type ChanKey = (ConnId, u64);

/// Pending calls of one channel.
struct ChanQueue {
    /// FIFO of (request id, call) not yet executed.
    calls: VecDeque<(u64, CudaCall)>,
    /// Whether the channel currently sits on the work queue (at most once).
    scheduled: bool,
}

/// One multiplexed channel: an application context plus its call FIFO.
struct ChannelState {
    ctx: Arc<AppContext>,
    queue: RankedMutex<ChanQueue>,
}

enum WorkItem {
    /// A channel became runnable: execute its head call.
    Chan(ChanKey),
    /// Channels removed on disconnect, awaiting context teardown.
    Teardown(Vec<Arc<ChannelState>>),
    /// Worker shutdown.
    Stop,
}

/// The runtime's service endpoint for multiplexed connections.
pub struct MuxGateway {
    rt: Arc<NodeRuntime>,
    sink: ReplySink,
    /// channel key → state. BTreeMap so disconnects can range-scan a
    /// connection's channels and iteration order is deterministic.
    channels: RankedMutex<BTreeMap<ChanKey, Arc<ChannelState>>>,
    workq: Sender<WorkItem>,
    bind_slice: Duration,
    /// Channels whose head launch found no free vGPU. They hold no worker
    /// while parked; releases and idle workers pull them back out.
    bind_waiters: RankedMutex<VecDeque<ChanKey>>,
    /// Workers currently parked in a bounded dispatcher wait on behalf of
    /// a bind-waiter (≤ [`MAX_IDLE_PARKERS`]).
    idle_parkers: AtomicUsize,
}

/// Owns the gateway's worker pool; joining it drains outstanding teardowns.
pub struct MuxGatewayHandle {
    gateway: Arc<MuxGateway>,
    workers: Vec<JoinHandle<()>>,
}

impl MuxGateway {
    /// Spawns the worker pool and returns the service plus its handle.
    ///
    /// `sink` must be the reply sink of the reactor that will drive this
    /// gateway (create both with `ReplySink::channel()`).
    pub fn start(rt: Arc<NodeRuntime>, sink: ReplySink) -> (Arc<MuxGateway>, MuxGatewayHandle) {
        let workers = match rt.config().mux_workers {
            // Auto: one worker per vGPU keeps every slot servable, plus
            // headroom so unbound/teardown work never waits on launches.
            0 => rt.bindings().total_vgpus() + 4,
            n => n,
        };
        let bind_slice = rt.config().mux_bind_slice;
        let (tx, rx) = unbounded();
        let gateway = Arc::new(MuxGateway {
            rt,
            sink,
            channels: RankedMutex::new(lock_rank::CONN_CHANNELS, BTreeMap::new()),
            workq: tx,
            bind_slice,
            bind_waiters: RankedMutex::new(lock_rank::MUX_WAITERS, VecDeque::new()),
            idle_parkers: AtomicUsize::new(0),
        });
        let mut pool = Vec::with_capacity(workers);
        for i in 0..workers {
            let g = Arc::clone(&gateway);
            let rx: Receiver<WorkItem> = rx.clone();
            pool.push(
                std::thread::Builder::new()
                    .name(format!("mux-worker-{i}"))
                    .spawn(move || worker_loop(&g, &rx))
                    .expect("spawn mux worker"),
            );
        }
        (Arc::clone(&gateway), MuxGatewayHandle { gateway, workers: pool })
    }

    /// Live channels (diagnostic).
    pub fn channel_count(&self) -> usize {
        self.channels.lock().len()
    }

    /// Removes a channel from the map; the winner owns teardown.
    fn take_channel(&self, key: ChanKey) -> Option<Arc<ChannelState>> {
        self.channels.lock().remove(&key)
    }

    /// Parks a channel whose launch could not bind.
    fn park_waiter(&self, key: ChanKey) {
        self.bind_waiters.lock().push_back(key);
    }

    /// Takes the oldest parked channel, if any.
    fn pop_waiter(&self) -> Option<ChanKey> {
        self.bind_waiters.lock().pop_front()
    }

    /// Moves one parked channel back onto the work queue. Called whenever
    /// a call or teardown released a vGPU (observed as a bump of the
    /// `unbindings` counter), so every release is chased by a retry.
    fn kick_waiter(&self) {
        if let Some(key) = self.pop_waiter() {
            let _ = self.workq.send(WorkItem::Chan(key));
        }
    }

    /// Replies `Disconnected` to everything still queued on a dead channel.
    fn drain_dead(&self, conn: ConnId, state: &ChannelState) {
        let drained: Vec<u64> = {
            let mut q = state.queue.lock();
            q.calls.drain(..).map(|(id, _)| id).collect()
        };
        for id in drained {
            self.sink.reply(conn, id, Err(CudaError::Disconnected));
        }
    }
}

impl MuxService for MuxGateway {
    fn on_request(&self, conn: ConnId, chan: u64, id: u64, call: CudaCall) {
        // Runs on the reactor thread: enqueue and get out. Context creation
        // (first call on a channel) is the only heavier step and is a
        // bounded map-insert + registry insert.
        let key = (conn, chan);
        let state = {
            let mut channels = self.channels.lock();
            match channels.get(&key) {
                Some(s) => Arc::clone(s),
                None => {
                    let ctx = self.rt.new_context(format!("mux-{conn}-{chan}"));
                    RuntimeMetrics::bump(&self.rt.metrics_ref().mux_channels);
                    let state = Arc::new(ChannelState {
                        ctx,
                        queue: RankedMutex::new(
                            lock_rank::CHAN_QUEUE,
                            ChanQueue { calls: VecDeque::new(), scheduled: false },
                        ),
                    });
                    channels.insert(key, Arc::clone(&state));
                    state
                }
            }
        };
        RuntimeMetrics::bump(&self.rt.metrics_ref().mux_requests);
        let schedule = {
            let mut q = state.queue.lock();
            q.calls.push_back((id, call));
            let was = q.scheduled;
            q.scheduled = true;
            !was
        };
        if schedule {
            let _ = self.workq.send(WorkItem::Chan(key));
        }
    }

    fn on_disconnect(&self, conn: ConnId) {
        // Reactor thread: detach the connection's channels quickly and hand
        // the (potentially blocking) context teardown to the worker pool.
        let removed: Vec<Arc<ChannelState>> = {
            let mut channels = self.channels.lock();
            let keys: Vec<ChanKey> =
                channels.range((conn, 0)..=(conn, u64::MAX)).map(|(k, _)| *k).collect();
            keys.into_iter().filter_map(|k| channels.remove(&k)).collect()
        };
        if !removed.is_empty() {
            let _ = self.workq.send(WorkItem::Teardown(removed));
        }
    }
}

impl MuxGatewayHandle {
    /// Stops the worker pool after it drains all queued work (FIFO: the
    /// stop markers enqueue behind any outstanding teardowns).
    pub fn shutdown(self) {
        for _ in 0..self.workers.len() {
            let _ = self.gateway.workq.send(WorkItem::Stop);
        }
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(g: &MuxGateway, rx: &Receiver<WorkItem>) {
    loop {
        // Runnable channels first; bind-waiters only soak up idle workers.
        let item = match rx.try_recv() {
            Ok(item) => item,
            Err(TryRecvError::Empty) => {
                // Nothing else to run: give one waiter a *bounded* park
                // inside the dispatcher's wait queue, where a release
                // reaches it by targeted wakeup. Capped so most workers
                // stay parked on the work queue, ready for fresh calls.
                if g.idle_parkers.load(Ordering::Relaxed) < MAX_IDLE_PARKERS {
                    if let Some(key) = g.pop_waiter() {
                        g.idle_parkers.fetch_add(1, Ordering::Relaxed);
                        serve_channel(g, key, g.bind_slice);
                        g.idle_parkers.fetch_sub(1, Ordering::Relaxed);
                        continue;
                    }
                }
                match rx.recv() {
                    Ok(item) => item,
                    Err(_) => break,
                }
            }
            Err(TryRecvError::Disconnected) => break,
        };
        match item {
            WorkItem::Stop => break,
            WorkItem::Teardown(states) => {
                for state in states {
                    // The connection is gone: queued calls get no replies
                    // (the reactor drops them anyway) — just release what
                    // the context holds. Waits on the service lock until
                    // any in-flight call finishes.
                    service::teardown(&g.rt, &state.ctx);
                }
                // Teardown released vGPUs: let a parked launch at them.
                g.kick_waiter();
            }
            // Queue-driven attempts never park: a launch that cannot bind
            // right now goes to the waiters list, not a worker slice.
            WorkItem::Chan(key) => serve_channel(g, key, Duration::ZERO),
        }
    }
}

/// Executes the head call of a runnable channel, then reschedules it if
/// more work is queued. `bind_slice` bounds how long a launch may park in
/// the dispatcher's wait queue before the channel is handed back.
fn serve_channel(g: &MuxGateway, key: ChanKey, bind_slice: Duration) {
    let Some(state) = ({
        let channels = g.channels.lock();
        channels.get(&key).map(Arc::clone)
    }) else {
        // Torn down between scheduling and service: nothing to do.
        return;
    };
    let Some((id, call)) = ({
        let mut q = state.queue.lock();
        let head = q.calls.pop_front();
        if head.is_none() {
            q.scheduled = false;
        }
        head
    }) else {
        return;
    };
    // Launches may would-block; keep a copy to requeue. Launch specs carry
    // no bulk payloads, so the clone is cheap (bulk data travels in
    // MemcpyH2D, which never blocks on binding).
    let retry = if call.requires_binding() { Some(call.clone()) } else { None };
    let is_exit = matches!(call, CudaCall::Exit);
    // Snapshot the release counter: if this call frees any vGPU (unbind,
    // victim swap-out, exit teardown), one parked launch gets a retry.
    let unbound_before = g.rt.metrics_ref().unbindings.load(Ordering::Relaxed);
    let outcome = {
        let _guard = state.ctx.service_lock();
        service::try_handle_call(&g.rt, &state.ctx, call, bind_slice)
    };
    match outcome {
        CallOutcome::Reply(reply) => {
            complete(g, key, id, reply, is_exit, &state);
        }
        CallOutcome::WouldBlock => {
            RuntimeMetrics::bump(&g.rt.metrics_ref().mux_retries);
            if g.rt.is_shutdown() {
                complete(g, key, id, Err(CudaError::Disconnected), false, &state);
                return;
            }
            // Put the call back at the head (ordering!) and park the
            // channel on the waiters list — no worker is held while it
            // waits. The next completion, teardown or idle worker pulls it
            // back out for another attempt.
            {
                let mut q = state.queue.lock();
                q.calls.push_front((id, retry.expect("only launches would-block")));
            }
            g.park_waiter(key);
        }
    }
    if g.rt.metrics_ref().unbindings.load(Ordering::Relaxed) != unbound_before {
        g.kick_waiter();
    }
}

/// Ships the reply, then either reschedules the channel or — after Exit —
/// tears it down.
fn complete(
    g: &MuxGateway,
    key: ChanKey,
    id: u64,
    reply: CudaReply,
    is_exit: bool,
    state: &Arc<ChannelState>,
) {
    let conn = key.0;
    g.sink.reply(conn, id, reply);
    if is_exit {
        // Remove-then-teardown; a racing disconnect may have won the
        // removal, in which case it owns the teardown.
        if let Some(owned) = g.take_channel(key) {
            g.drain_dead(conn, &owned);
            service::teardown(&g.rt, &owned.ctx);
        }
        return;
    }
    let more = {
        let mut q = state.queue.lock();
        if q.calls.is_empty() {
            q.scheduled = false;
            false
        } else {
            true
        }
    };
    if more {
        let _ = g.workq.send(WorkItem::Chan(key));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use mtgpu_api::client::CudaClient;
    use mtgpu_api::transport::{
        spawn_reactor, FrontendClient, MuxConnection, ReactorConfig, ReplySink,
    };
    use mtgpu_gpusim::{Driver, GpuSpec};
    use mtgpu_simtime::Clock;
    use std::net::TcpListener;

    fn start_node() -> (Arc<NodeRuntime>, Arc<MuxGateway>, MuxGatewayHandle) {
        let clock = Clock::with_scale(1e-7);
        let driver = Driver::with_devices(clock, vec![GpuSpec::test_small(); 2]);
        let rt = NodeRuntime::start(
            driver,
            RuntimeConfig { background_monitor: false, ..RuntimeConfig::default() },
        );
        let (sink, _queue) = ReplySink::channel();
        let (gw, handle) = MuxGateway::start(Arc::clone(&rt), sink);
        let _ = _queue;
        (rt, gw, handle)
    }

    #[test]
    fn end_to_end_over_reactor() {
        let clock = Clock::with_scale(1e-7);
        let driver = Driver::with_devices(clock, vec![GpuSpec::test_small(); 2]);
        let rt = NodeRuntime::start(
            driver,
            RuntimeConfig { background_monitor: false, ..RuntimeConfig::default() },
        );
        let (sink, queue) = ReplySink::channel();
        let (gw, workers) = MuxGateway::start(Arc::clone(&rt), sink);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let svc: Arc<dyn mtgpu_api::transport::MuxService> = gw.clone();
        let reactor = spawn_reactor(listener, ReactorConfig::default(), svc, queue).unwrap();

        let conn = MuxConnection::connect(reactor.addr()).unwrap();
        // Two channels on one socket, interleaved.
        let mut a = FrontendClient::new(conn.channel());
        let mut b = FrontendClient::new(conn.channel());
        assert_eq!(a.get_device_count().unwrap(), 8);
        assert_eq!(b.get_device_count().unwrap(), 8);
        let pa = a.malloc(1024).unwrap();
        let pb = b.malloc(2048).unwrap();
        a.memcpy_h2d(pa, mtgpu_api::HostBuf::from_slice(&[1, 2, 3])).unwrap();
        b.memcpy_h2d(pb, mtgpu_api::HostBuf::from_slice(&[9, 9])).unwrap();
        assert_eq!(a.memcpy_d2h(pa, 3).unwrap().payload[..3], [1, 2, 3]);
        a.exit().unwrap();
        b.exit().unwrap();
        assert!(rt.wait_idle(std::time::Duration::from_secs(10)), "contexts must tear down");
        assert_eq!(gw.channel_count(), 0);
        assert!(rt.metrics().mux_channels >= 2);
        reactor.shutdown();
        workers.shutdown();
        rt.shutdown();
    }

    #[test]
    fn disconnect_tears_channels_down() {
        let clock = Clock::with_scale(1e-7);
        let driver = Driver::with_devices(clock, vec![GpuSpec::test_small()]);
        let rt = NodeRuntime::start(
            driver,
            RuntimeConfig { background_monitor: false, ..RuntimeConfig::default() },
        );
        let (sink, queue) = ReplySink::channel();
        let (gw, workers) = MuxGateway::start(Arc::clone(&rt), sink);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let svc: Arc<dyn mtgpu_api::transport::MuxService> = gw.clone();
        let reactor = spawn_reactor(listener, ReactorConfig::default(), svc, queue).unwrap();

        let conn = MuxConnection::connect(reactor.addr()).unwrap();
        let mut c = FrontendClient::new(conn.channel());
        let _ = c.malloc(4096).unwrap();
        // Drop the socket without Exit: the reactor must notice and the
        // gateway must release the context and its memory.
        conn.shutdown();
        assert!(rt.wait_idle(std::time::Duration::from_secs(10)), "disconnect must tear down");
        assert_eq!(gw.channel_count(), 0);
        reactor.shutdown();
        workers.shutdown();
        rt.shutdown();
    }

    #[test]
    fn worker_pool_sizes_automatically() {
        let (rt, _gw, handle) = start_node();
        assert_eq!(handle.workers.len(), rt.bindings().total_vgpus() + 4);
        handle.shutdown();
        rt.shutdown();
    }
}
