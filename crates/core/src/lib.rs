//! # mtgpu-core — a virtual-memory based runtime for multi-tenant GPUs
//!
//! Rust reproduction of the runtime system of *"A Virtual Memory Based
//! Runtime to Support Multi-tenancy in Clusters with GPUs"* (Becchi et al.,
//! HPDC 2012).
//!
//! The runtime provides **abstraction** (applications never pick a GPU),
//! **sharing** (k virtual GPUs per device time-share it), **isolation**
//! (each application sees a private virtual address space), **configurable
//! scheduling**, **dynamic application-to-GPU binding** (delayed until the
//! first kernel launch, revocable for swap/migration/failure), a **virtual
//! memory abstraction** with intra- and inter-application swap, and
//! **fault tolerance** with checkpoint-restart.
//!
//! ```
//! use mtgpu_core::{NodeRuntime, RuntimeConfig};
//! use mtgpu_gpusim::{Driver, GpuSpec};
//! use mtgpu_simtime::Clock;
//! use mtgpu_api::CudaClient;
//!
//! let driver = Driver::with_devices(Clock::with_scale(1e-6), vec![GpuSpec::test_small()]);
//! let rt = NodeRuntime::start(driver, RuntimeConfig::paper_default());
//! let mut client = rt.local_client();
//! let ptr = client.malloc(1024).unwrap(); // a *virtual* address
//! client.free(ptr).unwrap();
//! client.exit().unwrap();
//! rt.shutdown();
//! ```

pub mod config;
pub mod ctx;
pub mod memory;
pub mod metrics;
pub mod migrate;
pub mod monitor;
pub mod mux;
pub mod policy;
pub mod runtime;
pub mod sched;
pub mod service;
pub mod trace;

pub use config::{RuntimeConfig, SchedulerPolicy};
pub use ctx::{AppContext, Binding, CtxId, VGpuId};
pub use memory::{
    EvictionPolicyKind, Flags, Materialize, MemoryConfig, MemoryManager, MigrationEntry,
    PendingWave, PrefetchPlan, Recovery, SwapOutcome, SwapReason, TouchStamp,
};
pub use metrics::{DeviceUtilization, MetricsSnapshot, RuntimeMetrics};
pub use migrate::{MigrationError, MigrationPhase, MigrationStats};
pub use mux::{MuxGateway, MuxGatewayHandle};
pub use policy::{GpuLease, LeaseBook, TenantKey, TenantPolicyConfig, TenantUsage};
pub use runtime::{LoadInfo, NodeRuntime};
pub use sched::legacy::LegacyBindingManager;
pub use sched::{BindingManager, DeviceView, VGpu};
pub use trace::{TraceEvent, TraceRecord, Tracer, UnbindReason};
