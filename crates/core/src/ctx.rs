//! Application contexts: one per connected application thread.

use mtgpu_api::CudaError;
use mtgpu_gpusim::kernel::RegisteredKernel;
use mtgpu_gpusim::{DeviceId, Gpu, GpuContextId, LaunchConfig};
use mtgpu_simtime::{lock_rank, RankedMutex, RankedMutexGuard};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of an application context (one per application thread /
/// connection), unique within a node runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CtxId(pub u64);

impl std::fmt::Display for CtxId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ctx{}", self.0)
    }
}

/// Identifier of a virtual GPU: device slot plus vGPU index on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VGpuId {
    pub device: DeviceId,
    pub index: u32,
}

impl std::fmt::Display for VGpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}.{}", self.device.0, self.index)
    }
}

/// A context's current binding to a virtual GPU (and thereby to a physical
/// device and the vGPU's persistent CUDA context).
#[derive(Clone)]
pub struct Binding {
    pub vgpu: VGpuId,
    pub gpu: Arc<Gpu>,
    pub gpu_ctx: GpuContextId,
}

impl std::fmt::Debug for Binding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Binding").field("vgpu", &self.vgpu).finish()
    }
}

/// Mutable metadata of a context (short-held lock).
#[derive(Default)]
pub struct CtxInner {
    /// Kernels registered by this application thread (ordered so that any
    /// future iteration is deterministic).
    pub kernels: BTreeMap<String, RegisteredKernel>,
    /// Modules registered so far (handles are 1-based per context).
    pub modules: u64,
    /// Staged `cudaConfigureCall` configuration awaiting its `cudaLaunch`.
    pub staged_config: Option<LaunchConfig>,
    /// Current vGPU binding, if any.
    pub binding: Option<Binding>,
    /// Set by a swapper/migrator/fault-handler: the binding it sees has been
    /// revoked and its device state swapped out.
    pub revoked: bool,
    /// Terminal failure, if the context could not be recovered.
    pub failed: Option<CudaError>,
    /// Whether this application is eligible for sharing and dynamic
    /// scheduling (false once a kernel with device-side `malloc` is
    /// registered, §1).
    pub ineligible_reason: Option<String>,
    /// Scheduling credits (credit-based policy).
    pub credits: u32,
    /// FCFS ticket kept across re-armed acquisition timeouts so a context's
    /// queue position survives the slice-based waiting in the launch path.
    pub wait_ticket: Option<u64>,
    /// CUDA 4.0 application identifier (§4.8): threads of one application
    /// must be bound to the same device so they could share data.
    pub app_id: Option<u64>,
    /// Profiling hint: the job's estimated total GPU work in FLOPs, used by
    /// the shortest-job-first policy (§2).
    pub est_job_flops: Option<f64>,
}

/// Per-context counters.
#[derive(Debug, Default)]
pub struct CtxStats {
    pub launches: AtomicU64,
    pub times_swapped_out: AtomicU64,
    pub times_migrated: AtomicU64,
    pub kernel_busy_nanos: AtomicU64,
}

/// One application thread's context (the paper's `Context` structure, §4.6:
/// connection link, last call info, error code — plus our locks).
pub struct AppContext {
    pub id: CtxId,
    /// Arrival sequence number (FCFS ordering).
    pub seq: u64,
    /// Diagnostic label (job name).
    pub label: String,
    /// Long-held lock serializing all servicing of this context. The owner
    /// handler thread takes it around each call; swappers/migrators take it
    /// opportunistically (`try_lock`) — success implies the context is in a
    /// CPU phase with no call in flight (§4.5's victim condition).
    service: RankedMutex<()>,
    /// Short-held metadata lock.
    inner: RankedMutex<CtxInner>,
    /// Counters.
    pub stats: CtxStats,
}

impl AppContext {
    /// Creates a context with default credits.
    pub fn new(id: CtxId, seq: u64, label: String) -> Arc<Self> {
        Arc::new(AppContext {
            id,
            seq,
            label,
            service: RankedMutex::new(lock_rank::CTX_SERVICE, ()),
            inner: RankedMutex::new(
                lock_rank::CTX_INNER,
                CtxInner { credits: 4, ..CtxInner::default() },
            ),
            stats: CtxStats::default(),
        })
    }

    /// Acquires the service lock (the owning handler thread, blocking).
    pub fn service_lock(&self) -> RankedMutexGuard<'_, ()> {
        self.service.lock()
    }

    /// Tries to acquire the service lock (swapper/migrator path): `None`
    /// means the context is mid-call and must not be disturbed.
    pub fn try_service_lock(&self) -> Option<RankedMutexGuard<'_, ()>> {
        self.service.try_lock()
    }

    /// Access to the metadata.
    pub fn inner(&self) -> RankedMutexGuard<'_, CtxInner> {
        self.inner.lock()
    }

    /// The current binding, if any.
    pub fn binding(&self) -> Option<Binding> {
        self.inner.lock().binding.clone()
    }

    /// Marks the context terminally failed.
    pub fn mark_failed(&self, err: CudaError) {
        self.inner.lock().failed = Some(err);
    }

    /// Registers a kernel; flips eligibility if it uses device-side
    /// allocation (§1: such applications are excluded from sharing and
    /// dynamic scheduling).
    pub fn register_kernel(&self, kernel: RegisteredKernel) {
        let mut inner = self.inner.lock();
        if kernel.desc.uses_dynamic_alloc {
            inner.ineligible_reason =
                Some(format!("kernel `{}` performs dynamic device allocation", kernel.desc.name));
        }
        inner.kernels.insert(kernel.desc.name.clone(), kernel);
    }

    /// Whether the context may participate in sharing/dynamic scheduling.
    pub fn is_eligible(&self) -> bool {
        self.inner.lock().ineligible_reason.is_none()
    }

    /// Records kernel busy time.
    pub fn add_kernel_time(&self, nanos: u64) {
        self.stats.kernel_busy_nanos.fetch_add(nanos, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for AppContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppContext").field("id", &self.id).field("label", &self.label).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtgpu_gpusim::KernelDesc;

    #[test]
    fn try_service_lock_reflects_business() {
        let ctx = AppContext::new(CtxId(1), 0, "t".into());
        {
            let _guard = ctx.service_lock();
            assert!(ctx.try_service_lock().is_none(), "locked ⇒ busy");
        }
        assert!(ctx.try_service_lock().is_some(), "unlocked ⇒ idle");
    }

    #[test]
    fn dynamic_alloc_kernel_disqualifies() {
        let ctx = AppContext::new(CtxId(1), 0, "t".into());
        assert!(ctx.is_eligible());
        ctx.register_kernel(RegisteredKernel {
            desc: KernelDesc {
                name: "devmalloc".into(),
                uses_nested_pointers: false,
                uses_dynamic_alloc: true,
                read_only_args: Vec::new(),
            },
            payload: None,
        });
        assert!(!ctx.is_eligible());
    }

    #[test]
    fn failure_is_sticky() {
        let ctx = AppContext::new(CtxId(1), 0, "t".into());
        ctx.mark_failed(CudaError::DeviceUnavailable);
        assert_eq!(ctx.inner().failed, Some(CudaError::DeviceUnavailable));
    }
}
