//! Live context migration (DESIGN.md §15).
//!
//! [`NodeRuntime::migrate_ctx`] moves a *running* context between two
//! local devices without routing its working set through the swap tier:
//! the context is quiesced at a kernel boundary, device-current pages are
//! copied source→destination over peer-DMA lanes, the binding is rebound
//! through the sharded dispatcher, and the context resumes — typically a
//! single PCIe hop per page instead of the D2H-writeback + lazy-H2D double
//! hop of swap-based migration.
//!
//! # Fault-safe commit ordering
//!
//! The protocol has exactly one commit point. Until
//! [`crate::memory::MemoryManager::commit_migration`] runs, **no PTE is
//! mutated**: a device death during quiesce or transfer rolls back the
//! destination allocations and leaves the context fully on its source,
//! where the ordinary device-loss path classifies every entry. After the
//! commit, the context is fully on the destination and a death there is
//! the ordinary "bound device failed" case. The lease book is never
//! touched — charges are per-context, not per-device, so its global
//! balance is invariant across migrations.

use crate::ctx::CtxId;
use crate::metrics::RuntimeMetrics;
use crate::runtime::NodeRuntime;
use crate::trace::{TraceEvent, UnbindReason};
use mtgpu_gpusim::{DeviceAddr, DeviceId, Gpu};
use std::sync::atomic::Ordering;

/// Protocol phase, exposed so fault batteries can inject a device death at
/// each boundary and abort traces can name where they stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// Draining in-flight launches: the migrator must win the context's
    /// service lock, proving the application is in a CPU phase.
    Quiesce,
    /// Peer-DMA transfer of the device-current working set.
    Transfer,
    /// The atomic commit: PTE rewrite + binding swap.
    Rebind,
    /// Best-effort source cleanup; the context is already live on the
    /// destination.
    Resume,
}

impl MigrationPhase {
    /// Stable name for traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            MigrationPhase::Quiesce => "quiesce",
            MigrationPhase::Transfer => "transfer",
            MigrationPhase::Rebind => "rebind",
            MigrationPhase::Resume => "resume",
        }
    }
}

/// Why a migration did not happen. Every variant leaves the context fully
/// on its source device with its page table untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationError {
    /// No such context.
    UnknownCtx,
    /// The context is mid-call; a migration would not be at a kernel
    /// boundary. Try again next pass.
    Busy,
    /// The context cannot be moved (failed, multi-threaded application,
    /// dynamic device allocation, or not bound anywhere).
    Ineligible(&'static str),
    /// Already bound to the requested destination.
    AlreadyThere,
    /// The destination has no free vGPU (or contexts are waiting, which
    /// outranks migration).
    NoSlot,
    /// A destination allocation or peer copy failed; everything staged on
    /// the destination was rolled back.
    TransferFailed,
}

/// What a completed migration moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationStats {
    pub from: DeviceId,
    pub to: DeviceId,
    /// Bytes copied device-to-device (device-current entries).
    pub p2p_bytes: u64,
    /// Entries whose bytes travelled with the context.
    pub moved_entries: usize,
    /// Slab-authoritative entries whose stale source copy was dropped
    /// (they rematerialize lazily on the destination).
    pub dropped_entries: usize,
}

impl NodeRuntime {
    /// Live-migrates `ctx` to device `dst`: quiesce → transfer → rebind →
    /// resume. See the module docs for the fault model.
    pub fn migrate_ctx(&self, ctx: CtxId, dst: DeviceId) -> Result<MigrationStats, MigrationError> {
        self.migrate_ctx_probed(ctx, dst, &mut |_| {})
    }

    /// [`Self::migrate_ctx`] with a phase probe, called at the *start* of
    /// each protocol phase — the fault battery's injection point.
    #[doc(hidden)]
    pub fn migrate_ctx_probed(
        &self,
        ctx_id: CtxId,
        dst: DeviceId,
        probe: &mut dyn FnMut(MigrationPhase),
    ) -> Result<MigrationStats, MigrationError> {
        // Phase 1 — quiesce. Winning the service lock means no call (and
        // therefore no launch) is in flight: the context sits at a kernel
        // boundary for as long as we hold it.
        probe(MigrationPhase::Quiesce);
        let ctx = self.context(ctx_id).ok_or(MigrationError::UnknownCtx)?;
        let Some(_service) = ctx.try_service_lock() else {
            return Err(MigrationError::Busy);
        };
        if !ctx.is_eligible() {
            return Err(MigrationError::Ineligible("dynamic device allocation"));
        }
        {
            let inner = ctx.inner();
            if inner.failed.is_some() {
                return Err(MigrationError::Ineligible("context failed"));
            }
            // §4.8: threads of one application stay together; migrating one
            // alone would split the application across devices.
            if inner.app_id.is_some() {
                return Err(MigrationError::Ineligible("multi-threaded application"));
            }
        }
        let old = ctx.binding().ok_or(MigrationError::Ineligible("not bound"))?;
        if old.vgpu.device == dst {
            return Err(MigrationError::AlreadyThere);
        }
        // One migration at a time per node: the turnstile serializes PTE
        // rewrites against each other (rank order: CTX_SERVICE → MIGRATION
        // → scheduler/memory locks).
        let mut turnstile = self.migration_turnstile().lock();
        **turnstile += 1; // shadowed sequence: each migration is an audited write
                          // Reserve the destination slot *before* touching anything, so a
                          // full destination can never strand the context.
        let new = self.bindings().try_acquire_on(ctx_id, dst).ok_or(MigrationError::NoSlot)?;

        // Phase 2 — transfer. Device-current entries are copied peer-to-
        // peer, lane-pinned in plan order for deterministic engine
        // placement. No PTE is mutated here: failure rolls the destination
        // back and the context never left its source.
        probe(MigrationPhase::Transfer);
        let plan = self.memory().migration_plan(ctx_id);
        let lanes = if self.config().pipelined_transfers {
            (old.gpu.spec().copy_engines as usize).max(1)
        } else {
            1
        };
        let mut moves: Vec<(DeviceAddr, DeviceAddr)> = Vec::new();
        let mut dropped: Vec<DeviceAddr> = Vec::new();
        let mut p2p_bytes = 0u64;
        let mut skipped_bytes = 0u64;
        let mut transfer_failed = false;
        for entry in &plan {
            if !entry.device_current {
                dropped.push(entry.vaddr);
                skipped_bytes += entry.size;
                continue;
            }
            let Ok(dst_ptr) = new.gpu.malloc(new.gpu_ctx, entry.size) else {
                transfer_failed = true;
                break;
            };
            let copied = Gpu::memcpy_p2p(
                &old.gpu,
                old.gpu_ctx,
                entry.src_dptr,
                &new.gpu,
                new.gpu_ctx,
                dst_ptr,
                entry.size,
                moves.len() % lanes,
            );
            if copied.is_err() {
                let _ = new.gpu.free(new.gpu_ctx, dst_ptr);
                transfer_failed = true;
                break;
            }
            moves.push((entry.vaddr, dst_ptr));
            p2p_bytes += entry.size;
        }
        if transfer_failed {
            for &(_, dst_ptr) in &moves {
                let _ = new.gpu.free(new.gpu_ctx, dst_ptr);
            }
            self.bindings().release(ctx_id, new.vgpu);
            RuntimeMetrics::bump(&self.metrics_ref().migration_failures);
            self.tracer().record(TraceEvent::MigrationAborted {
                ctx: ctx_id,
                phase: MigrationPhase::Transfer.name().to_string(),
            });
            return Err(MigrationError::TransferFailed);
        }

        // Phase 3 — rebind: the single atomic commit point. PTEs flip to
        // their destination pointers (flags untouched — dirty stays dirty,
        // now on the destination) and the binding swaps in the same
        // quiesced window.
        probe(MigrationPhase::Rebind);
        self.memory().commit_migration(ctx_id, &moves, &dropped);
        let new_vgpu = new.vgpu;
        ctx.inner().binding = Some(new);
        self.bindings().release(ctx_id, old.vgpu);

        // Phase 4 — resume: free the stale source copies. Best-effort by
        // design — the data is already committed on the destination, and a
        // dead source simply leaks allocations on a dead device.
        probe(MigrationPhase::Resume);
        for entry in &plan {
            let _ = old.gpu.free(old.gpu_ctx, entry.src_dptr);
        }
        let from = old.vgpu.device;
        self.tracer().record(TraceEvent::MigrationTransferred {
            ctx: ctx_id,
            p2p_bytes,
            skipped_bytes,
            lanes: lanes as u32,
        });
        self.tracer().record(TraceEvent::Unbound {
            ctx: ctx_id,
            vgpu: old.vgpu,
            reason: UnbindReason::Migration,
        });
        self.tracer().record(TraceEvent::Migrated { ctx: ctx_id, from, to: dst });
        self.tracer().record(TraceEvent::Bound { ctx: ctx_id, vgpu: new_vgpu });
        ctx.stats.times_migrated.fetch_add(1, Ordering::Relaxed);
        RuntimeMetrics::bump(&self.metrics_ref().migrations);
        RuntimeMetrics::bump(&self.metrics_ref().live_migrations);
        RuntimeMetrics::add(&self.metrics_ref().migration_p2p_bytes, p2p_bytes);
        Ok(MigrationStats {
            from,
            to: dst,
            p2p_bytes,
            moved_entries: moves.len(),
            dropped_entries: dropped.len(),
        })
    }
}
