//! Per-connection service: the dispatcher's call handling (§4.3) and the
//! launch path with its memory-pressure escalation ladder (§4.5).
//!
//! Each accepted connection is served by one handler thread (the paper's
//! "each dispatcher thread processes a different connection"). Calls are
//! handled as Table 1 specifies:
//!
//! 1. registration functions are absorbed before any binding exists;
//! 2. device-management functions are serviced and overridden to hide the
//!    node's hardware (`cudaSetDevice` ignored, `cudaGetDeviceCount`
//!    reports *virtual* GPUs);
//! 3. memory operations go through the memory manager in terms of virtual
//!    addresses, with no CUDA action under deferral;
//! 4. the first kernel launch triggers application-to-vGPU binding — the
//!    *delayed binding* that makes informed scheduling possible.
//!
//! On launch-time memory pressure the escalation is: intra-application swap
//! (inside [`crate::memory::MemoryManager::materialize`]) → inter-application swap of an
//! idle victim on the same device → unbind-and-retry.

use crate::ctx::{AppContext, Binding, CtxId};
use crate::memory::{eviction, Materialize, Recovery, SwapReason};
use crate::metrics::RuntimeMetrics;
use crate::runtime::NodeRuntime;
use crate::trace::{TraceEvent, UnbindReason};
use mtgpu_api::guard::{self, DescriptorLimits};
use mtgpu_api::protocol::{AllocKind, CudaCall, CudaReply, ModuleHandle, ReplyValue};
use mtgpu_api::transport::{RecvOutcome, ServerConn};
use mtgpu_api::CudaError;
use mtgpu_gpusim::kernel::{library, RegisteredKernel};
use mtgpu_gpusim::DeviceAddr;
use mtgpu_gpusim::{GpuError, LaunchSpec};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Timeout for one binding-acquisition attempt; the launch loop re-arms it
/// until shutdown, so this only bounds reaction latency.
const ACQUIRE_SLICE: Duration = Duration::from_millis(50);
/// Real-time backoff after an unbind-and-retry, so a starved large job does
/// not thrash the device while others finish.
const RETRY_BACKOFF: Duration = Duration::from_millis(2);

/// Serves one connection to completion. Runs on its own handler thread.
///
/// The offload decision (§4.7) is made when the first call arrives: if the
/// local backlog exceeds the threshold and the connection was not itself
/// relayed from a peer (no [`CudaCall::Offloaded`] marker), the handler
/// turns into a relay toward a peer node.
pub(crate) fn serve_connection(rt: Arc<NodeRuntime>, mut conn: Box<dyn ServerConn>) {
    let mut first_call = true;
    let mut arrived_offloaded = false;
    let mut holds_slot = false;
    let ctx = rt.new_context(conn.peer());
    loop {
        match conn.recv_timeout(rt.config().service_tick) {
            RecvOutcome::Closed => break,
            RecvOutcome::Idle => {
                if rt.is_shutdown() {
                    break;
                }
            }
            RecvOutcome::Call(call) => {
                if matches!(call, CudaCall::Offloaded) {
                    // A peer relayed this connection to us: serve it
                    // unconditionally (never re-offload).
                    arrived_offloaded = true;
                    first_call = false;
                    if !conn.send(Ok(ReplyValue::Unit)) {
                        break;
                    }
                    continue;
                }
                if first_call {
                    first_call = false;
                    if !arrived_offloaded && !rt.try_keep_local() {
                        match rt.relay(ctx.id, conn, call) {
                            Ok(()) => {
                                // The relay ran the connection to completion.
                                rt.drop_context_of(&ctx);
                                return;
                            }
                            Err((returned_conn, returned_call)) => {
                                // No peer reachable: serve locally anyway.
                                rt.force_keep_local();
                                holds_slot = true;
                                conn = returned_conn;
                                let is_exit = matches!(returned_call, CudaCall::Exit);
                                let reply = {
                                    let _guard = ctx.service_lock();
                                    handle_call(&rt, &ctx, returned_call)
                                };
                                if !conn.send(reply) || is_exit {
                                    break;
                                }
                                continue;
                            }
                        }
                    }
                    holds_slot = !arrived_offloaded;
                }
                let is_exit = matches!(call, CudaCall::Exit);
                let reply = {
                    let _guard = ctx.service_lock();
                    handle_call(&rt, &ctx, call)
                };
                if !conn.send(reply) || is_exit {
                    break;
                }
            }
        }
    }
    if holds_slot {
        rt.release_local_slot();
    }
    teardown(&rt, &ctx);
}

/// Releases everything a finished/disconnected context holds.
pub(crate) fn teardown(rt: &NodeRuntime, ctx: &Arc<AppContext>) {
    let _guard = ctx.service_lock();
    let binding = {
        let mut inner = ctx.inner();
        inner.binding.take()
    };
    rt.memory().remove_ctx(ctx.id, binding.as_ref());
    if let Some(b) = binding {
        rt.bindings().release(ctx.id, b.vgpu);
    }
    rt.drop_context(ctx.id);
}

/// Outcome of a bounded-wait dispatch ([`try_handle_call`]).
pub(crate) enum CallOutcome {
    /// The call completed (successfully or not).
    Reply(CudaReply),
    /// A launch could not obtain a vGPU binding within its bounded slice.
    /// The caller must requeue the call and retry later; retrying a launch
    /// from scratch is idempotent (the closure is recomputed, the staged
    /// config take is ignored, and unbind paths leave consistent state).
    WouldBlock,
}

/// Dispatches one call with a *bounded* binding wait: where [`handle_call`]
/// re-arms binding acquisition until it succeeds (fine for a dedicated
/// handler thread), this returns [`CallOutcome::WouldBlock`] once
/// `bind_slice` expires so a fixed worker pool never wedges every worker
/// behind contended vGPUs while bound contexts' own calls starve in queue.
/// The caller holds the context's service lock.
pub(crate) fn try_handle_call(
    rt: &NodeRuntime,
    ctx: &Arc<AppContext>,
    call: CudaCall,
    bind_slice: Duration,
) -> CallOutcome {
    match call {
        CudaCall::Launch { spec } => handle_launch_bounded(rt, ctx, spec, Some(bind_slice)),
        other => CallOutcome::Reply(handle_call(rt, ctx, other)),
    }
}

/// Dispatches one call. The caller holds the context's service lock.
pub(crate) fn handle_call(rt: &NodeRuntime, ctx: &Arc<AppContext>, call: CudaCall) -> CudaReply {
    match call {
        CudaCall::RegisterFatBinary => {
            let mut inner = ctx.inner();
            inner.modules += 1;
            Ok(ReplyValue::Module(ModuleHandle(inner.modules)))
        }
        CudaCall::RegisterFunction { kernel, .. } => {
            if let Err(e) = guard::validate_kernel_desc(&kernel, &DescriptorLimits::default()) {
                RuntimeMetrics::bump(&rt.metrics_ref().descriptor_rejections);
                return Err(e);
            }
            // Resolve the functional payload from the backend's library
            // (the fat binary's machine code).
            let payload = library::lookup(&kernel.name).and_then(|k| k.payload);
            ctx.register_kernel(RegisteredKernel { desc: kernel, payload });
            Ok(ReplyValue::Unit)
        }
        CudaCall::RegisterVar { .. } | CudaCall::RegisterTexture { .. } => Ok(ReplyValue::Unit),
        CudaCall::HintJobLength { flops } => {
            ctx.inner().est_job_flops = Some(flops);
            Ok(ReplyValue::Unit)
        }
        // §4.8: record the application id so this thread is co-located
        // with its application's other threads. Under the policy layer this
        // is also the admission point: joining the application's tenant may
        // be refused (context cap, expired lease, unabsorbable charges).
        CudaCall::SetApplication { app_id } => {
            if let Err(e) = rt.policy().adopt(ctx.id, app_id, rt.clock().now()) {
                if matches!(e, CudaError::QuotaExceeded(_)) {
                    RuntimeMetrics::bump(&rt.metrics_ref().quota_rejections);
                    rt.tracer().record(TraceEvent::QuotaRejected {
                        ctx: ctx.id,
                        what: format!("join application {app_id}"),
                    });
                }
                return Err(e);
            }
            ctx.inner().app_id = Some(app_id);
            Ok(ReplyValue::Unit)
        }
        // §4.3: "some device management functions are ignored by our runtime
        // (e.g. cudaSetDevice)" — binding is the runtime's decision.
        CudaCall::SetDevice { .. } => Ok(ReplyValue::Unit),
        // "...or overridden (cudaGetDeviceCount will return the number of
        // virtual, not physical, GPUs)".
        CudaCall::GetDeviceCount => Ok(ReplyValue::DeviceCount(rt.bindings().total_vgpus() as u32)),
        CudaCall::GetDeviceProperties { device } => rt
            .bindings()
            .vgpu_spec(device)
            .map(|spec| ReplyValue::Properties(Box::new(spec)))
            .ok_or(CudaError::InvalidDevice),
        CudaCall::Malloc { size, kind } => admit_malloc(rt, ctx, size, kind).map(ReplyValue::Ptr),
        CudaCall::Free { ptr } => {
            let binding = ctx.binding();
            let freed = rt.memory().free(ctx.id, ptr, binding.as_ref())?;
            rt.policy().uncharge(ctx.id, freed);
            Ok(ReplyValue::Unit)
        }
        CudaCall::MemcpyH2D { dst, buf } => {
            if let Err(e) = guard::validate_host_buf(&buf) {
                RuntimeMetrics::bump(&rt.metrics_ref().descriptor_rejections);
                return Err(e);
            }
            let binding = ctx.binding();
            rt.memory().copy_h2d(ctx.id, dst, &buf, binding.as_ref()).map(|()| ReplyValue::Unit)
        }
        CudaCall::MemcpyD2H { src, len } => with_device_retry(rt, ctx, |rt, ctx, binding| {
            rt.memory().copy_d2h(ctx.id, src, len, binding.as_ref())
        })
        .map(ReplyValue::Bytes),
        CudaCall::MemcpyD2D { dst, src, len } => with_device_retry(rt, ctx, |rt, ctx, binding| {
            rt.memory().copy_d2d(ctx.id, dst, src, len, binding.as_ref())
        })
        .map(|()| ReplyValue::Unit),
        CudaCall::ConfigureCall { config } => {
            ctx.inner().staged_config = Some(config);
            Ok(ReplyValue::Unit)
        }
        CudaCall::Launch { spec } => handle_launch(rt, ctx, spec),
        CudaCall::Synchronize => Ok(ReplyValue::Unit),
        CudaCall::RegisterNested { parent, members } => {
            rt.memory().register_nested(ctx.id, parent, members).map(|()| ReplyValue::Unit)
        }
        CudaCall::Checkpoint => {
            if let Some(binding) = ctx.binding() {
                rt.memory().checkpoint(ctx.id, &binding)?;
            }
            rt.tracer().record(TraceEvent::Checkpointed { ctx: ctx.id, explicit: true });
            // Unbound contexts are already host-consistent.
            Ok(ReplyValue::Unit)
        }
        CudaCall::ExportImage => {
            let binding = ctx.binding();
            let image = rt.memory().export_image(ctx.id, &ctx.label, binding.as_ref())?;
            rt.tracer().record(TraceEvent::Checkpointed { ctx: ctx.id, explicit: true });
            Ok(ReplyValue::Image(Box::new(image)))
        }
        CudaCall::ImportImage { image } => {
            rt.memory().import_image(ctx.id, image).map(|()| ReplyValue::Unit)
        }
        CudaCall::Offloaded => Ok(ReplyValue::Unit),
        CudaCall::Exit => Ok(ReplyValue::Unit),
    }
}

/// The admission-controlled allocation path: charge the tenant's lease
/// before the memory manager sees the request, roll the charge back if the
/// underlying allocation fails. Over-quota requests are queued — retried
/// `admission_retries` times with a clock-driven backoff, so an allocation
/// that would fit once a sibling frees or a lease expires gets its chance —
/// before the typed rejection is returned.
fn admit_malloc(
    rt: &NodeRuntime,
    ctx: &Arc<AppContext>,
    size: u64,
    kind: AllocKind,
) -> Result<DeviceAddr, CudaError> {
    let policy = rt.policy();
    let (mut retries_left, backoff) = policy
        .config()
        .map(|c| (c.admission_retries, c.admission_backoff))
        .unwrap_or((0, RETRY_BACKOFF));
    loop {
        match policy.try_charge(ctx.id, size) {
            Ok(()) => break,
            Err(CudaError::QuotaExceeded(_)) if retries_left > 0 => {
                retries_left -= 1;
                // Through the clock, not `thread::sleep`: queued admission
                // must replay bit-for-bit under a virtual clock.
                rt.clock().backoff(backoff);
            }
            Err(e) => {
                if matches!(e, CudaError::QuotaExceeded(_)) {
                    RuntimeMetrics::bump(&rt.metrics_ref().quota_rejections);
                    rt.tracer().record(TraceEvent::QuotaRejected {
                        ctx: ctx.id,
                        what: format!("malloc of {size} bytes"),
                    });
                }
                return Err(e);
            }
        }
    }
    match rt.memory().malloc(ctx.id, size, kind) {
        Ok(ptr) => Ok(ptr),
        Err(e) => {
            policy.uncharge(ctx.id, size);
            Err(e)
        }
    }
}

/// Runs a device-touching memory operation, transparently recovering from
/// device loss when the context's data permits it.
fn with_device_retry<T>(
    rt: &NodeRuntime,
    ctx: &Arc<AppContext>,
    op: impl Fn(&NodeRuntime, &Arc<AppContext>, &Option<Binding>) -> Result<T, CudaError>,
) -> Result<T, CudaError> {
    if let Some(err) = ctx.inner().failed.clone() {
        return Err(err);
    }
    loop {
        let binding = ctx.binding();
        match op(rt, ctx, &binding) {
            Err(CudaError::DeviceUnavailable) if binding.is_some() => {
                recover_from_device_loss(rt, ctx, binding.unwrap())?;
                // Retry: the data is host-resident now, or we've failed.
            }
            other => return other,
        }
    }
}

/// The delayed-binding launch path (unbounded binding wait).
fn handle_launch(rt: &NodeRuntime, ctx: &Arc<AppContext>, spec: LaunchSpec) -> CudaReply {
    match handle_launch_bounded(rt, ctx, spec, None) {
        CallOutcome::Reply(r) => r,
        // Unreachable with `bind_slice: None` — the loop re-arms forever.
        CallOutcome::WouldBlock => Err(CudaError::Disconnected),
    }
}

/// The delayed-binding launch path. `bind_slice: None` re-arms binding
/// acquisition until shutdown (the legacy handler-thread behaviour);
/// `Some(slice)` makes every vGPU wait bounded and surfaces
/// [`CallOutcome::WouldBlock`] instead of parking the calling thread.
fn handle_launch_bounded(
    rt: &NodeRuntime,
    ctx: &Arc<AppContext>,
    spec: LaunchSpec,
    bind_slice: Option<Duration>,
) -> CallOutcome {
    match launch_loop(rt, ctx, spec, bind_slice) {
        Ok(v) => CallOutcome::Reply(Ok(v)),
        Err(LaunchAbort::Fail(e)) => CallOutcome::Reply(Err(e)),
        Err(LaunchAbort::WouldBlock) => CallOutcome::WouldBlock,
    }
}

/// Why [`launch_loop`] stopped without a completed launch.
enum LaunchAbort {
    /// A real error to report to the application.
    Fail(CudaError),
    /// The bounded binding slice expired (bounded mode only).
    WouldBlock,
}

impl From<CudaError> for LaunchAbort {
    fn from(e: CudaError) -> Self {
        LaunchAbort::Fail(e)
    }
}

fn launch_loop(
    rt: &NodeRuntime,
    ctx: &Arc<AppContext>,
    spec: LaunchSpec,
    bind_slice: Option<Duration>,
) -> Result<ReplyValue, LaunchAbort> {
    if let Some(err) = ctx.inner().failed.clone() {
        return Err(err.into());
    }
    // Guardian-style boundary validation: a malformed or forged descriptor
    // dies here with a typed error, before scheduling or the memory manager
    // see it (both the handler-thread and the mux worker path run through
    // this check).
    if let Err(e) = guard::validate_launch_spec(&spec, &DescriptorLimits::default()) {
        RuntimeMetrics::bump(&rt.metrics_ref().descriptor_rejections);
        return Err(e.into());
    }
    // An expired lease refuses new work even before the reaper visits.
    rt.policy().check_active(ctx.id)?;
    // Table 1 "Launch": check valid PTEs (and extend to nested closures).
    let closure = rt.memory().launch_closure(ctx.id, &spec.args)?;
    // §4.5 fine-grained handling: only entries reachable through read-write
    // arguments become dirty after the launch; with no annotations every
    // pointer argument is conservatively read-write (Figure 4's default).
    let written = {
        let ro = &ctx
            .inner()
            .kernels
            .get(&spec.kernel)
            .map(|k| k.desc.read_only_args.clone())
            .unwrap_or_default();
        if ro.is_empty() {
            closure.clone()
        } else {
            let written_args: Vec<mtgpu_gpusim::KernelArg> = spec
                .args
                .iter()
                .enumerate()
                .filter(|&(i, _)| !ro.contains(&(i as u32)))
                .map(|(_, a)| *a)
                .collect();
            rt.memory().launch_closure(ctx.id, &written_args)?
        }
    };
    let kernel = ctx
        .inner()
        .kernels
        .get(&spec.kernel)
        .cloned()
        .ok_or_else(|| CudaError::InvalidDeviceFunction(spec.kernel.clone()))?;
    // Consume the staged cudaConfigureCall, if the app used the split form.
    let _ = ctx.inner().staged_config.take();
    let mut prefetched = false;

    loop {
        // 1. Ensure a binding (delayed until this very first launch).
        let binding = match ctx.binding() {
            Some(b) => b,
            None => {
                let mem = rt.memory().mem_usage(ctx.id);
                // SJF key: the profiled job length when hinted, else the
                // pending launch's own work.
                let sjf_work = ctx.inner().est_job_flops.unwrap_or(spec.work.flops);
                match rt.bindings().acquire(ctx, sjf_work, mem, bind_slice.unwrap_or(ACQUIRE_SLICE))
                {
                    Some(b) => {
                        ctx.inner().binding = Some(b.clone());
                        rt.tracer().record(TraceEvent::Bound { ctx: ctx.id, vgpu: b.vgpu });
                        b
                    }
                    None => {
                        if rt.is_shutdown() {
                            return Err(CudaError::Disconnected.into());
                        }
                        if bind_slice.is_some() {
                            // Bounded mode: hand the thread back instead of
                            // re-arming; the caller requeues the launch.
                            return Err(LaunchAbort::WouldBlock);
                        }
                        continue;
                    }
                }
            }
        };
        // 1b. Async prefetch (opt-in, once per launch): warm the predicted
        // working set — the previous launch's argument buffers, minus this
        // launch's own closure — on the speculative copy-engine lane before
        // the admit path runs. The transient lease charge keeps speculative
        // footprint inside the tenant's budget; if the lease cannot absorb
        // it, the prefetch is skipped silently (it is purely advisory).
        if rt.config().async_prefetch && !prefetched {
            prefetched = true;
            let plan = rt.memory().prefetch_plan(ctx.id, &closure);
            if plan.bytes > 0 && rt.policy().try_charge(ctx.id, plan.bytes).is_ok() {
                rt.memory().prefetch(ctx.id, &plan, &binding);
                rt.policy().uncharge(ctx.id, plan.bytes);
            }
        }
        // 2. Make the working set resident (intra-app swap happens inside).
        // Double-buffered mode commits only the first-touch wave (direct
        // kernel arguments) before dispatch and hands back the remainder
        // to stream while the kernel runs.
        let split = if rt.config().double_buffer_launch {
            let first_touch = rt.memory().arg_bases(ctx.id, &spec.args)?;
            rt.memory().materialize_split(ctx.id, &closure, &first_touch, &binding)
        } else {
            rt.memory().materialize(ctx.id, &closure, &binding).map(|m| (m, None))
        };
        let pending_wave = match split {
            Ok((Materialize::Ready, wave)) => wave,
            Ok((Materialize::NeedBytes(need), _)) => {
                // 3a. Inter-application swap: ask an idle co-tenant to give
                // up the device (§4.5).
                if rt.config().inter_app_swap
                    && ctx.is_eligible()
                    && try_inter_app_swap(rt, ctx.id, &binding, need)
                {
                    continue;
                }
                // 3b. Priority preemption (policy layer): a tenant whose
                // lease outranks its co-tenants may evict their resident
                // pages instead of yielding the device itself.
                if rt.policy().enabled()
                    && ctx.is_eligible()
                    && try_priority_preempt(rt, ctx.id, &binding, need)
                {
                    continue;
                }
                // 3c. No application honoured the request: unbind and retry
                // later (§4.5).
                unbind_self(rt, ctx, &binding, SwapReason::Unbind)?;
                RuntimeMetrics::bump(&rt.metrics_ref().launch_retries);
                // Through the clock, not `thread::sleep`: under a virtual
                // clock the retry path must advance virtual time only.
                rt.clock().backoff(RETRY_BACKOFF);
                continue;
            }
            Err(CudaError::DeviceUnavailable) => {
                recover_from_device_loss(rt, ctx, binding)?;
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        // 4. Translate virtual pointers and launch. With a pending second
        // wave the kernel dispatches immediately and the wave streams on
        // the speculative lane concurrently (both engines carry traffic).
        let args = rt.memory().translate_args(ctx.id, &spec.args)?;
        let dev_spec = LaunchSpec { args, ..spec.clone() };
        let (launch_res, wave_res) = match pending_wave {
            None => (binding.gpu.launch(binding.gpu_ctx, &kernel, &dev_spec), Ok(())),
            Some(wave) => {
                RuntimeMetrics::bump(&rt.metrics_ref().double_buffer_launches);
                rt.tracer().record(TraceEvent::DoubleBuffered {
                    ctx: ctx.id,
                    wave2_ops: wave.op_count() as u32,
                    wave2_bytes: wave.bytes(),
                });
                std::thread::scope(|s| {
                    let mm = rt.memory();
                    let b = &binding;
                    let id = ctx.id;
                    let wave_thread = s.spawn(move || mm.execute_wave(id, b, wave));
                    let launch = binding.gpu.launch(binding.gpu_ctx, &kernel, &dev_spec);
                    (launch, wave_thread.join().expect("wave-2 thread panicked"))
                })
            }
        };
        match launch_res {
            Ok(dur) => {
                // A failed remainder wave means the launch's working set
                // never fully landed: fault-safe commit ordering left every
                // PTE classifiable, so recover and retry from host state
                // exactly as if the dispatch itself had died.
                if let Err(e) = wave_res {
                    if matches!(e, CudaError::DeviceUnavailable) {
                        recover_from_device_loss(rt, ctx, binding)?;
                        continue;
                    }
                    return Err(e.into());
                }
                rt.memory().mark_launched(ctx.id, &written);
                ctx.stats.launches.fetch_add(1, Ordering::Relaxed);
                ctx.add_kernel_time(dur.as_nanos());
                RuntimeMetrics::bump(&rt.metrics_ref().launches);
                // §4.6: automatic checkpoint after long-running kernels.
                if let Some(threshold) = rt.config().auto_checkpoint_after {
                    if dur >= threshold {
                        rt.memory().checkpoint(ctx.id, &binding)?;
                        rt.tracer()
                            .record(TraceEvent::Checkpointed { ctx: ctx.id, explicit: false });
                    }
                }
                return Ok(ReplyValue::LaunchDone { sim_nanos: dur.as_nanos() });
            }
            Err(GpuError::DeviceFailed) => {
                recover_from_device_loss(rt, ctx, binding)?;
                continue;
            }
            Err(e) => return Err(CudaError::from_gpu(e).into()),
        }
    }
}

/// Swaps out this context's device state and releases its vGPU.
fn unbind_self(
    rt: &NodeRuntime,
    ctx: &Arc<AppContext>,
    binding: &Binding,
    reason: SwapReason,
) -> Result<(), CudaError> {
    match rt.memory().swap_out_ctx(ctx.id, binding, reason) {
        Ok(out) => rt.tracer().record(TraceEvent::SwappedOut {
            ctx: ctx.id,
            bytes: out.freed,
            reason: reason.into(),
        }),
        Err(CudaError::DeviceUnavailable) => {}
        Err(e) => return Err(e),
    }
    ctx.inner().binding = None;
    rt.bindings().release(ctx.id, binding.vgpu);
    rt.tracer().record(TraceEvent::Unbound {
        ctx: ctx.id,
        vgpu: binding.vgpu,
        reason: UnbindReason::Retry,
    });
    Ok(())
}

/// Device-loss recovery: reset the context's memory to host-authoritative
/// and drop the dead binding. Fails the context if dirty data was lost.
fn recover_from_device_loss(
    rt: &NodeRuntime,
    ctx: &Arc<AppContext>,
    binding: Binding,
) -> Result<(), CudaError> {
    let recovery = rt.memory().on_device_lost(ctx.id);
    ctx.inner().binding = None;
    // Release only if the device (and thus the slot) is still registered;
    // the fault monitor removes dead devices wholesale.
    if rt.bindings().has_device(binding.vgpu.device) {
        rt.bindings().release(ctx.id, binding.vgpu);
    }
    rt.tracer().record(TraceEvent::DeviceLost { device: binding.vgpu.device });
    match recovery {
        Recovery::Recovered => {
            RuntimeMetrics::bump(&rt.metrics_ref().recovered_contexts);
            rt.tracer().record(TraceEvent::Recovered { ctx: ctx.id });
            Ok(())
        }
        Recovery::LostDirtyData => {
            RuntimeMetrics::bump(&rt.metrics_ref().failed_contexts);
            ctx.mark_failed(CudaError::DeviceUnavailable);
            rt.tracer().record(TraceEvent::Failed { ctx: ctx.id });
            Err(CudaError::DeviceUnavailable)
        }
    }
}

/// Priority-aware preemption on `binding.vgpu.device`: evict resident
/// pages of co-tenants whose lease priority is *strictly lower* than the
/// requester's, least-important victims first, until the shortfall is
/// covered. Victims keep their vGPU binding — this preempts memory, not
/// the device slot — and their data re-materializes from swap at their
/// next launch. Returns `true` if enough bytes were freed.
fn try_priority_preempt(rt: &NodeRuntime, requester: CtxId, binding: &Binding, need: u64) -> bool {
    // (lease priority, policy context key): lowest-priority victim first.
    type PreemptKey = (u8, (u64, u64, u64));
    let my_prio = rt.policy().priority_of(requester);
    let policy = rt.config().eviction_policy;
    let mut candidates: Vec<(PreemptKey, CtxId)> = rt
        .bindings()
        .bound_on(binding.vgpu.device)
        .into_iter()
        .filter(|&id| id != requester)
        .filter_map(|id| {
            let prio = rt.policy().priority_of(id);
            let c = rt.memory().victim_candidate(id)?;
            (prio < my_prio && c.resident > 0)
                .then(|| ((prio, eviction::ctx_victim_key(policy, &c)), id))
        })
        .collect();
    // Lowest priority first; ties break by the configured eviction
    // policy's context key (for `SeedOrder` that is (resident, id), the
    // original ordering), so the victim sequence stays a pure function of
    // state.
    candidates.sort_unstable();
    let mut freed_total = 0u64;
    for (_, victim_id) in candidates {
        if freed_total >= need {
            break;
        }
        let Some(victim) = rt.context(victim_id) else { continue };
        if !victim.is_eligible() {
            continue;
        }
        // Like inter-app swap, only an idle victim can be preempted; a
        // busy one (mid-call / mid-kernel) is skipped.
        let Some(_guard) = victim.try_service_lock() else { continue };
        // Re-validate under the lock: still bound here, still outranked.
        let Some(vb) = victim.binding() else { continue };
        if vb.vgpu.device != binding.vgpu.device || rt.policy().priority_of(victim_id) >= my_prio {
            continue;
        }
        match rt.memory().swap_out_ctx(victim_id, &vb, SwapReason::Preempted) {
            Ok(out) if out.freed > 0 => {
                freed_total += out.freed;
                victim.stats.times_swapped_out.fetch_add(1, Ordering::Relaxed);
                RuntimeMetrics::bump(&rt.metrics_ref().priority_preemptions);
                rt.tracer().record(TraceEvent::SwappedOut {
                    ctx: victim_id,
                    bytes: out.freed,
                    reason: SwapReason::Preempted.into(),
                });
                rt.tracer().record(TraceEvent::Preempted {
                    victim: victim_id,
                    by: requester,
                    bytes: out.freed,
                });
            }
            Ok(_) | Err(_) => continue,
        }
    }
    freed_total >= need
}

/// Attempts an inter-application swap on `binding.vgpu.device`: find one
/// idle co-tenant whose resident footprint covers the shortfall, swap it
/// out wholesale and release its vGPU (§4.5). Returns `true` if memory was
/// freed.
fn try_inter_app_swap(rt: &NodeRuntime, requester: CtxId, binding: &Binding, need: u64) -> bool {
    let policy = rt.config().eviction_policy;
    let mut candidates: Vec<((u64, u64, u64), CtxId)> = rt
        .bindings()
        .bound_on(binding.vgpu.device)
        .into_iter()
        .filter(|&id| id != requester)
        .filter_map(|id| {
            let c = rt.memory().victim_candidate(id)?;
            (c.resident >= need).then(|| (eviction::ctx_victim_key(policy, &c), id))
        })
        .collect();
    // Victims in the configured eviction policy's order. `SeedOrder` keys
    // by (resident, id) — the smallest sufficient victim, ties broken by
    // context id, exactly the original behaviour; recency- and cost-aware
    // policies prefer stale or cheap-to-evict contexts instead. Either
    // way the choice is a pure function of state.
    candidates.sort_unstable();
    for (_, victim_id) in candidates {
        let Some(victim) = rt.context(victim_id) else { continue };
        if !victim.is_eligible() {
            continue;
        }
        // "The application may or may not accept the request": busy contexts
        // (mid-call / mid-kernel) refuse; idle ones accept.
        let Some(_guard) = victim.try_service_lock() else { continue };
        // Re-validate under the lock: still bound to this device, still big
        // enough.
        let Some(vb) = victim.binding() else { continue };
        if vb.vgpu.device != binding.vgpu.device || rt.memory().resident_bytes(victim_id) < need {
            continue;
        }
        match rt.memory().swap_out_ctx(victim_id, &vb, SwapReason::InterAppVictim) {
            Ok(out) => {
                victim.inner().binding = None;
                victim.stats.times_swapped_out.fetch_add(1, Ordering::Relaxed);
                rt.bindings().release(victim_id, vb.vgpu);
                rt.tracer().record(TraceEvent::SwappedOut {
                    ctx: victim_id,
                    bytes: out.freed,
                    reason: SwapReason::InterAppVictim.into(),
                });
                rt.tracer().record(TraceEvent::Unbound {
                    ctx: victim_id,
                    vgpu: vb.vgpu,
                    reason: UnbindReason::Victim,
                });
                return true;
            }
            Err(_) => continue,
        }
    }
    false
}
