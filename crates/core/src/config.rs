//! Runtime configuration knobs.

use mtgpu_simtime::SimDuration;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Which scheduling algorithm the dispatcher uses (§4.3: "the dispatcher can
/// be configured to use different scheduling algorithms").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulerPolicy {
    /// First-come-first-served, round-robin across devices, keeping the
    /// number of active vGPUs uniform — the policy used throughout §5.
    #[default]
    FcfsRoundRobin,
    /// Shortest-job-first on the pending launch's declared work.
    ShortestJobFirst,
    /// Credit-based fair scheduling: waiting contexts with the most credits
    /// go first; each grant spends a credit, refilled when all are exhausted.
    CreditBased,
}

/// Configuration of the node runtime.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Virtual GPUs spawned per physical device (the sharing degree, §4.4).
    /// The paper settles on 4 as "a good compromise" (§5.3.2).
    pub vgpus_per_device: u32,
    /// Defer host-to-device transfers until the data is needed by a kernel
    /// (§4.5). Eager mode writes through to the device once bound, enabling
    /// compute/transfer overlap at the price of higher swap cost.
    pub defer_transfers: bool,
    /// Enable intra-application swap (§4.5).
    pub intra_app_swap: bool,
    /// Enable inter-application swap (§4.5). When off, memory pressure is
    /// resolved only by unbind-and-retry.
    pub inter_app_swap: bool,
    /// Coalesce repeated copies into one bulk upload per page-table entry
    /// (§4.5 "multiple data copy operations ... single, bulk transfer").
    pub coalesce_transfers: bool,
    /// Execute materialize/swap transfer plans concurrently across the
    /// device's copy engines. Off forces the serial one-transfer-at-a-time
    /// path regardless of how many engines the device has.
    pub pipelined_transfers: bool,
    /// Cap on concurrent transfers per plan. `0` means "as many as the
    /// device has copy engines"; nonzero values are still clamped to the
    /// engine count (more in-flight than engines cannot help).
    pub max_inflight_transfers: usize,
    /// Scheduling policy.
    pub scheduler: SchedulerPolicy,
    /// Migrate idle contexts from slower to faster devices when the fast
    /// device has free vGPUs and nothing is waiting (§5.3.4).
    pub dynamic_load_balancing: bool,
    /// Take an automatic checkpoint after any kernel whose simulated
    /// duration meets this threshold (§4.6). `None` disables.
    pub auto_checkpoint_after: Option<SimDuration>,
    /// Backlog (bound + waiting contexts) beyond which new connections are
    /// offloaded to peer nodes (§4.7). `None` disables offloading.
    pub offload_threshold: Option<usize>,
    /// Peer runtime daemons (TCP addresses) eligible for offloading.
    pub offload_peers: Vec<String>,
    /// Real-time tick used by service loops to notice revocation, failure
    /// and idleness. Lower = more responsive, more wakeups.
    pub service_tick: Duration,
    /// Cap on total swap-area bytes per node; `None` = unbounded. Exceeding
    /// it produces the Table 1 "Swap memory cannot be allocated" error.
    pub swap_capacity: Option<u64>,
    /// Cap on live page-table entries per context; exceeding it produces the
    /// Table 1 "A virtual address cannot be assigned" error.
    pub max_ptes_per_context: usize,
    /// How often the health/migration monitor scans, real time.
    pub monitor_interval: Duration,
    /// Events retained by the runtime's trace ring buffer (0 disables
    /// tracing).
    pub trace_capacity: usize,
    /// Root seed for every randomized decision the runtime makes
    /// (dispatcher tie-breaks). `0` selects the legacy round-robin
    /// cursor; any other value derives a [`mtgpu_simtime::DetRng`] so a
    /// whole run replays bit-for-bit.
    pub seed: u64,
    /// Spawn the background health/migration monitor thread. Deterministic
    /// harnesses turn this off and drive recovery explicitly through
    /// [`crate::NodeRuntime::monitor_tick`], so monitor actions land at
    /// reproducible points of the schedule.
    pub background_monitor: bool,
    /// Worker threads executing calls arriving over multiplexed
    /// connections (DESIGN.md §12). `0` sizes the pool automatically
    /// (total vGPUs + a small constant for unbound/teardown work).
    pub mux_workers: usize,
    /// One bounded binding-acquisition attempt per multiplexed launch;
    /// when it expires, the worker requeues the channel and serves other
    /// work instead of blocking the pool (the deadlock guard for a fixed
    /// pool over unbounded waits).
    pub mux_bind_slice: Duration,
    /// Tenant-policy layer: leases, admission control, TTL reaping and
    /// priority preemption. `None` (the default) disables the layer
    /// entirely — every tenant is admitted unconditionally, as before.
    pub tenant_policy: Option<crate::policy::TenantPolicyConfig>,
    /// Victim-selection policy for intra- and inter-application swap.
    /// `SeedOrder` (the default) reproduces the original largest-first /
    /// (resident, id) ordering; the other policies score candidates off
    /// virtual-clock touch stamps and clean/dirty PTE state.
    pub eviction_policy: crate::memory::EvictionPolicyKind,
    /// Prefetch a context's predicted working set (its last launch's
    /// argument buffers) onto idle copy-engine lanes while the launch
    /// waits for admission. Speculative traffic runs at lane offset 1 and
    /// is charge-accounted against the tenant's lease for its duration.
    pub async_prefetch: bool,
    /// Split a launch's materialization into a first-touch wave and a
    /// remainder wave: the kernel dispatches once wave 1 commits while
    /// wave 2 streams on the second copy-engine lane.
    pub double_buffer_launch: bool,
    /// Utilization-driven rebalancer (DESIGN.md §15): each monitor pass
    /// samples per-device pressure (resident bytes, swap traffic, queue
    /// depth), scores placements deterministically off the virtual clock,
    /// and **live-migrates** ([`crate::NodeRuntime::migrate_ctx`]) the
    /// costliest-misplaced context off the hottest device — working set
    /// moved device-to-device over peer-DMA lanes, not through the swap
    /// tier. Respects lease priorities: a higher-priority tenant is never
    /// displaced for a lower one.
    pub utilization_rebalancer: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            vgpus_per_device: 4,
            defer_transfers: true,
            intra_app_swap: true,
            inter_app_swap: true,
            coalesce_transfers: true,
            pipelined_transfers: true,
            max_inflight_transfers: 0,
            scheduler: SchedulerPolicy::FcfsRoundRobin,
            dynamic_load_balancing: false,
            auto_checkpoint_after: None,
            offload_threshold: None,
            offload_peers: Vec::new(),
            service_tick: Duration::from_millis(2),
            swap_capacity: None,
            max_ptes_per_context: 1 << 20,
            monitor_interval: Duration::from_millis(5),
            trace_capacity: 4096,
            seed: 0,
            background_monitor: true,
            mux_workers: 0,
            mux_bind_slice: Duration::from_millis(5),
            tenant_policy: None,
            eviction_policy: crate::memory::EvictionPolicyKind::SeedOrder,
            async_prefetch: false,
            double_buffer_launch: false,
            utilization_rebalancer: false,
        }
    }
}

impl RuntimeConfig {
    /// The paper's experimental configuration: 4 vGPUs per device, deferral
    /// on, both swap kinds enabled, FCFS round-robin.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Serialized execution: 1 vGPU per device (the paper's "no sharing"
    /// baseline in Figs. 7–11).
    pub fn serialized() -> Self {
        RuntimeConfig { vgpus_per_device: 1, ..Self::default() }
    }

    /// Builder-style override of the vGPU count.
    pub fn with_vgpus(mut self, n: u32) -> Self {
        self.vgpus_per_device = n;
        self
    }

    /// Builder-style override of the scheduler policy.
    pub fn with_scheduler(mut self, p: SchedulerPolicy) -> Self {
        self.scheduler = p;
        self
    }

    /// Builder-style override of the determinism seed (`0` = legacy
    /// round-robin tie-breaks).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style toggle of the background monitor thread.
    pub fn with_background_monitor(mut self, on: bool) -> Self {
        self.background_monitor = on;
        self
    }

    /// Builder-style toggle of pipelined transfer plans.
    pub fn with_pipelined_transfers(mut self, on: bool) -> Self {
        self.pipelined_transfers = on;
        self
    }

    /// Builder-style override of the per-plan in-flight transfer cap
    /// (`0` = device copy-engine count).
    pub fn with_max_inflight_transfers(mut self, n: usize) -> Self {
        self.max_inflight_transfers = n;
        self
    }

    /// Builder-style override of the multiplexed worker-pool size
    /// (`0` = automatic).
    pub fn with_mux_workers(mut self, n: usize) -> Self {
        self.mux_workers = n;
        self
    }

    /// Builder-style activation of the tenant-policy layer.
    pub fn with_tenant_policy(mut self, policy: crate::policy::TenantPolicyConfig) -> Self {
        self.tenant_policy = Some(policy);
        self
    }

    /// Builder-style override of the eviction policy.
    pub fn with_eviction_policy(mut self, p: crate::memory::EvictionPolicyKind) -> Self {
        self.eviction_policy = p;
        self
    }

    /// Builder-style toggle of async launch prefetch.
    pub fn with_async_prefetch(mut self, on: bool) -> Self {
        self.async_prefetch = on;
        self
    }

    /// Builder-style toggle of double-buffered launch materialization.
    pub fn with_double_buffer_launch(mut self, on: bool) -> Self {
        self.double_buffer_launch = on;
        self
    }

    /// Builder-style toggle of the utilization-driven rebalancer.
    pub fn with_utilization_rebalancer(mut self, on: bool) -> Self {
        self.utilization_rebalancer = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RuntimeConfig::paper_default();
        assert_eq!(c.vgpus_per_device, 4);
        assert!(c.defer_transfers);
        assert!(c.intra_app_swap);
        assert!(c.inter_app_swap);
        assert_eq!(c.scheduler, SchedulerPolicy::FcfsRoundRobin);
    }

    #[test]
    fn serialized_uses_one_vgpu() {
        assert_eq!(RuntimeConfig::serialized().vgpus_per_device, 1);
    }

    #[test]
    fn builders_compose() {
        let c = RuntimeConfig::default()
            .with_vgpus(8)
            .with_scheduler(SchedulerPolicy::ShortestJobFirst)
            .with_seed(42)
            .with_background_monitor(false);
        assert_eq!(c.vgpus_per_device, 8);
        assert_eq!(c.scheduler, SchedulerPolicy::ShortestJobFirst);
        assert_eq!(c.seed, 42);
        assert!(!c.background_monitor);
    }

    #[test]
    fn defaults_are_backward_compatible() {
        let c = RuntimeConfig::default();
        assert_eq!(c.seed, 0, "seed 0 keeps the legacy rr tie-break");
        assert!(c.background_monitor);
        assert!(c.pipelined_transfers);
        assert_eq!(c.max_inflight_transfers, 0, "0 tracks the device engine count");
        assert_eq!(c.eviction_policy, crate::memory::EvictionPolicyKind::SeedOrder);
        assert!(!c.async_prefetch, "prefetch is opt-in");
        assert!(!c.double_buffer_launch, "double-buffering is opt-in");
        assert!(!c.utilization_rebalancer, "the rebalancer is opt-in");
    }

    #[test]
    fn rebalancer_builder_composes() {
        let c = RuntimeConfig::default().with_utilization_rebalancer(true);
        assert!(c.utilization_rebalancer);
        assert!(!c.dynamic_load_balancing, "legacy balancer stays independent");
    }

    #[test]
    fn adaptive_memory_builders_compose() {
        let c = RuntimeConfig::default()
            .with_eviction_policy(crate::memory::EvictionPolicyKind::CostAware)
            .with_async_prefetch(true)
            .with_double_buffer_launch(true);
        assert_eq!(c.eviction_policy, crate::memory::EvictionPolicyKind::CostAware);
        assert!(c.async_prefetch);
        assert!(c.double_buffer_launch);
    }

    #[test]
    fn transfer_builders_compose() {
        let c =
            RuntimeConfig::default().with_pipelined_transfers(false).with_max_inflight_transfers(3);
        assert!(!c.pipelined_transfers);
        assert_eq!(c.max_inflight_transfers, 3);
    }
}
