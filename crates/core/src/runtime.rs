//! The node runtime: the daemon that owns the connection manager,
//! dispatcher, virtual GPUs, memory manager and monitors (Figure 3).

use crate::config::RuntimeConfig;
use crate::ctx::{AppContext, CtxId, VGpuId};
use crate::memory::{MemoryConfig, MemoryManager};
use crate::metrics::{DeviceUtilization, MetricsSnapshot, RuntimeMetrics};
use crate::monitor;
use crate::policy::LeaseBook;
use crate::sched::BindingManager;
use crate::service;
use crate::trace::{TraceEvent, Tracer};
use mtgpu_api::transport::{channel_pair, ChannelTransport, FrontendClient, ServerConn};
use mtgpu_api::{CudaError, CudaReply, Transport};
use mtgpu_gpusim::{DeviceId, Driver, GpuSpec};
use mtgpu_simtime::{lock_rank, Clock, RankedMutex, Shadow};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A point-in-time description of the node's load, exposed to cluster-level
/// schedulers (§2: "the node-level runtime may expose some information to
/// the cluster-level scheduler").
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LoadInfo {
    /// Connected application threads.
    pub contexts: usize,
    /// Contexts waiting for a vGPU.
    pub waiting: usize,
    /// Contexts currently bound to a vGPU.
    pub bound: usize,
    /// vGPUs across healthy devices.
    pub total_vgpus: usize,
}

impl LoadInfo {
    /// The §4.7 backlog measure driving offload decisions.
    pub fn backlog(&self) -> usize {
        self.contexts
    }
}

/// The per-node runtime daemon (Figure 3): replicated on every node of the
/// cluster, it intercepts the CUDA call streams of all local applications
/// and schedules them over the node's GPUs.
pub struct NodeRuntime {
    cfg: RuntimeConfig,
    driver: Arc<Driver>,
    clock: Clock,
    mm: MemoryManager,
    bm: BindingManager,
    metrics: Arc<RuntimeMetrics>,
    registry: RankedMutex<HashMap<CtxId, Arc<AppContext>>>,
    next_ctx: AtomicU64,
    shutdown: AtomicBool,
    handlers: RankedMutex<Vec<JoinHandle<()>>>,
    monitor: RankedMutex<Option<JoinHandle<()>>>,
    offload_rr: AtomicU64,
    /// Connections currently served locally, counted synchronously at
    /// accept time (the §4.7 backlog measure must not race with handler
    /// startup).
    active_conns: AtomicUsize,
    /// Local-service slots remaining before new connections are offloaded
    /// (§4.7: "we allow the dispatcher to process pending connections only
    /// if the number of pending contexts is below a given threshold").
    /// `i64::MAX` when offloading is disabled.
    local_slots: std::sync::atomic::AtomicI64,
    tracer: Arc<Tracer>,
    /// Tenant leases + admission control (no-op when the policy layer is
    /// not configured).
    policy: LeaseBook,
    /// Serializes live migrations ([`Self::migrate_ctx`]): one context's
    /// PTE rewrite at a time per node.
    /// Migration turnstile; carries a shadowed migration-sequence counter
    /// so mtcheck audits turnstile discipline on the migration path.
    migration: RankedMutex<Shadow<u64>>,
}

impl NodeRuntime {
    /// Starts the runtime: spawns the configured vGPUs on every attached
    /// device and the health/migration monitor.
    ///
    /// # Panics
    /// Panics if a vGPU's persistent CUDA context cannot be created (a
    /// misconfiguration: more vGPUs than the device supports contexts).
    pub fn start(driver: Arc<Driver>, cfg: RuntimeConfig) -> Arc<NodeRuntime> {
        let metrics = Arc::new(RuntimeMetrics::default());
        let clock = driver.clock().clone();
        let tracer = Arc::new(Tracer::new(clock.clone(), cfg.trace_capacity));
        let mm = MemoryManager::new(
            MemoryConfig {
                defer_transfers: cfg.defer_transfers,
                coalesce_transfers: cfg.coalesce_transfers,
                intra_app_swap: cfg.intra_app_swap,
                pipelined_transfers: cfg.pipelined_transfers,
                max_inflight_transfers: cfg.max_inflight_transfers,
                max_ptes_per_context: cfg.max_ptes_per_context,
                swap_capacity: cfg.swap_capacity,
                eviction_policy: cfg.eviction_policy,
                ..MemoryConfig::default()
            },
            Arc::clone(&metrics),
        )
        .with_tracer(Arc::clone(&tracer))
        .with_clock(clock.clone());
        let bm = BindingManager::new_seeded(cfg.scheduler, Arc::clone(&metrics), cfg.seed);
        let local_slots = match (cfg.offload_threshold, cfg.offload_peers.is_empty()) {
            (Some(t), false) => t as i64,
            _ => i64::MAX,
        };
        let policy = LeaseBook::new(cfg.tenant_policy.clone());
        let rt = Arc::new(NodeRuntime {
            cfg,
            clock,
            mm,
            bm,
            metrics,
            registry: RankedMutex::new(lock_rank::RT_REGISTRY, HashMap::new()),
            next_ctx: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            handlers: RankedMutex::new(lock_rank::RT_HANDLERS, Vec::new()),
            monitor: RankedMutex::new(lock_rank::RT_MONITOR, None),
            offload_rr: AtomicU64::new(0),
            active_conns: AtomicUsize::new(0),
            local_slots: std::sync::atomic::AtomicI64::new(local_slots),
            tracer,
            policy,
            migration: RankedMutex::new(
                lock_rank::MIGRATION,
                Shadow::new("migrate.turnstile.seq", 0),
            ),
            driver,
        });
        for (id, gpu) in rt.driver.devices() {
            rt.bm
                .add_device(id, gpu, rt.cfg.vgpus_per_device)
                .unwrap_or_else(|e| panic!("cannot spawn vGPUs on {id}: {e:?}"));
        }
        if rt.cfg.background_monitor {
            let monitor_rt = Arc::clone(&rt);
            *rt.monitor.lock() = Some(
                std::thread::Builder::new()
                    .name("mtgpu-monitor".into())
                    .spawn(move || monitor::run(monitor_rt))
                    .expect("spawn monitor thread"),
            );
        }
        rt
    }

    /// Runs one monitor pass synchronously: fault recovery, then (if
    /// enabled) a load-balancing step. Deterministic harnesses configure
    /// `background_monitor = false` and call this at chosen points so
    /// recovery and migration land at reproducible schedule positions.
    pub fn monitor_tick(&self) {
        monitor::reap_expired_leases(self);
        monitor::recover_failed_devices(self);
        if self.cfg.utilization_rebalancer {
            monitor::rebalance_once(self);
        } else if self.cfg.dynamic_load_balancing {
            monitor::balance_once(self);
        }
        self.observe_lock_contention();
    }

    /// Drains the ranked locks' contention counters into the
    /// `lock_contention_events` metric and the trace. The counters only
    /// ever advance in debug builds (release compiles the probe out) and
    /// only under concurrent load, so sequential deterministic harnesses
    /// observe zero and replay fingerprints are unaffected.
    pub(crate) fn observe_lock_contention(&self) {
        let mut sources = vec![("MM_STATE", self.mm.take_lock_contention())];
        sources.extend(self.bm.take_lock_contention());
        for (name, count) in sources {
            if count > 0 {
                RuntimeMetrics::add(&self.metrics.lock_contention_events, count);
                self.tracer.record(TraceEvent::LockContention { lock: name.to_string(), count });
            }
        }
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// The simulation clock shared with the devices.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The device driver this runtime schedules over.
    pub fn driver(&self) -> &Arc<Driver> {
        &self.driver
    }

    /// The memory manager (public for diagnostics and fault batteries:
    /// `flags_of`, `resident_bytes`, `device_swap_traffic`).
    pub fn memory(&self) -> &MemoryManager {
        &self.mm
    }

    /// The migration turnstile ([`crate::migrate`]).
    pub(crate) fn migration_turnstile(&self) -> &RankedMutex<Shadow<u64>> {
        &self.migration
    }

    /// Where a context is currently bound, if anywhere (diagnostics).
    pub fn binding_of(&self, id: CtxId) -> Option<VGpuId> {
        self.context(id).and_then(|c| c.binding()).map(|b| b.vgpu)
    }

    /// The binding manager.
    pub(crate) fn bindings(&self) -> &BindingManager {
        &self.bm
    }

    /// Metric counters.
    pub(crate) fn metrics_ref(&self) -> &RuntimeMetrics {
        &self.metrics
    }

    /// The runtime's event tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The tenant-policy lease book (admission control, TTLs, priorities).
    pub fn policy(&self) -> &LeaseBook {
        &self.policy
    }

    /// A snapshot of the traced events, oldest first.
    pub fn trace(&self) -> Vec<crate::trace::TraceRecord> {
        self.tracer.events()
    }

    /// Snapshot of the runtime counters, including per-device utilization
    /// samples in device-id order (the rebalancer's pressure signals —
    /// resident bytes, swap traffic, bound contexts, queue depth).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.per_device = self
            .bm
            .device_views()
            .into_iter()
            .map(|view| {
                let resident_bytes =
                    view.bound.iter().map(|&c| self.mm.resident_bytes(c)).sum::<u64>();
                let (swap_in_bytes, swap_out_bytes) = self.mm.device_swap_traffic(view.id);
                DeviceUtilization {
                    device: view.id,
                    resident_bytes,
                    swap_in_bytes,
                    swap_out_bytes,
                    bound_contexts: view.bound.len() as u32,
                    queue_depth: view.gpu.compute_queue_depth(),
                }
            })
            .collect();
        snap
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Current load, for cluster-level scheduling and offload decisions.
    pub fn load(&self) -> LoadInfo {
        LoadInfo {
            contexts: self.active_conns.load(Ordering::SeqCst).max(self.registry.lock().len()),
            waiting: self.bm.waiting_count(),
            bound: self.bm.bound_count(),
            total_vgpus: self.bm.total_vgpus(),
        }
    }

    /// Accepts a connection: spawns a handler thread serving it. The
    /// handler itself may turn into a relay to a peer node when the first
    /// call arrives while the backlog exceeds the offload threshold (§4.7).
    pub fn connect(self: &Arc<Self>, conn: Box<dyn ServerConn>) {
        self.active_conns.fetch_add(1, Ordering::SeqCst);
        let rt = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("mtgpu-conn".into())
            .spawn(move || {
                service::serve_connection(Arc::clone(&rt), conn);
                rt.active_conns.fetch_sub(1, Ordering::SeqCst);
            })
            .expect("spawn connection handler");
        self.handlers.lock().push(handle);
    }

    /// Tries to claim a local-service slot for a new connection; `false`
    /// means the node is at its threshold and the connection should be
    /// offloaded (§4.7).
    pub(crate) fn try_keep_local(&self) -> bool {
        self.local_slots
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| (v > 0).then(|| v - 1))
            .is_ok()
    }

    /// Returns a previously claimed local-service slot.
    pub(crate) fn release_local_slot(&self) {
        self.local_slots.fetch_add(1, Ordering::SeqCst);
    }

    /// Forces a slot claim for a connection that must be served locally
    /// (offloaded-in, or no peer reachable).
    pub(crate) fn force_keep_local(&self) {
        self.local_slots.fetch_sub(1, Ordering::SeqCst);
    }

    /// Relays a connection (whose first call has already been read) to a
    /// peer node over TCP. Returns the connection back if no peer is
    /// reachable, so the caller serves it locally.
    pub(crate) fn relay(
        &self,
        ctx: CtxId,
        mut conn: Box<dyn ServerConn>,
        first: mtgpu_api::CudaCall,
    ) -> Result<(), (Box<dyn ServerConn>, mtgpu_api::CudaCall)> {
        let idx = self.offload_rr.fetch_add(1, Ordering::Relaxed) as usize;
        let peer = self.cfg.offload_peers[idx % self.cfg.offload_peers.len()].clone();
        let mut transport = match mtgpu_api::transport::TcpTransport::connect(peer.as_str()) {
            Ok(t) => t,
            Err(_) => return Err((conn, first)),
        };
        RuntimeMetrics::bump(&self.metrics.offloaded_connections);
        self.tracer.record(TraceEvent::Offloaded { ctx, peer: peer.clone() });
        // This connection no longer consumes local capacity.
        self.active_conns.fetch_sub(1, Ordering::SeqCst);
        // Mark the relayed stream so the peer never re-offloads it.
        let _ = transport.roundtrip(mtgpu_api::CudaCall::Offloaded);
        let mut next = Some(first);
        loop {
            let call = match next.take() {
                Some(c) => c,
                None => match conn.recv() {
                    Some(c) => c,
                    None => break,
                },
            };
            let done = matches!(call, mtgpu_api::CudaCall::Exit);
            let reply: CudaReply = transport.roundtrip(call);
            let sent = conn.send(reply);
            if !sent || done {
                break;
            }
        }
        self.active_conns.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Creates an in-process client connected to this runtime — the
    /// equivalent of an application thread linking the interposition
    /// library on this node.
    pub fn local_client(self: &Arc<Self>) -> FrontendClient<ChannelTransport> {
        let (transport, server) = channel_pair();
        self.connect(Box::new(server));
        FrontendClient::new(transport)
    }

    /// Hot-attaches a device (dynamic upgrade, §2): registers it with the
    /// driver and spawns vGPUs; waiting contexts bind to it immediately.
    pub fn attach_device(&self, spec: GpuSpec) -> DeviceId {
        let id = self.driver.attach(spec);
        let gpu = self.driver.device(id).expect("just attached");
        if let Err(e) = self.bm.add_device(id, gpu, self.cfg.vgpus_per_device) {
            panic!("cannot spawn vGPUs on hot-attached {id}: {e:?}");
        }
        id
    }

    /// Hot-detaches a device (dynamic downgrade, §2). Contexts bound to it
    /// are recovered by the fault monitor exactly as for a failure.
    pub fn detach_device(&self, id: DeviceId) {
        let _ = self.driver.detach(id);
        // The monitor notices the failed device and recovers its contexts;
        // nudge waiters so nobody sleeps through the event.
        // mtlint: allow(notify-all, reason = "device topology changed: every parked waiter must re-run placement against the new device set")
        self.bm.notify_all();
    }

    /// Registers a new application context (one per connection).
    pub(crate) fn new_context(&self, label: String) -> Arc<AppContext> {
        let id = CtxId(self.next_ctx.fetch_add(1, Ordering::Relaxed));
        let ctx = AppContext::new(id, id.0, label.clone());
        self.mm.register_ctx(id);
        self.policy.register_ctx(id, self.clock.now());
        self.registry.lock().insert(id, Arc::clone(&ctx));
        self.tracer.record(TraceEvent::ContextCreated { ctx: id, label });
        ctx
    }

    /// Looks up a context.
    pub(crate) fn context(&self, id: CtxId) -> Option<Arc<AppContext>> {
        self.registry.lock().get(&id).cloned()
    }

    /// Unregisters a finished context.
    pub(crate) fn drop_context(&self, id: CtxId) {
        self.policy.release_ctx(id);
        self.registry.lock().remove(&id);
        self.tracer.record(TraceEvent::ContextFinished { ctx: id });
    }

    /// Releases a context that never served a call (its connection was
    /// relayed to a peer before any work happened).
    pub(crate) fn drop_context_of(&self, ctx: &Arc<AppContext>) {
        self.mm.remove_ctx(ctx.id, None);
        self.policy.release_ctx(ctx.id);
        self.registry.lock().remove(&ctx.id);
    }

    /// Number of live application contexts (connections whose handler has
    /// not yet torn down). Deterministic harnesses use this as a barrier
    /// after severing a transport: the count drops exactly when the
    /// handler's cleanup — memory release, vGPU release — has completed.
    pub fn context_count(&self) -> usize {
        self.registry.lock().len()
    }

    /// Blocks until every connection has drained or `timeout` passes.
    /// Returns `true` if the runtime went idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        // mtlint: allow(wall-clock, reason = "test/operator barrier against real handler threads; never part of a deterministic replay")
        let deadline = Instant::now() + timeout;
        // mtlint: allow(wall-clock, reason = "test/operator barrier against real handler threads; never part of a deterministic replay")
        while Instant::now() < deadline {
            if self.registry.lock().is_empty() {
                return true;
            }
            // mtlint: allow(thread-sleep, reason = "polling real handler-thread teardown, not simulated time")
            std::thread::sleep(Duration::from_millis(1));
        }
        self.registry.lock().is_empty()
    }

    /// Requests shutdown and joins all handler and monitor threads.
    /// Connections still open get `Disconnected`-style terminations as
    /// their peers drop.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // mtlint: allow(notify-all, reason = "shutdown broadcast: every parked waiter must observe the flag and unwind")
        self.bm.notify_all();
        if let Some(m) = self.monitor.lock().take() {
            let _ = m.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock());
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for NodeRuntime {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // mtlint: allow(notify-all, reason = "shutdown broadcast: every parked waiter must observe the flag and unwind")
        self.bm.notify_all();
        if let Some(m) = self.monitor.lock().take() {
            let _ = m.join();
        }
    }
}

impl std::fmt::Debug for NodeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRuntime")
            .field("devices", &self.driver.device_count())
            .field("contexts", &self.registry.lock().len())
            .finish()
    }
}

/// Convenience: map an error when a reply is needed in offload paths.
#[allow(dead_code)]
fn disconnected() -> CudaError {
    CudaError::Disconnected
}
