//! Runtime-wide counters: the numbers the paper annotates its figures with
//! (swap operations in Figs. 7–8, migrations in Fig. 9, offloads in §5.4).

use mtgpu_gpusim::DeviceId;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters owned by the node runtime.
#[derive(Debug, Default)]
pub struct RuntimeMetrics {
    /// Intra-application swap-outs (per PTE evicted), §4.5.
    pub intra_app_swaps: AtomicU64,
    /// Inter-application swap-outs (per victim context), §4.5.
    pub inter_app_swaps: AtomicU64,
    /// Bytes moved device→swap by swap operations.
    pub swap_bytes: AtomicU64,
    /// Bytes freed by `swap_out_ctx` without a writeback because the entry
    /// was clean (swap slab already current) — bandwidth the deferral
    /// machinery saved.
    pub swap_bytes_skipped_clean: AtomicU64,
    /// Transfer plans (materialize/swap/checkpoint batches) executed.
    pub transfer_plans: AtomicU64,
    /// Plans that put more than one transfer in flight at once (≥2 ops on
    /// ≥2 copy-engine lanes).
    pub transfer_overlap_events: AtomicU64,
    /// `copy_d2d` calls served device-side (one bus copy) instead of the
    /// host D2H+H2D double hop.
    pub d2d_device_copies: AtomicU64,
    /// Contexts migrated between devices (dynamic binding), §5.3.4.
    pub migrations: AtomicU64,
    /// Live migrations (`migrate_ctx`): quiesce → transfer → rebind →
    /// resume without routing the working set through the swap tier.
    pub live_migrations: AtomicU64,
    /// Bytes moved device-to-device by live migrations (peer DMA lanes).
    pub migration_p2p_bytes: AtomicU64,
    /// Live migrations aborted and rolled back (destination full, device
    /// death mid-transfer); the context stayed fully on its source.
    pub migration_failures: AtomicU64,
    /// Migrations initiated by the utilization rebalancer (subset of
    /// `live_migrations`).
    pub rebalance_migrations: AtomicU64,
    /// Connections relayed to another node, §4.7.
    pub offloaded_connections: AtomicU64,
    /// Context-to-vGPU bindings granted.
    pub bindings: AtomicU64,
    /// Unbinds of any kind (victim, voluntary, failure).
    pub unbindings: AtomicU64,
    /// Kernel launches serviced.
    pub launches: AtomicU64,
    /// Launches that had to unbind-and-retry for lack of memory.
    pub launch_retries: AtomicU64,
    /// Host→device bulk uploads performed at launch time.
    pub bulk_uploads: AtomicU64,
    /// Application copy calls absorbed into an already-dirty swap slab
    /// (the "single, bulk memory transfer" optimization, §4.5).
    pub coalesced_copies: AtomicU64,
    /// Bad memory operations rejected before reaching the GPU (§4.5).
    pub bad_ops_rejected: AtomicU64,
    /// Checkpoints taken (explicit + automatic).
    pub checkpoints: AtomicU64,
    /// Contexts recovered after a device failure/removal.
    pub recovered_contexts: AtomicU64,
    /// Contexts lost to a device failure (dirty data without checkpoint).
    pub failed_contexts: AtomicU64,
    /// Grants delivered by waking exactly the granted waiter (sharded
    /// dispatcher; the seed code woke every parked waiter per release).
    pub targeted_wakeups: AtomicU64,
    /// Parked waiters asked to re-run placement (device removed, or a slot
    /// freed on another device).
    pub waiter_reroutes: AtomicU64,
    /// Contended ranked-lock acquisitions observed by the monitor (debug
    /// builds only; release builds compile the probe out, and sequential
    /// deterministic drivers never contend, so this stays 0 under replay).
    pub lock_contention_events: AtomicU64,
    /// Requests served through the multiplexed gateway (DESIGN.md §12).
    pub mux_requests: AtomicU64,
    /// Multiplexed launches requeued because binding acquisition exceeded
    /// the worker's bounded slice (the would-block path).
    pub mux_retries: AtomicU64,
    /// Channels (contexts) opened over multiplexed connections.
    pub mux_channels: AtomicU64,
    /// Allocations/context creations refused by the admission controller
    /// (tenant over its lease's `mem_mb`/`max_contexts`, or the node over
    /// its global admission cap).
    pub quota_rejections: AtomicU64,
    /// Tenant leases that reached their TTL on the virtual clock.
    pub lease_expiries: AtomicU64,
    /// Contexts reaped (failed + evicted + freed) because their tenant's
    /// lease expired.
    pub lease_reaps: AtomicU64,
    /// Lower-priority victim contexts evicted by priority preemption.
    pub priority_preemptions: AtomicU64,
    /// Requests rejected by Guardian-style descriptor validation before
    /// reaching scheduling or dispatch.
    pub descriptor_rejections: AtomicU64,
    /// Prefetch plans issued ahead of a launch (non-empty predicted sets).
    pub prefetch_plans: AtomicU64,
    /// Bytes committed to the device by async prefetch.
    pub prefetch_bytes: AtomicU64,
    /// Prefetch candidates planned but cancelled before commit (allocation
    /// lost to eviction mid-flight, device error, or stale flags).
    pub prefetch_cancelled: AtomicU64,
    /// Launches whose materialization split into two waves, dispatching the
    /// kernel after wave 1 while wave 2 streamed on the speculative lane.
    pub double_buffer_launches: AtomicU64,
}

/// One device's utilization sample, taken when a [`MetricsSnapshot`] is
/// assembled: the pressure signals the rebalancer scores placements with
/// (DESIGN.md §15), surfaced so operators can see them too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceUtilization {
    pub device: DeviceId,
    /// Bytes currently device-resident across every context bound here.
    pub resident_bytes: u64,
    /// Cumulative bytes swapped *in* to this device (uploads via
    /// materialize/prefetch commits).
    pub swap_in_bytes: u64,
    /// Cumulative bytes swapped *out* of this device (writebacks).
    pub swap_out_bytes: u64,
    /// Contexts currently bound to this device's vGPUs.
    pub bound_contexts: u32,
    /// Kernels queued or running on the compute engine right now.
    pub queue_depth: u64,
}

/// Serializable snapshot of [`RuntimeMetrics`].
///
/// `per_device` is populated by [`crate::NodeRuntime::metrics`] (the raw
/// counter struct has no device axis); snapshots taken straight off
/// [`RuntimeMetrics::snapshot`] leave it empty.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub intra_app_swaps: u64,
    pub inter_app_swaps: u64,
    pub swap_bytes: u64,
    pub swap_bytes_skipped_clean: u64,
    pub transfer_plans: u64,
    pub transfer_overlap_events: u64,
    pub d2d_device_copies: u64,
    pub migrations: u64,
    pub live_migrations: u64,
    pub migration_p2p_bytes: u64,
    pub migration_failures: u64,
    pub rebalance_migrations: u64,
    pub offloaded_connections: u64,
    pub bindings: u64,
    pub unbindings: u64,
    pub launches: u64,
    pub launch_retries: u64,
    pub bulk_uploads: u64,
    pub coalesced_copies: u64,
    pub bad_ops_rejected: u64,
    pub checkpoints: u64,
    pub recovered_contexts: u64,
    pub failed_contexts: u64,
    pub targeted_wakeups: u64,
    pub waiter_reroutes: u64,
    pub lock_contention_events: u64,
    pub mux_requests: u64,
    pub mux_retries: u64,
    pub mux_channels: u64,
    pub quota_rejections: u64,
    pub lease_expiries: u64,
    pub lease_reaps: u64,
    pub priority_preemptions: u64,
    pub descriptor_rejections: u64,
    pub prefetch_plans: u64,
    pub prefetch_bytes: u64,
    pub prefetch_cancelled: u64,
    pub double_buffer_launches: u64,
    /// Per-device utilization samples, in device-id order (empty unless
    /// assembled by the node runtime).
    pub per_device: Vec<DeviceUtilization>,
}

impl MetricsSnapshot {
    /// Total swap operations, the per-bar annotation of Figs. 7–8.
    pub fn total_swaps(&self) -> u64 {
        self.intra_app_swaps + self.inter_app_swaps
    }
}

impl RuntimeMetrics {
    /// Increment a counter by one.
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment a counter by `v`.
    #[inline]
    pub fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    /// Takes a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            intra_app_swaps: self.intra_app_swaps.load(Ordering::Relaxed),
            inter_app_swaps: self.inter_app_swaps.load(Ordering::Relaxed),
            swap_bytes: self.swap_bytes.load(Ordering::Relaxed),
            swap_bytes_skipped_clean: self.swap_bytes_skipped_clean.load(Ordering::Relaxed),
            transfer_plans: self.transfer_plans.load(Ordering::Relaxed),
            transfer_overlap_events: self.transfer_overlap_events.load(Ordering::Relaxed),
            d2d_device_copies: self.d2d_device_copies.load(Ordering::Relaxed),
            migrations: self.migrations.load(Ordering::Relaxed),
            live_migrations: self.live_migrations.load(Ordering::Relaxed),
            migration_p2p_bytes: self.migration_p2p_bytes.load(Ordering::Relaxed),
            migration_failures: self.migration_failures.load(Ordering::Relaxed),
            rebalance_migrations: self.rebalance_migrations.load(Ordering::Relaxed),
            offloaded_connections: self.offloaded_connections.load(Ordering::Relaxed),
            bindings: self.bindings.load(Ordering::Relaxed),
            unbindings: self.unbindings.load(Ordering::Relaxed),
            launches: self.launches.load(Ordering::Relaxed),
            launch_retries: self.launch_retries.load(Ordering::Relaxed),
            bulk_uploads: self.bulk_uploads.load(Ordering::Relaxed),
            coalesced_copies: self.coalesced_copies.load(Ordering::Relaxed),
            bad_ops_rejected: self.bad_ops_rejected.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            recovered_contexts: self.recovered_contexts.load(Ordering::Relaxed),
            failed_contexts: self.failed_contexts.load(Ordering::Relaxed),
            targeted_wakeups: self.targeted_wakeups.load(Ordering::Relaxed),
            waiter_reroutes: self.waiter_reroutes.load(Ordering::Relaxed),
            lock_contention_events: self.lock_contention_events.load(Ordering::Relaxed),
            mux_requests: self.mux_requests.load(Ordering::Relaxed),
            mux_retries: self.mux_retries.load(Ordering::Relaxed),
            mux_channels: self.mux_channels.load(Ordering::Relaxed),
            quota_rejections: self.quota_rejections.load(Ordering::Relaxed),
            lease_expiries: self.lease_expiries.load(Ordering::Relaxed),
            lease_reaps: self.lease_reaps.load(Ordering::Relaxed),
            priority_preemptions: self.priority_preemptions.load(Ordering::Relaxed),
            descriptor_rejections: self.descriptor_rejections.load(Ordering::Relaxed),
            prefetch_plans: self.prefetch_plans.load(Ordering::Relaxed),
            prefetch_bytes: self.prefetch_bytes.load(Ordering::Relaxed),
            prefetch_cancelled: self.prefetch_cancelled.load(Ordering::Relaxed),
            double_buffer_launches: self.double_buffer_launches.load(Ordering::Relaxed),
            per_device: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_totals() {
        let m = RuntimeMetrics::default();
        RuntimeMetrics::bump(&m.intra_app_swaps);
        RuntimeMetrics::bump(&m.intra_app_swaps);
        RuntimeMetrics::bump(&m.inter_app_swaps);
        RuntimeMetrics::add(&m.swap_bytes, 1024);
        let s = m.snapshot();
        assert_eq!(s.total_swaps(), 3);
        assert_eq!(s.swap_bytes, 1024);
    }
}
