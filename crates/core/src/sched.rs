//! Virtual-GPU slots and the binding manager (§4.3–§4.4).
//!
//! A *virtual GPU* is a share of a physical device with its own persistent
//! CUDA context, created at system startup ("virtual-GPUs are statically
//! bound to physical GPUs through a `cudaSetDevice` invoked at system
//! startup", §4.4). Each vGPU services one application context at a time;
//! limiting the vGPU count caps the contexts the CUDA runtime must sustain,
//! which is how the runtime stays stable under hundreds of applications.
//!
//! The [`BindingManager`] is the dispatcher's scheduling core: it tracks
//! free vGPUs per device, parks contexts that cannot bind (the paper's
//! *waiting contexts* list), and grants bindings according to the
//! configured [`SchedulerPolicy`] — FCFS round-robin with vGPU-count load
//! balancing (the policy of §5), shortest-job-first, or credit-based.

use crate::config::SchedulerPolicy;
use crate::ctx::{AppContext, Binding, CtxId, VGpuId};
use crate::metrics::RuntimeMetrics;
use mtgpu_gpusim::{DeviceId, Gpu, GpuContextId};
use mtgpu_simtime::DetRng;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One virtual GPU slot.
#[derive(Clone)]
pub struct VGpu {
    pub id: VGpuId,
    pub gpu: Arc<Gpu>,
    /// The vGPU's persistent CUDA context.
    pub gpu_ctx: GpuContextId,
}

struct DeviceSlots {
    gpu: Arc<Gpu>,
    vgpus: Vec<VGpu>,
    free: Vec<u32>,
    bound: HashMap<u32, (CtxId, Option<u64>)>,
}

impl DeviceSlots {
    fn bound_count(&self) -> usize {
        self.bound.len()
    }
}

struct WaitEntry {
    ctx: Arc<AppContext>,
    /// FIFO ticket.
    enq_seq: u64,
    /// Declared work of the launch that needs the binding (SJF key).
    pending_work: f64,
    /// Declared memory footprint (placement heuristic).
    mem_usage: u64,
    /// CUDA 4.0 application id (§4.8): constrains placement to the device
    /// already hosting the application's other threads.
    app_id: Option<u64>,
    /// Set when a grant has been made for this entry.
    granted: Option<Binding>,
}

struct BmState {
    devices: HashMap<DeviceId, DeviceSlots>,
    waiting: Vec<WaitEntry>,
    next_seq: u64,
    rr_cursor: usize,
    /// Seeded tie-break generator (`Some` when the runtime runs with a
    /// nonzero determinism seed); `None` keeps the legacy rotating cursor.
    rng: Option<DetRng>,
    /// CUDA 4.0 application → (device, bound thread count) affinity map.
    app_devices: HashMap<u64, (DeviceId, usize)>,
}

/// Read-only snapshot of one device's scheduling state.
#[derive(Debug, Clone)]
pub struct DeviceView {
    pub id: DeviceId,
    pub gpu: Arc<Gpu>,
    pub total_vgpus: usize,
    pub free_vgpus: usize,
    pub bound: Vec<CtxId>,
    pub effective_flops: f64,
    pub mem_available: u64,
}

/// Errors adding a device's vGPUs.
#[derive(Debug)]
pub enum AddDeviceError {
    /// Creating a vGPU's persistent context failed (device dead or full).
    ContextCreation(mtgpu_gpusim::GpuError),
}

/// The dispatcher's binding/scheduling core.
pub struct BindingManager {
    policy: SchedulerPolicy,
    metrics: Arc<RuntimeMetrics>,
    state: Mutex<BmState>,
    cv: Condvar,
}

impl BindingManager {
    /// Creates an empty manager with the legacy round-robin tie-break.
    pub fn new(policy: SchedulerPolicy, metrics: Arc<RuntimeMetrics>) -> Self {
        Self::new_seeded(policy, metrics, 0)
    }

    /// Creates an empty manager. A nonzero `seed` makes placement
    /// tie-breaks draw from a [`DetRng`] forked on `"sched"` instead of the
    /// rotating cursor, so the grant sequence is a pure function of the
    /// seed and the arrival order.
    pub fn new_seeded(policy: SchedulerPolicy, metrics: Arc<RuntimeMetrics>, seed: u64) -> Self {
        BindingManager {
            policy,
            metrics,
            state: Mutex::new(BmState {
                devices: HashMap::new(),
                waiting: Vec::new(),
                next_seq: 0,
                rr_cursor: 0,
                rng: (seed != 0).then(|| DetRng::from_seed(seed).fork("sched")),
                app_devices: HashMap::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Registers a device and spawns `count` vGPUs on it, creating each
    /// vGPU's persistent CUDA context.
    pub fn add_device(
        &self,
        id: DeviceId,
        gpu: Arc<Gpu>,
        count: u32,
    ) -> Result<(), AddDeviceError> {
        let mut vgpus = Vec::with_capacity(count as usize);
        for index in 0..count {
            let gpu_ctx = gpu.create_context().map_err(AddDeviceError::ContextCreation)?;
            vgpus.push(VGpu { id: VGpuId { device: id, index }, gpu: Arc::clone(&gpu), gpu_ctx });
        }
        let mut st = self.state.lock();
        st.devices.insert(
            id,
            DeviceSlots { gpu, free: (0..count).collect(), bound: HashMap::new(), vgpus },
        );
        drop(st);
        self.cv.notify_all();
        Ok(())
    }

    /// Removes a device (failure or hot detach), returning the contexts
    /// that were bound to it. Their device state must be recovered by the
    /// caller via the memory manager.
    pub fn remove_device(&self, id: DeviceId) -> Vec<CtxId> {
        let mut st = self.state.lock();
        match st.devices.remove(&id) {
            Some(slots) => {
                for (_, app) in slots.bound.values() {
                    if let Some(app) = app {
                        Self::app_release(&mut st.app_devices, *app);
                    }
                }
                let mut affected: Vec<CtxId> = slots.bound.values().map(|&(c, _)| c).collect();
                // Hash-map order would make recovery order run-dependent.
                affected.sort_unstable();
                affected
            }
            None => Vec::new(),
        }
    }

    fn app_release(map: &mut HashMap<u64, (DeviceId, usize)>, app: u64) {
        if let Some((_, count)) = map.get_mut(&app) {
            *count -= 1;
            if *count == 0 {
                map.remove(&app);
            }
        }
    }

    /// Whether a device is registered.
    pub fn has_device(&self, id: DeviceId) -> bool {
        self.state.lock().devices.contains_key(&id)
    }

    /// Blocks until a vGPU is granted to `ctx` (per policy) or `timeout`
    /// expires. The granted binding is also written into the context's
    /// metadata by the caller.
    pub fn acquire(
        &self,
        ctx: &Arc<AppContext>,
        pending_work: f64,
        mem_usage: u64,
        timeout: Duration,
    ) -> Option<Binding> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        // Keep the context's original FCFS position across re-armed waits.
        let enq_seq = {
            let mut inner = ctx.inner();
            match inner.wait_ticket {
                Some(t) => t,
                None => {
                    let t = st.next_seq;
                    st.next_seq += 1;
                    inner.wait_ticket = Some(t);
                    t
                }
            }
        };
        let app_id = ctx.inner().app_id;
        st.waiting.push(WaitEntry {
            ctx: Arc::clone(ctx),
            enq_seq,
            pending_work,
            mem_usage,
            app_id,
            granted: None,
        });
        loop {
            Self::drain_grants(&mut st, self.policy, &self.metrics);
            if let Some(pos) =
                st.waiting.iter().position(|w| w.ctx.id == ctx.id && w.granted.is_some())
            {
                let entry = st.waiting.remove(pos);
                drop(st);
                ctx.inner().wait_ticket = None;
                // Someone may still be grantable.
                self.cv.notify_all();
                return entry.granted;
            }
            let timed_out = self.cv.wait_until(&mut st, deadline).timed_out();
            if timed_out {
                if let Some(pos) = st.waiting.iter().position(|w| w.ctx.id == ctx.id) {
                    let entry = st.waiting.remove(pos);
                    if entry.granted.is_some() {
                        // Granted at the buzzer: take it.
                        drop(st);
                        ctx.inner().wait_ticket = None;
                        self.cv.notify_all();
                        return entry.granted;
                    }
                }
                return None;
            }
        }
    }

    /// Grants free vGPUs to waiting entries, policy order, until slots or
    /// placeable waiters run out. An entry with CUDA 4.0 application
    /// affinity is only placeable on its application's device; other
    /// waiters are not blocked behind it.
    fn drain_grants(st: &mut BmState, policy: SchedulerPolicy, metrics: &RuntimeMetrics) {
        'outer: loop {
            if !st.devices.values().any(|d| !d.free.is_empty() && !d.gpu.is_failed()) {
                return;
            }
            for idx in Self::ordered_waiters(st, policy) {
                let mem_usage = st.waiting[idx].mem_usage;
                let app_id = st.waiting[idx].app_id;
                let affinity = app_id.and_then(|a| st.app_devices.get(&a).map(|&(d, _)| d));
                let dev_id = match affinity {
                    Some(dev) => {
                        let free = st
                            .devices
                            .get(&dev)
                            .is_some_and(|d| !d.free.is_empty() && !d.gpu.is_failed());
                        if free {
                            Some(dev)
                        } else {
                            // The application's device is full or gone:
                            // this thread waits (re-placement happens once
                            // the affinity count drops to zero).
                            if !st.devices.contains_key(&dev) {
                                // Device removed entirely: drop the stale
                                // affinity so the app can regroup elsewhere.
                                st.app_devices.remove(&app_id.expect("affinity without app"));
                            }
                            None
                        }
                    }
                    None => Self::pick_device(st, mem_usage),
                };
                let Some(dev_id) = dev_id else { continue };
                let slots = st.devices.get_mut(&dev_id).expect("picked device vanished");
                let vgpu_idx = slots.free.pop().expect("picked device had no free slot");
                let vgpu = slots.vgpus[vgpu_idx as usize].clone();
                let entry = &mut st.waiting[idx];
                slots.bound.insert(vgpu_idx, (entry.ctx.id, app_id));
                entry.granted =
                    Some(Binding { vgpu: vgpu.id, gpu: vgpu.gpu, gpu_ctx: vgpu.gpu_ctx });
                if policy == SchedulerPolicy::CreditBased {
                    let mut inner = entry.ctx.inner();
                    inner.credits = inner.credits.saturating_sub(1);
                }
                if let Some(app) = app_id {
                    st.app_devices.entry(app).or_insert((dev_id, 0)).1 += 1;
                }
                RuntimeMetrics::bump(&metrics.bindings);
                continue 'outer;
            }
            return;
        }
    }

    /// Waiting-entry indices without a grant, in policy order.
    fn ordered_waiters(st: &mut BmState, policy: SchedulerPolicy) -> Vec<usize> {
        let mut candidates: Vec<usize> = st
            .waiting
            .iter()
            .enumerate()
            .filter(|(_, w)| w.granted.is_none())
            .map(|(i, _)| i)
            .collect();
        match policy {
            SchedulerPolicy::FcfsRoundRobin => {
                candidates.sort_by_key(|&i| st.waiting[i].enq_seq);
            }
            SchedulerPolicy::ShortestJobFirst => {
                candidates.sort_by(|&a, &b| {
                    st.waiting[a]
                        .pending_work
                        .total_cmp(&st.waiting[b].pending_work)
                        .then(st.waiting[a].enq_seq.cmp(&st.waiting[b].enq_seq))
                });
            }
            SchedulerPolicy::CreditBased => {
                if !candidates.is_empty()
                    && candidates.iter().all(|&i| st.waiting[i].ctx.inner().credits == 0)
                {
                    for &i in &candidates {
                        st.waiting[i].ctx.inner().credits = 4;
                    }
                }
                candidates.sort_by_key(|&i| {
                    (u32::MAX - st.waiting[i].ctx.inner().credits, st.waiting[i].enq_seq)
                });
            }
        }
        candidates
    }

    /// Chooses the device for a grant among healthy devices with a free
    /// vGPU: lowest capability-weighted load first — `(bound+1) / relative
    /// speed`, the §2 principle of "maximizing the overall processor
    /// utilization while favoring the use of more powerful cores" — then
    /// preferring devices whose free memory fits the context, round-robin
    /// tiebreak.
    fn pick_device(st: &mut BmState, mem_usage: u64) -> Option<DeviceId> {
        let mut ids: Vec<DeviceId> = st
            .devices
            .iter()
            .filter(|(_, d)| !d.free.is_empty() && !d.gpu.is_failed())
            .map(|(&id, _)| id)
            .collect();
        if ids.is_empty() {
            return None;
        }
        ids.sort_by_key(|id| id.0);
        let rr = match st.rng.as_mut() {
            Some(rng) => rng.next_u64() as usize,
            None => {
                let rr = st.rr_cursor;
                st.rr_cursor = st.rr_cursor.wrapping_add(1);
                rr
            }
        };
        // Evaluate the placement key exactly once per device:
        // `mem_available()` reads live device state that other threads may
        // change between passes.
        let max_flops = ids
            .iter()
            .map(|id| st.devices[id].gpu.spec().effective_flops())
            .fold(f64::MIN, f64::max);
        let keyed: Vec<(DeviceId, f64, bool)> = ids
            .into_iter()
            .map(|id| {
                let d = &st.devices[&id];
                let fits = d.gpu.mem_available() >= mem_usage;
                let speed = d.gpu.spec().effective_flops() / max_flops;
                let load = (d.bound_count() + 1) as f64 / speed;
                (id, load, fits)
            })
            .collect();
        let min_load = keyed.iter().map(|&(_, l, _)| l).fold(f64::INFINITY, f64::min);
        // Among near-equal loads (within 5%), prefer memory fit, then rotate.
        let tied: Vec<DeviceId> = {
            let close: Vec<&(DeviceId, f64, bool)> =
                keyed.iter().filter(|&&(_, l, _)| l <= min_load * 1.05).collect();
            let any_fits = close.iter().any(|&&(_, _, f)| f);
            close.into_iter().filter(|&&(_, _, f)| f == any_fits).map(|&(id, _, _)| id).collect()
        };
        Some(tied[rr % tied.len()])
    }

    /// Releases the vGPU bound to `ctx_id`. Safe to call from the owner
    /// handler, a swapper or the fault path.
    pub fn release(&self, ctx_id: CtxId, vgpu: VGpuId) {
        let mut st = self.state.lock();
        if let Some(slots) = st.devices.get_mut(&vgpu.device) {
            match slots.bound.remove(&vgpu.index) {
                Some((owner, app)) if owner == ctx_id => {
                    slots.free.push(vgpu.index);
                    if let Some(app) = app {
                        Self::app_release(&mut st.app_devices, app);
                    }
                }
                other => {
                    debug_assert!(other.is_none(), "release of unbound vGPU {vgpu}");
                }
            }
        }
        drop(st);
        RuntimeMetrics::bump(&self.metrics.unbindings);
        self.cv.notify_all();
    }

    /// Immediately grants a free vGPU on `device` to `ctx_id`, bypassing the
    /// waiting queue — the migration path (§5.3.4), only legal when nothing
    /// is waiting (checked here).
    pub fn try_acquire_on(&self, ctx_id: CtxId, device: DeviceId) -> Option<Binding> {
        let mut st = self.state.lock();
        if st.waiting.iter().any(|w| w.granted.is_none()) {
            return None;
        }
        let slots = st.devices.get_mut(&device)?;
        if slots.gpu.is_failed() {
            return None;
        }
        let vgpu_idx = slots.free.pop()?;
        slots.bound.insert(vgpu_idx, (ctx_id, None));
        let vgpu = slots.vgpus[vgpu_idx as usize].clone();
        RuntimeMetrics::bump(&self.metrics.bindings);
        Some(Binding { vgpu: vgpu.id, gpu: vgpu.gpu, gpu_ctx: vgpu.gpu_ctx })
    }

    /// Contexts currently bound to `device`, in context-id order (the
    /// backing map is hashed; sorting keeps every consumer — victim
    /// selection, recovery — deterministic across process runs).
    pub fn bound_on(&self, device: DeviceId) -> Vec<CtxId> {
        let mut bound: Vec<CtxId> = self
            .state
            .lock()
            .devices
            .get(&device)
            .map(|d| d.bound.values().map(|&(c, _)| c).collect())
            .unwrap_or_default();
        bound.sort_unstable();
        bound
    }

    /// Snapshot of every registered device.
    pub fn device_views(&self) -> Vec<DeviceView> {
        let st = self.state.lock();
        let mut views: Vec<DeviceView> = st
            .devices
            .iter()
            .map(|(&id, d)| DeviceView {
                id,
                gpu: Arc::clone(&d.gpu),
                total_vgpus: d.vgpus.len(),
                free_vgpus: d.free.len(),
                bound: {
                    let mut b: Vec<CtxId> = d.bound.values().map(|&(c, _)| c).collect();
                    b.sort_unstable();
                    b
                },
                effective_flops: d.gpu.spec().effective_flops(),
                mem_available: d.gpu.mem_available(),
            })
            .collect();
        views.sort_by_key(|v| v.id.0);
        views
    }

    /// Number of contexts waiting for a binding.
    pub fn waiting_count(&self) -> usize {
        self.state.lock().waiting.iter().filter(|w| w.granted.is_none()).count()
    }

    /// Number of contexts currently bound.
    pub fn bound_count(&self) -> usize {
        self.state.lock().devices.values().map(|d| d.bound_count()).sum()
    }

    /// Total vGPUs across healthy devices — what `cudaGetDeviceCount`
    /// reports to applications (§4.3).
    pub fn total_vgpus(&self) -> usize {
        self.state
            .lock()
            .devices
            .values()
            .filter(|d| !d.gpu.is_failed())
            .map(|d| d.vgpus.len())
            .sum()
    }

    /// The spec of the physical device backing virtual device `index`
    /// (vGPUs enumerated device-major).
    pub fn vgpu_spec(&self, index: u32) -> Option<mtgpu_gpusim::GpuSpec> {
        let st = self.state.lock();
        let mut ids: Vec<&DeviceId> = st.devices.keys().collect();
        ids.sort();
        let mut remaining = index as usize;
        for id in ids {
            let d = &st.devices[id];
            if remaining < d.vgpus.len() {
                return Some(d.gpu.spec().clone());
            }
            remaining -= d.vgpus.len();
        }
        None
    }

    /// Wakes every parked waiter (used on shutdown and device events).
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtgpu_gpusim::GpuSpec;
    use mtgpu_simtime::Clock;

    fn setup(n_devices: u32, vgpus: u32) -> (Arc<BindingManager>, Vec<Arc<Gpu>>) {
        let clock = Clock::with_scale(1e-7);
        let bm = Arc::new(BindingManager::new(
            SchedulerPolicy::FcfsRoundRobin,
            Arc::new(RuntimeMetrics::default()),
        ));
        let mut gpus = Vec::new();
        for i in 0..n_devices {
            let gpu = Gpu::new(GpuSpec::test_small(), clock.clone(), i);
            bm.add_device(DeviceId(i), Arc::clone(&gpu), vgpus).unwrap();
            gpus.push(gpu);
        }
        (bm, gpus)
    }

    fn ctx(id: u64) -> Arc<AppContext> {
        AppContext::new(CtxId(id), id, format!("j{id}"))
    }

    #[test]
    fn grants_up_to_capacity_then_blocks() {
        let (bm, _) = setup(1, 2);
        let a = ctx(1);
        let b = ctx(2);
        let c = ctx(3);
        let ba = bm.acquire(&a, 1.0, 0, Duration::from_millis(200)).unwrap();
        let bb = bm.acquire(&b, 1.0, 0, Duration::from_millis(200)).unwrap();
        assert_ne!(ba.vgpu, bb.vgpu);
        assert_eq!(bm.bound_count(), 2);
        // Third context times out.
        assert!(bm.acquire(&c, 1.0, 0, Duration::from_millis(30)).is_none());
        // Releasing one slot lets it in.
        bm.release(a.id, ba.vgpu);
        let bc = bm.acquire(&c, 1.0, 0, Duration::from_millis(200)).unwrap();
        assert_eq!(bc.vgpu, ba.vgpu);
    }

    #[test]
    fn release_wakes_blocked_waiter() {
        let (bm, _) = setup(1, 1);
        let a = ctx(1);
        let b = ctx(2);
        let ba = bm.acquire(&a, 1.0, 0, Duration::from_secs(1)).unwrap();
        let bm2 = Arc::clone(&bm);
        let b2 = Arc::clone(&b);
        let waiter =
            std::thread::spawn(move || bm2.acquire(&b2, 1.0, 0, Duration::from_secs(5)).is_some());
        while bm.waiting_count() == 0 {
            std::hint::spin_loop();
        }
        bm.release(a.id, ba.vgpu);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn load_balances_across_devices() {
        let (bm, _) = setup(3, 4);
        let mut per_device = HashMap::new();
        for i in 0..6 {
            let c = ctx(i);
            let b = bm.acquire(&c, 1.0, 0, Duration::from_millis(200)).unwrap();
            *per_device.entry(b.vgpu.device).or_insert(0) += 1;
        }
        // 6 jobs over 3 devices → 2 each under vGPU-uniform balancing.
        assert_eq!(per_device.len(), 3);
        assert!(per_device.values().all(|&n| n == 2), "{per_device:?}");
    }

    #[test]
    fn sjf_prefers_short_jobs() {
        let clock = Clock::with_scale(1e-7);
        let bm = Arc::new(BindingManager::new(
            SchedulerPolicy::ShortestJobFirst,
            Arc::new(RuntimeMetrics::default()),
        ));
        let gpu = Gpu::new(GpuSpec::test_small(), clock, 0);
        bm.add_device(DeviceId(0), gpu, 1).unwrap();
        let holder = ctx(0);
        let hb = bm.acquire(&holder, 1.0, 0, Duration::from_millis(200)).unwrap();
        // Park a long job, then a short job.
        let long = ctx(1);
        let short = ctx(2);
        let bm_l = Arc::clone(&bm);
        let long2 = Arc::clone(&long);
        let t_long = std::thread::spawn(move || {
            bm_l.acquire(&long2, 1e12, 0, Duration::from_secs(5)).map(|b| b.vgpu)
        });
        while bm.waiting_count() < 1 {
            std::hint::spin_loop();
        }
        let bm_s = Arc::clone(&bm);
        let short2 = Arc::clone(&short);
        let t_short = std::thread::spawn(move || {
            bm_s.acquire(&short2, 1e3, 0, Duration::from_secs(5)).map(|b| b.vgpu)
        });
        while bm.waiting_count() < 2 {
            std::hint::spin_loop();
        }
        // Free the slot: the SHORT job must get it first.
        bm.release(holder.id, hb.vgpu);
        let short_got = t_short.join().unwrap();
        assert!(short_got.is_some());
        // Long is still waiting; give it the slot to finish the test.
        bm.release(short.id, short_got.unwrap());
        assert!(t_long.join().unwrap().is_some());
    }

    #[test]
    fn failed_device_not_granted() {
        let (bm, gpus) = setup(2, 1);
        gpus[0].fail();
        for i in 0..1 {
            let c = ctx(i);
            let b = bm.acquire(&c, 1.0, 0, Duration::from_millis(200)).unwrap();
            assert_eq!(b.vgpu.device, DeviceId(1));
        }
    }

    #[test]
    fn remove_device_reports_bound_ctxs() {
        let (bm, _) = setup(1, 2);
        let a = ctx(1);
        let _ba = bm.acquire(&a, 1.0, 0, Duration::from_millis(200)).unwrap();
        let affected = bm.remove_device(DeviceId(0));
        assert_eq!(affected, vec![a.id]);
        assert!(!bm.has_device(DeviceId(0)));
        assert_eq!(bm.total_vgpus(), 0);
    }

    #[test]
    fn try_acquire_on_respects_waiting_queue() {
        let (bm, _) = setup(1, 1);
        let a = ctx(1);
        let _ba = bm.acquire(&a, 1.0, 0, Duration::from_millis(200)).unwrap();
        // Park a waiter.
        let bm2 = Arc::clone(&bm);
        let w = ctx(2);
        let w2 = Arc::clone(&w);
        let t = std::thread::spawn(move || bm2.acquire(&w2, 1.0, 0, Duration::from_millis(300)));
        while bm.waiting_count() == 0 {
            std::hint::spin_loop();
        }
        // Migration must refuse while a context is waiting.
        assert!(bm.try_acquire_on(CtxId(9), DeviceId(0)).is_none());
        let _ = t.join().unwrap();
    }

    #[test]
    fn seeded_tie_breaks_replay_bit_for_bit() {
        // Two managers with the same seed must produce the identical grant
        // sequence for the identical arrival order; a different seed is
        // allowed to differ (and does for this workload shape).
        let placement = |seed: u64| -> Vec<u32> {
            let clock = Clock::virtual_clock();
            let bm = Arc::new(BindingManager::new_seeded(
                SchedulerPolicy::FcfsRoundRobin,
                Arc::new(RuntimeMetrics::default()),
                seed,
            ));
            for i in 0..3 {
                let gpu = Gpu::new(GpuSpec::test_small(), clock.clone(), i);
                bm.add_device(DeviceId(i), gpu, 4).unwrap();
            }
            (0..9)
                .map(|i| {
                    let c = ctx(i);
                    let b = bm.acquire(&c, 1.0, 0, Duration::from_millis(200)).unwrap();
                    let dev = b.vgpu.device.0;
                    bm.release(c.id, b.vgpu);
                    dev
                })
                .collect()
        };
        assert_eq!(placement(42), placement(42));
        assert_eq!(placement(7), placement(7));
    }

    #[test]
    fn vgpu_enumeration_reports_virtual_count() {
        let (bm, _) = setup(2, 4);
        assert_eq!(bm.total_vgpus(), 8);
        assert!(bm.vgpu_spec(0).is_some());
        assert!(bm.vgpu_spec(7).is_some());
        assert!(bm.vgpu_spec(8).is_none());
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::config::SchedulerPolicy;
    use mtgpu_gpusim::GpuSpec;
    use mtgpu_simtime::Clock;

    fn bm_with(policy: SchedulerPolicy) -> Arc<BindingManager> {
        let bm = Arc::new(BindingManager::new(policy, Arc::new(RuntimeMetrics::default())));
        let gpu = Gpu::new(GpuSpec::test_small(), Clock::with_scale(1e-7), 0);
        bm.add_device(DeviceId(0), gpu, 1).unwrap();
        bm
    }

    fn ctx(id: u64) -> Arc<AppContext> {
        AppContext::new(CtxId(id), id, format!("p{id}"))
    }

    /// Parks `n` waiters behind a holder and returns them with their join
    /// handles, in arrival order.
    fn park_waiters(
        bm: &Arc<BindingManager>,
        ids: &[u64],
    ) -> Vec<std::thread::JoinHandle<Option<Binding>>> {
        let mut handles = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            let bm2 = Arc::clone(bm);
            let c = ctx(id);
            handles.push(std::thread::spawn(move || {
                bm2.acquire(&c, id as f64, 0, Duration::from_secs(5))
            }));
            while bm.waiting_count() < i + 1 {
                std::hint::spin_loop();
            }
        }
        handles
    }

    #[test]
    fn credit_based_depletes_and_refills() {
        let bm = bm_with(SchedulerPolicy::CreditBased);
        // Serial grants: each acquire succeeds immediately and burns one
        // credit of the context.
        let c = ctx(1);
        for expected in [3u32, 2, 1] {
            let b = bm.acquire(&c, 1.0, 0, Duration::from_millis(200)).unwrap();
            assert_eq!(c.inner().credits, expected);
            bm.release(c.id, b.vgpu);
        }
        // Fourth grant exhausts; a fifth refills (sole candidate) and works.
        let b = bm.acquire(&c, 1.0, 0, Duration::from_millis(200)).unwrap();
        assert_eq!(c.inner().credits, 0);
        bm.release(c.id, b.vgpu);
        let b = bm.acquire(&c, 1.0, 0, Duration::from_millis(200)).unwrap();
        assert_eq!(c.inner().credits, 3, "refill happened");
        bm.release(c.id, b.vgpu);
    }

    #[test]
    fn cuda4_affinity_constrains_placement() {
        let bm = Arc::new(BindingManager::new(
            SchedulerPolicy::FcfsRoundRobin,
            Arc::new(RuntimeMetrics::default()),
        ));
        let clock = Clock::with_scale(1e-7);
        for i in 0..2 {
            bm.add_device(DeviceId(i), Gpu::new(GpuSpec::test_small(), clock.clone(), i), 3)
                .unwrap();
        }
        // Thread 1 of app 7 binds somewhere.
        let a = ctx(1);
        a.inner().app_id = Some(7);
        let ba = bm.acquire(&a, 1.0, 0, Duration::from_millis(200)).unwrap();
        // Threads 2 and 3 of the same app must land on the same device even
        // though load balancing would spread them.
        for id in [2u64, 3] {
            let c = ctx(id);
            c.inner().app_id = Some(7);
            let b = bm.acquire(&c, 1.0, 0, Duration::from_millis(500)).unwrap();
            assert_eq!(b.vgpu.device, ba.vgpu.device, "app thread {id} strayed");
            // Keep it bound so the affinity stays pinned.
            std::mem::forget(b);
        }
    }

    #[test]
    fn cuda4_affinity_waits_rather_than_splits() {
        let bm = Arc::new(BindingManager::new(
            SchedulerPolicy::FcfsRoundRobin,
            Arc::new(RuntimeMetrics::default()),
        ));
        let clock = Clock::with_scale(1e-7);
        for i in 0..2 {
            bm.add_device(DeviceId(i), Gpu::new(GpuSpec::test_small(), clock.clone(), i), 1)
                .unwrap();
        }
        let a = ctx(1);
        a.inner().app_id = Some(9);
        let ba = bm.acquire(&a, 1.0, 0, Duration::from_millis(200)).unwrap();
        // A sibling cannot bind (its device has no free vGPU) even though
        // the other device is idle — and an unrelated context can overtake
        // it onto the idle device.
        let sibling = ctx(2);
        sibling.inner().app_id = Some(9);
        let bm2 = Arc::clone(&bm);
        let sib2 = Arc::clone(&sibling);
        let sib_wait =
            std::thread::spawn(move || bm2.acquire(&sib2, 1.0, 0, Duration::from_secs(5)));
        while bm.waiting_count() == 0 {
            std::hint::spin_loop();
        }
        let other = ctx(3);
        let bo = bm.acquire(&other, 1.0, 0, Duration::from_millis(500)).unwrap();
        assert_ne!(bo.vgpu.device, ba.vgpu.device, "unrelated ctx takes the idle device");
        // Releasing the first app thread lets the sibling in on that device.
        bm.release(a.id, ba.vgpu);
        let bs = sib_wait.join().unwrap().unwrap();
        assert_eq!(bs.vgpu.device, ba.vgpu.device);
        bm.release(other.id, bo.vgpu);
        bm.release(sibling.id, bs.vgpu);
    }

    #[test]
    fn fcfs_order_preserved_under_parked_waiters() {
        let bm = bm_with(SchedulerPolicy::FcfsRoundRobin);
        let holder = ctx(0);
        let hb = bm.acquire(&holder, 1.0, 0, Duration::from_millis(200)).unwrap();
        let handles = park_waiters(&bm, &[10, 11, 12]);
        // Free the slot three times; waiters must be served in ARRIVAL
        // order: joining handle[i] before releasing its slot only
        // terminates if waiter i was indeed served next.
        bm.release(holder.id, hb.vgpu);
        for (h, id) in handles.into_iter().zip([10u64, 11, 12]) {
            let b = h.join().unwrap().expect("waiter starved: FIFO violated");
            bm.release(CtxId(id), b.vgpu);
        }
    }
}
