//! The health & load-balancing monitor (§4.6, §5.3.4).
//!
//! A single background thread per runtime periodically:
//!
//! 1. **Fault handling** — detects failed/detached devices, removes their
//!    vGPU slots, and recovers the contexts that were bound there: contexts
//!    whose device-resident data had a consistent swap copy rebind
//!    transparently on their next launch; contexts with unrecoverable dirty
//!    data are marked failed (§4.6).
//! 2. **Dynamic load balancing** — when a *faster* device has idle vGPUs
//!    and nothing is waiting, migrates an idle context from a slower device
//!    ("the dispatcher keeps track of fast GPUs becoming idle, and, in the
//!    absence of pending jobs, migrates running jobs from slow to fast
//!    GPUs", §5.3.4).
//! 3. **Lease reaping** — when the tenant-policy layer is active, tenants
//!    whose lease TTL elapsed on the runtime clock are condemned: each
//!    member context is failed with `LeaseExpired`, evicted from its vGPU
//!    if bound, and its pages freed. TTLs are read off the [`Clock`], so
//!    deterministic harnesses observe expiry at exact virtual instants.
//!
//! [`Clock`]: mtgpu_simtime::Clock

use crate::ctx::CtxId;
use crate::memory::SwapReason;
use crate::metrics::RuntimeMetrics;
use crate::runtime::NodeRuntime;
use crate::sched::DeviceView;
use crate::trace::{TraceEvent, UnbindReason};
use mtgpu_api::CudaError;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Minimum speed advantage (effective FLOPS ratio) for a migration to be
/// worth its data-transfer cost.
const MIGRATION_SPEEDUP: f64 = 1.25;

/// Monitor entry point; returns when the runtime shuts down.
pub(crate) fn run(rt: Arc<NodeRuntime>) {
    while !rt.is_shutdown() {
        reap_expired_leases(&rt);
        recover_failed_devices(&rt);
        if rt.config().dynamic_load_balancing {
            balance_once(&rt);
        }
        rt.observe_lock_contention();
        // mtlint: allow(thread-sleep, reason = "monitor cadence is a real-time polling interval of a background OS thread; deterministic harnesses disable the thread and call monitor_tick instead")
        std::thread::sleep(rt.config().monitor_interval);
    }
}

/// Condemns tenants whose lease TTL elapsed and reaps their contexts.
/// Runs on every monitor pass (and every deterministic `monitor_tick`);
/// a no-op when the policy layer is not configured.
pub(crate) fn reap_expired_leases(rt: &NodeRuntime) {
    if !rt.policy().enabled() {
        return;
    }
    let (expired_tenants, doomed) = rt.policy().tick(rt.clock().now());
    if expired_tenants > 0 {
        RuntimeMetrics::add(&rt.metrics_ref().lease_expiries, expired_tenants);
    }
    for ctx_id in doomed {
        reap_context(rt, ctx_id);
    }
}

fn reap_context(rt: &NodeRuntime, ctx_id: CtxId) {
    let Some(ctx) = rt.context(ctx_id) else {
        // Handler already tore the context down; just settle the books.
        rt.policy().release_ctx(ctx_id);
        return;
    };
    // Wait out the context's in-flight call, then condemn it: subsequent
    // calls on the connection observe the typed `LeaseExpired` failure.
    let _guard = ctx.service_lock();
    ctx.mark_failed(CudaError::LeaseExpired);
    let binding = ctx.inner().binding.take();
    if let Some(b) = &binding {
        rt.tracer().record(TraceEvent::Unbound {
            ctx: ctx_id,
            vgpu: b.vgpu,
            reason: UnbindReason::LeaseReaped,
        });
    }
    // The lease is gone, so its data is too: free device copies, page
    // table and swap reservation in one sweep (no writeback — an expired
    // tenant has no further use for the bytes).
    rt.memory().remove_ctx(ctx_id, binding.as_ref());
    if let Some(b) = binding {
        rt.bindings().release(ctx_id, b.vgpu);
    }
    rt.policy().release_ctx(ctx_id);
    RuntimeMetrics::bump(&rt.metrics_ref().lease_reaps);
    rt.tracer().record(TraceEvent::LeaseReaped { ctx: ctx_id });
}

/// Detects failed or detached devices and recovers their contexts.
pub(crate) fn recover_failed_devices(rt: &NodeRuntime) {
    let views = rt.bindings().device_views();
    for view in views {
        if !view.gpu.is_failed() {
            continue;
        }
        let affected = rt.bindings().remove_device(view.id);
        rt.tracer().record(TraceEvent::DeviceLost { device: view.id });
        // mtlint: allow(notify-all, reason = "device loss: every parked waiter must re-run placement against the surviving devices")
        rt.bindings().notify_all();
        for ctx_id in affected {
            recover_context(rt, ctx_id);
        }
    }
}

fn recover_context(rt: &NodeRuntime, ctx_id: CtxId) {
    let Some(ctx) = rt.context(ctx_id) else { return };
    // Block until the context's handler finishes its in-flight call (which
    // will itself hit DeviceFailed and recover inline; this lock then sees
    // binding already cleared).
    let _guard = ctx.service_lock();
    let Some(_binding) = ctx.binding() else { return };
    ctx.inner().binding = None;
    match rt.memory().on_device_lost(ctx_id) {
        crate::memory::Recovery::Recovered => {
            RuntimeMetrics::bump(&rt.metrics_ref().recovered_contexts);
            rt.tracer().record(TraceEvent::Recovered { ctx: ctx_id });
        }
        crate::memory::Recovery::LostDirtyData => {
            RuntimeMetrics::bump(&rt.metrics_ref().failed_contexts);
            ctx.mark_failed(CudaError::DeviceUnavailable);
            rt.tracer().record(TraceEvent::Failed { ctx: ctx_id });
        }
    }
}

/// One load-balancing pass: at most one migration per tick (avoids
/// thrashing).
pub(crate) fn balance_once(rt: &NodeRuntime) {
    let views = rt.bindings().device_views();
    if views.len() < 2 {
        return;
    }
    // §5.3.4: migrate only in the absence of pending jobs — waiting
    // contexts will soak up the free fast vGPUs by themselves.
    if rt.bindings().waiting_count() > 0 {
        return;
    }
    let Some(fast) = views
        .iter()
        .filter(|v| v.free_vgpus > 0 && !v.gpu.is_failed())
        .max_by(|a, b| a.effective_flops.total_cmp(&b.effective_flops))
    else {
        return;
    };
    let Some(slow) = views
        .iter()
        .filter(|v| !v.bound.is_empty() && v.id != fast.id && !v.gpu.is_failed())
        .min_by(|a, b| a.effective_flops.total_cmp(&b.effective_flops))
    else {
        return;
    };
    if fast.effective_flops < slow.effective_flops * MIGRATION_SPEEDUP {
        return;
    }
    migrate_one(rt, slow, fast);
}

/// Migrates one idle context from `slow` to `fast`. Returns `true` on
/// success.
fn migrate_one(rt: &NodeRuntime, slow: &DeviceView, fast: &DeviceView) -> bool {
    for ctx_id in &slow.bound {
        let Some(ctx) = rt.context(*ctx_id) else { continue };
        if !ctx.is_eligible() {
            continue;
        }
        // §4.8: threads of a CUDA 4.0 application stay together; migrating
        // one alone would split the application across devices.
        if ctx.inner().app_id.is_some() {
            continue;
        }
        // Only an idle context (CPU phase, no call in flight) can move.
        let Some(_guard) = ctx.try_service_lock() else { continue };
        let Some(old) = ctx.binding() else { continue };
        if old.vgpu.device != slow.id {
            continue;
        }
        // Reserve the fast slot first so we never strand the context.
        let Some(new) = rt.bindings().try_acquire_on(*ctx_id, fast.id) else { return false };
        match rt.memory().swap_out_ctx(*ctx_id, &old, SwapReason::Migration) {
            Ok(out) => {
                rt.bindings().release(*ctx_id, old.vgpu);
                rt.tracer().record(TraceEvent::SwappedOut {
                    ctx: *ctx_id,
                    bytes: out.freed,
                    reason: SwapReason::Migration.into(),
                });
                rt.tracer().record(TraceEvent::Unbound {
                    ctx: *ctx_id,
                    vgpu: old.vgpu,
                    reason: UnbindReason::Migration,
                });
                rt.tracer().record(TraceEvent::Migrated {
                    ctx: *ctx_id,
                    from: slow.id,
                    to: fast.id,
                });
                let new_vgpu = new.vgpu;
                ctx.inner().binding = Some(new);
                ctx.stats.times_migrated.fetch_add(1, Ordering::Relaxed);
                RuntimeMetrics::bump(&rt.metrics_ref().migrations);
                rt.tracer().record(TraceEvent::Bound { ctx: *ctx_id, vgpu: new_vgpu });
                // Data re-materializes on the fast device at the next
                // launch (lazy restore, §4.6: "replay only memory
                // operations required by not-yet-executed kernel calls").
                return true;
            }
            Err(_) => {
                // Old device died mid-swap: give the slot back and let the
                // fault path clean up.
                rt.bindings().release(*ctx_id, new.vgpu);
                return false;
            }
        }
    }
    false
}
