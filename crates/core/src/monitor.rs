//! The health & load-balancing monitor (§4.6, §5.3.4).
//!
//! A single background thread per runtime periodically:
//!
//! 1. **Fault handling** — detects failed/detached devices, removes their
//!    vGPU slots, and recovers the contexts that were bound there: contexts
//!    whose device-resident data had a consistent swap copy rebind
//!    transparently on their next launch; contexts with unrecoverable dirty
//!    data are marked failed (§4.6).
//! 2. **Dynamic load balancing** — when a *faster* device has idle vGPUs
//!    and nothing is waiting, migrates an idle context from a slower device
//!    ("the dispatcher keeps track of fast GPUs becoming idle, and, in the
//!    absence of pending jobs, migrates running jobs from slow to fast
//!    GPUs", §5.3.4).
//! 3. **Lease reaping** — when the tenant-policy layer is active, tenants
//!    whose lease TTL elapsed on the runtime clock are condemned: each
//!    member context is failed with `LeaseExpired`, evicted from its vGPU
//!    if bound, and its pages freed. TTLs are read off the [`Clock`], so
//!    deterministic harnesses observe expiry at exact virtual instants.
//!
//! [`Clock`]: mtgpu_simtime::Clock

use crate::ctx::CtxId;
use crate::memory::SwapReason;
use crate::metrics::RuntimeMetrics;
use crate::runtime::NodeRuntime;
use crate::sched::DeviceView;
use crate::trace::{TraceEvent, UnbindReason};
use mtgpu_api::CudaError;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Minimum speed advantage (effective FLOPS ratio) for a migration to be
/// worth its data-transfer cost.
const MIGRATION_SPEEDUP: f64 = 1.25;

/// Minimum pressure ratio (hottest / coolest device) before the
/// utilization rebalancer moves a context: below this the placement is
/// close enough that a migration would thrash.
const REBALANCE_MARGIN: f64 = 1.25;

/// Monitor entry point; returns when the runtime shuts down.
pub(crate) fn run(rt: Arc<NodeRuntime>) {
    while !rt.is_shutdown() {
        reap_expired_leases(&rt);
        recover_failed_devices(&rt);
        if rt.config().utilization_rebalancer {
            rebalance_once(&rt);
        } else if rt.config().dynamic_load_balancing {
            balance_once(&rt);
        }
        rt.observe_lock_contention();
        // mtlint: allow(thread-sleep, reason = "monitor cadence is a real-time polling interval of a background OS thread; deterministic harnesses disable the thread and call monitor_tick instead")
        std::thread::sleep(rt.config().monitor_interval);
    }
}

/// Condemns tenants whose lease TTL elapsed and reaps their contexts.
/// Runs on every monitor pass (and every deterministic `monitor_tick`);
/// a no-op when the policy layer is not configured.
pub(crate) fn reap_expired_leases(rt: &NodeRuntime) {
    if !rt.policy().enabled() {
        return;
    }
    let (expired_tenants, doomed) = rt.policy().tick(rt.clock().now());
    if expired_tenants > 0 {
        RuntimeMetrics::add(&rt.metrics_ref().lease_expiries, expired_tenants);
    }
    for ctx_id in doomed {
        reap_context(rt, ctx_id);
    }
}

fn reap_context(rt: &NodeRuntime, ctx_id: CtxId) {
    let Some(ctx) = rt.context(ctx_id) else {
        // Handler already tore the context down; just settle the books.
        rt.policy().release_ctx(ctx_id);
        return;
    };
    // Wait out the context's in-flight call, then condemn it: subsequent
    // calls on the connection observe the typed `LeaseExpired` failure.
    let _guard = ctx.service_lock();
    ctx.mark_failed(CudaError::LeaseExpired);
    let binding = ctx.inner().binding.take();
    if let Some(b) = &binding {
        rt.tracer().record(TraceEvent::Unbound {
            ctx: ctx_id,
            vgpu: b.vgpu,
            reason: UnbindReason::LeaseReaped,
        });
    }
    // The lease is gone, so its data is too: free device copies, page
    // table and swap reservation in one sweep (no writeback — an expired
    // tenant has no further use for the bytes).
    rt.memory().remove_ctx(ctx_id, binding.as_ref());
    if let Some(b) = binding {
        rt.bindings().release(ctx_id, b.vgpu);
    }
    rt.policy().release_ctx(ctx_id);
    RuntimeMetrics::bump(&rt.metrics_ref().lease_reaps);
    rt.tracer().record(TraceEvent::LeaseReaped { ctx: ctx_id });
}

/// Detects failed or detached devices and recovers their contexts.
pub(crate) fn recover_failed_devices(rt: &NodeRuntime) {
    let views = rt.bindings().device_views();
    for view in views {
        if !view.gpu.is_failed() {
            continue;
        }
        let affected = rt.bindings().remove_device(view.id);
        rt.tracer().record(TraceEvent::DeviceLost { device: view.id });
        // mtlint: allow(notify-all, reason = "device loss: every parked waiter must re-run placement against the surviving devices")
        rt.bindings().notify_all();
        for ctx_id in affected {
            recover_context(rt, ctx_id);
        }
    }
}

fn recover_context(rt: &NodeRuntime, ctx_id: CtxId) {
    let Some(ctx) = rt.context(ctx_id) else { return };
    // Block until the context's handler finishes its in-flight call (which
    // will itself hit DeviceFailed and recover inline; this lock then sees
    // binding already cleared).
    let _guard = ctx.service_lock();
    let Some(_binding) = ctx.binding() else { return };
    ctx.inner().binding = None;
    match rt.memory().on_device_lost(ctx_id) {
        crate::memory::Recovery::Recovered => {
            RuntimeMetrics::bump(&rt.metrics_ref().recovered_contexts);
            rt.tracer().record(TraceEvent::Recovered { ctx: ctx_id });
        }
        crate::memory::Recovery::LostDirtyData => {
            RuntimeMetrics::bump(&rt.metrics_ref().failed_contexts);
            ctx.mark_failed(CudaError::DeviceUnavailable);
            rt.tracer().record(TraceEvent::Failed { ctx: ctx_id });
        }
    }
}

/// One load-balancing pass: at most one migration per tick (avoids
/// thrashing).
pub(crate) fn balance_once(rt: &NodeRuntime) {
    let views = rt.bindings().device_views();
    if views.len() < 2 {
        return;
    }
    // §5.3.4: migrate only in the absence of pending jobs — waiting
    // contexts will soak up the free fast vGPUs by themselves.
    if rt.bindings().waiting_count() > 0 {
        return;
    }
    let Some(fast) = views
        .iter()
        .filter(|v| v.free_vgpus > 0 && !v.gpu.is_failed())
        .max_by(|a, b| a.effective_flops.total_cmp(&b.effective_flops))
    else {
        return;
    };
    let Some(slow) = views
        .iter()
        .filter(|v| !v.bound.is_empty() && v.id != fast.id && !v.gpu.is_failed())
        .min_by(|a, b| a.effective_flops.total_cmp(&b.effective_flops))
    else {
        return;
    };
    if fast.effective_flops < slow.effective_flops * MIGRATION_SPEEDUP {
        return;
    }
    migrate_one(rt, slow, fast);
}

/// The utilization rebalancer (DESIGN.md §15): samples per-device pressure
/// signals, scores every device deterministically off the virtual clock,
/// and live-migrates ([`NodeRuntime::migrate_ctx`]) the costliest-misplaced
/// context from the hottest device to the coolest — at most one migration
/// per pass, like [`balance_once`].
///
/// Pressure combines resident-memory fraction, vGPU occupancy, compute
/// queue depth and the device's swap-traffic rate (bytes per virtual
/// second, normalized by PCIe bandwidth), inflated on slower devices: the
/// same load costs more where FLOPS are scarcer. Every input is sampled
/// runtime state or the virtual clock — never the wall clock — so a
/// deterministic harness replays every migration decision bit-for-bit.
pub(crate) fn rebalance_once(rt: &NodeRuntime) {
    let views = rt.bindings().device_views();
    if views.len() < 2 {
        return;
    }
    // Waiting contexts outrank migration (§5.3.4): they will soak up the
    // free capacity themselves.
    if rt.bindings().waiting_count() > 0 {
        return;
    }
    let healthy: Vec<&DeviceView> = views.iter().filter(|v| !v.gpu.is_failed()).collect();
    if healthy.len() < 2 {
        return;
    }
    let max_flops =
        healthy.iter().map(|v| v.effective_flops).fold(f64::MIN, f64::max).max(f64::MIN_POSITIVE);
    let scores: Vec<f64> =
        healthy.iter().map(|v| pressure_score_with(rt, v, 0, 0, max_flops)).collect();
    // First strictly-hottest wins ties, so selection is a pure function of
    // the (device-id ordered) views.
    let mut hot = None;
    for (i, v) in healthy.iter().enumerate() {
        if !v.bound.is_empty() && hot.is_none_or(|h: usize| scores[i] > scores[h]) {
            hot = Some(i);
        }
    }
    let Some(hot) = hot else { return };
    // Targets in ascending pressure order (stable sort: score ties keep
    // device-id order).
    let mut targets: Vec<usize> =
        (0..healthy.len()).filter(|&i| i != hot && healthy[i].free_vgpus > 0).collect();
    targets.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    if targets.is_empty() {
        return;
    }
    let from = healthy[hot].id;
    // Candidate order: lowest lease priority first — a higher-priority
    // tenant is only disturbed after every lower-priority candidate was
    // tried, so it can never be migrated "to make room" for one of them —
    // then costliest-misplaced (largest footprint suffers the hot device
    // most), then context id for a total, replay-stable order.
    let mut candidates: Vec<(u8, u64, CtxId)> = healthy[hot]
        .bound
        .iter()
        .map(|&c| (rt.policy().priority_of(c), rt.memory().mem_usage(c), c))
        .collect();
    candidates.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
    for (_, _, ctx_id) in candidates {
        let footprint = rt.memory().resident_bytes(ctx_id);
        for &t in &targets {
            // Hysteresis: score the *destination as it would look with this
            // context on it*. A move happens only if the context would still
            // be markedly better off after it lands — which also rules out
            // ping-ponging between equally-loaded devices.
            let projected = pressure_score_with(rt, healthy[t], 1, footprint, max_flops);
            if scores[hot] < projected.max(f64::MIN_POSITIVE) * REBALANCE_MARGIN {
                continue;
            }
            let to = healthy[t].id;
            rt.tracer().record(TraceEvent::RebalancePicked {
                ctx: ctx_id,
                from,
                to,
                score: ((scores[hot] - projected) * 1000.0) as i64,
            });
            if rt.migrate_ctx(ctx_id, to).is_ok() {
                RuntimeMetrics::bump(&rt.metrics_ref().rebalance_migrations);
                return;
            }
        }
    }
}

/// One device's placement-pressure score (higher = worse place to be),
/// optionally projected with `extra_ctxs` more contexts carrying
/// `extra_bytes` of device-resident data (the rebalancer's "what would the
/// destination look like after the move" probe).
fn pressure_score_with(
    rt: &NodeRuntime,
    v: &DeviceView,
    extra_ctxs: u32,
    extra_bytes: u64,
    max_flops: f64,
) -> f64 {
    let resident: u64 =
        v.bound.iter().map(|&c| rt.memory().resident_bytes(c)).sum::<u64>() + extra_bytes;
    let (swap_in, swap_out) = rt.memory().device_swap_traffic(v.id);
    let mem_frac = resident as f64 / v.gpu.mem_capacity().max(1) as f64;
    let occupancy = if v.total_vgpus > 0 {
        (v.bound.len() as u32 + extra_ctxs) as f64 / v.total_vgpus as f64
    } else {
        0.0
    };
    let queue = v.gpu.compute_queue_depth() as f64;
    // Swap traffic as a fraction of the PCIe link, per virtual second —
    // the thrashing signal. Clamped so one pathological device cannot
    // flatten every other term.
    let elapsed = rt.clock().now().since_epoch().as_secs_f64().max(1e-9);
    let swap_frac = (((swap_in + swap_out) as f64 / elapsed)
        / v.gpu.spec().pcie_bytes_per_sec.max(1.0))
    .min(4.0);
    let speed = (v.effective_flops / max_flops).max(f64::MIN_POSITIVE);
    (mem_frac + occupancy + queue + swap_frac) / speed
}

/// Migrates one idle context from `slow` to `fast`. Returns `true` on
/// success.
fn migrate_one(rt: &NodeRuntime, slow: &DeviceView, fast: &DeviceView) -> bool {
    for ctx_id in &slow.bound {
        let Some(ctx) = rt.context(*ctx_id) else { continue };
        if !ctx.is_eligible() {
            continue;
        }
        // §4.8: threads of a CUDA 4.0 application stay together; migrating
        // one alone would split the application across devices.
        if ctx.inner().app_id.is_some() {
            continue;
        }
        // Only an idle context (CPU phase, no call in flight) can move.
        let Some(_guard) = ctx.try_service_lock() else { continue };
        let Some(old) = ctx.binding() else { continue };
        if old.vgpu.device != slow.id {
            continue;
        }
        // Reserve the fast slot first so we never strand the context.
        let Some(new) = rt.bindings().try_acquire_on(*ctx_id, fast.id) else { return false };
        match rt.memory().swap_out_ctx(*ctx_id, &old, SwapReason::Migration) {
            Ok(out) => {
                rt.bindings().release(*ctx_id, old.vgpu);
                rt.tracer().record(TraceEvent::SwappedOut {
                    ctx: *ctx_id,
                    bytes: out.freed,
                    reason: SwapReason::Migration.into(),
                });
                rt.tracer().record(TraceEvent::Unbound {
                    ctx: *ctx_id,
                    vgpu: old.vgpu,
                    reason: UnbindReason::Migration,
                });
                rt.tracer().record(TraceEvent::Migrated {
                    ctx: *ctx_id,
                    from: slow.id,
                    to: fast.id,
                });
                let new_vgpu = new.vgpu;
                ctx.inner().binding = Some(new);
                ctx.stats.times_migrated.fetch_add(1, Ordering::Relaxed);
                RuntimeMetrics::bump(&rt.metrics_ref().migrations);
                rt.tracer().record(TraceEvent::Bound { ctx: *ctx_id, vgpu: new_vgpu });
                // Data re-materializes on the fast device at the next
                // launch (lazy restore, §4.6: "replay only memory
                // operations required by not-yet-executed kernel calls").
                return true;
            }
            Err(_) => {
                // Old device died mid-swap: give the slot back and let the
                // fault path clean up.
                rt.bindings().release(*ctx_id, new.vgpu);
                return false;
            }
        }
    }
    false
}
