//! The original single-lock binding manager, kept as a baseline.
//!
//! This is the seed implementation of the dispatcher's scheduling core: one
//! global `Mutex<BmState>` plus a single `Condvar` that every `acquire`,
//! `release` and device event funnels through, with `notify_all` wakeups
//! (every parked waiter wakes, re-locks the global mutex and re-runs an
//! O(W) grant scan per release). It is retained verbatim so
//! `benches/dispatch.rs` can measure the sharded [`super::BindingManager`]
//! against the exact code it replaced, and as an executable specification
//! of the policy semantics the sharded manager must preserve.

use crate::config::SchedulerPolicy;
use crate::ctx::{AppContext, Binding, CtxId, VGpuId};
use crate::metrics::RuntimeMetrics;
use mtgpu_gpusim::{DeviceId, Gpu};
use mtgpu_simtime::DetRng;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::{AddDeviceError, DeviceView, VGpu};

struct DeviceSlots {
    gpu: Arc<Gpu>,
    vgpus: Vec<VGpu>,
    free: Vec<u32>,
    /// Ordered by vGPU index: this map is iterated (recovery, views), so
    /// hash order would leak into grant/recovery sequences.
    bound: BTreeMap<u32, (CtxId, Option<u64>)>,
}

impl DeviceSlots {
    fn bound_count(&self) -> usize {
        self.bound.len()
    }
}

struct WaitEntry {
    ctx: Arc<AppContext>,
    enq_seq: u64,
    pending_work: f64,
    mem_usage: u64,
    app_id: Option<u64>,
    granted: Option<Binding>,
}

struct BmState {
    /// Ordered by device id: placement scans iterate this map, and the
    /// scan order is part of the policy semantics the sharded manager
    /// must reproduce.
    devices: BTreeMap<DeviceId, DeviceSlots>,
    waiting: Vec<WaitEntry>,
    next_seq: u64,
    rr_cursor: usize,
    rng: Option<DetRng>,
    app_devices: HashMap<u64, (DeviceId, usize)>,
}

/// The seed global-lock binding manager (see module docs).
pub struct LegacyBindingManager {
    policy: SchedulerPolicy,
    metrics: Arc<RuntimeMetrics>,
    /// Raw (unranked) lock, kept deliberately: this type is the seed
    /// baseline that `benches/dispatch.rs` measures the sharded manager
    /// against, so it must not pay the debug-build rank bookkeeping.
    // mtlint: allow(unranked-lock, reason = "seed baseline preserved verbatim for the dispatch bench; never nests inside ranked runtime locks")
    state: Mutex<BmState>,
    // mtlint: allow(unranked-lock, reason = "seed baseline preserved verbatim for the dispatch bench; never nests inside ranked runtime locks")
    cv: Condvar,
}

impl LegacyBindingManager {
    /// Creates an empty manager with the legacy round-robin tie-break.
    pub fn new(policy: SchedulerPolicy, metrics: Arc<RuntimeMetrics>) -> Self {
        Self::new_seeded(policy, metrics, 0)
    }

    /// Creates an empty manager; nonzero `seed` switches placement
    /// tie-breaks to a [`DetRng`] forked on `"sched"`.
    pub fn new_seeded(policy: SchedulerPolicy, metrics: Arc<RuntimeMetrics>, seed: u64) -> Self {
        LegacyBindingManager {
            policy,
            metrics,
            // mtlint: allow(unranked-lock, reason = "seed baseline preserved verbatim for the dispatch bench; never nests inside ranked runtime locks")
            state: Mutex::new(BmState {
                devices: BTreeMap::new(),
                waiting: Vec::new(),
                next_seq: 0,
                rr_cursor: 0,
                rng: (seed != 0).then(|| DetRng::from_seed(seed).fork("sched")),
                app_devices: HashMap::new(),
            }),
            // mtlint: allow(unranked-lock, reason = "seed baseline preserved verbatim for the dispatch bench; never nests inside ranked runtime locks")
            cv: Condvar::new(),
        }
    }

    /// Registers a device and spawns `count` vGPUs on it.
    pub fn add_device(
        &self,
        id: DeviceId,
        gpu: Arc<Gpu>,
        count: u32,
    ) -> Result<(), AddDeviceError> {
        let mut vgpus = Vec::with_capacity(count as usize);
        for index in 0..count {
            let gpu_ctx = gpu.create_context().map_err(AddDeviceError::ContextCreation)?;
            vgpus.push(VGpu { id: VGpuId { device: id, index }, gpu: Arc::clone(&gpu), gpu_ctx });
        }
        let mut st = self.state.lock();
        st.devices.insert(
            id,
            DeviceSlots { gpu, free: (0..count).collect(), bound: BTreeMap::new(), vgpus },
        );
        drop(st);
        // mtlint: allow(notify-all, reason = "seed semantics under test: the baseline wakes every waiter per event")
        self.cv.notify_all();
        Ok(())
    }

    /// Removes a device, returning the contexts that were bound to it.
    pub fn remove_device(&self, id: DeviceId) -> Vec<CtxId> {
        let mut st = self.state.lock();
        match st.devices.remove(&id) {
            Some(slots) => {
                for (_, app) in slots.bound.values() {
                    if let Some(app) = app {
                        Self::app_release(&mut st.app_devices, *app);
                    }
                }
                let mut affected: Vec<CtxId> = slots.bound.values().map(|&(c, _)| c).collect();
                affected.sort_unstable();
                affected
            }
            None => Vec::new(),
        }
    }

    fn app_release(map: &mut HashMap<u64, (DeviceId, usize)>, app: u64) {
        if let Some((_, count)) = map.get_mut(&app) {
            *count -= 1;
            if *count == 0 {
                map.remove(&app);
            }
        }
    }

    /// Blocks until a vGPU is granted to `ctx` or `timeout` expires.
    pub fn acquire(
        &self,
        ctx: &Arc<AppContext>,
        pending_work: f64,
        mem_usage: u64,
        timeout: Duration,
    ) -> Option<Binding> {
        // mtlint: allow(wall-clock, reason = "acquisition timeout is a real-time liveness bound on parked OS threads, same contract as the sharded manager")
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        let enq_seq = {
            let mut inner = ctx.inner();
            match inner.wait_ticket {
                Some(t) => t,
                None => {
                    let t = st.next_seq;
                    st.next_seq += 1;
                    inner.wait_ticket = Some(t);
                    t
                }
            }
        };
        let app_id = ctx.inner().app_id;
        st.waiting.push(WaitEntry {
            ctx: Arc::clone(ctx),
            enq_seq,
            pending_work,
            mem_usage,
            app_id,
            granted: None,
        });
        loop {
            Self::drain_grants(&mut st, self.policy, &self.metrics);
            if let Some(pos) =
                st.waiting.iter().position(|w| w.ctx.id == ctx.id && w.granted.is_some())
            {
                let entry = st.waiting.remove(pos);
                drop(st);
                ctx.inner().wait_ticket = None;
                // mtlint: allow(notify-all, reason = "seed semantics under test: the baseline wakes every waiter per event")
                self.cv.notify_all();
                return entry.granted;
            }
            let timed_out = self.cv.wait_until(&mut st, deadline).timed_out();
            if timed_out {
                if let Some(pos) = st.waiting.iter().position(|w| w.ctx.id == ctx.id) {
                    let entry = st.waiting.remove(pos);
                    if entry.granted.is_some() {
                        drop(st);
                        ctx.inner().wait_ticket = None;
                        // mtlint: allow(notify-all, reason = "seed semantics under test: the baseline wakes every waiter per event")
                        self.cv.notify_all();
                        return entry.granted;
                    }
                }
                return None;
            }
        }
    }

    fn drain_grants(st: &mut BmState, policy: SchedulerPolicy, metrics: &RuntimeMetrics) {
        'outer: loop {
            if !st.devices.values().any(|d| !d.free.is_empty() && !d.gpu.is_failed()) {
                return;
            }
            for idx in Self::ordered_waiters(st, policy) {
                let mem_usage = st.waiting[idx].mem_usage;
                let app_id = st.waiting[idx].app_id;
                let affinity = app_id.and_then(|a| st.app_devices.get(&a).map(|&(d, _)| d));
                let dev_id = match affinity {
                    Some(dev) => {
                        let free = st
                            .devices
                            .get(&dev)
                            .is_some_and(|d| !d.free.is_empty() && !d.gpu.is_failed());
                        if free {
                            Some(dev)
                        } else {
                            if !st.devices.contains_key(&dev) {
                                st.app_devices.remove(&app_id.expect("affinity without app"));
                            }
                            None
                        }
                    }
                    None => Self::pick_device(st, mem_usage),
                };
                let Some(dev_id) = dev_id else { continue };
                let slots = st.devices.get_mut(&dev_id).expect("picked device vanished");
                let vgpu_idx = slots.free.pop().expect("picked device had no free slot");
                let vgpu = slots.vgpus[vgpu_idx as usize].clone();
                let entry = &mut st.waiting[idx];
                slots.bound.insert(vgpu_idx, (entry.ctx.id, app_id));
                entry.granted =
                    Some(Binding { vgpu: vgpu.id, gpu: vgpu.gpu, gpu_ctx: vgpu.gpu_ctx });
                if policy == SchedulerPolicy::CreditBased {
                    let mut inner = entry.ctx.inner();
                    inner.credits = inner.credits.saturating_sub(1);
                }
                if let Some(app) = app_id {
                    st.app_devices.entry(app).or_insert((dev_id, 0)).1 += 1;
                }
                RuntimeMetrics::bump(&metrics.bindings);
                continue 'outer;
            }
            return;
        }
    }

    fn ordered_waiters(st: &mut BmState, policy: SchedulerPolicy) -> Vec<usize> {
        let mut candidates: Vec<usize> = st
            .waiting
            .iter()
            .enumerate()
            .filter(|(_, w)| w.granted.is_none())
            .map(|(i, _)| i)
            .collect();
        match policy {
            SchedulerPolicy::FcfsRoundRobin => {
                candidates.sort_by_key(|&i| st.waiting[i].enq_seq);
            }
            SchedulerPolicy::ShortestJobFirst => {
                candidates.sort_by(|&a, &b| {
                    st.waiting[a]
                        .pending_work
                        .total_cmp(&st.waiting[b].pending_work)
                        .then(st.waiting[a].enq_seq.cmp(&st.waiting[b].enq_seq))
                });
            }
            SchedulerPolicy::CreditBased => {
                if !candidates.is_empty()
                    && candidates.iter().all(|&i| st.waiting[i].ctx.inner().credits == 0)
                {
                    for &i in &candidates {
                        st.waiting[i].ctx.inner().credits = 4;
                    }
                }
                candidates.sort_by_key(|&i| {
                    (u32::MAX - st.waiting[i].ctx.inner().credits, st.waiting[i].enq_seq)
                });
            }
        }
        candidates
    }

    fn pick_device(st: &mut BmState, mem_usage: u64) -> Option<DeviceId> {
        let mut ids: Vec<DeviceId> = st
            .devices
            .iter()
            .filter(|(_, d)| !d.free.is_empty() && !d.gpu.is_failed())
            .map(|(&id, _)| id)
            .collect();
        if ids.is_empty() {
            return None;
        }
        ids.sort_by_key(|id| id.0);
        let rr = match st.rng.as_mut() {
            Some(rng) => rng.next_u64() as usize,
            None => {
                let rr = st.rr_cursor;
                st.rr_cursor = st.rr_cursor.wrapping_add(1);
                rr
            }
        };
        let max_flops = ids
            .iter()
            .map(|id| st.devices[id].gpu.spec().effective_flops())
            .fold(f64::MIN, f64::max);
        let keyed: Vec<(DeviceId, f64, bool)> = ids
            .into_iter()
            .map(|id| {
                let d = &st.devices[&id];
                let fits = d.gpu.mem_available() >= mem_usage;
                let speed = d.gpu.spec().effective_flops() / max_flops;
                let load = (d.bound_count() + 1) as f64 / speed;
                (id, load, fits)
            })
            .collect();
        let min_load = keyed.iter().map(|&(_, l, _)| l).fold(f64::INFINITY, f64::min);
        let tied: Vec<DeviceId> = {
            let close: Vec<&(DeviceId, f64, bool)> =
                keyed.iter().filter(|&&(_, l, _)| l <= min_load * 1.05).collect();
            let any_fits = close.iter().any(|&&(_, _, f)| f);
            close.into_iter().filter(|&&(_, _, f)| f == any_fits).map(|&(id, _, _)| id).collect()
        };
        Some(tied[rr % tied.len()])
    }

    /// Releases the vGPU bound to `ctx_id`.
    pub fn release(&self, ctx_id: CtxId, vgpu: VGpuId) {
        let mut st = self.state.lock();
        if let Some(slots) = st.devices.get_mut(&vgpu.device) {
            match slots.bound.remove(&vgpu.index) {
                Some((owner, app)) if owner == ctx_id => {
                    slots.free.push(vgpu.index);
                    if let Some(app) = app {
                        Self::app_release(&mut st.app_devices, app);
                    }
                }
                other => {
                    debug_assert!(other.is_none(), "release of unbound vGPU {vgpu}");
                }
            }
        }
        drop(st);
        RuntimeMetrics::bump(&self.metrics.unbindings);
        // mtlint: allow(notify-all, reason = "seed semantics under test: the O(W²) release broadcast is exactly what the bench measures")
        self.cv.notify_all();
    }

    /// Immediately grants a free vGPU on `device`, migration path.
    pub fn try_acquire_on(&self, ctx_id: CtxId, device: DeviceId) -> Option<Binding> {
        let mut st = self.state.lock();
        if st.waiting.iter().any(|w| w.granted.is_none()) {
            return None;
        }
        let slots = st.devices.get_mut(&device)?;
        if slots.gpu.is_failed() {
            return None;
        }
        let vgpu_idx = slots.free.pop()?;
        slots.bound.insert(vgpu_idx, (ctx_id, None));
        let vgpu = slots.vgpus[vgpu_idx as usize].clone();
        RuntimeMetrics::bump(&self.metrics.bindings);
        Some(Binding { vgpu: vgpu.id, gpu: vgpu.gpu, gpu_ctx: vgpu.gpu_ctx })
    }

    /// Contexts currently bound to `device`, in context-id order.
    pub fn bound_on(&self, device: DeviceId) -> Vec<CtxId> {
        let mut bound: Vec<CtxId> = self
            .state
            .lock()
            .devices
            .get(&device)
            .map(|d| d.bound.values().map(|&(c, _)| c).collect())
            .unwrap_or_default();
        bound.sort_unstable();
        bound
    }

    /// Snapshot of every registered device.
    pub fn device_views(&self) -> Vec<DeviceView> {
        let st = self.state.lock();
        let mut views: Vec<DeviceView> = st
            .devices
            .iter()
            .map(|(&id, d)| DeviceView {
                id,
                gpu: Arc::clone(&d.gpu),
                total_vgpus: d.vgpus.len(),
                free_vgpus: d.free.len(),
                bound: {
                    let mut b: Vec<CtxId> = d.bound.values().map(|&(c, _)| c).collect();
                    b.sort_unstable();
                    b
                },
                effective_flops: d.gpu.spec().effective_flops(),
                mem_available: d.gpu.mem_available(),
            })
            .collect();
        views.sort_by_key(|v| v.id.0);
        views
    }

    /// Number of contexts waiting for a binding.
    pub fn waiting_count(&self) -> usize {
        self.state.lock().waiting.iter().filter(|w| w.granted.is_none()).count()
    }

    /// Number of contexts currently bound.
    pub fn bound_count(&self) -> usize {
        self.state.lock().devices.values().map(|d| d.bound_count()).sum()
    }

    /// Total vGPUs across healthy devices.
    pub fn total_vgpus(&self) -> usize {
        self.state
            .lock()
            .devices
            .values()
            .filter(|d| !d.gpu.is_failed())
            .map(|d| d.vgpus.len())
            .sum()
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        // mtlint: allow(notify-all, reason = "seed semantics under test: the baseline wakes every waiter per event")
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtgpu_gpusim::GpuSpec;
    use mtgpu_simtime::Clock;

    fn ctx(id: u64) -> Arc<AppContext> {
        AppContext::new(CtxId(id), id, format!("l{id}"))
    }

    #[test]
    fn legacy_grants_and_blocks_at_capacity() {
        let bm = LegacyBindingManager::new(
            SchedulerPolicy::FcfsRoundRobin,
            Arc::new(RuntimeMetrics::default()),
        );
        let gpu = Gpu::new(GpuSpec::test_small(), Clock::with_scale(1e-7), 0);
        bm.add_device(DeviceId(0), gpu, 1).unwrap();
        let a = ctx(1);
        let ba = bm.acquire(&a, 1.0, 0, Duration::from_millis(100)).unwrap();
        assert!(bm.acquire(&ctx(2), 1.0, 0, Duration::from_millis(20)).is_none());
        bm.release(a.id, ba.vgpu);
        assert_eq!(bm.bound_count(), 0);
    }

    #[test]
    fn legacy_release_wakes_waiter() {
        let bm = Arc::new(LegacyBindingManager::new(
            SchedulerPolicy::FcfsRoundRobin,
            Arc::new(RuntimeMetrics::default()),
        ));
        let gpu = Gpu::new(GpuSpec::test_small(), Clock::with_scale(1e-7), 0);
        bm.add_device(DeviceId(0), gpu, 1).unwrap();
        let a = ctx(1);
        let ba = bm.acquire(&a, 1.0, 0, Duration::from_secs(1)).unwrap();
        let bm2 = Arc::clone(&bm);
        let waiter = std::thread::spawn(move || {
            bm2.acquire(&ctx(2), 1.0, 0, Duration::from_secs(5)).is_some()
        });
        while bm.waiting_count() == 0 {
            std::hint::spin_loop();
        }
        bm.release(a.id, ba.vgpu);
        assert!(waiter.join().unwrap());
    }
}
