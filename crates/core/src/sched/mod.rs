//! Virtual-GPU slots and the binding manager (§4.3–§4.4).
//!
//! A *virtual GPU* is a share of a physical device with its own persistent
//! CUDA context, created at system startup ("virtual-GPUs are statically
//! bound to physical GPUs through a `cudaSetDevice` invoked at system
//! startup", §4.4). Each vGPU services one application context at a time;
//! limiting the vGPU count caps the contexts the CUDA runtime must sustain,
//! which is how the runtime stays stable under hundreds of applications.
//!
//! The [`BindingManager`] is the dispatcher's scheduling core: it tracks
//! free vGPUs per device, parks contexts that cannot bind (the paper's
//! *waiting contexts* list), and grants bindings according to the
//! configured [`SchedulerPolicy`] — FCFS round-robin with vGPU-count load
//! balancing (the policy of §5), shortest-job-first, or credit-based.
//!
//! # Sharded dispatch
//!
//! State is sharded **per device**: each [`Shard`] owns its vGPU slots and
//! its own wait queue behind a private mutex, so an `acquire`/`release` on
//! device A never contends with device B. Wakeups are **targeted**: a grant
//! notifies exactly the granted waiter's private condvar instead of the
//! seed implementation's global `notify_all` (under which every release
//! woke *all* W parked waiters, each re-locking the global mutex and
//! re-running an O(W) grant scan — O(W²) wasted work per release). The
//! baseline survives as [`legacy::LegacyBindingManager`] for
//! `benches/dispatch.rs`.
//!
//! Placement still sees a consistent cross-device view: each shard
//! maintains lock-free `free`/`bound` hint counters, and
//! [`BindingManager::acquire`] snapshots them (plus device health, speed
//! and free memory) without taking any shard lock. The snapshot is
//! *bounded-stale*: a waiter parked on a full device re-evaluates placement
//! every `REPLACE_SLICE`, and a release whose device still has free slots
//! *nudges* one waiter parked elsewhere to re-place, so no waiter is ever
//! stranded behind a stale decision for more than one slice.
//!
//! # Determinism
//!
//! Under the `det` harness clients are driven sequentially, so every
//! placement decision observes quiescent hint counters and the grant
//! sequence is a pure function of the seed and arrival order: shards live
//! in a `BTreeMap` and are always drained/nudged in ascending device-id
//! order, and tie-breaks draw from the same seeded [`DetRng`] stream (or
//! rotating cursor) as the seed implementation.

pub mod legacy;

use crate::config::SchedulerPolicy;
use crate::ctx::{AppContext, Binding, CtxId, VGpuId};
use crate::metrics::RuntimeMetrics;
use mtgpu_gpusim::{DeviceId, Gpu, GpuContextId};
use mtgpu_simtime::{lock_rank, DetRng, RankedCondvar, RankedMutex, RankedRwLock, Shadow};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a parked waiter waits before re-evaluating placement. Bounds
/// the staleness of a parking decision: if a slot frees on another device
/// and the release-side nudge misses this waiter, it re-places itself
/// within one slice.
const REPLACE_SLICE: Duration = Duration::from_millis(5);

/// One virtual GPU slot.
#[derive(Clone)]
pub struct VGpu {
    pub id: VGpuId,
    pub gpu: Arc<Gpu>,
    /// The vGPU's persistent CUDA context.
    pub gpu_ctx: GpuContextId,
}

/// Read-only snapshot of one device's scheduling state.
#[derive(Debug, Clone)]
pub struct DeviceView {
    pub id: DeviceId,
    pub gpu: Arc<Gpu>,
    pub total_vgpus: usize,
    pub free_vgpus: usize,
    pub bound: Vec<CtxId>,
    pub effective_flops: f64,
    pub mem_available: u64,
}

/// Errors adding a device's vGPUs.
#[derive(Debug)]
pub enum AddDeviceError {
    /// Creating a vGPU's persistent context failed (device dead or full).
    ContextCreation(mtgpu_gpusim::GpuError),
}

/// What a parked waiter observes when it wakes.
enum SlotState {
    Waiting,
    /// A drain granted this waiter a binding (and dequeued it).
    Granted(Binding),
    /// The waiter was dequeued without a grant (device removed, or a nudge
    /// asked it to re-place); it must re-run placement.
    Reroute,
}

/// Per-waiter parking spot: the grant path notifies exactly this condvar,
/// never a global one.
struct WaitSlot {
    state: RankedMutex<SlotState>,
    cv: RankedCondvar,
}

impl WaitSlot {
    fn new() -> Self {
        WaitSlot {
            state: RankedMutex::new(lock_rank::WAIT_SLOT, SlotState::Waiting),
            cv: RankedCondvar::new(),
        }
    }
}

struct Waiter {
    ctx: Arc<AppContext>,
    /// FIFO ticket (preserved across re-placements and re-armed waits).
    enq_seq: u64,
    /// Declared work of the launch that needs the binding (SJF key).
    pending_work: f64,
    /// Declared memory footprint (placement heuristic).
    mem_usage: u64,
    /// CUDA 4.0 application id (§4.8): constrains placement to the device
    /// already hosting the application's other threads.
    app_id: Option<u64>,
    slot: WaitSlot,
}

struct ShardState {
    vgpus: Vec<VGpu>,
    /// Free vGPU slot indices. Shadowed so mtcheck's happens-before
    /// detector audits every read/write against the shard lock.
    free: Shadow<Vec<u32>>,
    /// Ordered by vGPU index so every walk over the bound set is
    /// deterministic without a defensive sort at each consumer.
    bound: BTreeMap<u32, (CtxId, Option<u64>)>,
    /// Waiters parked on this device, unordered; policy order is computed
    /// per drain.
    queue: Vec<Arc<Waiter>>,
    /// Set when the device is removed; queued waiters are rerouted and the
    /// shard does not grant again.
    defunct: bool,
}

/// Per-device scheduling state: slots + wait queue behind a private lock,
/// plus lock-free hint counters for cross-device placement snapshots.
struct Shard {
    device: DeviceId,
    gpu: Arc<Gpu>,
    vgpu_count: usize,
    /// Mirrors `state.free.len()` (updated under the shard lock, read
    /// without it by placement).
    free_hint: AtomicUsize,
    /// Mirrors `state.bound.len()`.
    bound_hint: AtomicUsize,
    state: RankedMutex<ShardState>,
}

/// Placement-relevant state shared across shards: the tie-break source and
/// the CUDA 4.0 application affinity map. A small leaf lock, never held
/// while parking.
struct GlobalState {
    rr_cursor: usize,
    /// Seeded tie-break generator (`Some` when the runtime runs with a
    /// nonzero determinism seed); `None` keeps the legacy rotating cursor.
    rng: Option<DetRng>,
    /// CUDA 4.0 application → (device, bound thread count) affinity map.
    app_devices: HashMap<u64, (DeviceId, usize)>,
}

/// Lock-free placement snapshot of one shard.
struct DevSnap {
    shard: Arc<Shard>,
    free: usize,
    bound: usize,
    flops: f64,
    fits: bool,
}

/// The dispatcher's binding/scheduling core (sharded; see module docs).
pub struct BindingManager {
    policy: SchedulerPolicy,
    metrics: Arc<RuntimeMetrics>,
    /// Ordered so every cross-shard walk (drain nudges, views, specs) is
    /// deterministic.
    shards: RankedRwLock<BTreeMap<DeviceId, Arc<Shard>>>,
    global: RankedMutex<GlobalState>,
    next_seq: AtomicU64,
    /// Waiters currently parked anywhere (shard queues + lobby).
    total_waiting: AtomicUsize,
    /// Generation counter for waiters parked while no device is placeable
    /// at all; bumped by `add_device` and `notify_all`.
    lobby_gen: RankedMutex<u64>,
    lobby_cv: RankedCondvar,
}

enum Parked {
    Granted(Binding),
    Deadline,
    Replace,
}

impl BindingManager {
    /// Creates an empty manager with the legacy round-robin tie-break.
    pub fn new(policy: SchedulerPolicy, metrics: Arc<RuntimeMetrics>) -> Self {
        Self::new_seeded(policy, metrics, 0)
    }

    /// Creates an empty manager. A nonzero `seed` makes placement
    /// tie-breaks draw from a [`DetRng`] forked on `"sched"` instead of the
    /// rotating cursor, so the grant sequence is a pure function of the
    /// seed and the arrival order.
    pub fn new_seeded(policy: SchedulerPolicy, metrics: Arc<RuntimeMetrics>, seed: u64) -> Self {
        BindingManager {
            policy,
            metrics,
            shards: RankedRwLock::new(lock_rank::SHARD_MAP, BTreeMap::new()),
            global: RankedMutex::new(
                lock_rank::SCHED_GLOBAL,
                GlobalState {
                    rr_cursor: 0,
                    rng: (seed != 0).then(|| DetRng::from_seed(seed).fork("sched")),
                    app_devices: HashMap::new(),
                },
            ),
            next_seq: AtomicU64::new(0),
            total_waiting: AtomicUsize::new(0),
            lobby_gen: RankedMutex::new(lock_rank::SCHED_LOBBY, 0),
            lobby_cv: RankedCondvar::new(),
        }
    }

    /// Registers a device and spawns `count` vGPUs on it, creating each
    /// vGPU's persistent CUDA context.
    pub fn add_device(
        &self,
        id: DeviceId,
        gpu: Arc<Gpu>,
        count: u32,
    ) -> Result<(), AddDeviceError> {
        let mut vgpus = Vec::with_capacity(count as usize);
        for index in 0..count {
            let gpu_ctx = gpu.create_context().map_err(AddDeviceError::ContextCreation)?;
            vgpus.push(VGpu { id: VGpuId { device: id, index }, gpu: Arc::clone(&gpu), gpu_ctx });
        }
        let shard = Arc::new(Shard {
            device: id,
            gpu,
            vgpu_count: count as usize,
            free_hint: AtomicUsize::new(count as usize),
            bound_hint: AtomicUsize::new(0),
            state: RankedMutex::new(
                lock_rank::SHARD_STATE,
                ShardState {
                    vgpus,
                    free: Shadow::new("sched.shard.free", (0..count).collect()),
                    bound: BTreeMap::new(),
                    queue: Vec::new(),
                    defunct: false,
                },
            ),
        });
        self.shards.write().insert(id, shard);
        // Wake lobby waiters and pull waiters parked on full devices onto
        // the fresh slots.
        {
            let mut gen = self.lobby_gen.lock();
            *gen += 1;
            // mtlint: allow(notify-all, reason = "device hot-add: every lobby waiter must observe the generation bump and re-run placement")
            self.lobby_cv.notify_all();
        }
        for _ in 0..count {
            if self.total_waiting.load(Ordering::SeqCst) == 0 {
                break;
            }
            self.nudge(Some(id));
        }
        Ok(())
    }

    /// Removes a device (failure or hot detach), returning the contexts
    /// that were bound to it. Their device state must be recovered by the
    /// caller via the memory manager. Queued waiters are rerouted to other
    /// devices.
    pub fn remove_device(&self, id: DeviceId) -> Vec<CtxId> {
        let Some(shard) = self.shards.write().remove(&id) else { return Vec::new() };
        let mut st = shard.state.lock();
        st.defunct = true;
        {
            let mut g = self.global.lock();
            for (_, app) in st.bound.values() {
                if let Some(app) = app {
                    Self::app_release(&mut g.app_devices, *app);
                }
            }
        }
        let mut affected: Vec<CtxId> = st.bound.values().map(|&(c, _)| c).collect();
        // vGPU-index order in; recovery wants context-id order.
        affected.sort_unstable();
        st.bound.clear();
        st.free.clear();
        shard.free_hint.store(0, Ordering::Relaxed);
        shard.bound_hint.store(0, Ordering::Relaxed);
        for w in st.queue.drain(..) {
            self.total_waiting.fetch_sub(1, Ordering::SeqCst);
            Self::set_slot(&w, SlotState::Reroute);
            RuntimeMetrics::bump(&self.metrics.waiter_reroutes);
        }
        affected
    }

    fn app_release(map: &mut HashMap<u64, (DeviceId, usize)>, app: u64) {
        if let Some((_, count)) = map.get_mut(&app) {
            *count -= 1;
            if *count == 0 {
                map.remove(&app);
            }
        }
    }

    /// Whether a device is registered.
    pub fn has_device(&self, id: DeviceId) -> bool {
        self.shards.read().contains_key(&id)
    }

    /// Blocks until a vGPU is granted to `ctx` (per policy) or `timeout`
    /// expires. The granted binding is also written into the context's
    /// metadata by the caller.
    pub fn acquire(
        &self,
        ctx: &Arc<AppContext>,
        pending_work: f64,
        mem_usage: u64,
        timeout: Duration,
    ) -> Option<Binding> {
        // mtlint: allow(wall-clock, reason = "acquisition timeout is a real-time liveness bound on parked OS threads, not simulated time; det harnesses drive clients sequentially so it never fires under replay")
        let deadline = Instant::now() + timeout;
        // Keep the context's original FCFS position across re-armed waits
        // and re-placements.
        let enq_seq = {
            let mut inner = ctx.inner();
            match inner.wait_ticket {
                Some(t) => t,
                None => {
                    let t = self.next_seq.fetch_add(1, Ordering::Relaxed);
                    inner.wait_ticket = Some(t);
                    t
                }
            }
        };
        let app_id = ctx.inner().app_id;
        loop {
            let Some(shard) = self.placement_target(app_id, mem_usage, false) else {
                // No placeable device at all: park in the lobby until one
                // appears (or the deadline passes).
                if self.park_in_lobby(deadline) {
                    return None;
                }
                continue;
            };
            let mut st = shard.state.lock();
            if st.defunct {
                continue;
            }
            // Fast path: free slot, nobody queued ahead — grant directly
            // without allocating a waiter or touching any condvar.
            if st.queue.is_empty() && !st.free.is_empty() && !shard.gpu.is_failed() {
                if !self.commit_affinity(app_id, shard.device) {
                    // A sibling bound elsewhere between placement and now.
                    continue;
                }
                let binding = Self::grant_slot(&shard, &mut st, ctx.id, app_id);
                drop(st);
                if self.policy == SchedulerPolicy::CreditBased {
                    let mut inner = ctx.inner();
                    // Sole candidate with exhausted credits refills, as in
                    // a drain where every candidate is at zero.
                    if inner.credits == 0 {
                        inner.credits = 4;
                    }
                    inner.credits = inner.credits.saturating_sub(1);
                }
                ctx.inner().wait_ticket = None;
                RuntimeMetrics::bump(&self.metrics.bindings);
                return Some(binding);
            }
            // Slow path: park on this shard's queue and wait for a
            // targeted wakeup.
            let waiter = Arc::new(Waiter {
                ctx: Arc::clone(ctx),
                enq_seq,
                pending_work,
                mem_usage,
                app_id,
                slot: WaitSlot::new(),
            });
            st.queue.push(Arc::clone(&waiter));
            self.total_waiting.fetch_add(1, Ordering::SeqCst);
            self.drain_shard(&shard, &mut st);
            drop(st);
            match self.park(&shard, &waiter, deadline) {
                Parked::Granted(b) => {
                    ctx.inner().wait_ticket = None;
                    return Some(b);
                }
                Parked::Deadline => return None,
                Parked::Replace => continue,
            }
        }
    }

    /// Parks on the waiter's private slot until granted, rerouted, the
    /// deadline passes, or a re-placement opportunity appears.
    fn park(&self, shard: &Arc<Shard>, waiter: &Arc<Waiter>, deadline: Instant) -> Parked {
        // mtlint: allow(wall-clock, reason = "re-placement slice bounds real parking staleness of an OS thread; never consulted on the sequential replay path")
        let mut slice_end = Instant::now() + REPLACE_SLICE;
        let mut s = waiter.slot.state.lock();
        loop {
            match std::mem::replace(&mut *s, SlotState::Waiting) {
                SlotState::Granted(b) => return Parked::Granted(b),
                SlotState::Reroute => return Parked::Replace,
                SlotState::Waiting => {}
            }
            // mtlint: allow(wall-clock, reason = "deadline/slice checks for a parked OS thread; never consulted on the sequential replay path")
            let now = Instant::now();
            if now >= deadline {
                drop(s);
                return self.abandon(shard, waiter, true);
            }
            if now >= slice_end {
                drop(s);
                // Migrate only toward an actual free slot elsewhere;
                // otherwise stay put (preserves local FCFS order and
                // avoids ping-ponging between equally-loaded full shards).
                if let Some(t) = self.placement_target(waiter.app_id, waiter.mem_usage, true) {
                    if t.device != shard.device {
                        return self.abandon(shard, waiter, false);
                    }
                }
                // mtlint: allow(wall-clock, reason = "re-arms the real-time re-placement slice; never consulted on the sequential replay path")
                slice_end = Instant::now() + REPLACE_SLICE;
                s = waiter.slot.state.lock();
                continue;
            }
            let _ = waiter.slot.cv.wait_until(&mut s, deadline.min(slice_end));
        }
    }

    /// Dequeues the waiter from its shard. If a grant or reroute raced us
    /// (both happen under the shard lock before the entry leaves the
    /// queue), honours it — a grant at the buzzer is still taken.
    fn abandon(&self, shard: &Arc<Shard>, waiter: &Arc<Waiter>, at_deadline: bool) -> Parked {
        let mut st = shard.state.lock();
        if let Some(pos) = st.queue.iter().position(|w| Arc::ptr_eq(w, waiter)) {
            st.queue.remove(pos);
            self.total_waiting.fetch_sub(1, Ordering::SeqCst);
            drop(st);
            return if at_deadline { Parked::Deadline } else { Parked::Replace };
        }
        drop(st);
        let mut s = waiter.slot.state.lock();
        match std::mem::replace(&mut *s, SlotState::Waiting) {
            SlotState::Granted(b) => Parked::Granted(b),
            _ => {
                if at_deadline {
                    Parked::Deadline
                } else {
                    Parked::Replace
                }
            }
        }
    }

    /// Parks until any device is added (generation bump) or the deadline
    /// passes; returns `true` on deadline.
    fn park_in_lobby(&self, deadline: Instant) -> bool {
        self.total_waiting.fetch_add(1, Ordering::SeqCst);
        // mtlint: allow(wall-clock, reason = "lobby parking slice for an OS thread waiting on device hot-add; never consulted on the sequential replay path")
        let slice_end = Instant::now() + REPLACE_SLICE;
        {
            let mut gen = self.lobby_gen.lock();
            let seen = *gen;
            while *gen == seen {
                let timed_out =
                    self.lobby_cv.wait_until(&mut gen, deadline.min(slice_end)).timed_out();
                if timed_out {
                    break;
                }
            }
        }
        self.total_waiting.fetch_sub(1, Ordering::SeqCst);
        // mtlint: allow(wall-clock, reason = "deadline check for a parked OS thread; never consulted on the sequential replay path")
        Instant::now() >= deadline
    }

    /// Chooses the shard for a placement: the CUDA 4.0 affinity device if
    /// the application already has one, else the seed heuristic over a
    /// lock-free snapshot — lowest capability-weighted load first
    /// (`(bound+1) / relative speed`, the §2 principle of "maximizing the
    /// overall processor utilization while favoring the use of more
    /// powerful cores"), preferring devices whose free memory fits,
    /// seeded-rng or rotating-cursor tiebreak within a 5% load band.
    ///
    /// With `require_free`, only devices with a free vGPU are considered
    /// (the re-placement check); otherwise full devices are acceptable
    /// parking targets and `None` means no healthy device exists.
    fn placement_target(
        &self,
        app_id: Option<u64>,
        mem_usage: u64,
        require_free: bool,
    ) -> Option<Arc<Shard>> {
        if let Some(app) = app_id {
            let aff = self.global.lock().app_devices.get(&app).map(|&(d, _)| d);
            if let Some(dev) = aff {
                // The application's device, full or not: threads of a
                // CUDA 4.0 app wait rather than split (§4.8).
                if let Some(s) = self.shards.read().get(&dev) {
                    return (!require_free).then(|| Arc::clone(s));
                }
                // Device removed entirely: drop the stale affinity so the
                // app can regroup elsewhere.
                self.global.lock().app_devices.remove(&app);
            }
        }
        let snaps: Vec<DevSnap> = {
            let shards = self.shards.read();
            shards
                .values()
                .filter(|s| !s.gpu.is_failed())
                .map(|s| DevSnap {
                    shard: Arc::clone(s),
                    free: s.free_hint.load(Ordering::Relaxed),
                    bound: s.bound_hint.load(Ordering::Relaxed),
                    flops: s.gpu.spec().effective_flops(),
                    fits: s.gpu.mem_available() >= mem_usage,
                })
                .collect()
        };
        let with_free: Vec<&DevSnap> = snaps.iter().filter(|s| s.free > 0).collect();
        let pool: Vec<&DevSnap> = if !with_free.is_empty() {
            with_free
        } else if require_free {
            return None;
        } else {
            snaps.iter().collect()
        };
        if pool.is_empty() {
            return None;
        }
        let rr = {
            let mut g = self.global.lock();
            match g.rng.as_mut() {
                Some(rng) => rng.next_u64() as usize,
                None => {
                    let rr = g.rr_cursor;
                    g.rr_cursor = g.rr_cursor.wrapping_add(1);
                    rr
                }
            }
        };
        let max_flops = pool.iter().map(|s| s.flops).fold(f64::MIN, f64::max);
        let keyed: Vec<(&DevSnap, f64)> = pool
            .into_iter()
            .map(|s| {
                let speed = s.flops / max_flops;
                let load = (s.bound + 1) as f64 / speed;
                (s, load)
            })
            .collect();
        let min_load = keyed.iter().map(|&(_, l)| l).fold(f64::INFINITY, f64::min);
        // Among near-equal loads (within 5%), prefer memory fit, then rotate.
        let tied: Vec<&DevSnap> = {
            let close: Vec<&(&DevSnap, f64)> =
                keyed.iter().filter(|&&(_, l)| l <= min_load * 1.05).collect();
            let any_fits = close.iter().any(|&&(s, _)| s.fits);
            close.into_iter().filter(|&&(s, _)| s.fits == any_fits).map(|&(s, _)| s).collect()
        };
        Some(Arc::clone(&tied[rr % tied.len()].shard))
    }

    /// Commits (or re-checks) the CUDA 4.0 affinity of `app_id` to `dev`
    /// at grant time; `false` means the application bound elsewhere in the
    /// meantime and the caller must re-place.
    fn commit_affinity(&self, app_id: Option<u64>, dev: DeviceId) -> bool {
        let Some(app) = app_id else { return true };
        let mut g = self.global.lock();
        match g.app_devices.get(&app) {
            Some(&(d, _)) if d != dev => false,
            _ => {
                g.app_devices.entry(app).or_insert((dev, 0)).1 += 1;
                true
            }
        }
    }

    /// Takes a free slot on the shard (lock held) and records the binding.
    fn grant_slot(
        shard: &Shard,
        st: &mut ShardState,
        ctx_id: CtxId,
        app_id: Option<u64>,
    ) -> Binding {
        let vgpu_idx = st.free.pop().expect("grant without free slot");
        let vgpu = st.vgpus[vgpu_idx as usize].clone();
        st.bound.insert(vgpu_idx, (ctx_id, app_id));
        shard.free_hint.fetch_sub(1, Ordering::Relaxed);
        shard.bound_hint.fetch_add(1, Ordering::Relaxed);
        Binding { vgpu: vgpu.id, gpu: vgpu.gpu, gpu_ctx: vgpu.gpu_ctx }
    }

    fn set_slot(w: &Waiter, state: SlotState) {
        let mut s = w.slot.state.lock();
        *s = state;
        w.slot.cv.notify_one();
    }

    /// Grants free vGPUs to this shard's queue in policy order until slots
    /// or placeable waiters run out, waking exactly the granted waiters.
    /// Caller holds the shard lock. An entry whose CUDA 4.0 application
    /// meanwhile acquired affinity to a *different* device is rerouted;
    /// other waiters are not blocked behind it.
    fn drain_shard(&self, shard: &Shard, st: &mut ShardState) {
        if st.defunct || shard.gpu.is_failed() {
            return;
        }
        while !st.free.is_empty() && !st.queue.is_empty() {
            // First candidate in policy order (the queue is non-empty, so
            // there always is one).
            let idx = self.ordered_local(st)[0];
            let w = Arc::clone(&st.queue[idx]);
            if !self.commit_affinity(w.app_id, shard.device) {
                st.queue.remove(idx);
                self.total_waiting.fetch_sub(1, Ordering::SeqCst);
                Self::set_slot(&w, SlotState::Reroute);
                RuntimeMetrics::bump(&self.metrics.waiter_reroutes);
                continue;
            }
            let binding = Self::grant_slot(shard, st, w.ctx.id, w.app_id);
            if self.policy == SchedulerPolicy::CreditBased {
                let mut inner = w.ctx.inner();
                inner.credits = inner.credits.saturating_sub(1);
            }
            st.queue.remove(idx);
            self.total_waiting.fetch_sub(1, Ordering::SeqCst);
            Self::set_slot(&w, SlotState::Granted(binding));
            RuntimeMetrics::bump(&self.metrics.bindings);
            RuntimeMetrics::bump(&self.metrics.targeted_wakeups);
        }
    }

    /// This shard's queue indices in policy order.
    fn ordered_local(&self, st: &mut ShardState) -> Vec<usize> {
        let mut candidates: Vec<usize> = (0..st.queue.len()).collect();
        match self.policy {
            SchedulerPolicy::FcfsRoundRobin => {
                candidates.sort_by_key(|&i| st.queue[i].enq_seq);
            }
            SchedulerPolicy::ShortestJobFirst => {
                candidates.sort_by(|&a, &b| {
                    st.queue[a]
                        .pending_work
                        .total_cmp(&st.queue[b].pending_work)
                        .then(st.queue[a].enq_seq.cmp(&st.queue[b].enq_seq))
                });
            }
            SchedulerPolicy::CreditBased => {
                if !candidates.is_empty()
                    && candidates.iter().all(|&i| st.queue[i].ctx.inner().credits == 0)
                {
                    for &i in &candidates {
                        st.queue[i].ctx.inner().credits = 4;
                    }
                }
                candidates.sort_by_key(|&i| {
                    (u32::MAX - st.queue[i].ctx.inner().credits, st.queue[i].enq_seq)
                });
            }
        }
        candidates
    }

    /// Reroutes one policy-best waiter parked on some *other* shard so it
    /// can re-place (toward a device that just gained a free slot). Walks
    /// shards in device-id order; skips CUDA 4.0 affinity waiters, whose
    /// placement is pinned.
    fn nudge(&self, exclude: Option<DeviceId>) {
        let shards: Vec<Arc<Shard>> = self
            .shards
            .read()
            .iter()
            .filter(|(id, _)| Some(**id) != exclude)
            .map(|(_, s)| Arc::clone(s))
            .collect();
        for shard in shards {
            let mut st = shard.state.lock();
            let Some(idx) =
                self.ordered_local(&mut st).into_iter().find(|&i| st.queue[i].app_id.is_none())
            else {
                continue;
            };
            let w = st.queue.remove(idx);
            self.total_waiting.fetch_sub(1, Ordering::SeqCst);
            Self::set_slot(&w, SlotState::Reroute);
            drop(st);
            RuntimeMetrics::bump(&self.metrics.waiter_reroutes);
            return;
        }
    }

    /// Releases the vGPU bound to `ctx_id`. Safe to call from the owner
    /// handler, a swapper or the fault path. Only this device's shard is
    /// locked; the next waiter (if any) gets a targeted wakeup.
    pub fn release(&self, ctx_id: CtxId, vgpu: VGpuId) {
        let shard = self.shards.read().get(&vgpu.device).map(Arc::clone);
        if let Some(shard) = shard {
            let mut free_left = 0;
            {
                let mut st = shard.state.lock();
                if !st.defunct {
                    let owner_ok = st.bound.get(&vgpu.index).is_some_and(|&(o, _)| o == ctx_id);
                    if owner_ok {
                        let (_, app) = st.bound.remove(&vgpu.index).expect("checked above");
                        st.free.push(vgpu.index);
                        shard.free_hint.fetch_add(1, Ordering::Relaxed);
                        shard.bound_hint.fetch_sub(1, Ordering::Relaxed);
                        if let Some(app) = app {
                            Self::app_release(&mut self.global.lock().app_devices, app);
                        }
                    } else {
                        debug_assert!(
                            !st.bound.contains_key(&vgpu.index),
                            "release of unbound vGPU {vgpu}"
                        );
                    }
                    self.drain_shard(&shard, &mut st);
                    free_left = st.free.len();
                }
            }
            // Slots left over after draining our own queue: offer one to a
            // waiter parked on another (full) device.
            if free_left > 0 && self.total_waiting.load(Ordering::SeqCst) > 0 {
                self.nudge(Some(vgpu.device));
            }
        }
        RuntimeMetrics::bump(&self.metrics.unbindings);
    }

    /// Immediately grants a free vGPU on `device` to `ctx_id`, bypassing the
    /// waiting queue — the migration path (§5.3.4), only legal when nothing
    /// is waiting (checked here).
    pub fn try_acquire_on(&self, ctx_id: CtxId, device: DeviceId) -> Option<Binding> {
        if self.total_waiting.load(Ordering::SeqCst) > 0 {
            return None;
        }
        let shard = self.shards.read().get(&device).map(Arc::clone)?;
        let mut st = shard.state.lock();
        if st.defunct || shard.gpu.is_failed() || st.free.is_empty() {
            return None;
        }
        let binding = Self::grant_slot(&shard, &mut st, ctx_id, None);
        RuntimeMetrics::bump(&self.metrics.bindings);
        Some(binding)
    }

    /// Contexts currently bound to `device`, in context-id order (the
    /// backing map iterates by vGPU index; sorting keeps every consumer —
    /// victim selection, recovery — in context-id order).
    pub fn bound_on(&self, device: DeviceId) -> Vec<CtxId> {
        let shard = self.shards.read().get(&device).map(Arc::clone);
        let mut bound: Vec<CtxId> = shard
            .map(|s| s.state.lock().bound.values().map(|&(c, _)| c).collect())
            .unwrap_or_default();
        bound.sort_unstable();
        bound
    }

    /// Snapshot of every registered device, in device-id order.
    pub fn device_views(&self) -> Vec<DeviceView> {
        let shards: Vec<Arc<Shard>> = self.shards.read().values().map(Arc::clone).collect();
        shards
            .into_iter()
            .map(|shard| {
                let st = shard.state.lock();
                DeviceView {
                    id: shard.device,
                    gpu: Arc::clone(&shard.gpu),
                    total_vgpus: st.vgpus.len(),
                    free_vgpus: st.free.len(),
                    bound: {
                        let mut b: Vec<CtxId> = st.bound.values().map(|&(c, _)| c).collect();
                        b.sort_unstable();
                        b
                    },
                    effective_flops: shard.gpu.spec().effective_flops(),
                    mem_available: shard.gpu.mem_available(),
                }
            })
            .collect()
    }

    /// Number of contexts waiting for a binding.
    pub fn waiting_count(&self) -> usize {
        self.total_waiting.load(Ordering::SeqCst)
    }

    /// Number of contexts currently bound.
    pub fn bound_count(&self) -> usize {
        self.shards.read().values().map(|s| s.bound_hint.load(Ordering::Relaxed)).sum()
    }

    /// Total vGPUs across healthy devices — what `cudaGetDeviceCount`
    /// reports to applications (§4.3).
    pub fn total_vgpus(&self) -> usize {
        self.shards.read().values().filter(|s| !s.gpu.is_failed()).map(|s| s.vgpu_count).sum()
    }

    /// The spec of the physical device backing virtual device `index`
    /// (vGPUs enumerated device-major).
    pub fn vgpu_spec(&self, index: u32) -> Option<mtgpu_gpusim::GpuSpec> {
        let shards = self.shards.read();
        let mut remaining = index as usize;
        for s in shards.values() {
            if remaining < s.vgpu_count {
                return Some(s.gpu.spec().clone());
            }
            remaining -= s.vgpu_count;
        }
        None
    }

    /// Wakes every parked waiter (used on shutdown and device events).
    /// Waiters that wake without a grant re-check their deadline and
    /// re-place, so a shutting-down runtime unparks promptly.
    pub fn notify_all(&self) {
        {
            let mut gen = self.lobby_gen.lock();
            *gen += 1;
            // mtlint: allow(notify-all, reason = "shutdown/device-event broadcast: every lobby waiter must observe the generation bump")
            self.lobby_cv.notify_all();
        }
        let shards: Vec<Arc<Shard>> = self.shards.read().values().map(Arc::clone).collect();
        for shard in shards {
            let st = shard.state.lock();
            for w in &st.queue {
                w.slot.cv.notify_one();
            }
        }
    }

    /// Contended acquisitions per scheduler lock since the last monitor
    /// pass (debug builds only — the ranked-lock observability hook).
    /// Per-shard counts are aggregated under one `SHARD_STATE` entry.
    pub(crate) fn take_lock_contention(&self) -> Vec<(&'static str, u64)> {
        let shard_total: u64 = self.shards.read().values().map(|s| s.state.take_contended()).sum();
        vec![
            ("SHARD_STATE", shard_total),
            ("SCHED_GLOBAL", self.global.take_contended()),
            ("SCHED_LOBBY", self.lobby_gen.take_contended()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtgpu_gpusim::GpuSpec;
    use mtgpu_simtime::Clock;

    fn setup(n_devices: u32, vgpus: u32) -> (Arc<BindingManager>, Vec<Arc<Gpu>>) {
        let clock = Clock::with_scale(1e-7);
        let bm = Arc::new(BindingManager::new(
            SchedulerPolicy::FcfsRoundRobin,
            Arc::new(RuntimeMetrics::default()),
        ));
        let mut gpus = Vec::new();
        for i in 0..n_devices {
            let gpu = Gpu::new(GpuSpec::test_small(), clock.clone(), i);
            bm.add_device(DeviceId(i), Arc::clone(&gpu), vgpus).unwrap();
            gpus.push(gpu);
        }
        (bm, gpus)
    }

    fn ctx(id: u64) -> Arc<AppContext> {
        AppContext::new(CtxId(id), id, format!("j{id}"))
    }

    #[test]
    fn grants_up_to_capacity_then_blocks() {
        let (bm, _) = setup(1, 2);
        let a = ctx(1);
        let b = ctx(2);
        let c = ctx(3);
        let ba = bm.acquire(&a, 1.0, 0, Duration::from_millis(200)).unwrap();
        let bb = bm.acquire(&b, 1.0, 0, Duration::from_millis(200)).unwrap();
        assert_ne!(ba.vgpu, bb.vgpu);
        assert_eq!(bm.bound_count(), 2);
        // Third context times out.
        assert!(bm.acquire(&c, 1.0, 0, Duration::from_millis(30)).is_none());
        // Releasing one slot lets it in.
        bm.release(a.id, ba.vgpu);
        let bc = bm.acquire(&c, 1.0, 0, Duration::from_millis(200)).unwrap();
        assert_eq!(bc.vgpu, ba.vgpu);
    }

    #[test]
    fn release_wakes_blocked_waiter() {
        let (bm, _) = setup(1, 1);
        let a = ctx(1);
        let b = ctx(2);
        let ba = bm.acquire(&a, 1.0, 0, Duration::from_secs(1)).unwrap();
        let bm2 = Arc::clone(&bm);
        let b2 = Arc::clone(&b);
        let waiter =
            std::thread::spawn(move || bm2.acquire(&b2, 1.0, 0, Duration::from_secs(5)).is_some());
        while bm.waiting_count() == 0 {
            std::hint::spin_loop();
        }
        bm.release(a.id, ba.vgpu);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn load_balances_across_devices() {
        let (bm, _) = setup(3, 4);
        let mut per_device = HashMap::new();
        for i in 0..6 {
            let c = ctx(i);
            let b = bm.acquire(&c, 1.0, 0, Duration::from_millis(200)).unwrap();
            *per_device.entry(b.vgpu.device).or_insert(0) += 1;
        }
        // 6 jobs over 3 devices → 2 each under vGPU-uniform balancing.
        assert_eq!(per_device.len(), 3);
        assert!(per_device.values().all(|&n| n == 2), "{per_device:?}");
    }

    #[test]
    fn sjf_prefers_short_jobs() {
        let clock = Clock::with_scale(1e-7);
        let bm = Arc::new(BindingManager::new(
            SchedulerPolicy::ShortestJobFirst,
            Arc::new(RuntimeMetrics::default()),
        ));
        let gpu = Gpu::new(GpuSpec::test_small(), clock, 0);
        bm.add_device(DeviceId(0), gpu, 1).unwrap();
        let holder = ctx(0);
        let hb = bm.acquire(&holder, 1.0, 0, Duration::from_millis(200)).unwrap();
        // Park a long job, then a short job.
        let long = ctx(1);
        let short = ctx(2);
        let bm_l = Arc::clone(&bm);
        let long2 = Arc::clone(&long);
        let t_long = std::thread::spawn(move || {
            bm_l.acquire(&long2, 1e12, 0, Duration::from_secs(5)).map(|b| b.vgpu)
        });
        while bm.waiting_count() < 1 {
            std::hint::spin_loop();
        }
        let bm_s = Arc::clone(&bm);
        let short2 = Arc::clone(&short);
        let t_short = std::thread::spawn(move || {
            bm_s.acquire(&short2, 1e3, 0, Duration::from_secs(5)).map(|b| b.vgpu)
        });
        while bm.waiting_count() < 2 {
            std::hint::spin_loop();
        }
        // Free the slot: the SHORT job must get it first.
        bm.release(holder.id, hb.vgpu);
        let short_got = t_short.join().unwrap();
        assert!(short_got.is_some());
        // Long is still waiting; give it the slot to finish the test.
        bm.release(short.id, short_got.unwrap());
        assert!(t_long.join().unwrap().is_some());
    }

    #[test]
    fn failed_device_not_granted() {
        let (bm, gpus) = setup(2, 1);
        gpus[0].fail();
        for i in 0..1 {
            let c = ctx(i);
            let b = bm.acquire(&c, 1.0, 0, Duration::from_millis(200)).unwrap();
            assert_eq!(b.vgpu.device, DeviceId(1));
        }
    }

    #[test]
    fn remove_device_reports_bound_ctxs() {
        let (bm, _) = setup(1, 2);
        let a = ctx(1);
        let _ba = bm.acquire(&a, 1.0, 0, Duration::from_millis(200)).unwrap();
        let affected = bm.remove_device(DeviceId(0));
        assert_eq!(affected, vec![a.id]);
        assert!(!bm.has_device(DeviceId(0)));
        assert_eq!(bm.total_vgpus(), 0);
    }

    #[test]
    fn try_acquire_on_respects_waiting_queue() {
        let (bm, _) = setup(1, 1);
        let a = ctx(1);
        let _ba = bm.acquire(&a, 1.0, 0, Duration::from_millis(200)).unwrap();
        // Park a waiter.
        let bm2 = Arc::clone(&bm);
        let w = ctx(2);
        let w2 = Arc::clone(&w);
        let t = std::thread::spawn(move || bm2.acquire(&w2, 1.0, 0, Duration::from_millis(300)));
        while bm.waiting_count() == 0 {
            std::hint::spin_loop();
        }
        // Migration must refuse while a context is waiting.
        assert!(bm.try_acquire_on(CtxId(9), DeviceId(0)).is_none());
        let _ = t.join().unwrap();
    }

    #[test]
    fn seeded_tie_breaks_replay_bit_for_bit() {
        // Two managers with the same seed must produce the identical grant
        // sequence for the identical arrival order; a different seed is
        // allowed to differ (and does for this workload shape).
        let placement = |seed: u64| -> Vec<u32> {
            let clock = Clock::virtual_clock();
            let bm = Arc::new(BindingManager::new_seeded(
                SchedulerPolicy::FcfsRoundRobin,
                Arc::new(RuntimeMetrics::default()),
                seed,
            ));
            for i in 0..3 {
                let gpu = Gpu::new(GpuSpec::test_small(), clock.clone(), i);
                bm.add_device(DeviceId(i), gpu, 4).unwrap();
            }
            (0..9)
                .map(|i| {
                    let c = ctx(i);
                    let b = bm.acquire(&c, 1.0, 0, Duration::from_millis(200)).unwrap();
                    let dev = b.vgpu.device.0;
                    bm.release(c.id, b.vgpu);
                    dev
                })
                .collect()
        };
        assert_eq!(placement(42), placement(42));
        assert_eq!(placement(7), placement(7));
    }

    #[test]
    fn vgpu_enumeration_reports_virtual_count() {
        let (bm, _) = setup(2, 4);
        assert_eq!(bm.total_vgpus(), 8);
        assert!(bm.vgpu_spec(0).is_some());
        assert!(bm.vgpu_spec(7).is_some());
        assert!(bm.vgpu_spec(8).is_none());
    }

    #[test]
    fn release_on_other_device_unparks_cross_shard_waiter() {
        // A waiter parked on a full device must be nudged toward a slot
        // freed on a *different* device (the sharded analog of the old
        // global notify_all).
        let (bm, _) = setup(2, 1);
        let a = ctx(1);
        let b = ctx(2);
        let ba = bm.acquire(&a, 1.0, 0, Duration::from_secs(1)).unwrap();
        let bb = bm.acquire(&b, 1.0, 0, Duration::from_secs(1)).unwrap();
        assert_ne!(ba.vgpu.device, bb.vgpu.device);
        // Both devices full; park a third context (it queues on one shard).
        let c = ctx(3);
        let bm2 = Arc::clone(&bm);
        let c2 = Arc::clone(&c);
        let waiter = std::thread::spawn(move || bm2.acquire(&c2, 1.0, 0, Duration::from_secs(5)));
        while bm.waiting_count() == 0 {
            std::hint::spin_loop();
        }
        // Free a slot on whichever device: the waiter must get it even if
        // it parked on the other shard.
        bm.release(a.id, ba.vgpu);
        let bc = waiter.join().unwrap().expect("cross-shard waiter stranded");
        assert_eq!(bc.vgpu.device, ba.vgpu.device);
        bm.release(b.id, bb.vgpu);
        bm.release(c.id, bc.vgpu);
        assert_eq!(bm.bound_count(), 0);
    }

    #[test]
    fn add_device_unparks_lobby_waiter() {
        let clock = Clock::with_scale(1e-7);
        let bm = Arc::new(BindingManager::new(
            SchedulerPolicy::FcfsRoundRobin,
            Arc::new(RuntimeMetrics::default()),
        ));
        let c = ctx(1);
        let bm2 = Arc::clone(&bm);
        let c2 = Arc::clone(&c);
        let waiter = std::thread::spawn(move || bm2.acquire(&c2, 1.0, 0, Duration::from_secs(5)));
        while bm.waiting_count() == 0 {
            std::hint::spin_loop();
        }
        let gpu = Gpu::new(GpuSpec::test_small(), clock, 0);
        bm.add_device(DeviceId(0), gpu, 1).unwrap();
        assert!(waiter.join().unwrap().is_some());
    }

    #[test]
    fn remove_device_reroutes_queued_waiters() {
        let (bm, _) = setup(2, 1);
        let a = ctx(1);
        let b = ctx(2);
        let ba = bm.acquire(&a, 1.0, 0, Duration::from_secs(1)).unwrap();
        let _bb = bm.acquire(&b, 1.0, 0, Duration::from_secs(1)).unwrap();
        let c = ctx(3);
        let bm2 = Arc::clone(&bm);
        let c2 = Arc::clone(&c);
        let waiter = std::thread::spawn(move || bm2.acquire(&c2, 1.0, 0, Duration::from_secs(5)));
        while bm.waiting_count() == 0 {
            std::hint::spin_loop();
        }
        // Remove the device holding `a`'s binding: if the waiter was parked
        // there, it must re-place; either way it gets `a`'s or the freed
        // capacity eventually.
        let dev_a = ba.vgpu.device;
        let affected = bm.remove_device(dev_a);
        assert_eq!(affected, vec![a.id]);
        // Free the *other* device so the waiter can bind wherever it ends
        // up re-placed.
        bm.release(b.id, _bb.vgpu);
        let bc = waiter.join().unwrap().expect("waiter stranded after device removal");
        assert_ne!(bc.vgpu.device, dev_a);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::config::SchedulerPolicy;
    use mtgpu_gpusim::GpuSpec;
    use mtgpu_simtime::Clock;

    fn bm_with(policy: SchedulerPolicy) -> Arc<BindingManager> {
        let bm = Arc::new(BindingManager::new(policy, Arc::new(RuntimeMetrics::default())));
        let gpu = Gpu::new(GpuSpec::test_small(), Clock::with_scale(1e-7), 0);
        bm.add_device(DeviceId(0), gpu, 1).unwrap();
        bm
    }

    fn ctx(id: u64) -> Arc<AppContext> {
        AppContext::new(CtxId(id), id, format!("p{id}"))
    }

    /// Parks `n` waiters behind a holder and returns them with their join
    /// handles, in arrival order.
    fn park_waiters(
        bm: &Arc<BindingManager>,
        ids: &[u64],
    ) -> Vec<std::thread::JoinHandle<Option<Binding>>> {
        let mut handles = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            let bm2 = Arc::clone(bm);
            let c = ctx(id);
            handles.push(std::thread::spawn(move || {
                bm2.acquire(&c, id as f64, 0, Duration::from_secs(5))
            }));
            while bm.waiting_count() < i + 1 {
                std::hint::spin_loop();
            }
        }
        handles
    }

    #[test]
    fn credit_based_depletes_and_refills() {
        let bm = bm_with(SchedulerPolicy::CreditBased);
        // Serial grants: each acquire succeeds immediately and burns one
        // credit of the context.
        let c = ctx(1);
        for expected in [3u32, 2, 1] {
            let b = bm.acquire(&c, 1.0, 0, Duration::from_millis(200)).unwrap();
            assert_eq!(c.inner().credits, expected);
            bm.release(c.id, b.vgpu);
        }
        // Fourth grant exhausts; a fifth refills (sole candidate) and works.
        let b = bm.acquire(&c, 1.0, 0, Duration::from_millis(200)).unwrap();
        assert_eq!(c.inner().credits, 0);
        bm.release(c.id, b.vgpu);
        let b = bm.acquire(&c, 1.0, 0, Duration::from_millis(200)).unwrap();
        assert_eq!(c.inner().credits, 3, "refill happened");
        bm.release(c.id, b.vgpu);
    }

    #[test]
    fn cuda4_affinity_constrains_placement() {
        let bm = Arc::new(BindingManager::new(
            SchedulerPolicy::FcfsRoundRobin,
            Arc::new(RuntimeMetrics::default()),
        ));
        let clock = Clock::with_scale(1e-7);
        for i in 0..2 {
            bm.add_device(DeviceId(i), Gpu::new(GpuSpec::test_small(), clock.clone(), i), 3)
                .unwrap();
        }
        // Thread 1 of app 7 binds somewhere.
        let a = ctx(1);
        a.inner().app_id = Some(7);
        let ba = bm.acquire(&a, 1.0, 0, Duration::from_millis(200)).unwrap();
        // Threads 2 and 3 of the same app must land on the same device even
        // though load balancing would spread them.
        for id in [2u64, 3] {
            let c = ctx(id);
            c.inner().app_id = Some(7);
            let b = bm.acquire(&c, 1.0, 0, Duration::from_millis(500)).unwrap();
            assert_eq!(b.vgpu.device, ba.vgpu.device, "app thread {id} strayed");
            // Keep it bound so the affinity stays pinned.
            std::mem::forget(b);
        }
    }

    #[test]
    fn cuda4_affinity_waits_rather_than_splits() {
        let bm = Arc::new(BindingManager::new(
            SchedulerPolicy::FcfsRoundRobin,
            Arc::new(RuntimeMetrics::default()),
        ));
        let clock = Clock::with_scale(1e-7);
        for i in 0..2 {
            bm.add_device(DeviceId(i), Gpu::new(GpuSpec::test_small(), clock.clone(), i), 1)
                .unwrap();
        }
        let a = ctx(1);
        a.inner().app_id = Some(9);
        let ba = bm.acquire(&a, 1.0, 0, Duration::from_millis(200)).unwrap();
        // A sibling cannot bind (its device has no free vGPU) even though
        // the other device is idle — and an unrelated context can overtake
        // it onto the idle device.
        let sibling = ctx(2);
        sibling.inner().app_id = Some(9);
        let bm2 = Arc::clone(&bm);
        let sib2 = Arc::clone(&sibling);
        let sib_wait =
            std::thread::spawn(move || bm2.acquire(&sib2, 1.0, 0, Duration::from_secs(5)));
        while bm.waiting_count() == 0 {
            std::hint::spin_loop();
        }
        let other = ctx(3);
        let bo = bm.acquire(&other, 1.0, 0, Duration::from_millis(500)).unwrap();
        assert_ne!(bo.vgpu.device, ba.vgpu.device, "unrelated ctx takes the idle device");
        // Releasing the first app thread lets the sibling in on that device.
        bm.release(a.id, ba.vgpu);
        let bs = sib_wait.join().unwrap().unwrap();
        assert_eq!(bs.vgpu.device, ba.vgpu.device);
        bm.release(other.id, bo.vgpu);
        bm.release(sibling.id, bs.vgpu);
    }

    #[test]
    fn fcfs_order_preserved_under_parked_waiters() {
        let bm = bm_with(SchedulerPolicy::FcfsRoundRobin);
        let holder = ctx(0);
        let hb = bm.acquire(&holder, 1.0, 0, Duration::from_millis(200)).unwrap();
        let handles = park_waiters(&bm, &[10, 11, 12]);
        // Free the slot three times; waiters must be served in ARRIVAL
        // order: joining handle[i] before releasing its slot only
        // terminates if waiter i was indeed served next.
        bm.release(holder.id, hb.vgpu);
        for (h, id) in handles.into_iter().zip([10u64, 11, 12]) {
            let b = h.join().unwrap().expect("waiter starved: FIFO violated");
            bm.release(CtxId(id), b.vgpu);
        }
    }
}
