//! Runtime event tracing: a bounded in-memory log of scheduling and
//! memory-management decisions, timestamped in simulated time.
//!
//! Every consequential action the runtime takes — binding, unbinding,
//! swapping, migrating, checkpointing, failing over, offloading — emits one
//! [`TraceEvent`]. The trace is what an operator (or a test) reads to
//! understand *why* a batch behaved the way it did; the experiment
//! harnesses print aggregate counters, the trace has the per-decision
//! story.

use crate::ctx::{CtxId, VGpuId};
use crate::memory::SwapReason;
use mtgpu_gpusim::DeviceId;
use mtgpu_simtime::{lock_rank, Clock, RankedMutex, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// One traced runtime decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A connection was accepted and a context created.
    ContextCreated { ctx: CtxId, label: String },
    /// A context finished (exit or disconnect).
    ContextFinished { ctx: CtxId },
    /// The context was bound to a vGPU (delayed binding at first launch,
    /// re-binding after an unbind, or migration target).
    Bound { ctx: CtxId, vgpu: VGpuId },
    /// The context lost its vGPU.
    Unbound { ctx: CtxId, vgpu: VGpuId, reason: UnbindReason },
    /// A context's device-resident data was swapped out.
    SwappedOut { ctx: CtxId, bytes: u64, reason: SwapKindTag },
    /// A transfer plan (materialize/swap/checkpoint batch) was executed:
    /// `ops` transfers totalling `bytes`, spread over `lanes` copy-engine
    /// lanes (`lanes > 1` means the plan overlapped transfers).
    TransferPlan { ctx: CtxId, ops: u32, lanes: u32, bytes: u64 },
    /// A context migrated between devices (§5.3.4 dynamic binding).
    Migrated { ctx: CtxId, from: DeviceId, to: DeviceId },
    /// A live migration (`migrate_ctx`) moved `p2p_bytes` of working set
    /// device-to-device over `lanes` peer-DMA lanes and dropped
    /// `skipped_bytes` of slab-authoritative pages (rematerialized lazily
    /// on the destination).
    MigrationTransferred { ctx: CtxId, p2p_bytes: u64, skipped_bytes: u64, lanes: u32 },
    /// A live migration aborted at `phase` and rolled back; the context
    /// remains fully on its source device.
    MigrationAborted { ctx: CtxId, phase: String },
    /// The rebalancer picked `ctx` as the costliest-misplaced context on a
    /// hot device (`score` is the deterministic pressure-score delta ×1000).
    RebalancePicked { ctx: CtxId, from: DeviceId, to: DeviceId, score: i64 },
    /// A checkpoint synchronized the context's dirty data (§4.6).
    Checkpointed { ctx: CtxId, explicit: bool },
    /// A device failure/removal was detected by the monitor or inline.
    DeviceLost { device: DeviceId },
    /// The context survived a device loss and can rebind elsewhere.
    Recovered { ctx: CtxId },
    /// The context lost un-checkpointed data and was failed.
    Failed { ctx: CtxId },
    /// The connection was relayed to a peer node (§4.7).
    Offloaded { ctx: CtxId, peer: String },
    /// The admission controller refused a request (over-quota allocation
    /// or context creation); `what` names the exhausted resource.
    QuotaRejected { ctx: CtxId, what: String },
    /// A tenant's lease TTL elapsed and this context was reaped: failed,
    /// evicted if bound, and its pages freed.
    LeaseReaped { ctx: CtxId },
    /// A low-priority victim was evicted so a higher-priority tenant could
    /// materialize under memory pressure.
    Preempted { victim: CtxId, by: CtxId, bytes: u64 },
    /// Async prefetch committed `ops` predicted uploads (`bytes` total)
    /// ahead of the context's next launch; `cancelled` candidates were
    /// planned but dropped before commit (OOM, device error, stale flags).
    Prefetched { ctx: CtxId, ops: u32, bytes: u64, cancelled: u32 },
    /// A launch's materialization split into two waves: the kernel
    /// dispatched once its first-touch wave committed while `wave2_ops`
    /// uploads (`wave2_bytes`) streamed on the speculative copy-engine
    /// lane during execution.
    DoubleBuffered { ctx: CtxId, wave2_ops: u32, wave2_bytes: u64 },
    /// Debug-build observability: a ranked lock saw `count` contended
    /// acquisitions since the last monitor pass. Structural counts only —
    /// no timings — and never emitted by sequential (deterministic)
    /// drivers, where nothing contends, so replay fingerprints are
    /// unaffected.
    LockContention { lock: String, count: u64 },
}

/// Why a binding was released.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnbindReason {
    /// Job finished.
    Finished,
    /// Evicted as an inter-application swap victim.
    Victim,
    /// Voluntary unbind-and-retry after failed materialization.
    Retry,
    /// Migration to another device.
    Migration,
    /// The device failed.
    DeviceLoss,
    /// Evicted by a higher-priority tenant under memory pressure.
    Preempted,
    /// The tenant's lease expired and the context was reaped.
    LeaseReaped,
}

/// Serializable mirror of [`SwapReason`] for trace records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwapKindTag {
    InterAppVictim,
    Unbind,
    Migration,
    DeviceLoss,
    Preempted,
}

impl From<SwapReason> for SwapKindTag {
    fn from(r: SwapReason) -> Self {
        match r {
            SwapReason::InterAppVictim => SwapKindTag::InterAppVictim,
            SwapReason::Unbind => SwapKindTag::Unbind,
            SwapReason::Migration => SwapKindTag::Migration,
            SwapReason::DeviceLoss => SwapKindTag::DeviceLoss,
            SwapReason::Preempted => SwapKindTag::Preempted,
        }
    }
}

/// A timestamped trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulated time since the runtime's clock epoch.
    pub at: SimDuration,
    /// The event.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[t+{}] {:?}", self.at, self.event)
    }
}

/// A bounded, thread-safe event log. Capacity 0 disables tracing (no
/// locking on the hot path beyond one atomic-free check of the capacity).
pub struct Tracer {
    clock: Clock,
    capacity: usize,
    ring: RankedMutex<VecDeque<TraceRecord>>,
}

impl Tracer {
    /// Creates a tracer holding up to `capacity` events (oldest evicted).
    pub fn new(clock: Clock, capacity: usize) -> Self {
        Tracer {
            clock,
            capacity,
            ring: RankedMutex::new(
                lock_rank::TRACER_RING,
                VecDeque::with_capacity(capacity.min(4096)),
            ),
        }
    }

    /// Whether tracing is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an event (no-op when disabled).
    pub fn record(&self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        let at = self.clock.now().since_epoch();
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(TraceRecord { at, event });
    }

    /// A snapshot of the recorded events, oldest first.
    pub fn events(&self) -> Vec<TraceRecord> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Number of recorded events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.ring.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer(cap: usize) -> Tracer {
        Tracer::new(Clock::with_scale(1e-6), cap)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = tracer(0);
        assert!(!t.enabled());
        t.record(TraceEvent::DeviceLost { device: DeviceId(0) });
        assert!(t.is_empty());
    }

    #[test]
    fn ring_evicts_oldest() {
        let t = tracer(3);
        for i in 0..5 {
            t.record(TraceEvent::ContextFinished { ctx: CtxId(i) });
        }
        let events = t.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].event, TraceEvent::ContextFinished { ctx: CtxId(2) });
        assert_eq!(events[2].event, TraceEvent::ContextFinished { ctx: CtxId(4) });
    }

    #[test]
    fn timestamps_are_monotone() {
        let t = tracer(16);
        t.record(TraceEvent::DeviceLost { device: DeviceId(0) });
        t.record(TraceEvent::DeviceLost { device: DeviceId(1) });
        let e = t.events();
        assert!(e[0].at <= e[1].at);
    }

    #[test]
    fn records_serialize() {
        let t = tracer(4);
        t.record(TraceEvent::Migrated { ctx: CtxId(1), from: DeviceId(0), to: DeviceId(1) });
        let json = serde_json::to_string(&t.events()).unwrap();
        let back: Vec<TraceRecord> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t.events());
    }

    #[test]
    fn clear_empties() {
        let t = tracer(4);
        t.record(TraceEvent::ContextFinished { ctx: CtxId(1) });
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
    }
}
