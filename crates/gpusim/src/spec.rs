use serde::{Deserialize, Serialize};

const MIB: u64 = 1024 * 1024;
const GIB: u64 = 1024 * MIB;

/// Static description of a GPU device: the axes of the paper's testbed that
/// matter to scheduling and memory management (§5.1).
///
/// Compute capability is reduced to an effective GFLOPS throughput derived
/// from `SMs × cores/SM × clock × 2`, de-rated per architecture generation so
/// the paper's fast/slow device ratios hold (see `DESIGN.md` §6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"Tesla C2050"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Shader clock in GHz.
    pub clock_ghz: f64,
    /// Architecture de-rating factor applied to the raw FLOP estimate
    /// (older ISAs extract less useful throughput per peak FLOP).
    pub efficiency: f64,
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Effective host<->device bandwidth in bytes per second (PCIe Gen2 era).
    pub pcie_bytes_per_sec: f64,
    /// Device-memory bandwidth in bytes per second (bounds memory-bound
    /// kernels in the timing model).
    pub mem_bytes_per_sec: f64,
    /// Number of independent copy engines (C2050 has two, C1060 one).
    pub copy_engines: u32,
    /// Bytes reserved on the device per CUDA context (the CUDA runtime's
    /// per-context overhead the paper discusses in §1).
    pub ctx_reserved_bytes: u64,
    /// Hard limit on concurrent contexts; the paper experimentally observed
    /// the CUDA runtime cannot sustain more than eight.
    pub max_contexts: u32,
}

impl GpuSpec {
    /// Effective throughput used by the timing model, in FLOP/s.
    pub fn effective_flops(&self) -> f64 {
        self.sm_count as f64
            * self.cores_per_sm as f64
            * self.clock_ghz
            * 1e9
            * 2.0
            * self.efficiency
    }

    /// NVIDIA Tesla C2050: 14 SMs × 32 cores @ 1.15 GHz, 3 GiB (the paper's
    /// "fast" Fermi device).
    pub fn tesla_c2050() -> Self {
        GpuSpec {
            name: "Tesla C2050".to_string(),
            sm_count: 14,
            cores_per_sm: 32,
            clock_ghz: 1.15,
            efficiency: 1.0,
            mem_bytes: 3 * GIB,
            pcie_bytes_per_sec: 4.0e9,
            mem_bytes_per_sec: 144.0e9,
            copy_engines: 2,
            ctx_reserved_bytes: 90 * MIB,
            max_contexts: 8,
        }
    }

    /// NVIDIA Tesla C1060: 30 SMs × 8 cores @ 1.30 GHz, 4 GiB (the paper's
    /// older GT200 device; de-rated so application-level throughput lands
    /// at roughly half a C2050, the ratio 2012-era codes reported).
    pub fn tesla_c1060() -> Self {
        GpuSpec {
            name: "Tesla C1060".to_string(),
            sm_count: 30,
            cores_per_sm: 8,
            clock_ghz: 1.30,
            efficiency: 0.85,
            mem_bytes: 4 * GIB,
            pcie_bytes_per_sec: 3.2e9,
            mem_bytes_per_sec: 102.0e9,
            copy_engines: 1,
            ctx_reserved_bytes: 90 * MIB,
            max_contexts: 8,
        }
    }

    /// NVIDIA Quadro 2000: 4 SMs × 48 cores @ 1.25 GHz, 1 GiB (the paper's
    /// "slow" device for the unbalanced-node experiment, Fig. 9).
    pub fn quadro_2000() -> Self {
        GpuSpec {
            name: "Quadro 2000".to_string(),
            sm_count: 4,
            cores_per_sm: 48,
            clock_ghz: 1.25,
            efficiency: 0.5,
            mem_bytes: GIB,
            pcie_bytes_per_sec: 3.2e9,
            mem_bytes_per_sec: 41.6e9,
            copy_engines: 1,
            ctx_reserved_bytes: 90 * MIB,
            max_contexts: 8,
        }
    }

    /// A tiny device for unit tests: 64 MiB memory, modest throughput, so
    /// memory-pressure paths trigger with small numbers.
    pub fn test_small() -> Self {
        GpuSpec {
            name: "TestGPU-64M".to_string(),
            sm_count: 4,
            cores_per_sm: 32,
            clock_ghz: 1.0,
            efficiency: 1.0,
            mem_bytes: 64 * MIB,
            pcie_bytes_per_sec: 4.0e9,
            mem_bytes_per_sec: 100.0e9,
            copy_engines: 1,
            ctx_reserved_bytes: 4 * MIB,
            max_contexts: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2050_is_about_one_teraflop() {
        let flops = GpuSpec::tesla_c2050().effective_flops();
        assert!((0.9e12..1.2e12).contains(&flops), "C2050 flops {flops}");
    }

    #[test]
    fn device_speed_ordering_matches_paper() {
        // Paper: C2050 is the fast device, C1060 slower, Quadro 2000 slowest.
        let c2050 = GpuSpec::tesla_c2050().effective_flops();
        let c1060 = GpuSpec::tesla_c1060().effective_flops();
        let quadro = GpuSpec::quadro_2000().effective_flops();
        assert!(c2050 > c1060);
        assert!(c1060 > quadro);
        // "Two fast and one slow": the Quadro should be several times slower.
        assert!(c2050 / quadro > 3.0);
    }

    #[test]
    fn c2050_supports_exactly_eight_contexts_by_reservation() {
        let spec = GpuSpec::tesla_c2050();
        assert_eq!(spec.max_contexts, 8);
        // Reservations for 8 contexts must fit in device memory.
        assert!(spec.ctx_reserved_bytes * spec.max_contexts as u64 <= spec.mem_bytes);
    }
}
