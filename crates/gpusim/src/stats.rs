//! Per-device operation counters.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters maintained by a [`crate::Gpu`].
#[derive(Debug, Default)]
pub struct DeviceStats {
    pub kernels_launched: AtomicU64,
    pub h2d_bytes: AtomicU64,
    pub d2h_bytes: AtomicU64,
    /// Bytes moved device-internally (same-device `memcpy_d2d`), over the
    /// memory bus rather than PCIe.
    pub d2d_bytes: AtomicU64,
    /// Bytes this device sourced for peer-to-peer copies (`memcpy_p2p`
    /// with this device as the read side).
    pub p2p_bytes_out: AtomicU64,
    /// Bytes this device received from peer-to-peer copies.
    pub p2p_bytes_in: AtomicU64,
    pub allocs: AtomicU64,
    pub frees: AtomicU64,
    pub failed_allocs: AtomicU64,
    pub contexts_created: AtomicU64,
}

/// A point-in-time copy of [`DeviceStats`], cheap to move around and
/// serialize into experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceStatsSnapshot {
    pub kernels_launched: u64,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub d2d_bytes: u64,
    pub p2p_bytes_out: u64,
    pub p2p_bytes_in: u64,
    pub allocs: u64,
    pub frees: u64,
    pub failed_allocs: u64,
    pub contexts_created: u64,
}

impl DeviceStats {
    /// Takes a consistent-enough snapshot (individual counters are exact;
    /// cross-counter skew is bounded by in-flight operations).
    pub fn snapshot(&self) -> DeviceStatsSnapshot {
        DeviceStatsSnapshot {
            kernels_launched: self.kernels_launched.load(Ordering::Relaxed),
            h2d_bytes: self.h2d_bytes.load(Ordering::Relaxed),
            d2h_bytes: self.d2h_bytes.load(Ordering::Relaxed),
            d2d_bytes: self.d2d_bytes.load(Ordering::Relaxed),
            p2p_bytes_out: self.p2p_bytes_out.load(Ordering::Relaxed),
            p2p_bytes_in: self.p2p_bytes_in.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            failed_allocs: self.failed_allocs.load(Ordering::Relaxed),
            contexts_created: self.contexts_created.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = DeviceStats::default();
        DeviceStats::bump(&s.kernels_launched);
        DeviceStats::add(&s.h2d_bytes, 4096);
        let snap = s.snapshot();
        assert_eq!(snap.kernels_launched, 1);
        assert_eq!(snap.h2d_bytes, 4096);
        assert_eq!(snap.d2h_bytes, 0);
    }
}
