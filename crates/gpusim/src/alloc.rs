//! First-fit block allocator for device memory.
//!
//! The paper notes (§4.5) that "because of possible memory fragmentation on
//! GPU, the runtime may need to use the return code of the GPU memory
//! allocation function" — i.e. capacity accounting alone is not sufficient.
//! This allocator reproduces that behaviour: freeing out of order leaves
//! holes, and a request can fail for lack of a contiguous block even when the
//! total free capacity would suffice.

use crate::error::GpuError;
use crate::Result;

/// Allocation alignment, matching CUDA's 256-byte texture alignment.
pub const ALIGN: u64 = 256;

fn align_up(v: u64) -> u64 {
    (v + ALIGN - 1) & !(ALIGN - 1)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FreeBlock {
    base: u64,
    len: u64,
}

/// A first-fit allocator over the address range `[0, capacity)`.
#[derive(Debug, Clone)]
pub struct BlockAllocator {
    capacity: u64,
    /// Free blocks sorted by base address; adjacent blocks are coalesced.
    free: Vec<FreeBlock>,
    /// Live allocations as `(base, len)` sorted by base.
    live: Vec<(u64, u64)>,
}

impl BlockAllocator {
    /// Creates an allocator managing `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        BlockAllocator {
            capacity,
            free: vec![FreeBlock { base: 0, len: capacity }],
            live: Vec::new(),
        }
    }

    /// Total managed capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Total free bytes (possibly fragmented).
    pub fn free_bytes(&self) -> u64 {
        self.free.iter().map(|b| b.len).sum()
    }

    /// Bytes currently allocated (including alignment padding).
    pub fn used_bytes(&self) -> u64 {
        self.capacity - self.free_bytes()
    }

    /// Size of the largest contiguous free block.
    pub fn largest_free_block(&self) -> u64 {
        self.free.iter().map(|b| b.len).max().unwrap_or(0)
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// External fragmentation ratio in `[0, 1]`: 1 − largest-free/total-free.
    /// Zero when memory is unfragmented or full.
    pub fn fragmentation(&self) -> f64 {
        let free = self.free_bytes();
        if free == 0 {
            return 0.0;
        }
        1.0 - self.largest_free_block() as f64 / free as f64
    }

    /// Allocates `len` bytes (rounded up to [`ALIGN`]); returns the base
    /// address. Fails with [`GpuError::OutOfMemory`] when no contiguous block
    /// fits, and [`GpuError::InvalidValue`] for zero-length requests.
    pub fn alloc(&mut self, len: u64) -> Result<u64> {
        if len == 0 {
            return Err(GpuError::InvalidValue);
        }
        let len = align_up(len);
        let idx = self.free.iter().position(|b| b.len >= len).ok_or(GpuError::OutOfMemory)?;
        let block = self.free[idx];
        let base = block.base;
        if block.len == len {
            self.free.remove(idx);
        } else {
            self.free[idx] = FreeBlock { base: block.base + len, len: block.len - len };
        }
        let pos = self.live.partition_point(|&(b, _)| b < base);
        self.live.insert(pos, (base, len));
        Ok(base)
    }

    /// Releases the allocation starting at `base`.
    pub fn free(&mut self, base: u64) -> Result<()> {
        let pos = self
            .live
            .binary_search_by_key(&base, |&(b, _)| b)
            .map_err(|_| GpuError::InvalidAddress)?;
        let (_, len) = self.live.remove(pos);
        self.insert_free(FreeBlock { base, len });
        Ok(())
    }

    /// Returns `(base, len)` of the live allocation containing `addr`, if any.
    pub fn find_containing(&self, addr: u64) -> Option<(u64, u64)> {
        let pos = self.live.partition_point(|&(b, _)| b <= addr);
        if pos == 0 {
            return None;
        }
        let (base, len) = self.live[pos - 1];
        (addr < base + len).then_some((base, len))
    }

    fn insert_free(&mut self, block: FreeBlock) {
        let pos = self.free.partition_point(|b| b.base < block.base);
        self.free.insert(pos, block);
        // Coalesce with successor, then predecessor.
        if pos + 1 < self.free.len()
            && self.free[pos].base + self.free[pos].len == self.free[pos + 1].base
        {
            self.free[pos].len += self.free[pos + 1].len;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].base + self.free[pos - 1].len == self.free[pos].base {
            self.free[pos - 1].len += self.free[pos].len;
            self.free.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut a = BlockAllocator::new(1 << 20);
        let p = a.alloc(1000).unwrap();
        assert_eq!(p % ALIGN, 0);
        assert_eq!(a.used_bytes(), align_up(1000));
        a.free(p).unwrap();
        assert_eq!(a.used_bytes(), 0);
        assert_eq!(a.free_bytes(), 1 << 20);
    }

    #[test]
    fn zero_size_rejected() {
        let mut a = BlockAllocator::new(1 << 20);
        assert_eq!(a.alloc(0), Err(GpuError::InvalidValue));
    }

    #[test]
    fn exhaustion_returns_oom() {
        let mut a = BlockAllocator::new(1024);
        let _p = a.alloc(1024).unwrap();
        assert_eq!(a.alloc(1), Err(GpuError::OutOfMemory));
    }

    #[test]
    fn double_free_rejected() {
        let mut a = BlockAllocator::new(1 << 20);
        let p = a.alloc(512).unwrap();
        a.free(p).unwrap();
        assert_eq!(a.free(p), Err(GpuError::InvalidAddress));
    }

    #[test]
    fn free_of_unknown_address_rejected() {
        let mut a = BlockAllocator::new(1 << 20);
        assert_eq!(a.free(12345), Err(GpuError::InvalidAddress));
    }

    #[test]
    fn fragmentation_blocks_large_alloc() {
        // Three 1KiB blocks fill memory; freeing the middle one leaves a hole
        // that cannot satisfy a 2KiB request even though 1KiB+slack is free.
        let mut a = BlockAllocator::new(3 * 1024);
        let p0 = a.alloc(1024).unwrap();
        let p1 = a.alloc(1024).unwrap();
        let p2 = a.alloc(1024).unwrap();
        a.free(p1).unwrap();
        assert_eq!(a.free_bytes(), 1024);
        assert_eq!(a.alloc(2048), Err(GpuError::OutOfMemory));
        // Freeing a neighbour coalesces and the allocation succeeds.
        a.free(p0).unwrap();
        assert_eq!(a.largest_free_block(), 2048);
        assert!(a.alloc(2048).is_ok());
        a.free(p2).unwrap();
    }

    #[test]
    fn coalescing_restores_single_block() {
        let mut a = BlockAllocator::new(4096);
        let ptrs: Vec<u64> = (0..4).map(|_| a.alloc(1024).unwrap()).collect();
        // Free in a scrambled order; the free list must still coalesce fully.
        for &p in &[ptrs[2], ptrs[0], ptrs[3], ptrs[1]] {
            a.free(p).unwrap();
        }
        assert_eq!(a.largest_free_block(), 4096);
        assert_eq!(a.fragmentation(), 0.0);
    }

    #[test]
    fn find_containing_resolves_interior_addresses() {
        let mut a = BlockAllocator::new(1 << 16);
        let p = a.alloc(4096).unwrap();
        assert_eq!(a.find_containing(p), Some((p, 4096)));
        assert_eq!(a.find_containing(p + 4095), Some((p, 4096)));
        assert_eq!(a.find_containing(p + 4096), None);
    }

    #[test]
    fn first_fit_reuses_earliest_hole() {
        let mut a = BlockAllocator::new(8192);
        let p0 = a.alloc(1024).unwrap();
        let _p1 = a.alloc(1024).unwrap();
        a.free(p0).unwrap();
        let p2 = a.alloc(512).unwrap();
        assert_eq!(p2, p0, "first-fit must reuse the first hole");
    }

    #[test]
    fn allocations_never_overlap() {
        let mut a = BlockAllocator::new(1 << 16);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for i in 0..32 {
            if let Ok(p) = a.alloc(((i % 7) + 1) * 300) {
                let len = align_up(((i % 7) + 1) * 300);
                for &(b, l) in &live {
                    assert!(p + len <= b || b + l <= p, "overlap at {p:#x}");
                }
                live.push((p, len));
            }
        }
    }
}
