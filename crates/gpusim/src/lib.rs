//! Timed GPU device model and CUDA-semantics driver for the `mtgpu`
//! workspace.
//!
//! The HPDC'12 paper runs on NVIDIA Tesla C2050/C1060 and Quadro 2000 GPUs
//! behind the CUDA 3.2 driver. This crate substitutes that hardware and
//! driver stack with a faithful *behavioural* model — the properties the
//! paper's runtime actually depends on:
//!
//! * each device has a **separate device memory** of finite capacity, managed
//!   by a first-fit allocator that can fragment ([`alloc::BlockAllocator`]);
//! * **kernels occupy a device** for a work-proportional time, FIFO across
//!   contexts, exactly like pre-Kepler CUDA serializes kernels from distinct
//!   contexts ([`engine::FifoEngine`]);
//! * **transfers cost bytes / PCIe-bandwidth** and occupy a copy engine;
//! * devices differ in **compute capability** ([`GpuSpec`] presets match the
//!   paper's testbed);
//! * the CUDA runtime **fails beyond 8 concurrent contexts** and on
//!   aggregate memory over-commit ([`Driver`]), the two failure modes the
//!   paper's runtime exists to fix;
//! * devices can **fail, be removed, or be hot-added** at runtime.
//!
//! Device memory holds *real bytes*: allocations carry a materialized shadow
//! buffer (capped for paper-scale footprints) so that kernels implemented as
//! host functions compute real results and the memory-manager's swap and
//! migration machinery can be verified end-to-end for data integrity.

pub mod alloc;
pub mod device;
pub mod driver;
pub mod engine;
pub mod error;
pub mod fault;
pub mod kernel;
pub mod spec;
pub mod stats;

pub use device::{DeviceAddr, Gpu, GpuContextId};
pub use driver::{DeviceId, Driver, DriverConfig};
pub use error::GpuError;
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use kernel::{
    Dim3, KernelArg, KernelDesc, KernelExec, KernelFn, LaunchConfig, LaunchSpec, Work,
};
pub use spec::GpuSpec;
pub use stats::DeviceStats;

/// Convenient alias used across the crate.
pub type Result<T> = std::result::Result<T, GpuError>;
