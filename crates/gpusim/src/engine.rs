//! Execution engines: FIFO occupancy of a shared hardware resource.
//!
//! Pre-Kepler CUDA serializes kernels from distinct contexts in
//! first-come-first-served order; copy engines likewise serve one transfer at
//! a time. [`FifoEngine`] models an engine as a ticket lock whose holder
//! "occupies" the engine for a simulated duration: callers queue in strict
//! arrival order, and the simulated busy time is accumulated for utilization
//! accounting.

use mtgpu_simtime::{lock_rank, Clock, RankedCondvar, RankedMutex, SimDuration};
use std::sync::atomic::{AtomicU64, Ordering};

struct Tickets {
    next: u64,
    serving: u64,
}

/// A hardware engine (compute unit or copy engine) that one operation at a
/// time occupies for a simulated duration, in FIFO order.
pub struct FifoEngine {
    clock: Clock,
    tickets: RankedMutex<Tickets>,
    cv: RankedCondvar,
    busy_nanos: AtomicU64,
    ops: AtomicU64,
}

impl FifoEngine {
    /// Creates an idle engine on the given clock.
    pub fn new(clock: Clock) -> Self {
        FifoEngine {
            clock,
            tickets: RankedMutex::new(lock_rank::ENGINE_TICKETS, Tickets { next: 0, serving: 0 }),
            cv: RankedCondvar::new(),
            busy_nanos: AtomicU64::new(0),
            ops: AtomicU64::new(0),
        }
    }

    /// Blocks until all earlier arrivals have completed, then occupies the
    /// engine for `dur` of simulated time.
    ///
    /// Returns the simulated duration actually occupied (i.e. `dur`), which
    /// callers use for accounting.
    pub fn occupy(&self, dur: SimDuration) -> SimDuration {
        self.occupy_with(dur, || dur)
    }

    /// Like [`FifoEngine::occupy`], but runs `work` while holding the engine
    /// (after the timed occupancy). Used by kernel launches to apply their
    /// functional payload atomically with respect to other kernels on the
    /// same engine.
    pub fn occupy_with<R>(&self, dur: SimDuration, work: impl FnOnce() -> R) -> R {
        let ticket = {
            let mut t = self.tickets.lock();
            let ticket = t.next;
            t.next += 1;
            while t.serving != ticket {
                self.cv.wait(&mut t);
            }
            ticket
        };
        debug_assert_eq!(ticket, self.tickets.lock().serving);
        // We are the serving ticket: exclusive occupancy. Sleep outside the
        // lock so waiters can enqueue without blocking each other.
        self.clock.sleep(dur);
        let result = work();
        self.busy_nanos.fetch_add(dur.as_nanos(), Ordering::Relaxed);
        self.ops.fetch_add(1, Ordering::Relaxed);
        let mut t = self.tickets.lock();
        t.serving += 1;
        // mtlint: allow(notify-all, reason = "ticket turnstile: every parked waiter must re-check `serving` because only the thread holding the next ticket may proceed")
        self.cv.notify_all();
        drop(t);
        result
    }

    /// Total simulated time this engine has been busy.
    pub fn busy_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.busy_nanos.load(Ordering::Relaxed))
    }

    /// Number of operations completed.
    pub fn ops_completed(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Number of operations queued behind the current holder.
    pub fn queue_depth(&self) -> u64 {
        let t = self.tickets.lock();
        t.next.saturating_sub(t.serving)
    }
}

/// A bank of identical engines with round-robin placement — models the two
/// copy engines of a Tesla C2050 (§5.1).
pub struct EngineBank {
    engines: Vec<FifoEngine>,
    next: AtomicU64,
}

impl EngineBank {
    /// Creates a bank of `n` engines (at least one).
    pub fn new(clock: Clock, n: u32) -> Self {
        let n = n.max(1);
        EngineBank {
            engines: (0..n).map(|_| FifoEngine::new(clock.clone())).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// Occupies the least-recently-assigned engine for `dur`.
    pub fn occupy(&self, dur: SimDuration) -> SimDuration {
        let idx = self.next.fetch_add(1, Ordering::Relaxed) as usize % self.engines.len();
        self.engines[idx].occupy(dur)
    }

    /// Occupies the engine at `lane % len` for `dur`. Lane-pinned placement
    /// bypasses the round-robin cursor: a transfer-plan executor assigns
    /// operation `i` to lane `i % lanes` in canonical order, so which
    /// engine serves which transfer is a pure function of the plan — not of
    /// thread arrival order — and per-engine busy time replays exactly.
    pub fn occupy_on(&self, lane: usize, dur: SimDuration) -> SimDuration {
        self.engines[lane % self.engines.len()].occupy(dur)
    }

    /// Aggregate busy time across the bank.
    pub fn busy_time(&self) -> SimDuration {
        self.engines.iter().map(|e| e.busy_time()).sum()
    }

    /// Busy time of the engine at `lane % len` — per-lane occupancy lets a
    /// scheduler (or a test) see whether speculative traffic actually landed
    /// on the lane it was pinned to.
    pub fn busy_time_on(&self, lane: usize) -> SimDuration {
        self.engines[lane % self.engines.len()].busy_time()
    }

    /// Transfers queued or executing on the engine at `lane % len`.
    pub fn queue_depth_on(&self, lane: usize) -> u64 {
        self.engines[lane % self.engines.len()].queue_depth()
    }

    /// Per-lane busy times, indexed by lane.
    pub fn busy_times(&self) -> Vec<SimDuration> {
        self.engines.iter().map(|e| e.busy_time()).collect()
    }

    /// Number of engines in the bank.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Always false; a bank holds at least one engine.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn occupancy_serializes() {
        // Two 5-sim-second occupancies on one engine must take ~10 sim
        // seconds of wall time at the configured scale.
        let clock = Clock::with_scale(1e-4);
        let engine = Arc::new(FifoEngine::new(clock.clone()));
        let start = Instant::now();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let e = Arc::clone(&engine);
                std::thread::spawn(move || e.occupy(SimDuration::from_secs(5)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let elapsed_sim = clock.real_to_sim(start.elapsed());
        assert!(
            elapsed_sim >= SimDuration::from_secs_f64(9.5),
            "two 5s occupancies overlapped: {elapsed_sim}"
        );
        assert_eq!(engine.ops_completed(), 2);
        assert!(engine.busy_time() >= SimDuration::from_secs_f64(9.9));
    }

    #[test]
    fn fifo_order_is_respected() {
        let clock = Clock::with_scale(1e-5);
        let engine = Arc::new(FifoEngine::new(clock.clone()));
        let order = Arc::new(Mutex::new(Vec::new()));
        // Pin the engine so later arrivals stack behind a known head.
        let head = {
            let e = Arc::clone(&engine);
            std::thread::spawn(move || e.occupy(SimDuration::from_secs(20)))
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        let mut joiners = Vec::new();
        for i in 0..4 {
            let e = Arc::clone(&engine);
            let o = Arc::clone(&order);
            joiners.push(std::thread::spawn(move || {
                e.occupy_with(SimDuration::from_millis(1), || o.lock().push(i));
            }));
            // Stagger arrivals so ticket order matches i.
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        head.join().unwrap();
        for j in joiners {
            j.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn bank_allows_parallel_occupancy() {
        // Two engines: two 5-sim-second transfers overlap, finishing well
        // under 10 sim seconds. A barrier keeps thread-spawn latency out of
        // the measured window — at fine clock scales that overhead rivals
        // the occupancies themselves and read as serialization.
        let clock = Clock::with_scale(1e-3);
        let bank = Arc::new(EngineBank::new(clock.clone(), 2));
        let barrier = Arc::new(std::sync::Barrier::new(3));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&bank);
                let gate = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    gate.wait();
                    b.occupy(SimDuration::from_secs(5))
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            h.join().unwrap();
        }
        let elapsed_sim = clock.real_to_sim(start.elapsed());
        assert!(elapsed_sim < SimDuration::from_secs_f64(9.0), "bank serialized: {elapsed_sim}");
    }

    #[test]
    fn lane_pinning_controls_placement() {
        // Same lane (modulo the bank size) serializes; distinct lanes
        // overlap. This is the canonical-order guarantee plan executors
        // rely on.
        let clock = Clock::with_scale(1e-3);
        let bank = Arc::new(EngineBank::new(clock.clone(), 2));
        let run_pair = |lane_a: usize, lane_b: usize| {
            let barrier = Arc::new(std::sync::Barrier::new(3));
            let handles: Vec<_> = [lane_a, lane_b]
                .into_iter()
                .map(|lane| {
                    let b = Arc::clone(&bank);
                    let gate = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        gate.wait();
                        b.occupy_on(lane, SimDuration::from_secs(5))
                    })
                })
                .collect();
            barrier.wait();
            let start = Instant::now();
            for h in handles {
                h.join().unwrap();
            }
            clock.real_to_sim(start.elapsed())
        };
        // Lanes 0 and 2 hit the same engine of a 2-bank: serialized.
        assert!(run_pair(0, 2) >= SimDuration::from_secs_f64(9.5), "same lane must serialize");
        // Lanes 0 and 1 hit distinct engines: overlapped.
        assert!(run_pair(0, 1) < SimDuration::from_secs_f64(9.0), "distinct lanes must overlap");
    }

    #[test]
    fn queue_depth_counts_waiters() {
        let clock = Clock::with_scale(1e-3);
        let engine = Arc::new(FifoEngine::new(clock));
        assert_eq!(engine.queue_depth(), 0);
        let e = Arc::clone(&engine);
        let h = std::thread::spawn(move || e.occupy(SimDuration::from_secs(1)));
        while engine.queue_depth() == 0 {
            std::hint::spin_loop();
        }
        assert!(engine.queue_depth() >= 1);
        h.join().unwrap();
        assert_eq!(engine.queue_depth(), 0);
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Any mix of concurrent occupancies completes exactly once each and
        /// accounts its full busy time — no lost or double-served tickets.
        #[test]
        fn concurrent_occupancies_all_complete(durs in prop::collection::vec(0u64..200, 1..24)) {
            let clock = Clock::with_scale(1e-6);
            let engine = Arc::new(FifoEngine::new(clock));
            let expected_busy: u64 = durs.iter().sum();
            let handles: Vec<_> = durs
                .into_iter()
                .map(|micros| {
                    let e = Arc::clone(&engine);
                    std::thread::spawn(move || {
                        e.occupy(SimDuration::from_micros(micros));
                    })
                })
                .collect();
            let n = handles.len() as u64;
            for h in handles {
                h.join().unwrap();
            }
            prop_assert_eq!(engine.ops_completed(), n);
            prop_assert_eq!(engine.queue_depth(), 0);
            prop_assert_eq!(engine.busy_time(), SimDuration::from_micros(expected_busy));
        }
    }
}
