//! Scripted fault injection: the [`FaultPlan`] DSL.
//!
//! A fault plan is a timeline of failure events pinned to *virtual* (or
//! scaled) simulation times: device failures and repairs, transient
//! per-kernel context faults, and transport drops. A deterministic harness
//! builds a plan up front, then calls [`FaultPlan::poll`] at the points of
//! its schedule where faults are allowed to land; because both the clock
//! and the polling points are deterministic, the same plan and seed
//! reproduce the identical fault timeline on every run.
//!
//! ```
//! use mtgpu_gpusim::{DeviceId, FaultPlan};
//! use mtgpu_simtime::SimDuration;
//!
//! let plan = FaultPlan::new()
//!     .fail_device(SimDuration::from_secs(5), DeviceId(0))
//!     .repair_device(SimDuration::from_secs(9), DeviceId(0))
//!     .context_fault(SimDuration::from_secs(2), DeviceId(1))
//!     .drop_transport(SimDuration::from_secs(7), 3);
//! assert_eq!(plan.pending(), 4);
//! ```

use crate::driver::{DeviceId, Driver};
use mtgpu_simtime::{SimDuration, SimInstant};

/// One kind of injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The device fails hard: every subsequent operation on it errors
    /// until a [`FaultKind::DeviceRepair`] event (or never).
    DeviceFail { device: DeviceId },
    /// A failed device comes back (replacement hardware).
    DeviceRepair { device: DeviceId },
    /// One-shot transient fault: the next kernel launch on the device
    /// fails once, then the device behaves normally again.
    ContextFault { device: DeviceId },
    /// The transport of connection `conn` drops mid-stream. The device
    /// layer cannot reach transports, so [`FaultPlan::poll`] only
    /// *returns* this event; the harness owning the connections applies
    /// it (severs the stream) itself.
    TransportDrop { conn: u64 },
}

/// A fault scheduled at a point of the simulated timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time (since the clock's epoch) at or after which the fault
    /// fires.
    pub at: SimDuration,
    pub kind: FaultKind,
}

/// A scripted timeline of faults, built with the chainable methods and
/// consumed by repeated [`FaultPlan::poll`] calls.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Events sorted by `at` (stable: ties fire in insertion order).
    events: Vec<FaultEvent>,
    /// Index of the first event not yet fired.
    cursor: usize,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(mut self, at: SimDuration, kind: FaultKind) -> Self {
        debug_assert_eq!(self.cursor, 0, "extending a plan after polling began");
        self.events.push(FaultEvent { at, kind });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Schedules a hard device failure at virtual time `at`.
    pub fn fail_device(self, at: SimDuration, device: DeviceId) -> Self {
        self.push(at, FaultKind::DeviceFail { device })
    }

    /// Schedules a device repair at virtual time `at`.
    pub fn repair_device(self, at: SimDuration, device: DeviceId) -> Self {
        self.push(at, FaultKind::DeviceRepair { device })
    }

    /// Schedules a one-shot transient context fault on `device` at `at`.
    pub fn context_fault(self, at: SimDuration, device: DeviceId) -> Self {
        self.push(at, FaultKind::ContextFault { device })
    }

    /// Schedules a transport drop of connection `conn` at `at`. Returned
    /// by [`FaultPlan::poll`] for the harness to apply.
    pub fn drop_transport(self, at: SimDuration, conn: u64) -> Self {
        self.push(at, FaultKind::TransportDrop { conn })
    }

    /// Events not yet fired.
    pub fn pending(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Virtual time of the next unfired event.
    pub fn next_at(&self) -> Option<SimDuration> {
        self.events.get(self.cursor).map(|e| e.at)
    }

    /// Whether every event has fired.
    pub fn is_done(&self) -> bool {
        self.cursor == self.events.len()
    }

    /// Fires every event due at or before `now`: device fail/repair and
    /// context faults are applied to `driver`'s devices directly (events
    /// naming unknown devices are returned but have no device effect);
    /// [`FaultKind::TransportDrop`] events are returned un-applied for the
    /// caller. Returns all events fired by this call, in timeline order.
    pub fn poll(&mut self, now: SimInstant, driver: &Driver) -> Vec<FaultEvent> {
        let mut fired = Vec::new();
        while let Some(event) = self.events.get(self.cursor) {
            if event.at > now.since_epoch() {
                break;
            }
            match event.kind {
                FaultKind::DeviceFail { device } => {
                    if let Ok(gpu) = driver.device(device) {
                        gpu.fail();
                    }
                }
                FaultKind::DeviceRepair { device } => {
                    if let Ok(gpu) = driver.device(device) {
                        gpu.repair();
                    }
                }
                FaultKind::ContextFault { device } => {
                    if let Ok(gpu) = driver.device(device) {
                        gpu.inject_context_fault();
                    }
                }
                FaultKind::TransportDrop { .. } => {}
            }
            fired.push(event.clone());
            self.cursor += 1;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;
    use mtgpu_simtime::Clock;

    fn driver_with(n: u32) -> std::sync::Arc<Driver> {
        Driver::with_devices(
            Clock::virtual_clock(),
            (0..n).map(|_| GpuSpec::test_small()).collect(),
        )
    }

    #[test]
    fn events_fire_in_timeline_order() {
        let driver = driver_with(2);
        let clock = driver.clock().clone();
        let mut plan = FaultPlan::new()
            .repair_device(SimDuration::from_secs(9), DeviceId(0))
            .fail_device(SimDuration::from_secs(3), DeviceId(0))
            .context_fault(SimDuration::from_secs(6), DeviceId(1));
        assert_eq!(plan.next_at(), Some(SimDuration::from_secs(3)));
        assert!(plan.poll(clock.now(), &driver).is_empty(), "nothing due at t=0");

        clock.advance(SimDuration::from_secs(4));
        let fired = plan.poll(clock.now(), &driver);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, FaultKind::DeviceFail { device: DeviceId(0) });
        assert!(driver.device(DeviceId(0)).unwrap().is_failed());

        clock.advance(SimDuration::from_secs(10));
        let fired = plan.poll(clock.now(), &driver);
        assert_eq!(fired.len(), 2, "context fault then repair");
        assert!(!driver.device(DeviceId(0)).unwrap().is_failed(), "repaired");
        assert!(driver.device(DeviceId(1)).unwrap().context_fault_armed());
        assert!(plan.is_done());
    }

    #[test]
    fn transport_drops_are_returned_not_applied() {
        let driver = driver_with(1);
        let clock = driver.clock().clone();
        let mut plan = FaultPlan::new().drop_transport(SimDuration::from_secs(1), 7);
        clock.advance(SimDuration::from_secs(2));
        let fired = plan.poll(clock.now(), &driver);
        assert_eq!(
            fired,
            vec![FaultEvent {
                at: SimDuration::from_secs(1),
                kind: FaultKind::TransportDrop { conn: 7 },
            }]
        );
    }

    #[test]
    fn context_fault_is_one_shot() {
        use crate::kernel::{KernelDesc, LaunchConfig, LaunchSpec, RegisteredKernel, Work};
        let driver = driver_with(1);
        let gpu = driver.device(DeviceId(0)).unwrap();
        let ctx = gpu.create_context().unwrap();
        gpu.inject_context_fault();
        let kernel = RegisteredKernel { desc: KernelDesc::plain("k"), payload: None };
        let spec = LaunchSpec {
            kernel: "k".into(),
            config: LaunchConfig::default(),
            args: Vec::new(),
            work: Work::flops(1e6),
        };
        assert!(matches!(gpu.launch(ctx, &kernel, &spec), Err(crate::GpuError::LaunchFailed(_))));
        // Disarmed: the retry succeeds and the device never failed.
        assert!(gpu.launch(ctx, &kernel, &spec).is_ok());
        assert!(!gpu.is_failed());
    }

    #[test]
    fn unknown_device_events_are_harmless() {
        let driver = driver_with(1);
        let clock = driver.clock().clone();
        let mut plan = FaultPlan::new().fail_device(SimDuration::ZERO, DeviceId(9));
        let fired = plan.poll(clock.now(), &driver);
        assert_eq!(fired.len(), 1);
        assert!(!driver.device(DeviceId(0)).unwrap().is_failed());
    }
}
