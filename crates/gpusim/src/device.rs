//! The GPU device: memory, contexts, engines, failure.

use crate::alloc::BlockAllocator;
use crate::engine::{EngineBank, FifoEngine};
use crate::error::GpuError;
use crate::kernel::{KernelExec, LaunchSpec, RegisteredKernel};
use crate::spec::GpuSpec;
use crate::stats::DeviceStats;
use crate::Result;
use mtgpu_simtime::{lock_rank, Clock, RankedMutex, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Fixed launch overhead per kernel (driver + hardware dispatch), sim time.
pub const LAUNCH_OVERHEAD: SimDuration = SimDuration::from_micros(10);
/// Cost of spawning a CUDA context on a device, sim time.
pub const CTX_CREATE_TIME: SimDuration = SimDuration::from_millis(40);
/// Fixed per-transfer setup latency, sim time.
pub const COPY_OVERHEAD: SimDuration = SimDuration::from_micros(8);
/// Default cap on materialized shadow-buffer bytes per allocation. Declared
/// sizes above the cap are accounted (capacity, timing) but only a prefix of
/// real bytes is stored.
pub const DEFAULT_MATERIALIZE_CAP: u64 = 16 * 1024 * 1024;

/// An address in a device's memory space. Under the mtgpu runtime
/// applications never see these — only the memory manager does.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DeviceAddr(pub u64);

impl std::fmt::Display for DeviceAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Identifier of a CUDA context living on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GpuContextId(pub u64);

#[derive(Debug)]
struct Allocation {
    declared: u64,
    /// Materialized prefix of the allocation's content, grown lazily on
    /// write/kernel access up to `max_len` so host RAM stays proportional
    /// to the bytes actually touched (paper-scale footprints are declared,
    /// not stored).
    data: Vec<u8>,
    /// `min(declared, materialize_cap)`.
    max_len: u64,
    owner: GpuContextId,
}

impl Allocation {
    /// Grows the materialized prefix (zero-filled) to cover `end`, clamped
    /// to `max_len`.
    fn ensure_len(&mut self, end: u64) {
        let target = end.min(self.max_len) as usize;
        if self.data.len() < target {
            self.data.resize(target, 0);
        }
    }
}

#[derive(Debug)]
struct ContextInfo {
    /// Base address of the context's reserved arena.
    reserved_base: Option<u64>,
}

struct DeviceState {
    allocator: BlockAllocator,
    allocs: BTreeMap<u64, Allocation>,
    contexts: HashMap<GpuContextId, ContextInfo>,
}

/// A simulated GPU device.
///
/// All methods are callable concurrently from any thread; kernels serialize
/// FIFO on the compute engine, transfers on the copy-engine bank, and memory
/// operations under a short-held state lock — the same coarse concurrency
/// the CUDA 3.2 stack exposes.
pub struct Gpu {
    spec: GpuSpec,
    clock: Clock,
    /// Distinguishes this device's address space from other devices'.
    addr_salt: u64,
    compute: FifoEngine,
    copy: EngineBank,
    state: RankedMutex<DeviceState>,
    stats: DeviceStats,
    failed: AtomicBool,
    /// One-shot transient fault: the next kernel launch on this device
    /// fails (and clears the flag). Models an ECC/context error that kills
    /// one kernel without taking the device down.
    ctx_fault: AtomicBool,
    next_ctx: AtomicU64,
    materialize_cap: u64,
}

impl Gpu {
    /// Creates a device with the given spec on a shared clock. `ordinal`
    /// salts the address space so addresses from distinct devices never
    /// collide numerically.
    pub fn new(spec: GpuSpec, clock: Clock, ordinal: u32) -> Arc<Gpu> {
        Arc::new(Gpu {
            addr_salt: (ordinal as u64 + 1) << 40,
            compute: FifoEngine::new(clock.clone()),
            copy: EngineBank::new(clock.clone(), spec.copy_engines),
            state: RankedMutex::new(
                lock_rank::DEVICE_STATE,
                DeviceState {
                    allocator: BlockAllocator::new(spec.mem_bytes),
                    allocs: BTreeMap::new(),
                    contexts: HashMap::new(),
                },
            ),
            stats: DeviceStats::default(),
            failed: AtomicBool::new(false),
            ctx_fault: AtomicBool::new(false),
            next_ctx: AtomicU64::new(1),
            materialize_cap: DEFAULT_MATERIALIZE_CAP,
            spec,
            clock,
        })
    }

    /// The device's static description.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// The clock this device runs on.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Operation counters.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Total simulated time the compute engine has been busy.
    pub fn compute_busy_time(&self) -> SimDuration {
        self.compute.busy_time()
    }

    /// Kernels queued or executing right now.
    pub fn compute_queue_depth(&self) -> u64 {
        self.compute.queue_depth()
    }

    /// Per-lane copy-engine busy times, indexed by lane. Exposes whether
    /// lane-pinned traffic (admit path on lane 0, speculative prefetch and
    /// second-wave uploads at offset 1) actually overlapped.
    pub fn engine_busy_times(&self) -> Vec<SimDuration> {
        self.copy.busy_times()
    }

    /// Busy time of copy-engine lane `lane % copy_engines`.
    pub fn copy_busy_time_on(&self, lane: usize) -> SimDuration {
        self.copy.busy_time_on(lane)
    }

    /// Transfers queued or executing on copy-engine lane `lane % copy_engines`.
    pub fn copy_queue_depth_on(&self, lane: usize) -> u64 {
        self.copy.queue_depth_on(lane)
    }

    /// Free device memory in bytes (possibly fragmented).
    pub fn mem_available(&self) -> u64 {
        self.state.lock().allocator.free_bytes()
    }

    /// Device memory capacity in bytes.
    pub fn mem_capacity(&self) -> u64 {
        self.spec.mem_bytes
    }

    /// Number of live contexts.
    pub fn context_count(&self) -> usize {
        self.state.lock().contexts.len()
    }

    /// Marks the device as failed: every subsequent operation returns
    /// [`GpuError::DeviceFailed`]. Used for fault injection and hot removal.
    pub fn fail(&self) {
        self.failed.store(true, Ordering::SeqCst);
    }

    /// Clears the failure flag (a replaced/repaired device).
    pub fn repair(&self) {
        self.failed.store(false, Ordering::SeqCst);
    }

    /// Whether the device has failed.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::SeqCst)
    }

    /// Arms a one-shot transient context fault: the next kernel launch on
    /// this device returns [`GpuError::LaunchFailed`] and disarms the
    /// fault. The device itself stays healthy — the runtime's service
    /// layer must surface the error to the application without tearing
    /// anything down.
    pub fn inject_context_fault(&self) {
        self.ctx_fault.store(true, Ordering::SeqCst);
    }

    /// Whether a one-shot context fault is currently armed.
    pub fn context_fault_armed(&self) -> bool {
        self.ctx_fault.load(Ordering::SeqCst)
    }

    fn check_alive(&self) -> Result<()> {
        if self.is_failed() {
            Err(GpuError::DeviceFailed)
        } else {
            Ok(())
        }
    }

    /// Creates a CUDA context, reserving [`GpuSpec::ctx_reserved_bytes`] and
    /// enforcing [`GpuSpec::max_contexts`]. Costs [`CTX_CREATE_TIME`].
    pub fn create_context(&self) -> Result<GpuContextId> {
        self.check_alive()?;
        let id = GpuContextId(self.next_ctx.fetch_add(1, Ordering::Relaxed));
        {
            let mut st = self.state.lock();
            if st.contexts.len() as u32 >= self.spec.max_contexts {
                return Err(GpuError::TooManyContexts);
            }
            let reserved_base = if self.spec.ctx_reserved_bytes > 0 {
                match st.allocator.alloc(self.spec.ctx_reserved_bytes) {
                    Ok(base) => Some(base),
                    Err(_) => {
                        DeviceStats::bump(&self.stats.failed_allocs);
                        return Err(GpuError::OutOfMemory);
                    }
                }
            } else {
                None
            };
            st.contexts.insert(id, ContextInfo { reserved_base });
        }
        DeviceStats::bump(&self.stats.contexts_created);
        self.clock.sleep(CTX_CREATE_TIME);
        Ok(id)
    }

    /// Destroys a context, releasing its reservation and every allocation it
    /// still owns (CUDA frees a context's memory on destruction).
    pub fn destroy_context(&self, ctx: GpuContextId) -> Result<()> {
        // Destroy is allowed on a failed device: it only releases host-side
        // bookkeeping.
        let mut st = self.state.lock();
        let info = st.contexts.remove(&ctx).ok_or(GpuError::InvalidContext)?;
        if let Some(base) = info.reserved_base {
            let _ = st.allocator.free(base);
        }
        let owned: Vec<u64> =
            st.allocs.iter().filter(|(_, a)| a.owner == ctx).map(|(&b, _)| b).collect();
        for base in owned {
            st.allocs.remove(&base);
            let _ = st.allocator.free(base);
        }
        Ok(())
    }

    fn internal_base(&self, addr: DeviceAddr) -> Result<u64> {
        addr.0.checked_sub(self.addr_salt).ok_or(GpuError::InvalidAddress)
    }

    /// Allocates `declared` bytes of device memory for `ctx`.
    pub fn malloc(&self, ctx: GpuContextId, declared: u64) -> Result<DeviceAddr> {
        self.check_alive()?;
        let mut st = self.state.lock();
        if !st.contexts.contains_key(&ctx) {
            return Err(GpuError::InvalidContext);
        }
        let base = match st.allocator.alloc(declared) {
            Ok(b) => b,
            Err(e) => {
                DeviceStats::bump(&self.stats.failed_allocs);
                return Err(e);
            }
        };
        st.allocs.insert(
            base,
            Allocation {
                declared,
                data: Vec::new(),
                max_len: declared.min(self.materialize_cap),
                owner: ctx,
            },
        );
        DeviceStats::bump(&self.stats.allocs);
        Ok(DeviceAddr(base + self.addr_salt))
    }

    /// Frees the allocation at `addr` (which must be its base address), owned
    /// by `ctx`.
    pub fn free(&self, ctx: GpuContextId, addr: DeviceAddr) -> Result<()> {
        self.check_alive()?;
        let base = self.internal_base(addr)?;
        let mut st = self.state.lock();
        match st.allocs.get(&base) {
            None => return Err(GpuError::InvalidAddress),
            Some(a) if a.owner != ctx => return Err(GpuError::InvalidAddress),
            Some(_) => {}
        }
        st.allocs.remove(&base);
        st.allocator.free(base)?;
        DeviceStats::bump(&self.stats.frees);
        Ok(())
    }

    /// Resolves `addr` (possibly interior) against `ctx`'s live allocations:
    /// returns `(base, offset, allocation_declared_len)`.
    fn resolve(
        st: &DeviceState,
        salt: u64,
        ctx: Option<GpuContextId>,
        addr: DeviceAddr,
    ) -> Result<(u64, u64, u64)> {
        let internal = addr.0.checked_sub(salt).ok_or(GpuError::InvalidAddress)?;
        let (&base, alloc) =
            st.allocs.range(..=internal).next_back().ok_or(GpuError::InvalidAddress)?;
        if internal >= base + alloc.declared {
            return Err(GpuError::InvalidAddress);
        }
        if let Some(ctx) = ctx {
            if alloc.owner != ctx {
                // Isolation: another context's memory is invisible.
                return Err(GpuError::InvalidAddress);
            }
        }
        Ok((base, internal - base, alloc.declared))
    }

    fn copy_duration(&self, declared_len: u64) -> SimDuration {
        COPY_OVERHEAD
            + SimDuration::from_secs_f64(declared_len as f64 / self.spec.pcie_bytes_per_sec)
    }

    /// Occupies one copy engine for a PCIe transfer of `declared_len`
    /// bytes: round-robin placement by default, lane-pinned when a plan
    /// executor dictates canonical placement.
    fn occupy_copy(&self, declared_len: u64, lane: Option<usize>) {
        let dur = self.copy_duration(declared_len);
        match lane {
            Some(l) => self.copy.occupy_on(l, dur),
            None => self.copy.occupy(dur),
        };
    }

    /// Host-to-device transfer: `declared_len` bytes are charged against the
    /// PCIe model; `payload` (≤ `declared_len` real bytes) is stored at the
    /// target offset, clamped to the materialized prefix.
    pub fn memcpy_h2d(
        &self,
        ctx: GpuContextId,
        dst: DeviceAddr,
        declared_len: u64,
        payload: &[u8],
    ) -> Result<()> {
        self.memcpy_h2d_inner(ctx, dst, declared_len, payload, None)
    }

    /// [`Gpu::memcpy_h2d`] pinned to copy-engine lane `lane % copy_engines`.
    /// Transfer-plan executors use this so engine assignment follows plan
    /// order, not thread scheduling.
    pub fn memcpy_h2d_on(
        &self,
        ctx: GpuContextId,
        dst: DeviceAddr,
        declared_len: u64,
        payload: &[u8],
        lane: usize,
    ) -> Result<()> {
        self.memcpy_h2d_inner(ctx, dst, declared_len, payload, Some(lane))
    }

    fn memcpy_h2d_inner(
        &self,
        ctx: GpuContextId,
        dst: DeviceAddr,
        declared_len: u64,
        payload: &[u8],
        lane: Option<usize>,
    ) -> Result<()> {
        self.check_alive()?;
        if declared_len == 0 || payload.len() as u64 > declared_len {
            return Err(GpuError::InvalidValue);
        }
        {
            let st = self.state.lock();
            if !st.contexts.contains_key(&ctx) {
                return Err(GpuError::InvalidContext);
            }
            let (_, offset, alloc_len) = Self::resolve(&st, self.addr_salt, Some(ctx), dst)?;
            if offset + declared_len > alloc_len {
                return Err(GpuError::OutOfBounds {
                    addr: dst.0,
                    len: declared_len,
                    alloc_size: alloc_len,
                });
            }
        }
        self.occupy_copy(declared_len, lane);
        self.check_alive()?;
        let mut st = self.state.lock();
        let (base, offset, _) = Self::resolve(&st, self.addr_salt, Some(ctx), dst)?;
        let alloc = st.allocs.get_mut(&base).expect("resolved allocation vanished");
        alloc.ensure_len(offset + payload.len() as u64);
        let start = offset as usize;
        if start < alloc.data.len() {
            let n = payload.len().min(alloc.data.len() - start);
            alloc.data[start..start + n].copy_from_slice(&payload[..n]);
        }
        DeviceStats::add(&self.stats.h2d_bytes, declared_len);
        Ok(())
    }

    /// Device-to-host transfer: charges `declared_len` against the PCIe
    /// model and returns the materialized bytes available at the source
    /// offset (up to `declared_len`).
    pub fn memcpy_d2h(
        &self,
        ctx: GpuContextId,
        src: DeviceAddr,
        declared_len: u64,
    ) -> Result<Vec<u8>> {
        self.memcpy_d2h_inner(ctx, src, declared_len, None)
    }

    /// [`Gpu::memcpy_d2h`] pinned to copy-engine lane `lane % copy_engines`.
    pub fn memcpy_d2h_on(
        &self,
        ctx: GpuContextId,
        src: DeviceAddr,
        declared_len: u64,
        lane: usize,
    ) -> Result<Vec<u8>> {
        self.memcpy_d2h_inner(ctx, src, declared_len, Some(lane))
    }

    fn memcpy_d2h_inner(
        &self,
        ctx: GpuContextId,
        src: DeviceAddr,
        declared_len: u64,
        lane: Option<usize>,
    ) -> Result<Vec<u8>> {
        self.check_alive()?;
        if declared_len == 0 {
            return Err(GpuError::InvalidValue);
        }
        {
            let st = self.state.lock();
            if !st.contexts.contains_key(&ctx) {
                return Err(GpuError::InvalidContext);
            }
            let (_, offset, alloc_len) = Self::resolve(&st, self.addr_salt, Some(ctx), src)?;
            if offset + declared_len > alloc_len {
                return Err(GpuError::OutOfBounds {
                    addr: src.0,
                    len: declared_len,
                    alloc_size: alloc_len,
                });
            }
        }
        self.occupy_copy(declared_len, lane);
        self.check_alive()?;
        let st = self.state.lock();
        let (base, offset, _) = Self::resolve(&st, self.addr_salt, Some(ctx), src)?;
        let alloc = st.allocs.get(&base).expect("resolved allocation vanished");
        let start = (offset as usize).min(alloc.data.len());
        let end = ((offset + declared_len) as usize).min(alloc.data.len());
        DeviceStats::add(&self.stats.d2h_bytes, declared_len);
        Ok(alloc.data[start..end].to_vec())
    }

    /// Device-internal copy between two allocations owned by `ctx`: charges
    /// `declared_len` against the memory bus (not PCIe), moves the
    /// materialized bytes available at the source offset, and never touches
    /// the host. One copy engine is occupied for the duration.
    pub fn memcpy_d2d(
        &self,
        ctx: GpuContextId,
        dst: DeviceAddr,
        src: DeviceAddr,
        declared_len: u64,
    ) -> Result<()> {
        self.check_alive()?;
        if declared_len == 0 {
            return Err(GpuError::InvalidValue);
        }
        {
            let st = self.state.lock();
            if !st.contexts.contains_key(&ctx) {
                return Err(GpuError::InvalidContext);
            }
            for addr in [src, dst] {
                let (_, offset, alloc_len) = Self::resolve(&st, self.addr_salt, Some(ctx), addr)?;
                if offset + declared_len > alloc_len {
                    return Err(GpuError::OutOfBounds {
                        addr: addr.0,
                        len: declared_len,
                        alloc_size: alloc_len,
                    });
                }
            }
        }
        let dur = COPY_OVERHEAD
            + SimDuration::from_secs_f64(declared_len as f64 / self.spec.mem_bytes_per_sec);
        self.copy.occupy(dur);
        self.check_alive()?;
        let mut st = self.state.lock();
        let (src_base, src_off, _) = Self::resolve(&st, self.addr_salt, Some(ctx), src)?;
        // Stage through a temporary so src and dst may live in the same
        // allocation (BTreeMap won't hand out two &mut into it anyway).
        let bytes = {
            let alloc = st.allocs.get(&src_base).expect("resolved allocation vanished");
            let start = (src_off as usize).min(alloc.data.len());
            let end = ((src_off + declared_len) as usize).min(alloc.data.len());
            alloc.data[start..end].to_vec()
        };
        let (dst_base, dst_off, _) = Self::resolve(&st, self.addr_salt, Some(ctx), dst)?;
        let alloc = st.allocs.get_mut(&dst_base).expect("resolved allocation vanished");
        alloc.ensure_len(dst_off + bytes.len() as u64);
        let start = dst_off as usize;
        if start < alloc.data.len() {
            let n = bytes.len().min(alloc.data.len() - start);
            alloc.data[start..start + n].copy_from_slice(&bytes[..n]);
        }
        DeviceStats::add(&self.stats.d2d_bytes, declared_len);
        Ok(())
    }

    /// Peer-to-peer copy between two *different* devices: a single PCIe
    /// hop (peer DMA), not a host-staged round trip. Validates both
    /// endpoints up front, charges the transfer against the **source**
    /// device's copy engine (lane-pinned so plan executors get canonical
    /// placement), then moves the materialized bytes. The two
    /// `DEVICE_STATE` locks share a rank, so they are only ever taken
    /// sequentially — never nested.
    #[allow(clippy::too_many_arguments)]
    pub fn memcpy_p2p(
        src_dev: &Gpu,
        src_ctx: GpuContextId,
        src: DeviceAddr,
        dst_dev: &Gpu,
        dst_ctx: GpuContextId,
        dst: DeviceAddr,
        declared_len: u64,
        lane: usize,
    ) -> Result<()> {
        src_dev.check_alive()?;
        dst_dev.check_alive()?;
        if declared_len == 0 {
            return Err(GpuError::InvalidValue);
        }
        {
            let st = src_dev.state.lock();
            if !st.contexts.contains_key(&src_ctx) {
                return Err(GpuError::InvalidContext);
            }
            let (_, offset, alloc_len) = Self::resolve(&st, src_dev.addr_salt, Some(src_ctx), src)?;
            if offset + declared_len > alloc_len {
                return Err(GpuError::OutOfBounds {
                    addr: src.0,
                    len: declared_len,
                    alloc_size: alloc_len,
                });
            }
        }
        {
            let st = dst_dev.state.lock();
            if !st.contexts.contains_key(&dst_ctx) {
                return Err(GpuError::InvalidContext);
            }
            let (_, offset, alloc_len) = Self::resolve(&st, dst_dev.addr_salt, Some(dst_ctx), dst)?;
            if offset + declared_len > alloc_len {
                return Err(GpuError::OutOfBounds {
                    addr: dst.0,
                    len: declared_len,
                    alloc_size: alloc_len,
                });
            }
        }
        // One hop: the slower of the two PCIe links bounds the transfer.
        let dur = src_dev.copy_duration(declared_len).max(dst_dev.copy_duration(declared_len));
        src_dev.copy.occupy_on(lane, dur);
        src_dev.check_alive()?;
        dst_dev.check_alive()?;
        let bytes = {
            let st = src_dev.state.lock();
            let (base, offset, _) = Self::resolve(&st, src_dev.addr_salt, Some(src_ctx), src)?;
            let alloc = st.allocs.get(&base).expect("resolved allocation vanished");
            let start = (offset as usize).min(alloc.data.len());
            let end = ((offset + declared_len) as usize).min(alloc.data.len());
            alloc.data[start..end].to_vec()
        };
        let mut st = dst_dev.state.lock();
        let (base, offset, _) = Self::resolve(&st, dst_dev.addr_salt, Some(dst_ctx), dst)?;
        let alloc = st.allocs.get_mut(&base).expect("resolved allocation vanished");
        alloc.ensure_len(offset + bytes.len() as u64);
        let start = offset as usize;
        if start < alloc.data.len() {
            let n = bytes.len().min(alloc.data.len() - start);
            alloc.data[start..start + n].copy_from_slice(&bytes[..n]);
        }
        DeviceStats::add(&src_dev.stats.p2p_bytes_out, declared_len);
        DeviceStats::add(&dst_dev.stats.p2p_bytes_in, declared_len);
        Ok(())
    }

    /// Computes the simulated execution time of `work` on this device.
    pub fn kernel_duration(&self, work: crate::kernel::Work) -> SimDuration {
        let compute = work.flops / self.spec.effective_flops();
        let memory = work.bytes / self.spec.mem_bytes_per_sec;
        LAUNCH_OVERHEAD + SimDuration::from_secs_f64(compute.max(memory))
    }

    /// Launches a kernel: validates every pointer argument against `ctx`'s
    /// live allocations (isolation), occupies the compute engine for the
    /// work-proportional duration, then applies the functional payload.
    ///
    /// Returns the simulated execution time.
    pub fn launch(
        &self,
        ctx: GpuContextId,
        kernel: &RegisteredKernel,
        spec: &LaunchSpec,
    ) -> Result<SimDuration> {
        self.check_alive()?;
        if self.ctx_fault.swap(false, Ordering::SeqCst) {
            return Err(GpuError::LaunchFailed("injected transient context fault".into()));
        }
        {
            let st = self.state.lock();
            if !st.contexts.contains_key(&ctx) {
                return Err(GpuError::InvalidContext);
            }
            for ptr in spec.ptr_args() {
                Self::resolve(&st, self.addr_salt, Some(ctx), ptr)?;
            }
        }
        let dur = self.kernel_duration(spec.work);
        let payload_result = self.compute.occupy_with(dur, || {
            let Some(payload) = kernel.payload.as_ref() else {
                return Ok(());
            };
            let mut st = self.state.lock();
            let salt = self.addr_salt;
            let mut resolve = |addr: DeviceAddr,
                               len: u64,
                               f: &mut dyn FnMut(&mut [u8])|
             -> Result<()> {
                let (base, offset, alloc_len) = Self::resolve(&st, salt, Some(ctx), addr)?;
                if offset + len > alloc_len {
                    return Err(GpuError::OutOfBounds { addr: addr.0, len, alloc_size: alloc_len });
                }
                let alloc = st.allocs.get_mut(&base).expect("resolved allocation vanished");
                alloc.ensure_len(offset + len);
                let start = (offset as usize).min(alloc.data.len());
                let end = ((offset + len) as usize).min(alloc.data.len());
                f(&mut alloc.data[start..end]);
                Ok(())
            };
            let mut exec = KernelExec { resolve: &mut resolve, args: &spec.args };
            payload(&mut exec)
        });
        payload_result?;
        self.check_alive()?;
        DeviceStats::bump(&self.stats.kernels_launched);
        Ok(dur)
    }

    /// Debug/test hook: reads the materialized bytes of an allocation without
    /// charging transfer time and without context checks.
    pub fn peek(&self, addr: DeviceAddr, len: u64) -> Result<Vec<u8>> {
        let st = self.state.lock();
        let (base, offset, _) = Self::resolve(&st, self.addr_salt, None, addr)?;
        let alloc = st.allocs.get(&base).expect("resolved allocation vanished");
        let start = (offset as usize).min(alloc.data.len());
        let end = ((offset + len) as usize).min(alloc.data.len());
        Ok(alloc.data[start..end].to_vec())
    }
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("spec", &self.spec.name)
            .field("failed", &self.is_failed())
            .field("contexts", &self.context_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelArg, KernelDesc, LaunchConfig, Work};

    fn test_gpu() -> Arc<Gpu> {
        Gpu::new(GpuSpec::test_small(), Clock::with_scale(1e-6), 0)
    }

    fn plain_kernel() -> RegisteredKernel {
        RegisteredKernel { desc: KernelDesc::plain("k"), payload: None }
    }

    fn launch_of(ptrs: &[DeviceAddr]) -> LaunchSpec {
        LaunchSpec {
            kernel: "k".into(),
            config: LaunchConfig::default(),
            args: ptrs.iter().map(|&p| KernelArg::Ptr(p)).collect(),
            work: Work::flops(1e6),
        }
    }

    #[test]
    fn context_limit_enforced() {
        let gpu = test_gpu();
        let mut ctxs = Vec::new();
        for _ in 0..8 {
            ctxs.push(gpu.create_context().unwrap());
        }
        assert_eq!(gpu.create_context(), Err(GpuError::TooManyContexts));
        gpu.destroy_context(ctxs.pop().unwrap()).unwrap();
        assert!(gpu.create_context().is_ok());
    }

    #[test]
    fn context_reservation_consumes_memory() {
        let gpu = test_gpu();
        let before = gpu.mem_available();
        let ctx = gpu.create_context().unwrap();
        let after = gpu.mem_available();
        assert_eq!(before - after, gpu.spec().ctx_reserved_bytes);
        gpu.destroy_context(ctx).unwrap();
        assert_eq!(gpu.mem_available(), before);
    }

    #[test]
    fn malloc_write_read_roundtrip() {
        let gpu = test_gpu();
        let ctx = gpu.create_context().unwrap();
        let ptr = gpu.malloc(ctx, 4096).unwrap();
        let data: Vec<u8> = (0..=255).cycle().take(4096).collect();
        gpu.memcpy_h2d(ctx, ptr, 4096, &data).unwrap();
        let back = gpu.memcpy_d2h(ctx, ptr, 4096).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn interior_offset_copy() {
        let gpu = test_gpu();
        let ctx = gpu.create_context().unwrap();
        let ptr = gpu.malloc(ctx, 1024).unwrap();
        gpu.memcpy_h2d(ctx, DeviceAddr(ptr.0 + 512), 4, &[1, 2, 3, 4]).unwrap();
        let back = gpu.memcpy_d2h(ctx, DeviceAddr(ptr.0 + 512), 4).unwrap();
        assert_eq!(back, vec![1, 2, 3, 4]);
    }

    #[test]
    fn d2d_copies_between_allocations() {
        let gpu = test_gpu();
        let ctx = gpu.create_context().unwrap();
        let src = gpu.malloc(ctx, 1024).unwrap();
        let dst = gpu.malloc(ctx, 1024).unwrap();
        let data: Vec<u8> = (0..=255).cycle().take(1024).collect();
        gpu.memcpy_h2d(ctx, src, 1024, &data).unwrap();
        gpu.memcpy_d2d(ctx, dst, src, 1024).unwrap();
        assert_eq!(gpu.memcpy_d2h(ctx, dst, 1024).unwrap(), data);
        let snap = gpu.stats().snapshot();
        assert_eq!(snap.d2d_bytes, 1024);
        // D2D is charged against the memory bus, not the PCIe counters.
        assert_eq!(snap.h2d_bytes, 1024);
        assert_eq!(snap.d2h_bytes, 1024);
    }

    #[test]
    fn d2d_within_one_allocation_and_bounds() {
        let gpu = test_gpu();
        let ctx = gpu.create_context().unwrap();
        let ptr = gpu.malloc(ctx, 1024).unwrap();
        gpu.memcpy_h2d(ctx, ptr, 4, &[9, 8, 7, 6]).unwrap();
        gpu.memcpy_d2d(ctx, DeviceAddr(ptr.0 + 512), ptr, 4).unwrap();
        assert_eq!(gpu.memcpy_d2h(ctx, DeviceAddr(ptr.0 + 512), 4).unwrap(), vec![9, 8, 7, 6]);
        let err = gpu.memcpy_d2d(ctx, DeviceAddr(ptr.0 + 1000), ptr, 100).unwrap_err();
        assert!(matches!(err, GpuError::OutOfBounds { .. }), "{err:?}");
    }

    #[test]
    fn d2d_respects_context_isolation() {
        let gpu = test_gpu();
        let a = gpu.create_context().unwrap();
        let b = gpu.create_context().unwrap();
        let theirs = gpu.malloc(a, 256).unwrap();
        let mine = gpu.malloc(b, 256).unwrap();
        assert_eq!(gpu.memcpy_d2d(b, mine, theirs, 16), Err(GpuError::InvalidAddress));
        assert_eq!(gpu.memcpy_d2d(b, theirs, mine, 16), Err(GpuError::InvalidAddress));
        assert_eq!(gpu.stats().snapshot().d2d_bytes, 0);
    }

    #[test]
    fn lane_pinned_copies_are_functionally_identical() {
        let gpu = Gpu::new(GpuSpec::tesla_c2050(), Clock::with_scale(1e-7), 0);
        let ctx = gpu.create_context().unwrap();
        let ptr = gpu.malloc(ctx, 256).unwrap();
        // Lane indices far beyond the engine count wrap modulo the bank.
        gpu.memcpy_h2d_on(ctx, ptr, 256, &[5u8; 256], 7).unwrap();
        assert_eq!(gpu.memcpy_d2h_on(ctx, ptr, 256, 0).unwrap(), vec![5u8; 256]);
        assert_eq!(gpu.stats().snapshot().h2d_bytes, 256);
        assert_eq!(gpu.stats().snapshot().d2h_bytes, 256);
    }

    #[test]
    fn out_of_bounds_copy_detected() {
        let gpu = test_gpu();
        let ctx = gpu.create_context().unwrap();
        let ptr = gpu.malloc(ctx, 1024).unwrap();
        let err = gpu.memcpy_h2d(ctx, DeviceAddr(ptr.0 + 1000), 100, &[0; 100]).unwrap_err();
        assert!(matches!(err, GpuError::OutOfBounds { .. }), "{err:?}");
    }

    #[test]
    fn cross_context_isolation() {
        let gpu = test_gpu();
        let a = gpu.create_context().unwrap();
        let b = gpu.create_context().unwrap();
        let ptr = gpu.malloc(a, 1024).unwrap();
        // Context b cannot read, write, free or launch against a's memory.
        assert_eq!(gpu.memcpy_d2h(b, ptr, 16), Err(GpuError::InvalidAddress));
        assert_eq!(gpu.memcpy_h2d(b, ptr, 16, &[0; 16]), Err(GpuError::InvalidAddress));
        assert_eq!(gpu.free(b, ptr), Err(GpuError::InvalidAddress));
        assert_eq!(
            gpu.launch(b, &plain_kernel(), &launch_of(&[ptr])),
            Err(GpuError::InvalidAddress)
        );
    }

    #[test]
    fn oom_when_capacity_exceeded() {
        let gpu = test_gpu();
        let ctx = gpu.create_context().unwrap();
        let avail = gpu.mem_available();
        let _big = gpu.malloc(ctx, avail - 1024).unwrap();
        assert_eq!(gpu.malloc(ctx, 1 << 20), Err(GpuError::OutOfMemory));
        assert_eq!(gpu.stats().snapshot().failed_allocs, 1);
    }

    #[test]
    fn launch_validates_pointers() {
        let gpu = test_gpu();
        let ctx = gpu.create_context().unwrap();
        let err =
            gpu.launch(ctx, &plain_kernel(), &launch_of(&[DeviceAddr(0xdead_beef)])).unwrap_err();
        assert_eq!(err, GpuError::InvalidAddress);
    }

    #[test]
    fn launch_duration_scales_with_device_speed() {
        let clock = Clock::with_scale(1e-6);
        let fast = Gpu::new(GpuSpec::tesla_c2050(), clock.clone(), 0);
        let slow = Gpu::new(GpuSpec::quadro_2000(), clock, 1);
        let work = Work::flops(1e12);
        assert!(slow.kernel_duration(work) > fast.kernel_duration(work) * 3);
    }

    #[test]
    fn payload_kernel_computes() {
        let gpu = test_gpu();
        let ctx = gpu.create_context().unwrap();
        let ptr = gpu.malloc(ctx, 16).unwrap();
        gpu.memcpy_h2d(ctx, ptr, 16, &[1u8; 16]).unwrap();
        let kernel = RegisteredKernel {
            desc: KernelDesc::plain("inc"),
            payload: Some(Arc::new(|exec| {
                let addr = exec.args()[0].as_ptr().unwrap();
                exec.with_bytes_mut(addr, 16, &mut |bytes| {
                    for b in bytes.iter_mut() {
                        *b += 1;
                    }
                })
            })),
        };
        gpu.launch(ctx, &kernel, &launch_of(&[ptr])).unwrap();
        assert_eq!(gpu.memcpy_d2h(ctx, ptr, 16).unwrap(), vec![2u8; 16]);
        assert_eq!(gpu.stats().snapshot().kernels_launched, 1);
    }

    #[test]
    fn failed_device_rejects_everything() {
        let gpu = test_gpu();
        let ctx = gpu.create_context().unwrap();
        let ptr = gpu.malloc(ctx, 64).unwrap();
        gpu.fail();
        assert_eq!(gpu.malloc(ctx, 64), Err(GpuError::DeviceFailed));
        assert_eq!(gpu.memcpy_h2d(ctx, ptr, 64, &[0; 64]), Err(GpuError::DeviceFailed));
        assert_eq!(gpu.memcpy_d2h(ctx, ptr, 64), Err(GpuError::DeviceFailed));
        assert_eq!(gpu.create_context(), Err(GpuError::DeviceFailed));
        assert_eq!(
            gpu.launch(ctx, &plain_kernel(), &launch_of(&[ptr])),
            Err(GpuError::DeviceFailed)
        );
        // Destroy still works so the runtime can reclaim bookkeeping.
        gpu.destroy_context(ctx).unwrap();
        gpu.repair();
        assert!(gpu.create_context().is_ok());
    }

    #[test]
    fn declared_size_larger_than_materialized_cap() {
        let clock = Clock::with_scale(1e-7);
        let gpu = Gpu::new(GpuSpec::tesla_c2050(), clock, 0);
        let ctx = gpu.create_context().unwrap();
        // 800 MB declared, only the 16 MiB prefix is materialized.
        let declared = 800u64 << 20;
        let ptr = gpu.malloc(ctx, declared).unwrap();
        assert!(gpu.mem_capacity() - gpu.mem_available() >= declared);
        // Copy accounting still charges full size; payload is a prefix.
        gpu.memcpy_h2d(ctx, ptr, declared, &[7u8; 128]).unwrap();
        assert_eq!(gpu.memcpy_d2h(ctx, ptr, 128).unwrap(), vec![7u8; 128]);
        assert_eq!(gpu.stats().snapshot().h2d_bytes, declared);
        gpu.free(ctx, ptr).unwrap();
    }

    #[test]
    fn destroy_context_reclaims_allocations() {
        let gpu = test_gpu();
        let before = gpu.mem_available();
        let ctx = gpu.create_context().unwrap();
        for _ in 0..4 {
            gpu.malloc(ctx, 1 << 20).unwrap();
        }
        gpu.destroy_context(ctx).unwrap();
        assert_eq!(gpu.mem_available(), before);
    }

    #[test]
    fn free_base_only() {
        let gpu = test_gpu();
        let ctx = gpu.create_context().unwrap();
        let ptr = gpu.malloc(ctx, 1024).unwrap();
        // Freeing an interior pointer is invalid (CUDA semantics).
        assert!(gpu.free(ctx, DeviceAddr(ptr.0 + 256)).is_err());
        gpu.free(ctx, ptr).unwrap();
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use crate::kernel::{KernelArg, KernelDesc, LaunchConfig, LaunchSpec, RegisteredKernel, Work};
    use crate::GpuSpec;
    use mtgpu_simtime::Clock;

    /// Hammer one device from many threads: allocations stay within
    /// capacity, per-context data stays isolated, and the final state is
    /// clean after all contexts are destroyed.
    #[test]
    fn concurrent_contexts_full_lifecycle() {
        let gpu = Gpu::new(GpuSpec::test_small(), Clock::with_scale(1e-7), 0);
        let kernel = Arc::new(RegisteredKernel {
            desc: KernelDesc::plain("stamp"),
            payload: Some(Arc::new(|exec: &mut crate::kernel::KernelExec<'_>| {
                let p = exec.args()[0].as_ptr().unwrap();
                let tag = match exec.args()[1] {
                    KernelArg::Scalar(v) => v as u8,
                    _ => 0,
                };
                exec.with_bytes_mut(p, 64, &mut |b| b.fill(tag))
            })),
        });
        let before = gpu.mem_available();
        let handles: Vec<_> = (0..6u64)
            .map(|tag| {
                let gpu = Arc::clone(&gpu);
                let kernel = Arc::clone(&kernel);
                std::thread::spawn(move || {
                    let ctx = gpu.create_context().unwrap();
                    for round in 0..8 {
                        let p = gpu.malloc(ctx, 4096).unwrap();
                        let spec = LaunchSpec {
                            kernel: "stamp".into(),
                            config: LaunchConfig::default(),
                            args: vec![KernelArg::Ptr(p), KernelArg::Scalar(tag)],
                            work: Work::flops(1e5),
                        };
                        gpu.launch(ctx, &kernel, &spec).unwrap();
                        let back = gpu.memcpy_d2h(ctx, p, 64).unwrap();
                        assert_eq!(back, vec![tag as u8; 64], "round {round} corrupted");
                        gpu.free(ctx, p).unwrap();
                    }
                    gpu.destroy_context(ctx).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(gpu.mem_available(), before, "memory leaked under concurrency");
        assert_eq!(gpu.context_count(), 0);
        assert_eq!(gpu.stats().snapshot().kernels_launched, 48);
    }

    fn test_gpu() -> Arc<Gpu> {
        Gpu::new(GpuSpec::test_small(), Clock::with_scale(1e-7), 0)
    }

    #[test]
    fn p2p_copies_bytes_and_charges_both_devices() {
        let a = test_gpu();
        let b = test_gpu();
        let actx = a.create_context().unwrap();
        let bctx = b.create_context().unwrap();
        let src = a.malloc(actx, 4096).unwrap();
        let dst = b.malloc(bctx, 4096).unwrap();
        a.memcpy_h2d(actx, src, 512, &[0xABu8; 512]).unwrap();

        Gpu::memcpy_p2p(&a, actx, src, &b, bctx, dst, 512, 3).unwrap();
        assert_eq!(b.memcpy_d2h(bctx, dst, 512).unwrap(), vec![0xABu8; 512]);
        assert_eq!(a.stats().snapshot().p2p_bytes_out, 512);
        assert_eq!(a.stats().snapshot().p2p_bytes_in, 0);
        assert_eq!(b.stats().snapshot().p2p_bytes_in, 512);
        assert_eq!(b.stats().snapshot().p2p_bytes_out, 0);
    }

    #[test]
    fn p2p_validates_both_endpoints_before_moving_bytes() {
        let a = test_gpu();
        let b = test_gpu();
        let actx = a.create_context().unwrap();
        let bctx = b.create_context().unwrap();
        let src = a.malloc(actx, 1024).unwrap();
        let dst = b.malloc(bctx, 256).unwrap();

        assert_eq!(
            Gpu::memcpy_p2p(&a, actx, src, &b, bctx, dst, 0, 0),
            Err(GpuError::InvalidValue)
        );
        // Source overflow and destination overflow both reject; a foreign
        // context on either side rejects too. None of these move a byte.
        assert!(matches!(
            Gpu::memcpy_p2p(&a, actx, src, &b, bctx, dst, 2048, 0),
            Err(GpuError::OutOfBounds { .. })
        ));
        assert!(matches!(
            Gpu::memcpy_p2p(&a, actx, src, &b, bctx, dst, 512, 0),
            Err(GpuError::OutOfBounds { .. })
        ));
        let foreign = b.create_context().unwrap(); // id never created on `a`
        assert_eq!(
            Gpu::memcpy_p2p(&a, foreign, src, &b, bctx, dst, 128, 0),
            Err(GpuError::InvalidContext)
        );
        assert_eq!(a.stats().snapshot().p2p_bytes_out, 0);
        assert_eq!(b.stats().snapshot().p2p_bytes_in, 0);
    }

    #[test]
    fn p2p_fails_when_either_device_is_dead() {
        let a = test_gpu();
        let b = test_gpu();
        let actx = a.create_context().unwrap();
        let bctx = b.create_context().unwrap();
        let src = a.malloc(actx, 256).unwrap();
        let dst = b.malloc(bctx, 256).unwrap();

        b.fail();
        assert_eq!(
            Gpu::memcpy_p2p(&a, actx, src, &b, bctx, dst, 128, 0),
            Err(GpuError::DeviceFailed)
        );
        assert_eq!(a.stats().snapshot().p2p_bytes_out, 0);
    }
}
