//! Kernel descriptors, launch configurations and functional payloads.
//!
//! The paper's runtime treats kernels as opaque: it sees the launch call, its
//! pointer arguments, and its execution configuration, plus two static
//! properties recoverable by "intercepting and parsing the pseudo-assembly
//! (PTX) representation" (§1): whether the kernel uses nested pointers and
//! whether it performs dynamic device-memory allocation. [`KernelDesc`]
//! carries exactly that surface.
//!
//! For end-to-end verifiability our kernels may additionally carry a *host
//! payload* ([`KernelFn`]): a function that computes the kernel's real result
//! on the materialized shadow buffers of its pointer arguments. The runtime
//! never looks at the payload — only the device executes it — so scheduling
//! decisions cannot cheat.

use crate::device::DeviceAddr;
use crate::error::GpuError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// CUDA `dim3`: kernel grid/block dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dim3 {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl Dim3 {
    /// A 1-D dimension of extent `x`.
    pub const fn x(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// Total number of elements covered.
    pub const fn count(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

impl Default for Dim3 {
    fn default() -> Self {
        Dim3::x(1)
    }
}

/// Execution configuration, as set by `cudaConfigureCall`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    pub grid: Dim3,
    pub block: Dim3,
    pub shared_mem_bytes: u32,
}

impl Default for LaunchConfig {
    fn default() -> Self {
        LaunchConfig { grid: Dim3::x(1), block: Dim3::x(256), shared_mem_bytes: 0 }
    }
}

/// The work a launch represents, used by the device timing model:
/// `time = max(flops / device_flops, bytes / device_membw) + overhead`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Work {
    /// Floating-point operations performed by the launch.
    pub flops: f64,
    /// Device-memory bytes touched by the launch.
    pub bytes: f64,
}

impl Work {
    /// Work dominated by computation.
    pub fn flops(flops: f64) -> Self {
        Work { flops, bytes: 0.0 }
    }

    /// Convenience: work that takes `secs` seconds on a device with
    /// `gflops` effective GFLOPS.
    pub fn seconds_on_gflops(secs: f64, gflops: f64) -> Self {
        Work { flops: secs * gflops * 1e9, bytes: 0.0 }
    }
}

/// An argument passed to a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KernelArg {
    /// A device pointer (virtual under the mtgpu runtime, physical on the
    /// bare driver).
    Ptr(DeviceAddr),
    /// An integer scalar.
    Scalar(u64),
    /// A floating-point scalar.
    Float(f64),
}

impl KernelArg {
    /// The pointer value, if this argument is one.
    pub fn as_ptr(&self) -> Option<DeviceAddr> {
        match self {
            KernelArg::Ptr(p) => Some(*p),
            _ => None,
        }
    }
}

/// Static description of a kernel, registered via
/// `__cudaRegisterFunction` from a fat binary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Mangled-but-readable kernel name; the registry key.
    pub name: String,
    /// Kernel dereferences nested device pointers (detected from PTX in the
    /// paper; such data must be registered via the nesting API).
    pub uses_nested_pointers: bool,
    /// Kernel calls `malloc` on the device (CUDA ≥3.2 feature); such
    /// applications are excluded from sharing and dynamic scheduling (§1).
    pub uses_dynamic_alloc: bool,
    /// Argument positions (into the launch's argument list) the kernel only
    /// *reads*. Figure 4's default "assumes all data referenced in a kernel
    /// launch can be modified"; the paper notes "a more fine-grained
    /// handling is possible if the information about read-only and
    /// read-write parameters is available" (§4.5) — this is that
    /// information, recoverable from PTX in the original system. Entries
    /// reached only through read-only arguments stay clean after the
    /// launch, so swapping them out needs no device-to-host copy.
    pub read_only_args: Vec<u32>,
}

impl KernelDesc {
    /// A plain kernel: no nested pointers, no device-side allocation, all
    /// parameters conservatively treated as read-write.
    pub fn plain(name: impl Into<String>) -> Self {
        KernelDesc {
            name: name.into(),
            uses_nested_pointers: false,
            uses_dynamic_alloc: false,
            read_only_args: Vec::new(),
        }
    }

    /// Marks argument positions as read-only (builder style).
    #[must_use]
    pub fn with_read_only_args(mut self, args: Vec<u32>) -> Self {
        self.read_only_args = args;
        self
    }
}

/// A complete launch request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchSpec {
    pub kernel: String,
    pub config: LaunchConfig,
    pub args: Vec<KernelArg>,
    pub work: Work,
}

impl LaunchSpec {
    /// Pointer arguments of the launch, in order.
    pub fn ptr_args(&self) -> impl Iterator<Item = DeviceAddr> + '_ {
        self.args.iter().filter_map(KernelArg::as_ptr)
    }
}

/// Mutable view of device memory a kernel payload executes against.
///
/// Addresses are resolved through the owning device, so payloads can only
/// touch live allocations and within declared bounds.
/// Resolver a device supplies to kernel payloads: runs a closure over the
/// materialized bytes of one live allocation.
pub(crate) type ResolveFn<'a> =
    dyn FnMut(DeviceAddr, u64, &mut dyn FnMut(&mut [u8])) -> Result<(), GpuError> + 'a;

pub struct KernelExec<'a> {
    pub(crate) resolve: &'a mut ResolveFn<'a>,
    pub(crate) args: &'a [KernelArg],
}

impl<'a> KernelExec<'a> {
    /// The launch arguments.
    pub fn args(&self) -> &[KernelArg] {
        self.args
    }

    /// Runs `f` over the first `len` materialized bytes of the allocation at
    /// `addr`. Fails if the address is dead or `len` exceeds the declared
    /// allocation size. If the shadow buffer is smaller than `len` (scaled
    /// paper-size footprints), `f` sees the materialized prefix.
    pub fn with_bytes_mut(
        &mut self,
        addr: DeviceAddr,
        len: u64,
        f: &mut dyn FnMut(&mut [u8]),
    ) -> Result<(), GpuError> {
        (self.resolve)(addr, len, f)
    }

    /// Typed convenience: view the shadow buffer at `addr` as `f32`s.
    pub fn with_f32_mut(
        &mut self,
        addr: DeviceAddr,
        len_bytes: u64,
        f: impl FnOnce(&mut [f32]),
    ) -> Result<(), GpuError> {
        let mut f = Some(f);
        self.with_bytes_mut(addr, len_bytes, &mut |bytes| {
            let (_, floats, _) = unsafe { bytes.align_to_mut::<f32>() };
            if let Some(f) = f.take() {
                f(floats);
            }
        })
    }
}

/// A kernel's functional payload: computes the real result on shadow buffers.
pub type KernelFn = Arc<dyn Fn(&mut KernelExec<'_>) -> Result<(), GpuError> + Send + Sync>;

/// A registered kernel: descriptor plus optional payload.
#[derive(Clone)]
pub struct RegisteredKernel {
    pub desc: KernelDesc,
    pub payload: Option<KernelFn>,
}

impl fmt::Debug for RegisteredKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegisteredKernel")
            .field("desc", &self.desc)
            .field("payload", &self.payload.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

/// Process-global kernel library.
///
/// gVirtuS-style API remoting ships only the fat-binary *metadata* (names
/// and PTX-derived flags) over the wire; the executable payload is resolved
/// on the backend from the binaries installed there. This library plays that
/// role: workload crates register their kernels' functional payloads once
/// per process, and any backend (in-process or across TCP) resolves them by
/// name at launch time. Kernels without a library entry still run — they
/// just carry no functional payload (timing-only).
pub mod library {
    use super::RegisteredKernel;
    use mtgpu_simtime::{lock_rank, RankedRwLock};
    use std::collections::HashMap;
    use std::sync::OnceLock;

    fn store() -> &'static RankedRwLock<HashMap<String, RegisteredKernel>> {
        static STORE: OnceLock<RankedRwLock<HashMap<String, RegisteredKernel>>> = OnceLock::new();
        STORE.get_or_init(|| RankedRwLock::new(lock_rank::KERNEL_STORE, HashMap::new()))
    }

    /// Registers (or replaces) a kernel in the process-global library.
    pub fn register(kernel: RegisteredKernel) {
        store().write().insert(kernel.desc.name.clone(), kernel);
    }

    /// Looks up a kernel by name.
    pub fn lookup(name: &str) -> Option<RegisteredKernel> {
        store().read().get(name).cloned()
    }

    /// Whether a kernel with this name is registered.
    pub fn contains(name: &str) -> bool {
        store().read().contains_key(name)
    }
}

/// A fat binary: the set of kernels an application module registers before
/// context creation (`__cudaRegisterFatBinary` + `__cudaRegisterFunction`).
#[derive(Debug, Clone, Default)]
pub struct FatBinary {
    /// Ordered so [`FatBinary::kernels`] iterates deterministically —
    /// registration replay must not depend on hash order.
    kernels: BTreeMap<String, RegisteredKernel>,
}

impl FatBinary {
    /// An empty module.
    pub fn new() -> Self {
        FatBinary::default()
    }

    /// Registers a kernel without a functional payload (timing only).
    pub fn register(&mut self, desc: KernelDesc) -> &mut Self {
        self.kernels.insert(desc.name.clone(), RegisteredKernel { desc, payload: None });
        self
    }

    /// Registers a kernel with a functional payload.
    pub fn register_with_payload(&mut self, desc: KernelDesc, payload: KernelFn) -> &mut Self {
        self.kernels.insert(desc.name.clone(), RegisteredKernel { desc, payload: Some(payload) });
        self
    }

    /// Looks up a kernel by name.
    pub fn get(&self, name: &str) -> Option<&RegisteredKernel> {
        self.kernels.get(name)
    }

    /// Iterates over all registered kernels.
    pub fn kernels(&self) -> impl Iterator<Item = &RegisteredKernel> {
        self.kernels.values()
    }

    /// Number of kernels in the module.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True if no kernels have been registered.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim3_count() {
        assert_eq!(Dim3 { x: 4, y: 2, z: 3 }.count(), 24);
        assert_eq!(Dim3::x(7).count(), 7);
    }

    #[test]
    fn fatbinary_registration_and_lookup() {
        let mut fb = FatBinary::new();
        fb.register(KernelDesc::plain("matmul"));
        fb.register_with_payload(KernelDesc::plain("scale"), Arc::new(|_exec| Ok(())));
        assert_eq!(fb.len(), 2);
        assert!(fb.get("matmul").is_some());
        assert!(fb.get("matmul").unwrap().payload.is_none());
        assert!(fb.get("scale").unwrap().payload.is_some());
        assert!(fb.get("absent").is_none());
    }

    #[test]
    fn launch_spec_extracts_ptr_args() {
        let spec = LaunchSpec {
            kernel: "k".into(),
            config: LaunchConfig::default(),
            args: vec![
                KernelArg::Ptr(DeviceAddr(0x100)),
                KernelArg::Scalar(42),
                KernelArg::Ptr(DeviceAddr(0x200)),
                KernelArg::Float(1.5),
            ],
            work: Work::flops(1e6),
        };
        let ptrs: Vec<_> = spec.ptr_args().collect();
        assert_eq!(ptrs, vec![DeviceAddr(0x100), DeviceAddr(0x200)]);
    }

    #[test]
    fn work_seconds_inverts_throughput() {
        let w = Work::seconds_on_gflops(2.0, 1000.0);
        assert!((w.flops - 2e12).abs() < 1.0);
    }

    #[test]
    fn plain_desc_flags_off() {
        let d = KernelDesc::plain("k");
        assert!(!d.uses_nested_pointers);
        assert!(!d.uses_dynamic_alloc);
    }
}
