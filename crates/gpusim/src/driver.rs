//! The node's device inventory: enumeration, hot add/remove, failure
//! injection — the slice of the CUDA driver the paper's runtime talks to.

use crate::device::Gpu;
use crate::error::GpuError;
use crate::spec::GpuSpec;
use crate::Result;
use mtgpu_simtime::{lock_rank, Clock, RankedRwLock};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Ordinal of a device slot on a node. Slots are never reused within a
/// driver's lifetime, so a `DeviceId` stays meaningful after hot removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GPU{}", self.0)
    }
}

/// Driver-wide knobs.
#[derive(Debug, Clone, Default)]
pub struct DriverConfig {
    /// Reserved for future use (e.g. global context budget).
    pub _private: (),
}

/// The per-node GPU driver: owns the device slots.
pub struct Driver {
    clock: Clock,
    slots: RankedRwLock<Vec<Option<Arc<Gpu>>>>,
}

impl Driver {
    /// A driver with no devices attached.
    pub fn new(clock: Clock) -> Arc<Driver> {
        Arc::new(Driver { clock, slots: RankedRwLock::new(lock_rank::DRIVER_SLOTS, Vec::new()) })
    }

    /// A driver pre-populated with one device per spec.
    pub fn with_devices(clock: Clock, specs: Vec<GpuSpec>) -> Arc<Driver> {
        let driver = Driver::new(clock);
        for spec in specs {
            driver.attach(spec);
        }
        driver
    }

    /// The clock shared by all devices.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Hot-attaches a new device (dynamic upgrade, §2). Returns its id.
    pub fn attach(&self, spec: GpuSpec) -> DeviceId {
        let mut slots = self.slots.write();
        let ordinal = slots.len() as u32;
        slots.push(Some(Gpu::new(spec, self.clock.clone(), ordinal)));
        DeviceId(ordinal)
    }

    /// Hot-detaches a device (dynamic downgrade, §2). The device is marked
    /// failed so in-flight operations error out, and removed from
    /// enumeration. Returns the detached handle (bookkeeping may still be
    /// inspected).
    pub fn detach(&self, id: DeviceId) -> Result<Arc<Gpu>> {
        let mut slots = self.slots.write();
        let slot = slots.get_mut(id.0 as usize).ok_or(GpuError::DeviceNotFound)?;
        let gpu = slot.take().ok_or(GpuError::DeviceNotFound)?;
        gpu.fail();
        Ok(gpu)
    }

    /// The device in slot `id`, if attached.
    pub fn device(&self, id: DeviceId) -> Result<Arc<Gpu>> {
        self.slots.read().get(id.0 as usize).and_then(Clone::clone).ok_or(GpuError::DeviceNotFound)
    }

    /// Number of attached (present) devices — what `cudaGetDeviceCount`
    /// reports on the bare runtime.
    pub fn device_count(&self) -> usize {
        self.slots.read().iter().flatten().count()
    }

    /// All attached devices with their ids, in slot order.
    pub fn devices(&self) -> Vec<(DeviceId, Arc<Gpu>)> {
        self.slots
            .read()
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.clone().map(|g| (DeviceId(i as u32), g)))
            .collect()
    }

    /// Devices that are attached and not failed.
    pub fn healthy_devices(&self) -> Vec<(DeviceId, Arc<Gpu>)> {
        self.devices().into_iter().filter(|(_, g)| !g.is_failed()).collect()
    }
}

impl std::fmt::Debug for Driver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> =
            self.devices().iter().map(|(id, g)| format!("{id}:{}", g.spec().name)).collect();
        f.debug_struct("Driver").field("devices", &names).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_enumerates_in_order() {
        let driver = Driver::with_devices(
            Clock::with_scale(1e-6),
            vec![GpuSpec::tesla_c2050(), GpuSpec::tesla_c1060()],
        );
        assert_eq!(driver.device_count(), 2);
        assert_eq!(driver.device(DeviceId(0)).unwrap().spec().name, "Tesla C2050");
        assert_eq!(driver.device(DeviceId(1)).unwrap().spec().name, "Tesla C1060");
        assert!(driver.device(DeviceId(2)).is_err());
    }

    #[test]
    fn detach_marks_failed_and_removes() {
        let driver = Driver::with_devices(Clock::with_scale(1e-6), vec![GpuSpec::test_small()]);
        let gpu = driver.device(DeviceId(0)).unwrap();
        let detached = driver.detach(DeviceId(0)).unwrap();
        assert!(detached.is_failed());
        assert!(gpu.is_failed(), "shared handle observes the failure");
        assert_eq!(driver.device_count(), 0);
        assert!(driver.device(DeviceId(0)).is_err());
        // Double detach errors.
        assert!(matches!(driver.detach(DeviceId(0)), Err(GpuError::DeviceNotFound)));
    }

    #[test]
    fn hot_attach_after_detach_gets_fresh_slot() {
        let driver = Driver::with_devices(Clock::with_scale(1e-6), vec![GpuSpec::test_small()]);
        driver.detach(DeviceId(0)).unwrap();
        let id = driver.attach(GpuSpec::tesla_c2050());
        assert_eq!(id, DeviceId(1));
        assert_eq!(driver.device_count(), 1);
    }

    #[test]
    fn healthy_excludes_failed() {
        let driver = Driver::with_devices(
            Clock::with_scale(1e-6),
            vec![GpuSpec::test_small(), GpuSpec::test_small()],
        );
        driver.device(DeviceId(0)).unwrap().fail();
        let healthy = driver.healthy_devices();
        assert_eq!(healthy.len(), 1);
        assert_eq!(healthy[0].0, DeviceId(1));
    }

    #[test]
    fn address_spaces_do_not_collide() {
        let driver = Driver::with_devices(
            Clock::with_scale(1e-6),
            vec![GpuSpec::test_small(), GpuSpec::test_small()],
        );
        let g0 = driver.device(DeviceId(0)).unwrap();
        let g1 = driver.device(DeviceId(1)).unwrap();
        let c0 = g0.create_context().unwrap();
        let c1 = g1.create_context().unwrap();
        let p0 = g0.malloc(c0, 1024).unwrap();
        let p1 = g1.malloc(c1, 1024).unwrap();
        assert_ne!(p0, p1);
        // An address from device 1 is invalid on device 0.
        assert!(g0.memcpy_d2h(c0, p1, 16).is_err());
    }
}
