use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors surfaced by the device model and driver.
///
/// These mirror the subset of `cudaError_t` codes the paper's runtime reacts
/// to (Table 1): allocation failure, invalid pointers/sizes, device loss.
/// The `mtgpu-api` crate maps them onto its CUDA-style error enum.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GpuError {
    /// Device memory could not satisfy the allocation (capacity or
    /// fragmentation) — `cudaErrorMemoryAllocation`.
    OutOfMemory,
    /// The driver refused to create another context on the device; the paper
    /// observed the CUDA runtime supports at most eight.
    TooManyContexts,
    /// Address does not fall inside any live allocation.
    InvalidAddress,
    /// Access (copy/kernel touch) extends beyond the allocation's bounds.
    OutOfBounds { addr: u64, len: u64, alloc_size: u64 },
    /// A size or parameter was malformed (zero-size alloc, bad copy length).
    InvalidValue,
    /// Context id not known to the device (destroyed or never created).
    InvalidContext,
    /// Kernel name was never registered with a fat binary.
    UnknownKernel(String),
    /// The device has failed (fault injection or hot removal).
    DeviceFailed,
    /// The device id does not name an attached device.
    DeviceNotFound,
    /// The kernel's host payload reported an execution failure.
    LaunchFailed(String),
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfMemory => write!(f, "out of device memory"),
            GpuError::TooManyContexts => write!(f, "too many contexts on device"),
            GpuError::InvalidAddress => write!(f, "invalid device address"),
            GpuError::OutOfBounds { addr, len, alloc_size } => write!(
                f,
                "access of {len} bytes at {addr:#x} exceeds allocation of {alloc_size} bytes"
            ),
            GpuError::InvalidValue => write!(f, "invalid value"),
            GpuError::InvalidContext => write!(f, "invalid device context"),
            GpuError::UnknownKernel(name) => write!(f, "unknown kernel `{name}`"),
            GpuError::DeviceFailed => write!(f, "device failed"),
            GpuError::DeviceNotFound => write!(f, "device not found"),
            GpuError::LaunchFailed(msg) => write!(f, "kernel launch failed: {msg}"),
        }
    }
}

impl std::error::Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GpuError::OutOfBounds { addr: 0x100, len: 64, alloc_size: 32 };
        let s = e.to_string();
        assert!(s.contains("64 bytes"));
        assert!(s.contains("32 bytes"));
    }

    #[test]
    fn serde_roundtrip() {
        let e = GpuError::UnknownKernel("matmul".into());
        let json = serde_json::to_string(&e).unwrap();
        let back: GpuError = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
