//! The ranked-lock order checker under deliberate abuse.
//!
//! The central property: a seeded rank inversion across two threads
//! panics *deterministically* — same site, same message — because the
//! check runs against the acquiring thread's own held-rank stack before
//! blocking, not against whoever else happens to hold the lock. These
//! tests are intentionally NOT gated on `debug_assertions`: if the runtime
//! checker is ever compiled out of debug builds, the expected panic stops
//! happening and this suite fails the build.

use mtgpu_simtime::{lock_rank, LockRank, RankedMutex, RankedRwLock};
use proptest::prelude::*;
use std::sync::Arc;

/// Runs `f` on a fresh thread and returns its panic message, or `None` if
/// it completed cleanly.
fn panic_message_of(f: impl FnOnce() + Send + 'static) -> Option<String> {
    let handle = std::thread::Builder::new()
        .name("inversion-probe".into())
        .spawn(f)
        .expect("spawn probe thread");
    match handle.join() {
        Ok(()) => None,
        Err(payload) => Some(
            payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".to_string()),
        ),
    }
}

const PROP_LO: &str = "PROP_LO";
const PROP_HI: &str = "PROP_HI";

/// Two locks with the given rank values; the probe thread acquires them in
/// the stated order while a sibling thread uses the legal order.
fn two_thread_probe(lo: u32, hi: u32, invert: bool) -> Option<String> {
    let outer = Arc::new(RankedMutex::new(LockRank { value: lo, name: PROP_LO }, 0u64));
    let inner = Arc::new(RankedMutex::new(LockRank { value: hi, name: PROP_HI }, 0u64));

    // Sibling thread exercising the legal order concurrently: the checker
    // is per-thread, so this must neither panic nor perturb the probe.
    let (o2, i2) = (Arc::clone(&outer), Arc::clone(&inner));
    let legal = std::thread::spawn(move || {
        for _ in 0..64 {
            let a = o2.lock();
            let b = i2.lock();
            drop(b);
            drop(a);
        }
    });

    let result = panic_message_of(move || {
        if invert {
            let _b = inner.lock();
            let _a = outer.lock(); // rank inversion: hi held, acquiring lo
        } else {
            let _a = outer.lock();
            let _b = inner.lock();
        }
    });
    legal.join().expect("legal-order thread never panics");
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Acquiring in descending rank order panics, every time, with the
    /// message naming both locks — regardless of the rank values chosen
    /// and of a concurrent well-behaved thread.
    #[test]
    fn seeded_inversion_panics_deterministically(lo in 1u32..1000, delta in 1u32..1000) {
        let hi = lo + delta;
        let msg = two_thread_probe(lo, hi, true)
            .expect("inversion must panic: the runtime rank checker appears to be disabled");
        prop_assert!(msg.contains("lock rank inversion"), "unexpected message: {msg}");
        prop_assert!(msg.contains(PROP_LO) && msg.contains(PROP_HI), "message names both locks: {msg}");
        // Deterministic: a second identical run produces the identical message.
        let again = two_thread_probe(lo, hi, true).expect("second inversion must panic too");
        prop_assert_eq!(msg, again);
    }

    /// The legal ascending order never panics for any rank pair.
    #[test]
    fn ascending_order_never_panics(lo in 1u32..1000, delta in 1u32..1000) {
        prop_assert!(two_thread_probe(lo, lo + delta, false).is_none());
    }
}

/// Equal ranks are an inversion too: neither lock orders before the other,
/// so nesting them is rejected in either direction (no sibling thread here —
/// with equal ranks there is no legal order to exercise).
#[test]
fn equal_ranks_are_rejected() {
    let a = Arc::new(RankedMutex::new(LockRank { value: 42, name: PROP_LO }, ()));
    let b = Arc::new(RankedMutex::new(LockRank { value: 42, name: PROP_HI }, ()));
    let msg = panic_message_of(move || {
        let _a = a.lock();
        let _b = b.lock();
    })
    .expect("equal-rank nesting must panic: the runtime rank checker appears to be disabled");
    assert!(msg.contains("lock rank inversion"), "{msg}");
}

/// The declared workspace table is usable end-to-end: nesting along the
/// published order holds, and a read lock participates in the same order.
#[test]
fn workspace_table_order_is_consistent() {
    assert!(
        lock_rank::ALL.windows(2).all(|w| w[0].value < w[1].value),
        "lock_rank::ALL must be strictly ascending"
    );
    let shard_map = Arc::new(RankedRwLock::new(lock_rank::SHARD_MAP, ()));
    let mm = Arc::new(RankedMutex::new(lock_rank::MM_STATE, ()));
    let tracer = Arc::new(RankedMutex::new(lock_rank::TRACER_RING, ()));
    let (s, m, t) = (Arc::clone(&shard_map), Arc::clone(&mm), Arc::clone(&tracer));
    assert!(panic_message_of(move || {
        let _a = s.read();
        let _b = m.lock();
        let _c = t.lock();
    })
    .is_none());
    // And the reverse nesting trips the checker through the rwlock too.
    let msg = panic_message_of(move || {
        let _c = tracer.lock();
        let _a = shard_map.read();
    })
    .expect("TRACER_RING → SHARD_MAP must panic");
    assert!(msg.contains("SHARD_MAP") && msg.contains("TRACER_RING"), "{msg}");
}
