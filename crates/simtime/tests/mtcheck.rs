//! Seeded two-thread fixture corpus for the mtcheck engine: a true race, a
//! lock-ordered non-race, a condvar handoff, a lost wakeup, and replay
//! determinism. Sessions need the debug-build instrumentation, so the whole
//! file is compiled out in release.
#![cfg(debug_assertions)]

use mtgpu_simtime::mtcheck::{self, Mode};
use mtgpu_simtime::{LockRank, RankedCondvar, RankedMutex, Shadow};
use std::sync::Arc;

const RANK_A: LockRank = LockRank { value: 11, name: "FIX_A" };
const RANK_B: LockRank = LockRank { value: 12, name: "FIX_B" };

/// Two ranked mutexes plus a shadow cell. The cell lives behind a *raw*
/// shim mutex so the physical accesses are synchronized (no UB) while the
/// model — which only sees ranked locks — observes whatever ordering the
/// fixture's ranked locks do or don't provide.
struct DualLockCell {
    a: RankedMutex<()>,
    b: RankedMutex<()>,
    cell: parking_lot::Mutex<Shadow<u64>>,
}

impl DualLockCell {
    fn new() -> Arc<Self> {
        Arc::new(DualLockCell {
            a: RankedMutex::new(RANK_A, ()),
            b: RankedMutex::new(RANK_B, ()),
            cell: parking_lot::Mutex::new(Shadow::new("fixture.cell", 0u64)),
        })
    }
}

#[test]
fn true_race_two_locks_is_detected() {
    let fx = DualLockCell::new();
    let (f1, f2) = (Arc::clone(&fx), Arc::clone(&fx));
    let report = mtcheck::explore(
        &[],
        vec![
            Box::new(move || {
                let _g = f1.a.lock();
                **f1.cell.lock() += 1;
            }),
            Box::new(move || {
                let _g = f2.b.lock();
                **f2.cell.lock() += 1;
            }),
        ],
    );
    assert!(report.deadlock.is_none() && !report.stalled, "engine trouble: {report:?}");
    assert!(!report.races.is_empty(), "disjoint locks must not order the writes");
    let race = &report.races[0];
    assert_eq!(race.kind, "write-write");
    assert_eq!(race.cell, "fixture.cell");
    // Rank annotation: each side names the (useless) lock it held.
    let all_ranks: Vec<_> =
        race.first.ranks.iter().chain(race.second.ranks.iter()).copied().collect();
    assert!(all_ranks.contains(&"FIX_A") && all_ranks.contains(&"FIX_B"), "{race:?}");
}

#[test]
fn lock_ordered_access_is_not_a_race() {
    let fx = DualLockCell::new();
    let (f1, f2) = (Arc::clone(&fx), Arc::clone(&fx));
    let report = mtcheck::explore(
        &[],
        vec![
            Box::new(move || {
                let _g = f1.a.lock();
                **f1.cell.lock() += 1;
            }),
            Box::new(move || {
                let _g = f2.a.lock(); // same mutex: release→acquire edge
                **f2.cell.lock() += 1;
            }),
        ],
    );
    assert!(report.clean(), "mutex-ordered writes flagged: {:?}", report.races);
    assert_eq!(**fx.cell.lock(), 2);
}

struct Handoff {
    m: RankedMutex<bool>,
    cv: RankedCondvar,
    cell: parking_lot::Mutex<Shadow<u64>>,
}

#[test]
fn condvar_handoff_orders_the_payload() {
    let fx = Arc::new(Handoff {
        m: RankedMutex::new(RANK_A, false),
        cv: RankedCondvar::new(),
        cell: parking_lot::Mutex::new(Shadow::new("handoff.cell", 0u64)),
    });
    let (producer, consumer) = (Arc::clone(&fx), Arc::clone(&fx));
    let report = mtcheck::explore(
        &[],
        vec![
            Box::new(move || {
                // Payload written *outside* the mutex: only the notify edge
                // orders it for the consumer.
                **producer.cell.lock() = 42;
                let mut flag = producer.m.lock();
                *flag = true;
                producer.cv.notify_one();
            }),
            Box::new(move || {
                let mut flag = consumer.m.lock();
                while !*flag {
                    consumer.cv.wait(&mut flag);
                }
                drop(flag);
                assert_eq!(**consumer.cell.lock(), 42);
            }),
        ],
    );
    assert!(report.clean(), "handoff flagged: {report:?}");
}

#[test]
fn condvar_handoff_explores_both_arrival_orders() {
    // Schedule prefix [1, 1]: let the consumer run first and take the
    // mutex so it actually parks in wait() before the producer notifies —
    // the designated-wakeup path.
    for schedule in [&[0u32][..], &[1u32][..], &[1u32, 1][..]] {
        let fx = Arc::new(Handoff {
            m: RankedMutex::new(RANK_A, false),
            cv: RankedCondvar::new(),
            cell: parking_lot::Mutex::new(Shadow::new("handoff.cell", 0u64)),
        });
        let (producer, consumer) = (Arc::clone(&fx), Arc::clone(&fx));
        let report = mtcheck::explore(
            schedule,
            vec![
                Box::new(move || {
                    **producer.cell.lock() = 7;
                    let mut flag = producer.m.lock();
                    *flag = true;
                    producer.cv.notify_one();
                }),
                Box::new(move || {
                    let mut flag = consumer.m.lock();
                    while !*flag {
                        consumer.cv.wait(&mut flag);
                    }
                }),
            ],
        );
        assert!(report.clean(), "schedule {schedule:?}: {report:?}");
    }
}

#[test]
fn lost_wakeup_is_reported_as_deadlock() {
    let fx = Arc::new(Handoff {
        m: RankedMutex::new(RANK_A, false),
        cv: RankedCondvar::new(),
        cell: parking_lot::Mutex::new(Shadow::new("lost.cell", 0u64)),
    });
    let (waiter, walker) = (Arc::clone(&fx), Arc::clone(&fx));
    let report = mtcheck::explore(
        &[],
        vec![
            Box::new(move || {
                let mut flag = waiter.m.lock();
                while !*flag {
                    waiter.cv.wait(&mut flag); // nobody will ever notify
                }
            }),
            Box::new(move || {
                // Touches the mutex but forgets both the flag and the
                // notify: the classic lost wakeup.
                let _g = walker.m.lock();
            }),
        ],
    );
    assert!(report.deadlock.is_some(), "lost wakeup undetected: {report:?}");
}

#[test]
fn same_schedule_replays_bit_for_bit() {
    let run = |schedule: &[u32]| {
        let fx = DualLockCell::new();
        let (f1, f2) = (Arc::clone(&fx), Arc::clone(&fx));
        mtcheck::explore(
            schedule,
            vec![
                Box::new(move || {
                    for _ in 0..3 {
                        let _g = f1.a.lock();
                        **f1.cell.lock() += 1;
                    }
                }),
                Box::new(move || {
                    for _ in 0..3 {
                        let _g = f2.a.lock();
                        **f2.cell.lock() += 10;
                    }
                }),
            ],
        )
    };
    for schedule in [&[][..], &[1, 0, 1][..], &[1, 1, 1, 1][..]] {
        let a = run(schedule);
        let b = run(schedule);
        assert_eq!(a.fingerprint, b.fingerprint, "schedule {schedule:?}");
        assert_eq!(a.events, b.events);
        assert_eq!(a.decisions, b.decisions);
        assert!(a.clean() && b.clean());
    }
    // And different schedules genuinely diverge.
    let a = run(&[]);
    let b = run(&[1, 0, 1]);
    assert_ne!(
        a.decisions.iter().map(|d| d.chosen).collect::<Vec<_>>(),
        b.decisions.iter().map(|d| d.chosen).collect::<Vec<_>>(),
    );
}

#[test]
fn observe_mode_detects_the_seeded_race_too() {
    // Physical interleaving is arbitrary here, but the verdict is not:
    // happens-before depends only on which locks each side held.
    let fx = DualLockCell::new();
    let (f1, f2) = (Arc::clone(&fx), Arc::clone(&fx));
    let report = mtcheck::observe(vec![
        Box::new(move || {
            let _g = f1.a.lock();
            **f1.cell.lock() += 1;
        }),
        Box::new(move || {
            let _g = f2.b.lock();
            **f2.cell.lock() += 1;
        }),
    ]);
    assert!(!report.stalled);
    assert!(!report.races.is_empty(), "observe mode must flag the unordered writes");
}

#[test]
fn mode_is_reported_by_instrumentation_probe() {
    assert!(mtcheck::instrumentation_active());
    let _ = Mode::Observe; // public surface sanity
}
