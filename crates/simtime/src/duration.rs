use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use std::time::Duration;

/// A span of *simulated* time, stored with nanosecond resolution.
///
/// `SimDuration` is deliberately a distinct type from [`std::time::Duration`]
/// so that simulated and real time cannot be mixed by accident; conversion
/// happens only inside [`crate::Clock`] where the scale factor is applied.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration {
    nanos: u64,
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration { nanos: 0 };
    /// The largest representable duration (~584 simulated years).
    pub const MAX: SimDuration = SimDuration { nanos: u64::MAX };

    /// Creates a duration from whole simulated nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration { nanos }
    }

    /// Creates a duration from whole simulated microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration { nanos: micros * 1_000 }
    }

    /// Creates a duration from whole simulated milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration { nanos: millis * 1_000_000 }
    }

    /// Creates a duration from whole simulated seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration { nanos: secs * 1_000_000_000 }
    }

    /// Creates a duration from a floating-point number of simulated seconds.
    ///
    /// Negative and non-finite inputs are clamped to zero; values beyond
    /// [`SimDuration::MAX`] saturate.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration { nanos: nanos as u64 }
        }
    }

    /// Total duration in simulated nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Total duration in simulated microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.nanos / 1_000
    }

    /// Total duration in simulated milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.nanos / 1_000_000
    }

    /// Duration as a floating-point number of simulated seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// `true` if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.nanos == 0
    }

    /// Saturating subtraction; returns [`SimDuration::ZERO`] on underflow.
    #[inline]
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration { nanos: self.nanos.saturating_sub(rhs.nanos) }
    }

    /// Saturating addition; returns [`SimDuration::MAX`] on overflow.
    #[inline]
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration { nanos: self.nanos.saturating_add(rhs.nanos) }
    }

    /// Checked subtraction.
    #[inline]
    pub const fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        match self.nanos.checked_sub(rhs.nanos) {
            Some(n) => Some(SimDuration { nanos: n }),
            None => None,
        }
    }

    /// Scales the duration by a non-negative factor, saturating at the bounds.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Converts to a real [`std::time::Duration`] scaled by
    /// `real_seconds_per_sim_second`.
    pub(crate) fn to_real(self, scale: f64) -> Duration {
        Duration::from_secs_f64((self.as_secs_f64() * scale).max(0.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration { nanos: self.nanos + rhs.nanos }
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.nanos += rhs.nanos;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration { nanos: self.nanos - rhs.nanos }
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.nanos -= rhs.nanos;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration { nanos: self.nanos * rhs }
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration { nanos: self.nanos / rhs }
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.as_secs_f64();
        if secs >= 1.0 {
            write!(f, "{secs:.3}s")
        } else if self.nanos >= 1_000_000 {
            write!(f, "{:.3}ms", self.nanos as f64 / 1e6)
        } else if self.nanos >= 1_000 {
            write!(f, "{:.3}us", self.nanos as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.nanos)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5000));
    }

    #[test]
    fn float_roundtrip() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_millis(), 1500);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn float_clamps_negative_and_nan() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!(a + b, SimDuration::from_millis(14));
        assert_eq!(a - b, SimDuration::from_millis(6));
        assert_eq!(a * 3, SimDuration::from_millis(30));
        assert_eq!(a / 2, SimDuration::from_millis(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.checked_sub(b), Some(SimDuration::from_millis(6)));
    }

    #[test]
    fn saturating_add_at_max() {
        assert_eq!(SimDuration::MAX.saturating_add(SimDuration::from_secs(1)), SimDuration::MAX);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimDuration::from_nanos(2).to_string(), "2ns");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10).mul_f64(0.25);
        assert_eq!(d, SimDuration::from_millis(2500));
        assert_eq!(SimDuration::from_secs(1).mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_nanos(1).is_zero());
    }
}
