//! Scaled simulation time for the `mtgpu` runtime.
//!
//! The HPDC'12 runtime reproduced by this workspace is a *real* multithreaded
//! system (threads, locks, channels, sockets), but the durations it arbitrates
//! — kernel executions, PCIe transfers, CPU phases — belong to 2012 hardware
//! that is not present. This crate provides the single point where simulated
//! durations are mapped onto wall-clock time: a [`Clock`] with a configurable
//! *scale* (real seconds per simulated second).
//!
//! Every component of the workspace that needs to "spend" simulated time calls
//! [`Clock::sleep`]; every measurement converts back through
//! [`Clock::now`]/[`SimInstant`]. Because the scale is uniform, every ratio,
//! overlap and crossover of the paper's experiments is preserved while the
//! full evaluation runs in minutes instead of hours.
//!
//! ```
//! use mtgpu_simtime::{Clock, SimDuration};
//!
//! // 1 simulated second == 1 real millisecond.
//! let clock = Clock::with_scale(1e-3);
//! let t0 = clock.now();
//! clock.sleep(SimDuration::from_secs_f64(2.0)); // ~2ms of real time
//! assert!(clock.now().duration_since(t0) >= SimDuration::from_secs_f64(1.9));
//! ```

mod clock;
mod duration;
pub mod mtcheck;
mod rng;
mod stopwatch;
pub mod sync;

pub use clock::{Clock, SimInstant};
pub use duration::SimDuration;
pub use mtcheck::Shadow;
pub use rng::DetRng;
pub use stopwatch::Stopwatch;
pub use sync::{
    lock_rank, LockRank, RankedCondvar, RankedMutex, RankedMutexGuard, RankedRwLock,
    RankedRwLockReadGuard, RankedRwLockWriteGuard,
};
